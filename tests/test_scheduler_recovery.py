"""Scheduler hardening units: backoff, speculation, blacklisting,
fetch-failure recomputation, retry exhaustion.

These pin down the recovery machinery the chaos harness
(tests/test_chaos.py) exercises end-to-end.
"""

import numpy as np
import pytest

from repro.sparkle import (
    ExecutorLost,
    FaultPlan,
    FaultSpec,
    JobAborted,
    ShuffleFetchFailed,
    SparkleContext,
    TransientIOError,
)
from repro.sparkle.chaos import deterministic_fraction

pytestmark = pytest.mark.chaos


# ----------------------------------------------------------------------
# backoff
# ----------------------------------------------------------------------
class TestBackoff:
    def _scheduler(self, seed=0, **kw):
        plan = FaultPlan(seed) if seed is not None else None
        sc = SparkleContext(1, 1, fault_plan=plan, **kw)
        return sc, sc._scheduler

    def test_sequence_is_deterministic(self):
        sc1, sched1 = self._scheduler(seed=42)
        sc2, sched2 = self._scheduler(seed=42)
        try:
            seq1 = [sched1.backoff_delay(3, 1, a) for a in range(2, 6)]
            seq2 = [sched2.backoff_delay(3, 1, a) for a in range(2, 6)]
            assert seq1 == seq2
            # and stable under repeated evaluation of the same site
            assert sched1.backoff_delay(3, 1, 2) == seq1[0]
        finally:
            sc1.stop()
            sc2.stop()

    def test_different_seeds_jitter_differently(self):
        sc1, sched1 = self._scheduler(seed=1)
        sc2, sched2 = self._scheduler(seed=2)
        try:
            seq1 = [sched1.backoff_delay(0, 0, a) for a in range(2, 8)]
            seq2 = [sched2.backoff_delay(0, 0, a) for a in range(2, 8)]
            assert seq1 != seq2
        finally:
            sc1.stop()
            sc2.stop()

    def test_exponential_growth_and_cap(self):
        sc, sched = self._scheduler(
            seed=9, backoff_base=0.001, backoff_cap=0.004, backoff_jitter=0.0
        )
        try:
            assert sched.backoff_delay(0, 0, 2) == pytest.approx(0.001)
            assert sched.backoff_delay(0, 0, 3) == pytest.approx(0.002)
            assert sched.backoff_delay(0, 0, 4) == pytest.approx(0.004)
            assert sched.backoff_delay(0, 0, 5) == pytest.approx(0.004)  # capped
        finally:
            sc.stop()

    def test_jitter_bounds(self):
        sc, sched = self._scheduler(
            seed=13, backoff_base=0.002, backoff_cap=1.0, backoff_jitter=0.5
        )
        try:
            for attempt in range(2, 7):
                raw = 0.002 * 2 ** (attempt - 2)
                got = sched.backoff_delay(5, 7, attempt)
                assert raw <= got <= raw * 1.5
        finally:
            sc.stop()

    def test_disabled_when_base_zero(self):
        sc, sched = self._scheduler(seed=1, backoff_base=0.0)
        try:
            assert sched.backoff_delay(0, 0, 2) == 0.0
        finally:
            sc.stop()

    def test_fraction_is_pure(self):
        a = deterministic_fraction(7, "backoff", (1, 2, 3))
        b = deterministic_fraction(7, "backoff", (1, 2, 3))
        assert a == b and 0.0 <= a < 1.0
        assert deterministic_fraction(8, "backoff", (1, 2, 3)) != a

    def test_backoff_metered_on_retry(self):
        plan = FaultPlan(1, [FaultSpec("kill", rate=1.0)])
        with SparkleContext(1, 1, fault_plan=plan, backoff_base=0.0005) as sc:
            sc.parallelize([1, 2], 2).collect()
            assert sc.metrics.backoff_waits == 2  # one retry per partition
            assert sc.metrics.backoff_seconds_total > 0
            tasks = sc.metrics.jobs[-1].stages[-1].tasks
            assert all(t.attempts == 2 for t in tasks)
            assert all(t.backoff_seconds > 0 for t in tasks)


# ----------------------------------------------------------------------
# speculative execution
# ----------------------------------------------------------------------
class TestSpeculation:
    def test_speculative_copy_wins_over_straggler(self):
        plan = FaultPlan(21, [FaultSpec("slow", rate=1.0, delay=0.2)])
        with SparkleContext(2, 2, fault_plan=plan) as sc:
            got = sc.parallelize(range(4), 2).map(lambda x: x * x).collect()
            assert got == [0, 1, 4, 9]
            m = sc.metrics
            assert m.speculative_launched == 2
            # the stalled originals never finish: the copies win every race
            assert m.speculative_wins == 2
            assert m.stragglers_cancelled == 2
            assert m.tasks_retried == 0  # speculation is not a retry
            wins = [t.speculative_win for t in m.jobs[-1].stages[-1].tasks]
            assert wins == [True, True]

    def test_straggler_wins_when_speculation_disabled(self):
        plan = FaultPlan(21, [FaultSpec("slow", rate=1.0, delay=0.01)])
        with SparkleContext(2, 2, fault_plan=plan, speculation=False) as sc:
            got = sc.parallelize(range(4), 2).map(lambda x: x + 1).collect()
            assert got == [1, 2, 3, 4]
            assert sc.metrics.speculative_launched == 0
            assert sc.metrics.speculative_wins == 0

    def test_speculation_in_summary(self):
        plan = FaultPlan(21, [FaultSpec("slow", rate=1.0, delay=0.05)])
        with SparkleContext(1, 2, fault_plan=plan) as sc:
            sc.parallelize([1], 1).collect()
            s = sc.metrics.summary()
            assert s["speculative_launched"] == 1
            assert s["speculative_wins"] == 1


# ----------------------------------------------------------------------
# executor loss → lineage recomputation
# ----------------------------------------------------------------------
class TestExecutorLossRecovery:
    def test_dropped_map_outputs_are_recomputed(self):
        # Lose an executor in the result stage, after the map stage
        # materialized: the reducers must recompute the dropped map
        # partitions from lineage and still agree with the clean run.
        def run(plan):
            with SparkleContext(2, 1, fault_plan=plan) as sc:
                got = dict(
                    sc.parallelize([(i % 4, i) for i in range(16)], 4)
                    .reduceByKey(lambda a, b: a + b, 4)
                    .collect()
                )
                return got, sc.metrics.recovery_summary()

        clean, _ = run(None)
        # seed 6 at rate 0.3 loses executors both during the map stage and
        # under the reducers (dropping already-staged map outputs).
        plan = FaultPlan(6, [FaultSpec("lose", rate=0.3)])
        chaotic, recovery = run(plan)
        assert chaotic == clean
        assert recovery["executor_loss_events"] > 0
        assert recovery["partitions_recomputed"] > 0
        assert recovery["tasks_retried"] > 0

    def test_fetch_failed_names_missing_partitions(self):
        with SparkleContext(2, 1) as sc:
            shuffled = (
                sc.parallelize([(i % 2, i) for i in range(8)], 4)
                .reduceByKey(lambda a, b: a + b, 2)
            )
            shuffled.collect()
            sm = sc._shuffle_manager
            dropped = sm.drop_executor_outputs(
                lambda mp: sc._executors.executor_for(mp) == 0
            )
            assert dropped  # executor 0 owned some map outputs
            sid = dropped[0][0]
            with pytest.raises(ShuffleFetchFailed) as err:
                sm.fetch(sid, 0, 4)
            assert set(err.value.missing) == {mp for _sid, mp in dropped}

    def test_stage_reuse_after_loss_recomputes_only_missing(self):
        # Materialize a shuffle, drop one executor's outputs, run a second
        # job over the same RDD: partial stage re-execution recomputes
        # exactly the dropped partitions.
        with SparkleContext(2, 1) as sc:
            shuffled = (
                sc.parallelize([(i % 2, i) for i in range(8)], 4)
                .reduceByKey(lambda a, b: a + b, 2)
            )
            first = dict(shuffled.collect())
            dropped = sc._shuffle_manager.drop_executor_outputs(
                lambda mp: sc._executors.executor_for(mp) == 1
            )
            assert 0 < len(dropped) < 4
            # different downstream action → map stage re-checked, not reused
            assert shuffled.count() == len(first)
            assert sc.metrics.partitions_recomputed == len(dropped)
            rerun = sc.metrics.jobs[-1].stages[0]
            assert rerun.kind == "shuffle-map"
            assert len(rerun.tasks) == len(dropped)


# ----------------------------------------------------------------------
# transient I/O faults
# ----------------------------------------------------------------------
class TestTransientIO:
    def test_storage_read_fault_is_retried(self):
        plan = FaultPlan(17, [FaultSpec("storage", rate=1.0)])
        with SparkleContext(2, 1, fault_plan=plan) as sc:
            sc.shared_storage.put("block", np.arange(4.0))
            # Driver-side read: never faulted.
            np.testing.assert_array_equal(
                sc.shared_storage.get("block"), np.arange(4.0)
            )
            # Executor-side read: first attempt flakes, retry succeeds.
            storage = sc.shared_storage
            got = (
                sc.parallelize([0], 1)
                .map(lambda _x: float(storage.get("block").sum()))
                .collect()
            )
            assert got == [6.0]
            assert sc.metrics.transient_io_failures == 1
            assert sc.metrics.tasks_retried == 1

    def test_broadcast_read_fault_is_retried(self):
        plan = FaultPlan(19, [FaultSpec("bcast", rate=1.0)])
        with SparkleContext(2, 1, fault_plan=plan) as sc:
            bc = sc.broadcast(np.ones(8))
            assert bc.value.sum() == 8.0  # driver-side read: clean
            got = sc.parallelize([1], 1).map(lambda _x: bc.value.sum()).collect()
            assert got == [8.0]
            assert sc.metrics.transient_io_failures == 1

    def test_shuffle_overflow_fault_is_retried(self):
        plan = FaultPlan(23, [FaultSpec("overflow", rate=1.0)])
        with SparkleContext(2, 1, fault_plan=plan) as sc:
            got = dict(
                sc.parallelize([(i % 2, i) for i in range(8)], 2)
                .reduceByKey(lambda a, b: a + b, 2)
                .collect()
            )
            assert got == {0: 12, 1: 16}
            assert sc.metrics.transient_io_failures == 2  # one per map task
            assert plan.fired()["overflow"] == 2


# ----------------------------------------------------------------------
# blacklisting
# ----------------------------------------------------------------------
class TestBlacklisting:
    def test_faulty_executor_gets_blacklisted(self):
        # Every first attempt dies; executors accumulate faults and cross
        # the threshold, but at least one always stays healthy.
        plan = FaultPlan(29, [FaultSpec("kill", rate=1.0)])
        with SparkleContext(3, 1, fault_plan=plan, blacklist_threshold=2) as sc:
            got = sc.parallelize(range(12), 12).map(lambda x: -x).collect()
            assert got == [-x for x in range(12)]
            assert len(sc.metrics.blacklisted_executors) == 2
            assert len(sc._executors.healthy_executors) == 1
            assert sc.metrics.summary()["executors_blacklisted"] == 2

    def test_threshold_zero_disables_blacklisting(self):
        plan = FaultPlan(29, [FaultSpec("kill", rate=1.0)])
        with SparkleContext(3, 1, fault_plan=plan, blacklist_threshold=0) as sc:
            sc.parallelize(range(12), 12).collect()
            assert sc.metrics.blacklisted_executors == []
            assert sc._executors.healthy_executors == (0, 1, 2)

    def test_lost_executor_attributed_and_blacklisted(self):
        plan = FaultPlan(31, [FaultSpec("lose", rate=1.0)])
        with SparkleContext(2, 1, fault_plan=plan, blacklist_threshold=1) as sc:
            sc.parallelize(range(4), 4).collect()
            assert len(sc.metrics.blacklisted_executors) == 1
            assert sc.metrics.executor_loss_events >= 1


# ----------------------------------------------------------------------
# retry exhaustion
# ----------------------------------------------------------------------
class TestRetryExhaustion:
    def test_job_aborted_after_budget(self):
        # Faults past every retry: JobAborted carries the last cause.
        plan = FaultPlan(37, [FaultSpec("kill", rate=1.0, max_attempt=10**6)])
        with SparkleContext(
            1, 1, fault_plan=plan, max_task_retries=2, backoff_base=0.0001
        ) as sc:
            with pytest.raises(JobAborted, match="after 3 attempts"):
                sc.parallelize([1], 1).collect()
            assert sc.metrics.tasks_retried == 3

    def test_abort_cause_is_executor_loss(self):
        plan = FaultPlan(41, [FaultSpec("lose", rate=1.0, max_attempt=10**6)])
        with SparkleContext(
            2, 1, fault_plan=plan, max_task_retries=1, blacklist_threshold=0
        ) as sc:
            with pytest.raises(JobAborted) as err:
                sc.parallelize([1], 1).collect()
            assert isinstance(err.value.__cause__, ExecutorLost)

    def test_transient_exhaustion_aborts(self):
        plan = FaultPlan(43, [FaultSpec("storage", rate=1.0, max_attempt=10**6)])
        with SparkleContext(1, 1, fault_plan=plan, max_task_retries=1) as sc:
            sc.shared_storage.put("k", 1)
            storage = sc.shared_storage
            with pytest.raises(JobAborted) as err:
                sc.parallelize([0], 1).map(lambda _x: storage.get("k")).collect()
            assert isinstance(err.value.__cause__, TransientIOError)


# ----------------------------------------------------------------------
# plan parsing / validation
# ----------------------------------------------------------------------
class TestFaultPlanSurface:
    def test_from_string_full_grammar(self):
        plan = FaultPlan.from_string(
            "seed=7,kill=0.1,lose=0.05,slow=0.2:0.01,storage=0.05,overflow=0.02"
        )
        assert plan.seed == 7
        assert plan.specs["slow"].rate == 0.2
        assert plan.specs["slow"].delay == 0.01
        assert plan.specs["kill"].rate == 0.1
        assert plan.serialize_tasks is True
        assert "seed=7" in plan.describe()

    def test_from_string_bare_seed_arms_default_mix(self):
        plan = FaultPlan.from_string("seed=42")
        assert plan.seed == 42
        assert plan.specs  # default rates armed
        assert "kill" in plan.specs and "lose" in plan.specs

    def test_from_string_parallel_flag(self):
        plan = FaultPlan.from_string("seed=1,kill=0.5,parallel=1")
        assert plan.serialize_tasks is False

    def test_from_string_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.from_string("kill=0.5")  # seed missing
        with pytest.raises(ValueError):
            FaultPlan.from_string("seed=1,warp=0.5")
        with pytest.raises(ValueError):
            FaultPlan.from_string("seed=1,kill")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("kill", rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec("nope", rate=0.5)
        with pytest.raises(ValueError):
            FaultSpec("slow", rate=0.5, delay=-1)
        with pytest.raises(ValueError):
            FaultPlan(0, [FaultSpec("kill", 0.1), FaultSpec("kill", 0.2)])

    def test_decisions_are_reproducible(self):
        p1 = FaultPlan(99, [FaultSpec("kill", rate=0.5)])
        p2 = FaultPlan(99, [FaultSpec("kill", rate=0.5)])
        sites = [(s, p, 1) for s in range(10) for p in range(10)]
        assert [p1.task_fault(*x) for x in sites] == [p2.task_fault(*x) for x in sites]
        fired = p1.fired()["kill"]
        assert 0 < fired < len(sites)  # rate actually thins the sites
