"""sparkle engine: RDD transformation and action semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparkle import (
    GridPartitioner,
    HashPartitioner,
    RangePartitioner,
    SparkleContext,
)


@pytest.fixture
def sc():
    with SparkleContext(num_executors=2, cores_per_executor=2) as ctx:
        yield ctx


class TestBasicTransformations:
    def test_map(self, sc):
        assert sc.parallelize(range(5), 2).map(lambda x: x * 2).collect() == [
            0, 2, 4, 6, 8,
        ]

    def test_filter(self, sc):
        out = sc.parallelize(range(10), 3).filter(lambda x: x % 2 == 0).collect()
        assert out == [0, 2, 4, 6, 8]

    def test_flat_map(self, sc):
        out = sc.parallelize([1, 2], 1).flatMap(lambda x: [x] * x).collect()
        assert out == [1, 2, 2]

    def test_map_partitions_with_index(self, sc):
        rdd = sc.parallelize(range(6), 3)
        out = rdd.map_partitions(lambda it, pid: [(pid, sum(it))]).collect()
        assert out == [(0, 1), (1, 5), (2, 9)]

    def test_glom_partition_structure(self, sc):
        parts = sc.parallelize(range(6), 3).glom().collect()
        assert parts == [[0, 1], [2, 3], [4, 5]]

    def test_union_preserves_order(self, sc):
        a = sc.parallelize([1, 2], 2)
        b = sc.parallelize([3], 1)
        assert a.union(b).collect() == [1, 2, 3]
        assert sc.union([a, b, a]).collect() == [1, 2, 3, 1, 2]

    def test_keys_values_keyby(self, sc):
        kv = sc.parallelize([(1, "a"), (2, "b")], 1)
        assert kv.keys().collect() == [1, 2]
        assert kv.values().collect() == ["a", "b"]
        assert sc.parallelize([3, 4], 1).keyBy(lambda x: x % 2).collect() == [
            (1, 3), (0, 4),
        ]

    def test_map_values_preserves_partitioner(self, sc):
        p = HashPartitioner(3)
        kv = sc.parallelize([(i, i) for i in range(9)], 2).partitionBy(partitioner=p)
        mapped = kv.mapValues(lambda v: v + 1)
        assert mapped.partitioner == p
        assert mapped.partitionBy(partitioner=p) is mapped

    def test_distinct(self, sc):
        out = sc.parallelize([1, 2, 2, 3, 1], 3).distinct(2).collect()
        assert sorted(out) == [1, 2, 3]

    def test_lazy_until_action(self, sc):
        evil = sc.parallelize([1], 1).map(lambda x: 1 / 0)
        # No exception until an action runs.
        with pytest.raises(Exception):
            evil.collect()


class TestPairOperations:
    def test_reduce_by_key(self, sc):
        kv = sc.parallelize([(i % 3, i) for i in range(12)], 4)
        got = dict(kv.reduceByKey(lambda a, b: a + b, 3).collect())
        assert got == {0: 0 + 3 + 6 + 9, 1: 1 + 4 + 7 + 10, 2: 2 + 5 + 8 + 11}

    def test_group_by_key(self, sc):
        kv = sc.parallelize([("a", 1), ("b", 2), ("a", 3)], 2)
        got = {k: sorted(v) for k, v in kv.groupByKey(2).collect()}
        assert got == {"a": [1, 3], "b": [2]}

    def test_combine_by_key_three_functions(self, sc):
        kv = sc.parallelize([("x", 1), ("x", 2), ("y", 5)], 3)
        got = dict(
            kv.combineByKey(
                lambda v: [v],
                lambda acc, v: acc + [v],
                lambda a, b: a + b,
                2,
            ).collect()
        )
        assert sorted(got["x"]) == [1, 2] and got["y"] == [5]

    def test_fold_by_key(self, sc):
        kv = sc.parallelize([("a", 2), ("a", 3), ("b", 4)], 2)
        got = dict(kv.foldByKey(1, lambda a, b: a * b, 2).collect())
        assert got == {"a": 6, "b": 4}

    def test_join(self, sc):
        left = sc.parallelize([(1, "a"), (2, "b"), (1, "c")], 2)
        right = sc.parallelize([(1, "x"), (3, "z")], 2)
        got = sorted(left.join(right).collect())
        assert got == [(1, ("a", "x")), (1, ("c", "x"))]

    def test_cogroup(self, sc):
        left = sc.parallelize([(1, "a")], 1)
        right = sc.parallelize([(1, "x"), (1, "y"), (2, "w")], 2)
        got = dict(left.cogroup(right, 2).collect())
        assert got[1] == (["a"], ["x", "y"])
        assert got[2] == ([], ["w"])

    def test_count_by_key_and_lookup(self, sc):
        kv = sc.parallelize([("a", 1), ("a", 2), ("b", 9)], 2)
        assert kv.countByKey() == {"a": 2, "b": 1}
        assert kv.lookup("a") == [1, 2]

    def test_collect_as_map(self, sc):
        assert sc.parallelize([(1, "a")], 1).collectAsMap() == {1: "a"}


class TestActions:
    def test_count_and_first_take(self, sc):
        rdd = sc.parallelize(range(10), 4)
        assert rdd.count() == 10
        assert rdd.first() == 0
        assert rdd.take(3) == [0, 1, 2]
        assert rdd.take(99) == list(range(10))

    def test_first_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.empty_rdd().first()

    def test_reduce(self, sc):
        assert sc.parallelize(range(1, 6), 3).reduce(lambda a, b: a * b) == 120

    def test_reduce_with_empty_partitions(self, sc):
        assert sc.parallelize([5], 4).reduce(lambda a, b: a + b) == 5

    def test_reduce_empty_raises(self, sc):
        with pytest.raises(ValueError):
            sc.empty_rdd().reduce(lambda a, b: a + b)

    def test_fold(self, sc):
        assert sc.parallelize(range(5), 2).fold(0, lambda a, b: a + b) == 10

    def test_foreach_side_effect(self, sc):
        seen = []
        sc.parallelize(range(4), 2).foreach(seen.append)
        assert sorted(seen) == [0, 1, 2, 3]


class TestPartitioners:
    def test_hash_deterministic_across_instances(self):
        a, b = HashPartitioner(7), HashPartitioner(7)
        for key in [(1, 2), "abc", 42]:
            assert a.partition(key) == b.partition(key)
            assert 0 <= a.partition(key) < 7

    def test_equality_semantics(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)
        assert HashPartitioner(4) != GridPartitioner(4, 2)

    def test_range_partitioner_monotone(self):
        p = RangePartitioner(4, 100)
        ids = [p.partition(k) for k in range(100)]
        assert ids == sorted(ids)
        assert set(ids) == {0, 1, 2, 3}

    def test_grid_partitioner_rows_cluster(self):
        p = GridPartitioner(4, 8)
        # keys in the same grid row map to nearby partitions
        same_row = {p.partition((2, j)) for j in range(8)}
        assert len(same_row) <= 2

    def test_grid_partitioner_fallback_hash(self):
        p = GridPartitioner(4, 8)
        assert 0 <= p.partition("not-a-tile") < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)
        with pytest.raises(ValueError):
            RangePartitioner(2, 0)
        with pytest.raises(ValueError):
            GridPartitioner(2, 0)

    def test_partition_by_skips_same_partitioner(self, sc):
        p = HashPartitioner(4)
        kv = sc.parallelize([(i, i) for i in range(8)], 2).partitionBy(partitioner=p)
        assert kv.partitionBy(partitioner=p) is kv
        other = kv.partitionBy(partitioner=HashPartitioner(5))
        assert other is not kv

    def test_partition_by_places_by_hash(self, sc):
        p = HashPartitioner(4)
        kv = sc.parallelize([(i, i) for i in range(16)], 3).partitionBy(partitioner=p)
        for pid, items in enumerate(kv.glom().collect()):
            for k, _v in items:
                assert p.partition(k) == pid


class TestCaching:
    def test_cache_avoids_recompute(self, sc):
        calls = []

        def trace(x):
            calls.append(x)
            return x

        rdd = sc.parallelize(range(4), 2).map(trace).cache()
        rdd.collect()
        rdd.collect()
        assert len(calls) == 4  # second collect served from cache

    def test_unpersist_recomputes(self, sc):
        calls = []
        rdd = sc.parallelize(range(2), 1).map(lambda x: calls.append(x) or x).cache()
        rdd.collect()
        rdd.unpersist()
        rdd.collect()
        assert len(calls) == 4


class TestDebugString:
    def test_lineage_rendering(self, sc):
        rdd = (
            sc.parallelize(range(4), 2)
            .map(lambda x: (x, x))
            .reduceByKey(lambda a, b: a + b, 2)
        )
        text = rdd.to_debug_string()
        assert "ShuffledRDD" in text and "ParallelCollectionRDD" in text


@given(
    data=st.lists(st.integers(min_value=-50, max_value=50), max_size=40),
    parts=st.integers(min_value=1, max_value=6),
    mod=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_property_reduce_by_key_matches_python(data, parts, mod):
    with SparkleContext(2, 2) as sc:
        kv = sc.parallelize([(x % mod, x) for x in data], parts)
        got = dict(kv.reduceByKey(lambda a, b: a + b, 3).collect())
    expect: dict = {}
    for x in data:
        expect[x % mod] = expect.get(x % mod, 0) + x
    assert got == expect


@given(
    data=st.lists(st.integers(), max_size=30),
    parts=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_property_collect_preserves_order(data, parts):
    with SparkleContext(2, 2) as sc:
        assert sc.parallelize(data, parts).collect() == data
