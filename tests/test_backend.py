"""Multicore data plane: backend parity, shm hygiene, zero-copy units.

The tentpole contract under test (DESIGN.md §12): the process backend is
a pure *data-plane* substitution — bit-identical results, identical
scheduler shape (jobs/stages/tasks), identical kernel work accounting —
while tiles move through pickle-5 out-of-band buffers and shared-memory
segments instead of by reference.  Plus the hygiene guarantees: no
``/dev/shm`` segment and no worker process outlives the context, even
when chaos faults kill tasks mid-kernel.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import run_gep
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
)
from repro.sparkle import FaultPlan, FaultSpec, SparkleContext
from repro.sparkle.backend import BACKENDS, ProcessBackend, make_backend
from repro.sparkle.serialize import (
    CowTile,
    SegmentArena,
    SerializedMapOutput,
    ShmArray,
    pack_map_output,
    release_nested,
    share_nested,
    shm_supported,
)

from .conftest import fw_table, ge_table, tc_table

SPECS = {
    "fw": (FloydWarshallGep, fw_table),
    "ge": (GaussianEliminationGep, ge_table),
    "tc": (TransitiveClosureGep, tc_table),
}

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="multiprocessing.shared_memory unavailable"
)


def _solve(backend, spec, table, *, strategy="im", r=3, fault_plan=None, sc_kw=None):
    """One solve on an owned context; returns (result, report, leftovers).

    ``leftovers`` is the list of ``/dev/shm`` entries still carrying the
    context arena's prefix *after* the context stopped — the leak probe.
    """
    with SparkleContext(
        num_executors=3,
        cores_per_executor=2,
        backend=backend,
        fault_plan=fault_plan,
        **(sc_kw or {}),
    ) as sc:
        solver = GepSparkSolver(
            spec,
            sc,
            r=r,
            kernel=make_kernel(spec, "iterative"),
            strategy=strategy,
        )
        out, report = solver.solve(table)
        prefix = sc.arena.prefix if sc.arena is not None else None
    leftovers = (
        glob.glob(f"/dev/shm/{prefix}*") if prefix is not None else []
    )
    return out, report, leftovers


def _shape_claims(report):
    m = report.engine_metrics
    return (len(m.jobs), m.total_stages, m.total_tasks)


# ----------------------------------------------------------------------
# backend parity (the tentpole acceptance property)
# ----------------------------------------------------------------------
@needs_shm
@given(
    name=st.sampled_from(sorted(SPECS)),
    strategy=st.sampled_from(["im", "cb", "bcast"]),
    n=st.integers(min_value=6, max_value=20),
    r=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=8, deadline=None)
def test_property_backends_bit_identical(name, strategy, n, r, seed):
    """Random workload x strategy: threads and processes agree bit-for-bit,
    run the same scheduler shape, and count the same kernel work."""
    spec_cls, make = SPECS[name]
    spec = spec_cls()
    table = make(n, seed=seed)
    results = {}
    for backend in BACKENDS:
        out, report, leftovers = _solve(
            backend, spec, table.copy(), strategy=strategy, r=r
        )
        assert leftovers == [], f"leaked shm segments on {backend}: {leftovers}"
        results[backend] = (out, report)
    t_out, t_rep = results["threads"]
    p_out, p_rep = results["processes"]
    assert np.array_equal(t_out, p_out), "backend outputs diverge"
    assert _shape_claims(t_rep) == _shape_claims(p_rep)
    assert t_rep.engine_metrics.backend == "threads"
    assert p_rep.engine_metrics.backend == "processes"


# Every way a tile update can reach a kernel: in-process, one IPC
# round-trip per tile, one round-trip per worker per stage, and a
# barrier gang spread over the whole pool.  All four must be
# bit-identical with the same scheduler shape (DESIGN.md §14).
DISPATCH_MODES = [
    ("threads", {}),
    ("processes", {"dispatch": "tile"}),
    ("processes", {"dispatch": "batch"}),
    ("processes", {"dispatch": "batch", "gang_stages": True}),
]


@needs_shm
@pytest.mark.batching
@given(
    name=st.sampled_from(sorted(SPECS)),
    strategy=st.sampled_from(["im", "cb", "bcast"]),
    n=st.integers(min_value=6, max_value=16),
    r=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=30),
    chaos_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=20)),
)
@settings(max_examples=8, deadline=None)
def test_property_dispatch_modes_bit_identical(
    name, strategy, n, r, seed, chaos_seed
):
    """The batching tentpole's differential property: every dispatch
    mode produces the same bits AND replays the same scheduler shape
    (jobs/stages/tasks) — batching fuses IPC round-trips, never the
    RDD graph — with or without seeded chaos, leaking nothing."""
    spec_cls, make = SPECS[name]
    spec = spec_cls()
    table = make(n, seed=seed)
    results = {}
    for backend, kw in DISPATCH_MODES:
        plan = (
            None
            if chaos_seed is None
            else FaultPlan(
                seed=chaos_seed,
                specs=[FaultSpec("kill", 0.1), FaultSpec("storage", 0.05)],
            )
        )
        out, report, leftovers = _solve(
            backend,
            spec,
            table.copy(),
            strategy=strategy,
            r=r,
            fault_plan=plan,
            sc_kw=kw,
        )
        assert leftovers == [], (
            f"leaked shm segments on {backend}/{kw}: {leftovers}"
        )
        results[(backend, tuple(sorted(kw)))] = (out, report)
    (ref_out, ref_rep), *rest = results.values()
    for mode, (out, rep) in zip(DISPATCH_MODES[1:], rest):
        assert np.array_equal(ref_out, out), f"{mode} output diverges"
        assert _shape_claims(ref_rep) == _shape_claims(rep), (
            f"{mode} scheduler shape diverges"
        )


@needs_shm
@pytest.mark.batching
def test_batch_dispatch_cuts_round_trips():
    """The whole point: batched dispatch crosses the IPC boundary once
    per worker per stage instead of once per tile, while the per-tile
    work accounting (kernel_offloads) stays identical."""
    spec = FloydWarshallGep()
    table = fw_table(24, seed=1)
    metrics = {}
    for mode in ("tile", "batch"):
        out, report, _ = _solve(
            "processes", spec, table.copy(), r=4, sc_kw={"dispatch": mode}
        )
        metrics[mode] = (out, report.engine_metrics)
    t_out, t_m = metrics["tile"]
    b_out, b_m = metrics["batch"]
    assert np.array_equal(t_out, b_out)
    assert t_m.kernel_offloads == b_m.kernel_offloads > 0
    assert t_m.dispatch_round_trips == t_m.kernel_offloads
    assert b_m.dispatch_round_trips < t_m.dispatch_round_trips
    assert b_m.batch_dispatches > 0
    # Every offload is accounted exactly once: batched calls plus the
    # single-tile per-call dispatches (the A-stage pivot update has
    # nothing to fuse) cover the total.
    per_tile_calls = b_m.dispatch_round_trips - b_m.batch_dispatches
    assert b_m.batched_kernel_calls + per_tile_calls == b_m.kernel_offloads


@pytest.mark.batching
def test_dispatch_validation():
    with pytest.raises(ValueError, match="dispatch"):
        SparkleContext(2, 1, backend="processes", dispatch="fused")
    with pytest.raises(ValueError, match="gang_stages"):
        SparkleContext(2, 1, backend="processes", gang_stages=True)
    spec = FloydWarshallGep()
    t = fw_table(8, seed=0)
    with pytest.raises(ValueError, match="engine='spark'"):
        run_gep(spec, t, engine="local", dispatch="batch")
    with SparkleContext(1, 1) as sc:
        with pytest.raises(ValueError, match="owned context"):
            run_gep(spec, t, engine="spark", dispatch="batch", sc=sc)


@needs_shm
@pytest.mark.parametrize("strategy", ["im", "cb", "bcast"])
def test_kernel_stats_identical_across_backends(strategy):
    """Offloaded kernels report the same work totals as in-process ones."""
    spec = FloydWarshallGep()
    table = fw_table(18, seed=7)
    stats = {}
    for backend in BACKENDS:
        with SparkleContext(2, 2, backend=backend) as sc:
            solver = GepSparkSolver(
                spec,
                sc,
                r=3,
                kernel=make_kernel(spec, "iterative"),
                strategy=strategy,
                collect_stats=True,
            )
            out, report = solver.solve(table.copy())
            stats[backend] = (out, report.kernel_stats)
    t_out, t_stats = stats["threads"]
    p_out, p_stats = stats["processes"]
    assert np.array_equal(t_out, p_out)
    assert t_stats.updates == p_stats.updates
    assert dict(t_stats.invocations) == dict(p_stats.invocations)


@needs_shm
def test_process_backend_actually_offloads():
    """The metered offload path runs (not silently falling back)."""
    spec = FloydWarshallGep()
    _, report, _ = _solve("processes", spec, fw_table(24, seed=1), r=3)
    m = report.engine_metrics
    assert m.kernel_offloads > 0
    assert m.copies_eliminated >= m.kernel_offloads
    assert m.shm_segments_created > 0


def test_unpicklable_kernel_falls_back_to_threads_path():
    """A kernel that cannot cross a process boundary (the recursive
    kernel's thread-local OmpRuntime) degrades to the in-process path
    silently — correct results, zero offloads."""
    if not shm_supported():
        pytest.skip("multiprocessing.shared_memory unavailable")
    spec = FloydWarshallGep()
    table = fw_table(16, seed=3)
    with SparkleContext(2, 2, backend="processes") as sc:
        solver = GepSparkSolver(
            spec,
            sc,
            r=4,
            kernel=make_kernel(spec, "recursive", r_shared=2, base_size=4),
            strategy="im",
        )
        out, report = solver.solve(table.copy())
    expect, _ = run_gep(spec, table, engine="local", r=4)
    assert np.array_equal(out, expect)
    assert report.engine_metrics.kernel_offloads == 0


def test_run_gep_backend_validation():
    spec = FloydWarshallGep()
    t = fw_table(8, seed=0)
    with pytest.raises(ValueError, match="engine='spark'"):
        run_gep(spec, t, engine="local", backend="processes")
    with SparkleContext(1, 1) as sc:
        with pytest.raises(ValueError, match="owned context"):
            run_gep(spec, t, engine="spark", backend="processes", sc=sc)
    with pytest.raises(ValueError, match="unknown backend"):
        SparkleContext(1, 1, backend="fibers")


# ----------------------------------------------------------------------
# hygiene: shm segments and worker processes never outlive the context
# ----------------------------------------------------------------------
@needs_shm
def test_no_shm_leak_after_clean_solve():
    spec = GaussianEliminationGep()
    with SparkleContext(2, 2, backend="processes") as sc:
        arena = sc.arena
        solver = GepSparkSolver(
            spec, sc, r=3, kernel=make_kernel(spec, "iterative"), strategy="cb"
        )
        solver.solve(ge_table(18, seed=5))
        assert arena.num_segments > 0, "solve should have staged segments"
        m = sc.metrics
    assert arena.num_segments == 0
    assert m.shm_segments_freed == m.shm_segments_created
    assert glob.glob(f"/dev/shm/{arena.prefix}*") == []


@needs_shm
def test_no_shm_leak_under_chaos_kill():
    """A chaos-killed task abandons its scratch segment mid-kernel; the
    end-of-stage sweep must reclaim it and the retry must still produce
    the fault-free answer."""
    spec = FloydWarshallGep()
    table = fw_table(20, seed=11)
    clean, _, _ = _solve("threads", spec, table.copy(), r=3)
    plan = FaultPlan(
        seed=11,
        specs=[FaultSpec("kill", 0.15), FaultSpec("storage", 0.05)],
    )
    out, report, leftovers = _solve(
        "processes", spec, table.copy(), r=3, fault_plan=plan
    )
    m = report.engine_metrics
    assert m.tasks_retried > 0, "chaos plan should have fired"
    assert np.array_equal(out, clean)
    assert leftovers == []
    assert m.shm_segments_freed == m.shm_segments_created


@needs_shm
def test_no_worker_processes_after_stop():
    before = {p.pid for p in multiprocessing.active_children()}
    with SparkleContext(2, 1, backend="processes") as sc:
        sc.parallelize(range(8), 4).map(lambda x: x * x).collect()
        assert isinstance(sc._executors.backend, ProcessBackend)
    after = {p.pid for p in multiprocessing.active_children()}
    assert after <= before, f"worker processes leaked: {after - before}"


@needs_shm
def test_make_backend_threads_has_no_arena():
    backend = make_backend("threads", total_slots=2, num_workers=2, metrics=None)
    try:
        assert not backend.supports_kernel_offload
        assert getattr(backend, "arena", None) is None
    finally:
        backend.shutdown()
    with pytest.raises(ValueError):
        make_backend("green-threads", total_slots=2, num_workers=2, metrics=None)


# ----------------------------------------------------------------------
# serialized shuffle: physical-byte dedup
# ----------------------------------------------------------------------
@needs_shm
def test_serialized_shuffle_reduces_total_bytes_written():
    """The IM pivot fan-out stages each tile once physically — the
    acceptance criterion's shuffle ``total_bytes_written`` drop."""
    spec = FloydWarshallGep()
    table = fw_table(48, seed=2)
    written = {}
    out = {}
    for backend in BACKENDS:
        with SparkleContext(2, 2, backend=backend) as sc:
            solver = GepSparkSolver(
                spec, sc, r=4, kernel=make_kernel(spec, "iterative"), strategy="im"
            )
            out[backend], _ = solver.solve(table.copy())
            written[backend] = sc._shuffle_manager.total_bytes_written
            if backend == "processes":
                assert sc.metrics.serialized_shuffle_writes > 0
                assert sc.metrics.shuffle_bytes_deduplicated > 0
    assert np.array_equal(out["threads"], out["processes"])
    assert written["processes"] < written["threads"]


def test_pack_map_output_dedups_fanned_out_buffers():
    tile = np.arange(64, dtype=np.float64).reshape(8, 8)
    buckets = {rp: [((0, rp), ("u", tile))] for rp in range(5)}
    logical = tile.nbytes * 5
    smo = pack_map_output(buckets, logical)
    assert smo.logical_nbytes == logical
    # one physical buffer for five logical destinations
    assert len(smo.pool) == 1
    assert smo.nbytes < logical
    for rp in range(5):
        [(key, (role, arr))] = smo.bucket(rp)
        assert key == (0, rp) and role == "u"
        assert np.array_equal(arr, tile)
        assert not arr.flags.writeable, "reconstructed tiles must be read-only"
    assert smo.bucket(99) == []


def test_serialized_map_output_survives_spill_pickle():
    """Spilling a staged output pickles it; the pool materializes."""
    a = np.random.default_rng(0).random((6, 6))
    b = np.random.default_rng(1).random((6, 6))
    smo = pack_map_output({0: [("k0", a)], 1: [("k1", b), ("k0b", a)]}, 3 * a.nbytes)
    revived = pickle.loads(pickle.dumps(smo))
    assert isinstance(revived, SerializedMapOutput)
    [(k0, ra)] = revived.bucket(0)
    assert k0 == "k0" and np.array_equal(ra, a)
    [(k1, rb), (k0b, ra2)] = revived.bucket(1)
    assert np.array_equal(rb, b) and np.array_equal(ra2, a)
    assert revived.nbytes == smo.nbytes


# ----------------------------------------------------------------------
# segment arena
# ----------------------------------------------------------------------
@needs_shm
class TestSegmentArena:
    def test_share_array_roundtrip_readonly(self):
        arena = SegmentArena()
        try:
            src = np.random.default_rng(3).random((5, 7))
            view = arena.share_array(src)
            assert isinstance(view, ShmArray)
            assert view.shm_name is not None
            assert not view.flags.writeable
            assert np.array_equal(view, src)
            # already-shared arrays pass through without a new segment
            again = arena.share_array(view)
            assert again.shm_name == view.shm_name
            assert arena.num_segments == 1
        finally:
            del view, again
            arena.cleanup()
        assert arena.num_segments == 0

    def test_derived_views_do_not_claim_a_segment(self):
        """Only the arena's exact full-segment view carries ``shm_name``;
        slices and arithmetic results must not pretend to be shareable."""
        arena = SegmentArena()
        try:
            view = arena.share_array(np.ones((4, 4)))
            assert view[1:, :].shm_name is None
            assert (view + 1).shm_name is None
            assert pickle.loads(pickle.dumps(np.asarray(view) + 0)).base is None
        finally:
            del view
            arena.cleanup()

    def test_scratch_sweep_reclaims_orphans(self):
        arena = SegmentArena()
        name, staged = arena.stage_scratch(np.zeros((3, 3)))
        staged[...] = 7.0  # scratch views are writable
        assert arena.num_segments == 1
        del staged
        assert arena.sweep_scratch() == 1
        assert arena.num_segments == 0
        assert not arena.free(name), "already freed"
        assert glob.glob(f"/dev/shm/{arena.prefix}*") == []

    def test_slab_packing_bounds_segment_count(self):
        """Many small tiles share one mapping (and one descriptor/fd) —
        the defense against per-tile fd exhaustion on big solves."""
        arena = SegmentArena()
        try:
            views = [
                arena.share_array(np.full((8, 8), float(i))) for i in range(50)
            ]
            assert arena.num_segments == 1
            names = {v.shm_name for v in views}
            assert len(names) == 1
            offsets = [v.shm_offset for v in views]
            assert len(set(offsets)) == 50
            assert all(o % 64 == 0 for o in offsets)
            for i, v in enumerate(views):
                assert np.all(np.asarray(v) == float(i))
        finally:
            del views
            arena.cleanup()

    def test_release_view_refcounts_slabs(self):
        """A slab is unlinked when full and empty of live allocations;
        released views stay readable (the mapping is pinned)."""
        arena = SegmentArena(slab_bytes=1024)
        big = np.arange(512, dtype=np.float64)  # 4 KB > slab -> own slab
        v1 = arena.share_array(big)
        v2 = arena.share_array(np.ones(512))  # forces a second slab
        assert arena.num_segments == 2
        assert arena.is_live(v1.shm_name)
        assert arena.release_view(v1)
        # v1's slab was full (no longer open) and now empty -> gone
        assert not arena.is_live(v1.shm_name)
        assert arena.num_segments == 1
        assert np.array_equal(v1, big), "released view must stay readable"
        # v2's slab is still the open slab: released but retained
        assert arena.release_view(v2)
        assert arena.num_segments == 1
        assert arena.cleanup() == 1
        assert glob.glob(f"/dev/shm/{arena.prefix}*") == []

    def test_release_nested_mirrors_share_nested(self):
        arena = SegmentArena(slab_bytes=128)
        a, b = np.ones((4, 4)), np.zeros((4, 4))  # 128 B each: one per slab
        shared = share_nested(arena, [("k1", a), ("k2", b), ("k1b", a)])
        assert shared[0][1] is shared[2][1], "fan-out dedups on the way in"
        assert arena.num_segments == 2
        # the fanned-out array counts once: one release per allocation
        assert release_nested(arena, shared) == 2
        # a's slab was full -> reclaimed at once; b's is the open slab
        assert arena.num_segments == 1
        assert arena.cleanup() == 1
        assert glob.glob(f"/dev/shm/{arena.prefix}*") == []

    def test_block_retirement_releases_segments(self):
        """Cache eviction gives shm pages back mid-run (not at stop)."""
        from repro.sparkle.storage import BlockManager

        arena = SegmentArena(slab_bytes=512)
        bm = BlockManager(capacity_bytes=4096, arena=arena)
        for i in range(10):
            bm.put(0, i, [(i, np.full((8, 8), float(i)))])  # 512 B payload
        assert bm.evictions > 0
        # every evicted block's slab was reclaimed; only slabs backing
        # still-cached blocks (plus the open slab) remain
        assert arena.num_segments <= bm.num_blocks + 1
        arena.cleanup()

    def test_share_nested_dedups_by_identity(self):
        arena = SegmentArena()
        try:
            pivot = np.ones((4, 4))
            items = [
                ((0, 1), ("u", pivot)),
                ((0, 2), ("u", pivot)),
                {"w": pivot, "meta": "keep-me"},
            ]
            shared = share_nested(arena, items)
            assert arena.num_segments == 1, "fan-out should share one segment"
            assert shared[2]["meta"] == "keep-me"
            a0 = shared[0][1][1]
            assert a0.shm_name == shared[1][1][1].shm_name == shared[2]["w"].shm_name
            assert np.array_equal(a0, pivot)
            obj_arr = np.array([None, "x"], dtype=object)
            assert share_nested(arena, obj_arr) is obj_arr
        finally:
            del shared, a0
            arena.cleanup()


# ----------------------------------------------------------------------
# copy-on-write tiles
# ----------------------------------------------------------------------
class TestCowTile:
    def test_unowned_copies(self):
        src = np.ones((3, 3))
        tile = CowTile(src)
        out = tile.writable()
        assert out is not src
        out[0, 0] = 9.0
        assert src[0, 0] == 1.0

    def test_owned_hands_over_and_meters(self):
        class M:
            copies_eliminated = 0

        src = np.ones((3, 3))
        tile = CowTile(src, owned=True)
        m = M()
        out = tile.writable(m)
        assert out is src
        assert m.copies_eliminated == 1
        # ownership is consumed: a second writable() must copy
        out2 = tile.writable(m)
        assert out2 is not src
        assert m.copies_eliminated == 1

    def test_readonly_array_never_claims_ownership(self):
        src = np.ones((2, 2))
        src.flags.writeable = False
        tile = CowTile(src, owned=True)
        assert not tile.owned
        out = tile.writable()
        assert out is not src and out.flags.writeable


# ----------------------------------------------------------------------
# copy audit: nothing RDD-visible is ever mutated (either backend)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "backend",
    ["threads", pytest.param("processes", marks=needs_shm)],
)
@pytest.mark.parametrize("strategy", ["im", "cb", "bcast"])
def test_solve_never_mutates_input_or_engine_state(backend, strategy):
    """Aliasing regression for the copy audit: the input table is
    untouched and a second solve over the same context (hitting any
    cached partitions / shared storage / broadcast state the first left
    behind) reproduces the first bit-for-bit."""
    spec = FloydWarshallGep()
    table = fw_table(16, seed=9)
    pristine = table.copy()
    with SparkleContext(2, 2, backend=backend) as sc:
        solver = GepSparkSolver(
            spec, sc, r=4, kernel=make_kernel(spec, "iterative"), strategy=strategy
        )
        out1, _ = solver.solve(table)
        assert np.array_equal(table, pristine), "solver mutated its input"
        out2, _ = solver.solve(table)
    assert np.array_equal(table, pristine)
    assert np.array_equal(out1, out2), "engine state corrupted between solves"


@pytest.mark.parametrize(
    "backend",
    ["threads", pytest.param("processes", marks=needs_shm)],
)
def test_cached_partitions_survive_downstream_mutation_attempts(backend):
    """Zero-copy transport must not let a consumer reach cached arrays:
    a map stage that mutates its (copied) tiles leaves the cache intact."""
    rng = np.random.default_rng(4)
    blocks = [rng.random((4, 4)) for _ in range(6)]
    with SparkleContext(2, 2, backend=backend) as sc:
        cached = sc.parallelize(list(enumerate(blocks)), 3).cache()
        first = dict(cached.collect())

        def smash(kv):
            k, arr = kv
            out = np.array(arr)  # consumers copy before writing (contract)
            out[...] = -1.0
            return (k, out)

        assert all(np.all(v == -1.0) for _, v in cached.map(smash).collect())
        second = dict(cached.collect())
    for k in first:
        assert np.array_equal(first[k], blocks[k])
        assert np.array_equal(second[k], blocks[k])


# ----------------------------------------------------------------------
# perf gate (multicore hosts only; recorded by `make bench` elsewhere)
# ----------------------------------------------------------------------
@pytest.mark.perf
@pytest.mark.slow
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="speedup claim needs >= 4 cores"
)
@needs_shm
def test_process_backend_faster_on_multicore_host():
    import time

    spec = FloydWarshallGep()
    table = fw_table(512, seed=0)
    walls = {}
    for backend in BACKENDS:
        with SparkleContext(4, 2, backend=backend) as sc:
            solver = GepSparkSolver(
                spec, sc, r=8, kernel=make_kernel(spec, "iterative"), strategy="im"
            )
            t0 = time.perf_counter()
            out, _ = solver.solve(table.copy())
            walls[backend] = time.perf_counter() - t0
    # Generous bound: any real win keeps this comfortably true, while
    # scheduler noise on a loaded CI box does not flake it.
    assert walls["processes"] < walls["threads"] * 1.1
