"""Extensions: R-Kleene, predecessors, parenthesis DP, checkpointing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import floyd_warshall, transitive_closure
from repro.core.parenthesis import (
    extract_splits,
    matrix_chain_order,
    optimal_bst_cost,
    parenthesis_solve,
    render_parenthesization,
)
from repro.core.predecessors import (
    floyd_warshall_predecessors,
    path_from_predecessors,
)
from repro.core.rkleene import (
    apsp_rkleene,
    rkleene_closure,
    transitive_closure_rkleene,
)
from repro.semiring import MaxPlus
from repro.sparkle import SparkleContext
from repro.workloads import grid_road_network, random_digraph_weights, weights_to_boolean


class TestRKleene:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 40, 64])
    @pytest.mark.parametrize("base", [1, 4, 16])
    def test_apsp_equals_floyd_warshall(self, n, base):
        w = random_digraph_weights(n, 0.3, seed=n + base)
        np.testing.assert_allclose(
            apsp_rkleene(w, base_size=base), floyd_warshall(w)
        )

    @pytest.mark.parametrize("n", [3, 10, 33])
    def test_boolean_closure(self, n):
        adj = weights_to_boolean(random_digraph_weights(n, 0.15, seed=n))
        np.testing.assert_array_equal(
            transitive_closure_rkleene(adj, base_size=4), transitive_closure(adj)
        )

    def test_closure_has_reflexive_diagonal(self):
        w = random_digraph_weights(12, 0.3, seed=1)
        out = rkleene_closure(w, "tropical", base_size=4)
        np.testing.assert_allclose(np.diag(out), 0.0)

    def test_maxplus_closure_on_dag(self):
        # Longest paths on a DAG via the dual semiring.
        n = 10
        rng = np.random.default_rng(3)
        w = np.full((n, n), -np.inf)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.5:
                    w[i, j] = rng.uniform(1, 5)
        out = rkleene_closure(w, MaxPlus(), base_size=4)
        # Compare with DP over topological order.
        expect = w.copy()
        np.fill_diagonal(expect, 0.0)
        for i in range(n - 1, -1, -1):
            for j in range(i + 1, n):
                for k in range(i + 1, j):
                    expect[i, j] = max(expect[i, j], w[i, k] + expect[k, j])
        np.testing.assert_allclose(out[np.triu_indices(n, 1)],
                                   expect[np.triu_indices(n, 1)])

    def test_validation(self):
        with pytest.raises(ValueError):
            rkleene_closure(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            rkleene_closure(np.zeros((2, 2)), base_size=0)


@given(
    n=st.integers(min_value=1, max_value=24),
    seed=st.integers(min_value=0, max_value=100),
    base=st.sampled_from([1, 2, 5, 8]),
)
@settings(max_examples=30, deadline=None)
def test_property_rkleene_equals_fw(n, seed, base):
    w = random_digraph_weights(n, 0.35, seed=seed)
    np.testing.assert_allclose(apsp_rkleene(w, base_size=base), floyd_warshall(w))


class TestPredecessors:
    def test_paths_are_optimal(self):
        w = grid_road_network(5, 5, seed=2)
        d, pred = floyd_warshall_predecessors(w)
        np.testing.assert_allclose(d, floyd_warshall(w))
        for src, dst in [(0, 24), (24, 0), (3, 20)]:
            path = path_from_predecessors(pred, src, dst)
            assert path[0] == src and path[-1] == dst
            total = sum(w[a, b] for a, b in zip(path, path[1:]))
            assert total == pytest.approx(d[src, dst])

    def test_trivial_and_unreachable(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0.0)
        w[0, 1] = 2.0
        d, pred = floyd_warshall_predecessors(w)
        assert path_from_predecessors(pred, 1, 1) == [1]
        assert path_from_predecessors(pred, 0, 1) == [0, 1]
        with pytest.raises(ValueError):
            path_from_predecessors(pred, 1, 0)

    def test_negative_cycle_rejected(self):
        w = np.array([[0.0, 1.0], [-3.0, 0.0]])
        with pytest.raises(ValueError):
            floyd_warshall_predecessors(w)

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            floyd_warshall_predecessors(np.zeros((2, 3)))
        _, pred = floyd_warshall_predecessors(np.zeros((2, 2)))
        with pytest.raises(IndexError):
            path_from_predecessors(pred, 0, 9)

    @given(
        n=st.integers(min_value=2, max_value=15),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_every_reachable_pair_has_valid_path(self, n, seed):
        w = random_digraph_weights(n, 0.3, seed=seed)
        d, pred = floyd_warshall_predecessors(w)
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(d[i, j]):
                    path = path_from_predecessors(pred, i, j)
                    total = sum(w[a, b] for a, b in zip(path, path[1:]))
                    assert total == pytest.approx(d[i, j])


def _brute_force_chain(dims):
    """All parenthesizations by recursion (exponential; tiny n only)."""

    def best(i, j):
        if j - i == 1:
            return 0.0
        return min(
            best(i, k) + best(k, j) + dims[i] * dims[k] * dims[j]
            for k in range(i + 1, j)
        )

    return best(0, len(dims) - 1)


class TestParenthesis:
    @pytest.mark.parametrize("method", ["iterative", "recursive"])
    def test_matrix_chain_matches_brute_force(self, method):
        rng = np.random.default_rng(4)
        for _ in range(10):
            m = rng.integers(2, 7)
            dims = rng.integers(1, 12, size=m + 1).tolist()
            cost, bracketing = matrix_chain_order(dims, method=method)
            assert cost == pytest.approx(_brute_force_chain(dims))
            assert bracketing.count("A") == m

    def test_clrs_textbook_instance(self):
        # CLRS 15.2: dims (30,35,15,5,10,20,25) -> 15125.
        cost, _ = matrix_chain_order([30, 35, 15, 5, 10, 20, 25])
        assert cost == 15125

    @pytest.mark.parametrize("method", ["iterative", "recursive"])
    def test_methods_agree(self, method):
        rng = np.random.default_rng(5)
        dims = rng.integers(1, 9, size=9).tolist()
        it, _ = matrix_chain_order(dims, method="iterative")
        other, _ = matrix_chain_order(dims, method=method)
        assert it == pytest.approx(other)

    def test_optimal_bst_known_instance(self):
        # Single key: one comparison.
        assert optimal_bst_cost([1.0]) == pytest.approx(1.0)
        # Three uniform keys, balanced tree: 1*1 + 2*2 = 5.
        assert optimal_bst_cost([1.0, 1.0, 1.0]) == pytest.approx(5.0)
        # Heavily skewed: the hot key must be the root.
        assert optimal_bst_cost([100.0, 1.0]) == pytest.approx(100.0 + 2.0)

    def test_optimal_bst_methods_agree(self):
        rng = np.random.default_rng(6)
        freq = rng.uniform(0.1, 2.0, size=12)
        assert optimal_bst_cost(freq, method="recursive") == pytest.approx(
            optimal_bst_cost(freq, method="iterative")
        )

    def test_extract_splits_covers_tree(self):
        _, split = matrix_chain_order([5, 4, 3, 2, 1])[1], None
        c, split = parenthesis_solve(
            5, lambda i, ks, j: 0.0, method="iterative"
        )
        triples = extract_splits(split, 0, 4)
        assert len(triples) == 3  # n-2 internal merges

    def test_render_counts_leaves(self):
        _, split = parenthesis_solve(4, lambda i, ks, j: 0.0)
        text = render_parenthesization(split, 0, 3)
        assert text.count("A") == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            parenthesis_solve(1, lambda i, ks, j: 0.0)
        with pytest.raises(ValueError):
            parenthesis_solve(4, lambda i, ks, j: 0.0, method="magic")
        with pytest.raises(ValueError):
            matrix_chain_order([5])
        with pytest.raises(ValueError):
            matrix_chain_order([5, -1])
        with pytest.raises(ValueError):
            optimal_bst_cost([])
        with pytest.raises(ValueError):
            optimal_bst_cost([-1.0])


class TestCheckpointing:
    def test_checkpoint_truncates_lineage(self):
        with SparkleContext(2, 2) as sc:
            rdd = sc.parallelize(range(8), 2)
            for _ in range(4):
                rdd = rdd.map(lambda x: x + 1)
            deep = rdd.to_debug_string().count("\n")
            cp = rdd.checkpoint()
            assert cp.to_debug_string().count("\n") == 0
            assert cp.collect() == [x + 4 for x in range(8)]

    def test_driver_checkpoint_every(self):
        from repro.core import floyd_warshall as fw

        w = random_digraph_weights(18, 0.3, seed=9)
        ref = fw(w)
        with SparkleContext(2, 2) as sc:
            got = fw(w, engine="spark", sc=sc, r=6, strategy="cb",
                     checkpoint_every=2)
        np.testing.assert_allclose(got, ref)

    def test_checkpoint_every_validation(self):
        from repro.core.dpspark import GepSparkSolver, make_kernel
        from repro.core.gep import FloydWarshallGep

        spec = FloydWarshallGep()
        with SparkleContext(1, 1) as sc:
            with pytest.raises(ValueError):
                GepSparkSolver(
                    spec, sc, r=2, kernel=make_kernel(spec, "iterative"),
                    checkpoint_every=0,
                )

    def test_checkpoint_preserves_partitioner(self):
        from repro.sparkle import HashPartitioner

        with SparkleContext(2, 2) as sc:
            p = HashPartitioner(4)
            kv = sc.parallelize([(i, i) for i in range(8)], 2).partitionBy(
                partitioner=p
            )
            cp = kv.checkpoint()
            assert cp.partitioner == p
            assert cp.partitionBy(partitioner=p) is cp
