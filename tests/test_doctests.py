"""Docstring examples stay executable (doctest over the public modules)."""

import doctest

import pytest

import repro
import repro.core.fwapsp
import repro.core.gaussian
import repro.sparkle.context

MODULES = [
    repro,
    repro.core.fwapsp,
    repro.core.gaussian,
    repro.sparkle.context,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module.__name__} has no doctests"
    assert result.failed == 0
