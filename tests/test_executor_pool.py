"""ExecutorPool lifecycle: prompt shutdown and last-executor protection."""

import time
import warnings

import pytest

from repro.sparkle import EngineMetrics, LastExecutorProtectedWarning
from repro.sparkle.executors import ExecutorPool


class TestShutdown:
    def test_shutdown_cancels_queued_stragglers(self):
        # One slot: the first task occupies it while the rest queue.  A
        # shutdown must cancel the queue instead of draining 10 s of
        # sleeps (the pre-fix behavior of shutdown(wait=True)).
        pool = ExecutorPool(1, 1)
        executor = pool._ensure_pool()
        executor.submit(time.sleep, 0.2)
        queued = [executor.submit(time.sleep, 10.0) for _ in range(5)]
        start = time.perf_counter()
        pool.shutdown()
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0  # joined the running task, not the queue
        assert all(f.cancelled() for f in queued)

    def test_shutdown_is_idempotent(self):
        pool = ExecutorPool(2, 1)
        pool.run_tasks([lambda: 1, lambda: 2])
        pool.shutdown()
        pool.shutdown()


class TestLastExecutorProtection:
    def test_refusal_warns_and_meters(self):
        metrics = EngineMetrics()
        pool = ExecutorPool(2, 1, metrics=metrics)
        assert pool.blacklist(0) is True
        with pytest.warns(LastExecutorProtectedWarning, match="executor 1"):
            assert pool.blacklist(1) is False
        assert metrics.last_executor_protected == 1
        assert pool.healthy_executors == (1,)
        # refusal shows up on the recovery report surface
        assert metrics.recovery_summary()["last_executor_protected"] == 1

    def test_single_executor_pool_is_always_protected(self):
        metrics = EngineMetrics()
        pool = ExecutorPool(1, 2, metrics=metrics)
        with pytest.warns(LastExecutorProtectedWarning):
            assert pool.blacklist(0) is False
        assert metrics.last_executor_protected == 1

    def test_already_blacklisted_is_silent(self):
        pool = ExecutorPool(3, 1, metrics=EngineMetrics())
        assert pool.blacklist(0) is True
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert pool.blacklist(0) is False  # no warning: just a repeat

    def test_no_metrics_still_warns(self):
        pool = ExecutorPool(1, 1)
        with pytest.warns(LastExecutorProtectedWarning):
            assert pool.blacklist(0) is False
