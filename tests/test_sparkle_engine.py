"""sparkle engine: scheduler, shuffle, metrics, failure recovery,
broadcast, storage capacities."""

import threading
import time

import numpy as np
import pytest

from repro.sparkle import (
    BlockNotFoundError,
    FaultPlan,
    FaultSpec,
    JobAborted,
    ShuffleFetchFailed,
    SparkleContext,
    StorageCapacityError,
    TaskError,
)
from repro.sparkle.executors import ExecutorPool
from repro.sparkle.shuffle import ShuffleManager
from repro.util import sizeof_block


class TestStageStructure:
    def test_narrow_only_job_is_one_stage(self):
        with SparkleContext(2, 2) as sc:
            sc.parallelize(range(8), 4).map(lambda x: x + 1).collect()
            job = sc.metrics.jobs[-1]
            assert job.num_stages == 1
            assert job.stages[0].kind == "result"

    def test_shuffle_splits_stages(self):
        with SparkleContext(2, 2) as sc:
            (
                sc.parallelize([(i % 2, i) for i in range(8)], 4)
                .reduceByKey(lambda a, b: a + b, 3)
                .collect()
            )
            job = sc.metrics.jobs[-1]
            assert job.num_stages == 2
            kinds = [s.kind for s in job.stages]
            assert kinds == ["shuffle-map", "result"]
            assert job.stages[0].num_tasks == 4  # parent partitions
            assert job.stages[1].num_tasks == 3  # reducer partitions

    def test_chained_shuffles(self):
        with SparkleContext(2, 2) as sc:
            rdd = (
                sc.parallelize([(i % 4, i) for i in range(16)], 4)
                .reduceByKey(lambda a, b: a + b, 4)
                .map(lambda kv: (kv[0] % 2, kv[1]))
                .reduceByKey(lambda a, b: a + b, 2)
            )
            got = dict(rdd.collect())
            assert got == {0: sum(i for i in range(16) if i % 4 in (0, 2)),
                           1: sum(i for i in range(16) if i % 4 in (1, 3))}
            assert sc.metrics.jobs[-1].num_stages == 3

    def test_shuffle_reuse_across_jobs(self):
        """Spark's stage skipping: a second action on the same shuffled
        RDD must not re-run the map stage."""
        with SparkleContext(2, 2) as sc:
            shuffled = (
                sc.parallelize([(i % 2, i) for i in range(8)], 4)
                .reduceByKey(lambda a, b: a + b, 2)
            )
            shuffled.collect()
            first_stages = sc.metrics.jobs[-1].num_stages
            shuffled.count()
            second_stages = sc.metrics.jobs[-1].num_stages
            assert first_stages == 2
            assert second_stages == 1  # map stage skipped

    def test_shared_parent_stage_runs_once(self):
        with SparkleContext(2, 2) as sc:
            base = (
                sc.parallelize([(i % 2, i) for i in range(8)], 2)
                .reduceByKey(lambda a, b: a + b, 2)
            )
            merged = base.union(base.mapValues(lambda v: -v))
            merged.collect()
            job = sc.metrics.jobs[-1]
            assert job.num_stages == 2  # one shared map stage + result


class TestShuffleAccounting:
    def test_bytes_metered(self):
        with SparkleContext(2, 2) as sc:
            arr = np.ones((16, 16))
            rdd = sc.parallelize([(i, arr) for i in range(4)], 2).partitionBy(4)
            rdd.collect()
            expect = 4 * (16 + sizeof_block(arr))
            assert sc.metrics.total_shuffle_bytes == expect

    def test_collect_bytes_metered(self):
        with SparkleContext(2, 2) as sc:
            arr = np.ones(32)
            sc.parallelize([arr, arr], 2).collect()
            assert sc.metrics.jobs[-1].collect_bytes == 2 * arr.nbytes

    def test_capacity_limit_enforced(self):
        with SparkleContext(
            2, 2, shuffle_capacity_bytes=100
        ) as sc:
            big = np.ones(1000)
            rdd = sc.parallelize([(1, big)], 1).partitionBy(2)
            with pytest.raises(TaskError) as err:
                rdd.collect()
            assert isinstance(err.value.__cause__, StorageCapacityError)

    def test_manager_fetch_order_is_map_partition_order(self):
        sm = ShuffleManager()
        sid = sm.new_shuffle_id()
        sm.write(sid, 1, {0: [("k", "late")]})
        sm.write(sid, 0, {0: [("k", "early")]})
        items, _nbytes, _remote = sm.fetch(sid, 0, 2)
        assert [v for _k, v in items] == ["early", "late"]

    def test_manager_missing_output_raises_fetch_failed(self):
        sm = ShuffleManager()
        sid = sm.new_shuffle_id()
        sm.write(sid, 0, {0: []})
        with pytest.raises(ShuffleFetchFailed) as err:
            sm.fetch(sid, 0, 2)
        assert err.value.shuffle_id == sid
        assert err.value.missing == (1,)

    def test_manager_release_frees_bytes(self):
        sm = ShuffleManager()
        sid = sm.new_shuffle_id()
        sm.write(sid, 0, {0: [(1, np.ones(10))]})
        assert sm.live_bytes() > 0
        sm.release(sid)
        assert sm.live_bytes() == 0


class TestFailureRecovery:
    def test_injected_failure_recovers_via_lineage(self):
        # Every first attempt dies; lineage recomputation must still
        # produce the exact fault-free answer.
        plan = FaultPlan(7, [FaultSpec("kill", rate=1.0)])
        with SparkleContext(2, 2, fault_plan=plan) as sc:
            got = dict(
                sc.parallelize([(i % 2, i) for i in range(8)], 3)
                .reduceByKey(lambda a, b: a + b, 2)
                .collect()
            )
            assert got == {0: 0 + 2 + 4 + 6, 1: 1 + 3 + 5 + 7}
            assert sc.metrics.tasks_retried >= 4
            assert plan.fired()["kill"] >= 4

    def test_legacy_injector_hook_still_works(self):
        killed = set()

        def injector(stage, part, attempt):
            if attempt == 1 and (stage, part) not in killed:
                killed.add((stage, part))
                return True
            return False

        with SparkleContext(2, 2, failure_injector=injector) as sc:
            assert sc.parallelize(range(4), 2).map(lambda x: x * 2).collect() == [
                0, 2, 4, 6,
            ]
            assert sc.metrics.tasks_retried == 2

    def test_persistent_failure_aborts(self):
        plan = FaultPlan(3, [FaultSpec("kill", rate=1.0, max_attempt=99)])
        with SparkleContext(
            1, 1, fault_plan=plan, max_task_retries=2, blacklist_threshold=0
        ) as sc:
            with pytest.raises(JobAborted):
                sc.parallelize([1], 1).collect()

    def test_user_exception_not_retried(self):
        attempts = []

        def boom(x):
            attempts.append(x)
            raise RuntimeError("user bug")

        with SparkleContext(1, 1) as sc:
            with pytest.raises(TaskError):
                sc.parallelize([1], 1).map(boom).collect()
        assert len(attempts) == 1


class TestExecutorPoolSettle:
    """``run_tasks``'s contract: exceptions propagate only after every
    submitted task settles, so a failing task cannot leave straggler
    threads mutating shared (shuffle) state after the raise."""

    def test_failure_settles_before_propagating(self):
        pool = ExecutorPool(2, 1)
        writes: list[int] = []
        lock = threading.Lock()
        started = threading.Event()

        def sleeper(i):
            def run():
                started.set()
                time.sleep(0.2)
                with lock:
                    writes.append(i)
            return run

        def failer():
            started.wait(2.0)  # guarantee a concurrent mutator is running
            raise RuntimeError("boom")

        try:
            with pytest.raises(RuntimeError, match="boom"):
                pool.run_tasks([sleeper(1), failer, sleeper(2), sleeper(3)])
            settled = list(writes)
            # Nothing may keep mutating after the exception surfaced.
            time.sleep(0.3)
            assert writes == settled
        finally:
            pool.shutdown()

    def test_pending_tasks_cancelled_on_failure(self):
        # 2 slots, 1 instant failure, 5 slow writers: the writers that
        # have not started when the failure surfaces must be cancelled,
        # not run to completion.
        pool = ExecutorPool(2, 1)
        writes: list[int] = []
        lock = threading.Lock()

        def sleeper(i):
            def run():
                time.sleep(0.3)
                with lock:
                    writes.append(i)
            return run

        def failer():
            raise RuntimeError("early")

        try:
            with pytest.raises(RuntimeError, match="early"):
                pool.run_tasks([failer] + [sleeper(i) for i in range(5)])
            assert len(writes) < 5  # at least one pending task never ran
        finally:
            pool.shutdown()

    def test_sequential_mode_runs_in_order(self):
        pool = ExecutorPool(2, 2)
        order: list[int] = []

        def task(i):
            def run():
                order.append(i)
                return i
            return run

        try:
            assert pool.run_tasks([task(i) for i in range(6)], sequential=True) == list(
                range(6)
            )
            assert order == list(range(6))
        finally:
            pool.shutdown()

    def test_blacklist_remaps_placement(self):
        pool = ExecutorPool(3, 1)
        assert [pool.executor_for(p) for p in range(3)] == [0, 1, 2]
        assert pool.blacklist(1) is True
        assert pool.blacklist(1) is False  # already gone
        assert pool.healthy_executors == (0, 2)
        assert all(pool.executor_for(p) in (0, 2) for p in range(8))
        # the last healthy executor can never be blacklisted
        assert pool.blacklist(0) is True
        assert pool.blacklist(2) is False
        assert pool.healthy_executors == (2,)


class TestBroadcastAndStorage:
    def test_broadcast_value_and_bytes(self):
        with SparkleContext(4, 1) as sc:
            arr = np.ones(128)
            bc = sc.broadcast(arr)
            out = sc.parallelize(range(4), 2).map(lambda x: bc.value.sum()).collect()
            assert out == [128.0] * 4
            assert sc.metrics.broadcast_bytes == arr.nbytes * 4

    def test_broadcast_destroy(self):
        with SparkleContext(2, 1) as sc:
            bc = sc.broadcast([1, 2])
            bc.destroy()
            with pytest.raises(RuntimeError):
                _ = bc.value

    def test_shared_storage_roundtrip_and_accounting(self):
        with SparkleContext(2, 1) as sc:
            arr = np.ones((8, 8))
            sc.shared_storage.put(("pivot", 0), arr)
            got = sc.shared_storage.get(("pivot", 0))
            np.testing.assert_array_equal(got, arr)
            assert sc.metrics.storage_bytes_written == arr.nbytes
            assert sc.metrics.storage_bytes_read == arr.nbytes
            assert sc.shared_storage.contains(("pivot", 0))
            assert len(sc.shared_storage) == 1

    def test_shared_storage_capacity(self):
        with SparkleContext(1, 1, storage_capacity_bytes=64) as sc:
            with pytest.raises(StorageCapacityError):
                sc.shared_storage.put("big", np.ones(100))

    def test_shared_storage_missing_key(self):
        with SparkleContext(1, 1) as sc:
            # typed (and still a KeyError for dict-idiom callers)
            with pytest.raises(BlockNotFoundError):
                sc.shared_storage.get("nope")
            with pytest.raises(KeyError):
                sc.shared_storage.get("nope")

    def test_shared_storage_live_bytes_running_total(self):
        with SparkleContext(1, 1) as sc:
            storage = sc.shared_storage
            a, b = np.ones(8), np.ones(64)
            storage.put("x", a)
            storage.put("y", a)
            assert storage.live_bytes == 2 * a.nbytes
            storage.put("x", b)  # overwrite releases the old bytes
            assert storage.live_bytes == a.nbytes + b.nbytes
            storage.clear()
            assert storage.live_bytes == 0

    def test_block_manager_live_bytes_tracks_eviction(self):
        from repro.sparkle.storage import BlockManager

        arr = np.ones(64)
        blk = sizeof_block(arr)  # puts size each item, not the list
        bm = BlockManager(capacity_bytes=3 * blk)
        for rdd_id in range(5):
            bm.put(rdd_id, 0, [arr])
        assert bm.live_bytes <= 3 * blk
        survivors = [i for i in range(5) if bm.contains(i, 0)]
        assert bm.live_bytes == len(survivors) * blk
        bm.put(1, 0, [arr])  # re-insert then overwrite in place
        before = bm.live_bytes
        bm.put(1, 0, [arr])
        assert bm.live_bytes == before
        bm.evict_rdd(1)
        assert bm.live_bytes == before - blk


class TestContextLifecycle:
    def test_stopped_context_rejects_work(self):
        sc = SparkleContext(1, 1)
        sc.stop()
        with pytest.raises(RuntimeError):
            sc.parallelize([1])

    def test_default_parallelism_rule(self):
        with SparkleContext(4, 8) as sc:
            assert sc.default_parallelism == 2 * 4 * 8  # paper's 2x cores
        with SparkleContext(2, 2, default_parallelism=5) as sc:
            assert sc.parallelize(range(20)).getNumPartitions() == 5

    def test_total_cores(self):
        with SparkleContext(3, 4) as sc:
            assert sc.total_cores == 12

    def test_metrics_summary_keys(self):
        with SparkleContext(1, 1) as sc:
            sc.parallelize([1], 1).collect()
            summary = sc.metrics.summary()
            for key in ("jobs", "stages", "tasks", "shuffle_bytes",
                        "remote_shuffle_bytes"):
                assert key in summary

    def test_remote_shuffle_accounting(self):
        import numpy as np

        # 1 executor: everything local.  4 executors: most fetches cross.
        def run(executors):
            with SparkleContext(executors, 1) as sc:
                data = [(i, np.ones(32)) for i in range(16)]
                sc.parallelize(data, 4).partitionBy(4).collect()
                return (
                    sc.metrics.total_remote_shuffle_bytes,
                    sc.metrics.total_shuffle_bytes,
                )

        remote1, total1 = run(1)
        assert remote1 == 0 and total1 > 0
        remote4, total4 = run(4)
        assert 0 < remote4 <= total4


class TestDeterminism:
    @pytest.mark.parametrize("executors,cores", [(1, 1), (2, 2), (4, 4)])
    def test_result_independent_of_cluster_shape(self, executors, cores):
        def run():
            with SparkleContext(executors, cores) as sc:
                return (
                    sc.parallelize([(i % 5, float(i)) for i in range(50)], 7)
                    .reduceByKey(lambda a, b: a + b, 4)
                    .collect()
                )

        assert sorted(run()) == sorted(
            [(k, float(sum(i for i in range(50) if i % 5 == k))) for k in range(5)]
        )

    def test_repeated_runs_identical(self):
        def run():
            with SparkleContext(3, 2) as sc:
                return (
                    sc.parallelize([(i % 4, i) for i in range(40)], 8)
                    .groupByKey(4)
                    .mapValues(tuple)
                    .collect()
                )

        assert run() == run()
