"""Gang stages: barrier dispatch of whole kernel waves.

With ``gang_stages=True`` a batched kernel wave is spread across the
entire worker pool and settled as one barrier gang (JAMPI-style): if
any member fails, the *whole* wave fails and retries through the
scheduler's existing attempt/backoff machinery — all-or-nothing, never
a half-applied wave.  The invariants mirror the supervision suite: a
gang subjected to real SIGKILL/SIGSTOP worker faults must finish
bit-identical to a fault-free run, meter its retries, and leak neither
worker processes nor ``/dev/shm`` segments.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import FaultPlan, SparkleContext
from repro.sparkle.serialize import shm_supported

from .conftest import fw_table
from .test_supervision import _leaked_children

pytestmark = [
    pytest.mark.batching,
    pytest.mark.supervision,
    pytest.mark.skipif(
        not shm_supported(), reason="needs multiprocessing.shared_memory"
    ),
]

SPEC = FloydWarshallGep()


def _solve(sc, table, *, r=4, strategy="im"):
    solver = GepSparkSolver(
        SPEC, sc, r=r, kernel=make_kernel(SPEC, "iterative"), strategy=strategy
    )
    return solver.solve(table.copy())


def _baseline(table, *, r=4, strategy="im"):
    with SparkleContext(2, 2) as sc:
        out, _ = _solve(sc, table, r=r, strategy=strategy)
    return out


def test_gang_dispatch_spreads_the_wave():
    """A gang wave lands on more than one worker (the non-gang batch
    mode deliberately fuses a stage's calls onto a single worker)."""
    table = fw_table(24, seed=1)
    with SparkleContext(
        2, 2, backend="processes", dispatch="batch", gang_stages=True
    ) as sc:
        out, _ = _solve(sc, table)
        summ = sc.metrics.dispatch_summary()
    assert np.array_equal(out, _baseline(table))
    assert summ["gang_dispatches"] >= 1
    assert summ["gang_retries"] == 0


@pytest.mark.timeout(300)
def test_gang_survives_seeded_sigkill_all_or_nothing():
    """SIGKILL a gang member mid-wave: the whole wave retries (metered
    as ``gang_retries``), the result is bit-identical, and nothing —
    no worker process, no shm segment — outlives the context."""
    table = fw_table(24, seed=3)
    baseline = _baseline(table)
    plan = FaultPlan.from_string("seed=7,worker_kill=0.25")
    with SparkleContext(
        2,
        2,
        backend="processes",
        dispatch="batch",
        gang_stages=True,
        fault_plan=plan,
        heartbeat_interval=0.1,
    ) as sc:
        out, _ = _solve(sc, table)
        m = sc.metrics
        summ = m.dispatch_summary()
        sup = m.supervision_summary()
        prefix = sc._executors.backend.arena.prefix
    assert out.tobytes() == baseline.tobytes()
    assert plan.fired()["worker_kill"] >= 1
    assert sup["worker_crashes"] >= 1
    assert sup["workers_respawned"] >= 1
    assert summ["gang_retries"] >= 1
    assert sup["poison_tasks"] == 0  # retries land on attempt 1, clean
    # all-or-nothing left nothing behind
    assert glob.glob(f"/dev/shm/{prefix}*") == []
    assert m.shm_segments_freed == m.shm_segments_created
    assert _leaked_children() == []


@pytest.mark.timeout(300)
def test_gang_survives_hung_member():
    """SIGSTOP a gang member: the watchdog SIGKILLs it, the wave
    retries whole, and the solve completes bit-identical."""
    table = fw_table(16, seed=5)
    baseline = _baseline(table)
    plan = FaultPlan.from_string("seed=13,worker_hang=0.3")
    with SparkleContext(
        2,
        2,
        backend="processes",
        dispatch="batch",
        gang_stages=True,
        fault_plan=plan,
        heartbeat_interval=0.1,
    ) as sc:
        out, _ = _solve(sc, table)
        m = sc.metrics
        sup = m.supervision_summary()
        prefix = sc._executors.backend.arena.prefix
    assert out.tobytes() == baseline.tobytes()
    assert plan.fired()["worker_hang"] >= 1
    assert sup["heartbeats_missed"] >= 1
    assert sup["worker_crashes"] >= 1
    assert glob.glob(f"/dev/shm/{prefix}*") == []
    assert m.shm_segments_freed == m.shm_segments_created
    assert _leaked_children() == []


@pytest.mark.timeout(300)
@pytest.mark.parametrize("strategy", ["im", "cb", "bcast"])
def test_gang_matches_every_strategy_under_chaos(strategy):
    """The all-or-nothing contract holds across distribution
    strategies, with driver-side chaos (task kills) layered on top of
    the gang machinery."""
    table = fw_table(18, seed=11)
    baseline = _baseline(table, r=3, strategy=strategy)
    plan = FaultPlan.from_string("seed=23,kill=0.1,worker_kill=0.15")
    with SparkleContext(
        2,
        2,
        backend="processes",
        dispatch="batch",
        gang_stages=True,
        fault_plan=plan,
        heartbeat_interval=0.1,
    ) as sc:
        out, _ = _solve(sc, table, r=3, strategy=strategy)
        prefix = sc._executors.backend.arena.prefix
    assert out.tobytes() == baseline.tobytes()
    assert glob.glob(f"/dev/shm/{prefix}*") == []
    assert _leaked_children() == []
