"""Worker supervision: heartbeats, deadlines, crash protocol, poison
quarantine, and graceful backend degradation.

The invariant family under test mirrors the chaos/durability suites:
a process-backend solve subjected to *real* OS-level worker faults
(SIGKILL, SIGSTOP) must complete bit-identical to a fault-free run,
respawn its workers, reclaim every orphaned shared-memory segment, and
leak neither processes nor ``/dev/shm`` entries — even when the driver
itself dies uncleanly (atexit reaper) or is SIGKILLed outright (the
worker-side janitor).
"""

import glob
import os
import pickle
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import (
    BlockNotFoundError,
    CorruptBlockError,
    ExecutorLost,
    FaultPlan,
    HeartbeatBoard,
    PoisonTaskError,
    ShuffleFetchFailed,
    SparkleContext,
    SupervisionConfig,
    TaskDeadlineExceeded,
    TaskError,
    WorkerCrashed,
    WorkerSupervisor,
)
from repro.sparkle.backend import ProcessBackend
from repro.sparkle.memory import MemoryManager
from repro.sparkle.metrics import EngineMetrics
from repro.sparkle.serialize import shm_supported
from repro.sparkle.supervisor import COL_BEAT, COL_PID, COL_TOKEN

from .conftest import fw_table

pytestmark = [
    pytest.mark.supervision,
    pytest.mark.skipif(
        not shm_supported(), reason="needs multiprocessing.shared_memory"
    ),
]

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC = FloydWarshallGep()


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _leaked_children() -> list[tuple[int, str]]:
    """Child processes of this test process, minus the stdlib's
    ``resource_tracker`` (which legitimately lives for process
    lifetime once shared memory has been used)."""
    me = os.getpid()
    out = []
    for entry in os.listdir("/proc"):
        if not entry.isdigit():
            continue
        try:
            with open(f"/proc/{entry}/stat") as fh:
                fields = fh.read().rsplit(")", 1)[1].split()
            if int(fields[1]) != me:
                continue
            with open(f"/proc/{entry}/cmdline") as fh:
                cmdline = fh.read().replace("\0", " ")
        except (OSError, IndexError, ValueError):
            continue
        if "resource_tracker" in cmdline:
            continue
        out.append((int(entry), cmdline))
    return out


def _pid_dead(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except PermissionError:
        return False
    # A zombie still answers signal 0; check the state field.
    try:
        with open(f"/proc/{pid}/stat") as fh:
            return fh.read().rsplit(")", 1)[1].split()[0] == "Z"
    except OSError:
        return True


def _wait_until(predicate, timeout: float, period: float = 0.05) -> bool:
    end = time.monotonic() + timeout
    while time.monotonic() < end:
        if predicate():
            return True
        time.sleep(period)
    return predicate()


# ----------------------------------------------------------------------
# picklable kernels for worker-side behavior
# ----------------------------------------------------------------------
class SleepyKernel:
    """Never finishes inside the deadline (tests deadline enforcement)."""

    def run(self, case, x, u, v, w, gi0, gj0, gk0, n, stats=None):
        time.sleep(60.0)


class CrashyKernel:
    """SIGKILLs whatever process runs it — but only worker processes,
    so the driver-side thread fallback computes the real update."""

    def __init__(self, inner, driver_pid):
        self.inner = inner
        self.driver_pid = driver_pid

    def describe(self):
        return f"crashy({self.inner.describe()})"

    def run(self, case, x, u, v, w, gi0, gj0, gk0, n, stats=None):
        if os.getpid() != self.driver_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.inner.run(
            case, x, u, v, w, gi0, gj0, gk0, n, stats=stats
        )


# ----------------------------------------------------------------------
# config + board + backoff units
# ----------------------------------------------------------------------
class TestSupervisionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisionConfig(heartbeat_interval=-0.1)
        with pytest.raises(ValueError):
            SupervisionConfig(task_deadline=0.0)
        with pytest.raises(ValueError):
            SupervisionConfig(max_task_failures=0)
        with pytest.raises(ValueError):
            SupervisionConfig(respawn_backoff_jitter=-1.0)

    def test_miss_after_is_twice_the_interval(self):
        cfg = SupervisionConfig(heartbeat_interval=0.2)
        assert cfg.miss_after == pytest.approx(0.4)
        assert cfg.heartbeats_enabled
        off = SupervisionConfig(heartbeat_interval=0.0)
        assert not off.heartbeats_enabled


class TestHeartbeatBoard:
    def test_claim_beat_token_reset(self):
        name = f"sparkle-test-hb-{os.getpid()}"
        board = HeartbeatBoard(2, name)
        try:
            assert board.pids() == []
            board.cells[0, COL_PID] = 1234
            board.cells[0, COL_BEAT] = 7
            board.cells[0, COL_TOKEN] = 42
            board.cells[1, COL_PID] = 5678
            assert sorted(board.pids()) == [1234, 5678]
            assert board.pid_for_token(42) == 1234
            assert board.pid_for_token(99) is None
            assert board.pid_for_token(0) is None
            snap = board.snapshot()
            assert snap[0] == {"slot": 0, "pid": 1234, "beat": 7, "token": 42}
            board.reset()
            assert board.pids() == []
        finally:
            board.destroy()
        assert glob.glob(f"/dev/shm/{name}") == []

    def test_destroy_is_idempotent(self):
        board = HeartbeatBoard(1, f"sparkle-test-hb2-{os.getpid()}")
        board.destroy()
        board.destroy()


class TestRespawnBackoff:
    def test_deterministic_bounded_schedule(self):
        cfg = SupervisionConfig(
            heartbeat_interval=0.0,
            respawn_backoff_base=0.05,
            respawn_backoff_cap=1.0,
            respawn_backoff_jitter=0.25,
        )
        a = WorkerSupervisor(cfg, slots=2, prefix="sparkle-bk-a", seed=11)
        b = WorkerSupervisor(cfg, slots=2, prefix="sparkle-bk-b", seed=11)
        try:
            sched_a = [a.respawn_delay(n) for n in range(1, 9)]
            sched_b = [b.respawn_delay(n) for n in range(1, 9)]
            assert sched_a == sched_b  # reproducible from the seed
            for n, delay in enumerate(sched_a, start=1):
                floor = min(0.05 * 2 ** (n - 1), 1.0)
                assert floor <= delay <= floor * 1.25
            # the exponential ramp caps out instead of growing unboundedly
            assert sched_a[-1] <= 1.25
            with pytest.raises(ValueError):
                a.respawn_delay(0)
        finally:
            a.destroy()
            b.destroy()

    def test_poison_ledger_and_degrade_latch(self):
        cfg = SupervisionConfig(heartbeat_interval=0.0, max_task_failures=2)
        sup = WorkerSupervisor(cfg, slots=1, prefix="sparkle-bk-c", seed=0)
        try:
            sig = ("k", "D", 0, 0, 0)
            assert sup.record_failure(sig) == 1
            assert sup.record_failure(sig) == 2
            assert not sup.is_quarantined(sig)
            assert not sup.degrade_pending()
            sup.quarantine(sig)
            assert sup.is_quarantined(sig)
            assert sup.quarantined() == [sig]
            assert sup.degrade_pending()  # latched ...
            assert not sup.degrade_pending()  # ... and clear-on-read
            sup.quarantine(sig)  # re-quarantine is a no-op
            assert not sup.degrade_pending()
        finally:
            sup.destroy()


# ----------------------------------------------------------------------
# typed errors survive the worker pickle boundary
# ----------------------------------------------------------------------
ERROR_SAMPLES = [
    (TaskError, ("boom", 3, 7), {"stage_id": 3, "partition": 7}),
    (ExecutorLost, ("gone", 2), {"executor": 2}),
    (ShuffleFetchFailed, (5, (1, 2)), {"shuffle_id": 5, "missing": (1, 2)}),
    (BlockNotFoundError, ("missing", ("rdd", 1)), {"key": ("rdd", 1)}),
    (CorruptBlockError, ("bad sum", ("rdd", 2)), {"key": ("rdd", 2)}),
    (WorkerCrashed, ("died", 1234, "worker_kill"),
     {"pid": 1234, "reason": "worker_kill"}),
    (TaskDeadlineExceeded, ("late", 1.5, 2.25),
     {"deadline": 1.5, "elapsed": 2.25}),
    (PoisonTaskError, ("poison", (0, 8, 0), "B", "deadbeef", 3),
     {"coordinate": (0, 8, 0), "case": "B", "kernel_id": "deadbeef",
      "failures": 3}),
]


def _raise_sample(index: int):
    """Worker body: construct and raise sample error ``index``."""
    cls, args, _attrs = ERROR_SAMPLES[index]
    raise cls(*args)


class TestErrorPickleSafety:
    @pytest.mark.parametrize(
        "cls,args,attrs", ERROR_SAMPLES, ids=[c.__name__ for c, _, _ in ERROR_SAMPLES]
    )
    def test_round_trip(self, cls, args, attrs):
        err = cls(*args)
        clone = pickle.loads(pickle.dumps(err))
        assert type(clone) is cls
        assert str(clone) == str(err)
        for attr, expected in attrs.items():
            assert getattr(clone, attr) == expected

    def test_raised_inside_worker(self):
        """concurrent.futures ships worker exceptions back by pickling
        them; every typed error must arrive intact, not as a
        ``BrokenProcessPool`` caused by an unpicklable exception."""
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            for index, (cls, _args, attrs) in enumerate(ERROR_SAMPLES):
                with pytest.raises(cls) as excinfo:
                    pool.submit(_raise_sample, index).result(timeout=60)
                for attr, expected in attrs.items():
                    assert getattr(excinfo.value, attr) == expected


# ----------------------------------------------------------------------
# backend-level: deadlines, crash protocol, poison quarantine
# ----------------------------------------------------------------------
def _run_backend_kernel(backend, blob, coordinate=(0, 0, 0)):
    x = np.zeros((4, 4))
    gi0, gj0, gk0 = coordinate
    return backend.run_kernel(
        blob, "D", x, x, x, x, gi0, gj0, gk0, 8, want_stats=False
    )


class TestDeadlineEnforcement:
    @pytest.mark.timeout(120)
    def test_running_overrun_is_killed_and_typed(self):
        metrics = EngineMetrics()
        backend = ProcessBackend(
            2,
            num_workers=1,
            metrics=metrics,
            supervision=SupervisionConfig(
                heartbeat_interval=0.0,
                task_deadline=0.4,
                respawn_backoff_base=0.0,
                respawn_backoff_jitter=0.0,
            ),
        )
        try:
            prefix = backend.arena.prefix
            start = time.monotonic()
            with pytest.raises(TaskDeadlineExceeded) as excinfo:
                _run_backend_kernel(backend, pickle.dumps(SleepyKernel()))
            elapsed = time.monotonic() - start
            assert excinfo.value.deadline == pytest.approx(0.4)
            assert excinfo.value.elapsed is not None
            assert excinfo.value.elapsed >= 0.4
            # enforcement is prompt: nowhere near the kernel's 60 s sleep
            assert elapsed < 30.0
            assert metrics.deadlines_exceeded == 1
            assert metrics.worker_crashes == 1
            assert metrics.workers_respawned >= 1
            assert metrics.orphan_segments_reclaimed == 1
        finally:
            backend.shutdown()
        assert glob.glob(f"/dev/shm/{prefix}*") == []


class TestPoisonQuarantine:
    @pytest.mark.timeout(120)
    def test_quarantine_after_max_failures(self):
        metrics = EngineMetrics()
        backend = ProcessBackend(
            2,
            num_workers=1,
            metrics=metrics,
            supervision=SupervisionConfig(
                heartbeat_interval=0.0,
                max_task_failures=2,
                respawn_backoff_base=0.0,
                respawn_backoff_jitter=0.0,
            ),
        )
        inner = make_kernel(SPEC, "iterative")
        blob = pickle.dumps(CrashyKernel(inner, os.getpid()))
        try:
            prefix = backend.arena.prefix
            # 1st death: retryable
            with pytest.raises(WorkerCrashed):
                _run_backend_kernel(backend, blob)
            assert metrics.worker_crashes == 1
            assert not backend.supervisor.degrade_pending()
            # 2nd death of the same call: poison
            with pytest.raises(PoisonTaskError) as excinfo:
                _run_backend_kernel(backend, blob)
            assert excinfo.value.failures == 2
            assert excinfo.value.coordinate == (0, 0, 0)
            assert excinfo.value.case == "D"
            assert metrics.poison_tasks == 1
            assert backend.supervisor.degrade_pending()
            # 3rd call: refused up front — no fresh worker is sacrificed
            with pytest.raises(PoisonTaskError):
                _run_backend_kernel(backend, blob)
            assert metrics.worker_crashes == 2
            # a different coordinate is NOT quarantined
            out, _ = _run_backend_kernel(
                backend, pickle.dumps(inner), coordinate=(4, 4, 4)
            )
            assert out.shape == (4, 4)
        finally:
            backend.shutdown()
        assert glob.glob(f"/dev/shm/{prefix}*") == []


# ----------------------------------------------------------------------
# end-to-end: seeded real worker faults through a full solve
# ----------------------------------------------------------------------
def _solve(sc, table, strategy="im", **solver_kw):
    solver = GepSparkSolver(
        SPEC,
        sc,
        r=3,
        kernel=make_kernel(SPEC, "iterative"),
        strategy=strategy,
        **solver_kw,
    )
    return solver.solve(table)


class TestWorkerKillAcceptance:
    @pytest.mark.timeout(300)
    def test_solve_survives_seeded_sigkill_bit_identical(self):
        table = fw_table(24, seed=3)
        with SparkleContext(2, 2) as sc:
            baseline, _ = _solve(sc, table)
        plan = FaultPlan.from_string("seed=7,worker_kill=0.25")
        with SparkleContext(
            2, 2, backend="processes", fault_plan=plan, heartbeat_interval=0.1
        ) as sc:
            out, _report = _solve(sc, table)
            summ = sc.metrics.supervision_summary()
            metrics = sc.metrics
            prefix = sc._executors.backend.arena.prefix
        assert out.tobytes() == baseline.tobytes()
        assert plan.fired()["worker_kill"] >= 1
        assert summ["worker_crashes"] >= 1
        assert summ["workers_respawned"] >= 1
        assert summ["orphan_segments_reclaimed"] >= 1
        assert summ["poison_tasks"] == 0  # retries land on attempt 1, clean
        # zero leaked shm segments (board included — it shares the prefix)
        assert glob.glob(f"/dev/shm/{prefix}*") == []
        assert metrics.shm_segments_freed == metrics.shm_segments_created
        assert _leaked_children() == []

    @pytest.mark.timeout(300)
    def test_hung_worker_detected_and_solve_completes(self):
        table = fw_table(16, seed=5)
        with SparkleContext(2, 2) as sc:
            baseline, _ = _solve(sc, table, strategy="im")
        plan = FaultPlan.from_string("seed=13,worker_hang=0.3")
        with SparkleContext(
            2, 2, backend="processes", fault_plan=plan, heartbeat_interval=0.1
        ) as sc:
            out, _report = _solve(sc, table, strategy="im")
            summ = sc.metrics.supervision_summary()
            prefix = sc._executors.backend.arena.prefix
        assert out.tobytes() == baseline.tobytes()
        assert plan.fired()["worker_hang"] >= 1
        # the watchdog converted SIGSTOP silence into a metered kill
        assert summ["heartbeats_missed"] >= 1
        assert summ["worker_crashes"] >= 1
        assert summ["workers_respawned"] >= 1
        assert glob.glob(f"/dev/shm/{prefix}*") == []
        assert _leaked_children() == []


class TestDegradeOnCrash:
    @pytest.mark.timeout(300)
    def test_poison_falls_back_to_threads_bit_identical(self):
        table = fw_table(16, seed=2)
        # same r as the degraded run: tiling changes float association
        # order, so bit-identity is only promised at equal r
        with SparkleContext(2, 2) as sc:
            baseline, _ = GepSparkSolver(
                SPEC, sc, r=2, kernel=make_kernel(SPEC, "iterative"),
                strategy="im",
            ).solve(table)
        inner = make_kernel(SPEC, "iterative")
        crashy = CrashyKernel(inner, os.getpid())
        with SparkleContext(
            2,
            2,
            backend="processes",
            heartbeat_interval=0.1,
            max_task_failures=1,
        ) as sc:
            solver = GepSparkSolver(
                SPEC, sc, r=2, kernel=crashy, strategy="im",
                degrade_on_crash=True,
            )
            out, report = solver.solve(table)
            summ = sc.metrics.supervision_summary()
            prefix = sc._executors.backend.arena.prefix
        assert out.tobytes() == baseline.tobytes()
        assert summ["poison_tasks"] >= 1
        assert summ["backend_degradations"] == 1
        degradations = report.extras["backend_degradations"]
        assert degradations[0]["from"] == "processes"
        assert degradations[0]["to"] == "threads"
        assert degradations[0]["quarantined_tasks"] >= 1
        assert glob.glob(f"/dev/shm/{prefix}*") == []

    @pytest.mark.timeout(120)
    def test_poison_without_degrade_flag_aborts(self):
        table = fw_table(8, seed=2)
        inner = make_kernel(SPEC, "iterative")
        crashy = CrashyKernel(inner, os.getpid())
        with SparkleContext(
            2, 2, backend="processes", heartbeat_interval=0.1,
            max_task_failures=1,
        ) as sc:
            solver = GepSparkSolver(SPEC, sc, r=2, kernel=crashy, strategy="im")
            with pytest.raises(PoisonTaskError):
                solver.solve(table)


# ----------------------------------------------------------------------
# Hypothesis property: faulted runs match fault-free, both backends
# ----------------------------------------------------------------------
_PROPERTY_TABLE = fw_table(12, seed=9)
_PROPERTY_BASELINE = {}


def _baseline(strategy: str) -> np.ndarray:
    out = _PROPERTY_BASELINE.get(strategy)
    if out is None:
        with SparkleContext(2, 1) as sc:
            solver = GepSparkSolver(
                SPEC, sc, r=2, kernel=make_kernel(SPEC, "iterative"),
                strategy=strategy,
            )
            out, _ = solver.solve(_PROPERTY_TABLE)
        _PROPERTY_BASELINE[strategy] = out
    return out


class TestWorkerFaultProperty:
    @pytest.mark.timeout(600)
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        strategy=st.sampled_from(["im", "cb", "bcast"]),
        backend=st.sampled_from(["threads", "processes"]),
        kind=st.sampled_from(["worker_kill", "worker_hang"]),
    )
    def test_faulted_solve_matches_fault_free(
        self, seed, strategy, backend, kind
    ):
        plan = FaultPlan.from_string(f"seed={seed},{kind}=0.2")
        with SparkleContext(
            2, 1, backend=backend, fault_plan=plan, heartbeat_interval=0.1
        ) as sc:
            solver = GepSparkSolver(
                SPEC, sc, r=2, kernel=make_kernel(SPEC, "iterative"),
                strategy=strategy,
            )
            out, _ = solver.solve(_PROPERTY_TABLE)
        assert out.tobytes() == _baseline(strategy).tobytes()


# ----------------------------------------------------------------------
# satellite: memory backpressure wait is event-driven, not a spin
# ----------------------------------------------------------------------
class TestAdmissionNoSpin:
    @pytest.mark.memory
    def test_blocked_admission_waits_by_notification(self):
        mm = MemoryManager(1000, task_quantum_bytes=600)
        waits = []
        original_wait = mm._cond.wait

        def counting_wait(timeout=None):
            waits.append(timeout)
            return original_wait(timeout)

        mm._cond.wait = counting_wait
        first = mm.admit_task()
        admitted = threading.Event()

        def second():
            grant = mm.admit_task()
            admitted.set()
            mm.finish_task(grant)

        thread = threading.Thread(target=second)
        thread.start()
        try:
            time.sleep(0.5)  # long enough for a 0.05 s poll to spin ~10×
            assert not admitted.is_set()
            mm.finish_task(first)
            # the release's notify wakes the waiter promptly ...
            assert admitted.wait(timeout=1.0)
        finally:
            thread.join(timeout=5.0)
        assert not thread.is_alive()
        # ... and the waiter never spun: one blocking wait (maybe two on
        # a spurious wakeup), each parked under the long safety-net
        # timeout rather than a sub-second poll interval.
        assert 1 <= len(waits) <= 2
        assert all(t is not None and t >= 5.0 for t in waits)


# ----------------------------------------------------------------------
# satellite: driver-death cleanup (atexit reaper + worker janitor)
# ----------------------------------------------------------------------
_DRIVER_SCRIPT_HEAD = """
import os, sys, pickle
import numpy as np
from repro.sparkle.backend import ProcessBackend
from repro.sparkle import SupervisionConfig

class IdentityKernel:
    def run(self, case, x, u, v, w, gi0, gj0, gk0, n, stats=None):
        x += 0.0

backend = ProcessBackend(
    2, num_workers=2,
    supervision=SupervisionConfig(heartbeat_interval=0.1),
)
x = np.zeros((4, 4))
blob = pickle.dumps(IdentityKernel())
backend.run_kernel(blob, "D", x, x, x, x, 0, 0, 0, 4)
print("PREFIX", backend.arena.prefix, flush=True)
print("WORKERS", *backend.supervisor.worker_pids(), flush=True)
"""


def _parse_driver_output(line_iter):
    prefix, workers = None, []
    for line in line_iter:
        if line.startswith("PREFIX "):
            prefix = line.split()[1]
        elif line.startswith("WORKERS"):
            workers = [int(p) for p in line.split()[1:]]
    return prefix, workers


class TestDriverDeathCleanup:
    @pytest.mark.timeout(120)
    def test_sigkilled_driver_leaks_nothing(self, tmp_path):
        """SIGKILL the driver mid-flight: atexit never runs, so the
        worker-side janitor must notice the orphaning, purge the shm
        segments, and exit."""
        script = _DRIVER_SCRIPT_HEAD + textwrap.dedent("""
            import time
            time.sleep(120)
        """)
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            env=_subprocess_env(), cwd=REPO_ROOT,
            stdout=subprocess.PIPE, text=True,
        )
        try:
            lines = []
            while True:
                line = proc.stdout.readline()
                lines.append(line)
                if line.startswith("WORKERS"):
                    break
                assert line, "driver exited before reporting its workers"
            prefix, workers = _parse_driver_output(lines)
            assert prefix and workers
            os.kill(proc.pid, signal.SIGKILL)
            assert proc.wait(timeout=10) == -signal.SIGKILL
            # janitor poll is 0.25 s; give it generous slack
            assert _wait_until(
                lambda: all(_pid_dead(p) for p in workers), timeout=10.0
            ), f"orphaned workers survived: {workers}"
            assert _wait_until(
                lambda: glob.glob(f"/dev/shm/{prefix}*") == [], timeout=10.0
            ), f"leaked shm: {glob.glob(f'/dev/shm/{prefix}*')}"
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()

    @pytest.mark.timeout(120)
    def test_unclean_exit_runs_atexit_reaper(self):
        """`sys.exit` without `backend.shutdown()`: the atexit reaper
        must still reap the workers and unlink every segment."""
        script = _DRIVER_SCRIPT_HEAD + "sys.exit(7)\n"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=_subprocess_env(), cwd=REPO_ROOT,
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 7, proc.stderr
        prefix, workers = _parse_driver_output(proc.stdout.splitlines())
        assert prefix and workers
        assert _wait_until(
            lambda: all(_pid_dead(p) for p in workers), timeout=10.0
        ), f"workers survived driver exit: {workers}"
        assert glob.glob(f"/dev/shm/{prefix}*") == []

    def test_backend_is_a_context_manager(self):
        metrics = EngineMetrics()
        with ProcessBackend(
            2, num_workers=1, metrics=metrics,
            supervision=SupervisionConfig(heartbeat_interval=0.0),
        ) as backend:
            prefix = backend.arena.prefix
            out, _ = _run_backend_kernel(
                backend, pickle.dumps(make_kernel(SPEC, "iterative"))
            )
            assert out.shape == (4, 4)
        assert glob.glob(f"/dev/shm/{prefix}*") == []
        assert not backend.supports_kernel_offload
