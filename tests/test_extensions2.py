"""Second extension batch: distributed parenthesis wavefront, arbitrary
tile boundaries (the GEP theorem), adaptive tuning, CLI."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import blocked_gep_inplace
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    gep_reference_vectorized,
)
from repro.core.parenthesis import matrix_chain_order, parenthesis_solve
from repro.core.parenthesis_spark import parenthesis_solve_spark
from repro.core.tuning import adaptive_tune
from repro.cluster import ExecutionPlan
from repro.kernels import IterativeKernel
from repro.sparkle import SparkleContext
from repro.workloads import random_digraph_weights

from .conftest import assert_tables_equal, fw_table, ge_table


class TestDistributedParenthesis:
    @pytest.mark.parametrize("r", [1, 2, 4, 7])
    def test_matches_single_node(self, r):
        rng = np.random.default_rng(r)
        dims = rng.integers(1, 10, size=14).astype(float)

        def cost(i, ks, j):
            return dims[i] * dims[ks] * dims[j]

        n = dims.size
        c_ref, _ = parenthesis_solve(n, cost)
        with SparkleContext(3, 2) as sc:
            c, split = parenthesis_solve_spark(n, cost, sc, r=r)
        iu = np.triu_indices(n, 1)
        np.testing.assert_allclose(c[iu], c_ref[iu])

    def test_split_points_reconstruct_optimal_cost(self):
        dims = [30, 35, 15, 5, 10, 20, 25]

        def cost(i, ks, j):
            d = np.asarray(dims, dtype=float)
            return d[i] * d[np.asarray(ks)] * d[j]

        with SparkleContext(2, 2) as sc:
            c, split = parenthesis_solve_spark(len(dims), cost, sc, r=3)
        assert c[0, len(dims) - 1] == 15125  # CLRS instance
        k = split[0, len(dims) - 1]
        assert c[0, k] + c[k, len(dims) - 1] + dims[0] * dims[k] * dims[-1] == 15125

    def test_wavefront_stage_structure(self):
        def cost(i, ks, j):
            return 1.0

        with SparkleContext(2, 2) as sc:
            parenthesis_solve_spark(9, cost, sc, r=4)
            # One job per tile diagonal.
            assert len(sc.metrics.jobs) == 4

    def test_validation(self):
        with SparkleContext(1, 1) as sc:
            with pytest.raises(ValueError):
                parenthesis_solve_spark(1, lambda i, ks, j: 0.0, sc)
            with pytest.raises(ValueError):
                parenthesis_solve_spark(4, lambda i, ks, j: 0.0, sc, r=0)


class TestArbitraryTileBoundaries:
    """The GEP correctness theorem holds for any contiguous partition."""

    def test_handpicked_uneven_bounds(self):
        spec = GaussianEliminationGep()
        t = ge_table(11, seed=1)
        expect = gep_reference_vectorized(spec, t)
        got = t.copy()
        blocked_gep_inplace(
            spec, got, 1, IterativeKernel(spec), bounds=[0, 1, 2, 7, 11]
        )
        assert_tables_equal(got, expect)

    def test_bounds_validation(self):
        spec = FloydWarshallGep()
        t = fw_table(6, seed=0)
        for bad in ([1, 6], [0, 5], [0, 3, 3, 6], [0, 4, 2, 6]):
            with pytest.raises(ValueError):
                blocked_gep_inplace(
                    spec, t.copy(), 1, IterativeKernel(spec), bounds=bad
                )

    @given(
        n=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=40),
        cuts=st.sets(st.integers(min_value=1, max_value=15), max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_any_partition_is_correct(self, n, seed, cuts):
        spec = FloydWarshallGep()
        t = fw_table(n, seed=seed)
        expect = gep_reference_vectorized(spec, t)
        bounds = [0] + sorted(c for c in cuts if c < n) + [n]
        got = t.copy()
        blocked_gep_inplace(spec, got, 1, IterativeKernel(spec), bounds=bounds)
        np.testing.assert_allclose(got, expect)


class TestAdaptiveTune:
    def test_picks_a_valid_config(self):
        w = random_digraph_weights(32, 0.3, seed=2)
        r, plan, secs = adaptive_tune(
            FloydWarshallGep(), w, num_executors=2, cores_per_executor=2
        )
        assert r >= 1 and secs > 0
        assert plan.strategy in ("im", "cb")

    def test_explicit_candidates_and_ordering(self):
        w = random_digraph_weights(24, 0.3, seed=3)
        cands = [
            (2, ExecutionPlan("im", "iterative")),
            (3, ExecutionPlan("cb", "iterative")),
        ]
        r, plan, secs = adaptive_tune(
            FloydWarshallGep(), w, candidates=cands,
            num_executors=2, cores_per_executor=1,
        )
        assert (r, plan.strategy) in {(2, "im"), (3, "cb")}


class TestCli:
    def test_info(self, capsys):
        from repro.__main__ import main

        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "skylake16" in out

    def test_solve_apsp_local(self, capsys):
        from repro.__main__ import main

        assert main(["solve", "apsp", "--n", "32", "--engine", "local"]) == 0
        assert "APSP solved" in capsys.readouterr().out

    def test_solve_ge_spark(self, capsys):
        from repro.__main__ import main

        assert main([
            "solve", "ge", "--n", "24", "--engine", "spark",
            "--strategy", "cb", "--executors", "2", "--cores", "1",
        ]) == 0
        assert "GE eliminated" in capsys.readouterr().out

    def test_solve_roundtrip_file(self, tmp_path, capsys):
        from repro.__main__ import main

        src = tmp_path / "w.npy"
        dst = tmp_path / "d.npy"
        w = random_digraph_weights(16, 0.4, seed=5)
        np.save(src, w)
        assert main([
            "solve", "apsp", "--input", str(src), "--output", str(dst),
            "--engine", "reference",
        ]) == 0
        from repro.core import floyd_warshall

        np.testing.assert_allclose(np.load(dst), floyd_warshall(w))

    def test_solve_chaos_flag(self, capsys):
        from repro.__main__ import main

        assert main([
            "solve", "apsp", "--n", "16", "--engine", "spark",
            "--executors", "2", "--cores", "1",
            "--chaos", "seed=7,kill=0.2,slow=0.1:0.01",
        ]) == 0
        out = capsys.readouterr().out
        assert "APSP solved" in out
        assert "chaos: FaultPlan(seed=7" in out
        assert "recovery:" in out

    def test_chaos_requires_spark_engine(self, capsys):
        from repro.__main__ import main

        assert main([
            "solve", "apsp", "--n", "16", "--engine", "local",
            "--chaos", "seed=1",
        ]) == 2
        assert "requires --engine spark" in capsys.readouterr().err

    def test_chaos_rejects_bad_spec(self, capsys):
        from repro.__main__ import main

        assert main([
            "solve", "apsp", "--n", "16", "--engine", "spark",
            "--chaos", "kill=0.5",
        ]) == 2
        assert "invalid --chaos spec" in capsys.readouterr().err

    def test_tune_command(self, capsys):
        from repro.__main__ import main

        assert main(["tune", "ge", "--n", "8192", "--cluster", "laptop"]) == 0
        out = capsys.readouterr().out
        assert "gaussian-elimination" in out and "alternatives" in out

    def test_experiments_passthrough(self, capsys):
        from repro.__main__ import main

        assert main(["experiments", "fig7"]) == 0
        assert "Kernel dependency edges" in capsys.readouterr().out
