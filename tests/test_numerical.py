"""Numerical robustness of GE without pivoting, and soak tests."""

import numpy as np
import pytest

from repro.baselines import numpy_gaussian_solve
from repro.core import floyd_warshall, gaussian_solve, lu_decompose
from repro.sparkle import SparkleContext
from repro.workloads import diagonally_dominant, random_digraph_weights, spd_matrix


class TestNumericalRobustness:
    @pytest.mark.parametrize("condition", [10.0, 1e4, 1e6])
    def test_spd_conditioning(self, condition):
        """Error grows with condition number but stays near LAPACK's."""
        n = 40
        a = spd_matrix(n, condition=condition, seed=int(condition) % 97)
        x_true = np.linspace(-1, 1, n)
        b = a @ x_true
        ours = gaussian_solve(a, b)
        lapack = numpy_gaussian_solve(a, b)
        ours_err = np.linalg.norm(ours - x_true)
        lapack_err = np.linalg.norm(lapack - x_true) + 1e-16
        assert ours_err <= 100 * lapack_err + 1e-10

    def test_weak_dominance_still_stable(self):
        a = diagonally_dominant(30, dominance=1.05, seed=3)
        x_true = np.ones(30)
        x = gaussian_solve(a, a @ x_true)
        np.testing.assert_allclose(x, x_true, rtol=1e-6)

    def test_residual_backward_stability(self):
        """Relative residual at machine-epsilon scale for DD systems."""
        n = 64
        a = diagonally_dominant(n, seed=5)
        b = np.random.default_rng(0).standard_normal(n)
        x = gaussian_solve(a, b)
        rel = np.linalg.norm(a @ x - b) / (
            np.linalg.norm(a) * np.linalg.norm(x) + np.linalg.norm(b)
        )
        assert rel < 1e-12

    def test_lu_growth_factor_bounded_for_dd(self):
        """GE without pivoting on DD matrices has growth factor <= 2."""
        a = diagonally_dominant(48, seed=7)
        l, u = lu_decompose(a)
        growth = np.abs(u).max() / np.abs(a).max()
        assert growth <= 2.0 + 1e-9

    def test_blocked_matches_unblocked_numerically(self):
        """Blocked execution reorders float ops; drift must stay tiny."""
        a = diagonally_dominant(50, seed=9)
        b = np.ones(50)
        plain = gaussian_solve(a, b, engine="reference")
        blocked = gaussian_solve(a, b, engine="local", r=7, kernel="recursive",
                                 r_shared=3, base_size=4)
        np.testing.assert_allclose(blocked, plain, rtol=1e-10)

    def test_fw_extreme_weights(self):
        w = random_digraph_weights(20, 0.4, weight_range=(1e-9, 1e9), seed=11)
        d = floyd_warshall(w)
        assert np.isfinite(np.diag(d)).all()
        assert (np.diag(d) == 0).all()

    def test_fw_negative_edges_no_cycle(self):
        # DAG-ish with negative edges but no cycles: FW must be exact.
        n = 12
        w = np.full((n, n), np.inf)
        np.fill_diagonal(w, 0.0)
        rng = np.random.default_rng(13)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.5:
                    w[i, j] = rng.uniform(-5, 5)
        from repro.baselines import scipy_shortest_paths

        np.testing.assert_allclose(floyd_warshall(w), scipy_shortest_paths(w, "BF"))


@pytest.mark.slow
class TestSoak:
    def test_large_distributed_fw(self):
        n = 256
        w = random_digraph_weights(n, 0.2, seed=21)
        ref = floyd_warshall(w)
        with SparkleContext(4, 4) as sc:
            got = floyd_warshall(
                w, engine="spark", sc=sc, r=8, kernel="recursive",
                r_shared=4, base_size=32, omp_threads=2, strategy="im",
            )
        np.testing.assert_allclose(got, ref)

    def test_large_distributed_ge(self):
        n = 256
        a = diagonally_dominant(n, seed=22)
        x_true = np.sin(np.arange(n))
        b = a @ x_true
        with SparkleContext(4, 4) as sc:
            x = gaussian_solve(
                a, b, engine="spark", sc=sc, r=8, kernel="recursive",
                r_shared=4, base_size=32, strategy="cb", checkpoint_every=4,
            )
        np.testing.assert_allclose(x, x_true, rtol=1e-7, atol=1e-9)
