"""Tenant isolation plane tests (DESIGN.md §18).

Covers the four primitives in :mod:`repro.sparkle.tenancy` (policy
validation, token-bucket rate limiting under a fake clock, weighted
deficit-round-robin fairness, the brownout ladder's deterministic
transitions), their composition inside :class:`repro.service.
SolverService` (enforced byte quotas on the governor's tenant ledger,
per-tenant rate gates, brownout clamp/degrade/shed effects on live
engine passes), the ``noisy_neighbor`` seeded chaos storm fairness
acceptance, the ``send_request`` retry_after sleep schedule, the
TileTracker governor charge (PR 9 follow-up), and the hypothesis
property that multi-tenant WAL replay after a crash settles each
tenant's work exactly once, bit-identical, metered to the right tenant.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import pickle
import socket
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.service import (
    RequestJournal,
    ServiceConfig,
    SolverService,
    TenantPolicy,
    _build_request,
    _recv_msg,
    _send_msg,
    is_retryable,
    run_noisy_neighbor_storm,
    send_request,
)
from repro.sparkle import (
    FaultPlan,
    ServiceOverloadedError,
    SolveRequest,
    SparkleContext,
    TenantQuotaExceededError,
)
from repro.sparkle.memory import MemoryManager
from repro.sparkle.pipeline import TileTracker
from repro.sparkle.tenancy import (
    BROWNOUT_LEVELS,
    BrownoutLadder,
    DeficitRoundRobin,
    TokenBucket,
)
from repro.workloads import random_digraph_weights

pytestmark = pytest.mark.tenancy

SPEC = FloydWarshallGep()
KERNEL = make_kernel(SPEC, "iterative")
REPO_ROOT = Path(__file__).resolve().parents[1]


def _table(n: int = 24, seed: int = 0) -> np.ndarray:
    return random_digraph_weights(n, 0.4, seed=seed).astype(SPEC.dtype)


def _request(seed: int = 0, *, n: int = 24, r: int = 6, **kw) -> SolveRequest:
    return SolveRequest(
        spec=SPEC, table=_table(n, seed), r=r, kernel=KERNEL, **kw
    )


def _context(**kw) -> SparkleContext:
    kw.setdefault("num_executors", 2)
    kw.setdefault("cores_per_executor", 1)
    return SparkleContext(**kw)


_REFERENCES: dict = {}


def _reference(seed: int = 0, *, n: int = 24, r: int = 6) -> np.ndarray:
    """Direct (service-free) engine solve — THE bit-identity baseline."""
    key = (seed, n, r)
    if key not in _REFERENCES:
        sc = _context()
        try:
            solver = GepSparkSolver(
                SPEC, sc, r=r, kernel=KERNEL, collect_stats=False
            )
            out, _ = solver.solve(_table(n, seed))
        finally:
            sc.stop()
        _REFERENCES[key] = out
    return _REFERENCES[key]


def _gate_solves(service: SolverService) -> threading.Event:
    """Block every engine pass on an event — freezes flights in-flight."""
    gate = threading.Event()
    original = service._solve
    service._solve = lambda req, offload: (
        gate.wait(60),
        original(req, offload),
    )[1]
    return gate


# ---------------------------------------------------------------------------
# TenantPolicy validation
# ---------------------------------------------------------------------------


class TestTenantPolicy:
    def test_defaults_are_permissive(self):
        policy = TenantPolicy()
        assert policy.weight == 1
        assert policy.quota_bytes is None
        assert policy.rate is None

    @pytest.mark.parametrize(
        "kw",
        [
            {"weight": 0},
            {"weight": 1.5},
            {"quota_bytes": -1},
            {"rate": 0.0},
            {"rate": -2.0},
            {"burst": 0},
        ],
    )
    def test_invalid_knobs_are_refused(self, kw):
        with pytest.raises(ValueError):
            TenantPolicy(**kw)


# ---------------------------------------------------------------------------
# TokenBucket under a fake clock: the grant schedule is pure
# ---------------------------------------------------------------------------


class TestTokenBucket:
    def test_grant_schedule_is_a_pure_function_of_the_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2, clock=lambda: now[0])
        assert bucket.try_take()
        assert bucket.try_take()
        assert not bucket.try_take()  # burst exhausted at t=0
        assert bucket.retry_after() == pytest.approx(0.5)
        now[0] = 0.5  # one token refilled
        assert bucket.retry_after() == 0.0
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_tokens_cap_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3, clock=lambda: now[0])
        now[0] = 100.0  # a long idle stretch earns no extra credit
        grants = sum(bucket.try_take() for _ in range(10))
        assert grants == 3


# ---------------------------------------------------------------------------
# DeficitRoundRobin: weighted interleave, per-tenant FIFO, idle retirement
# ---------------------------------------------------------------------------


class TestDeficitRoundRobin:
    def _queue(self, weights):
        return DeficitRoundRobin(weight_of=lambda t: weights.get(t, 1))

    def test_weighted_interleave_two_to_one(self):
        q = self._queue({"a": 2, "b": 1})
        for i in range(6):
            q.push("a", f"a{i}")
        for i in range(3):
            q.push("b", f"b{i}")
        order = [q.pop() for _ in range(9)]
        assert order == ["a0", "a1", "b0", "a2", "a3", "b1", "a4", "a5", "b2"]
        with pytest.raises(IndexError):
            q.pop()

    def test_fifo_within_a_tenant(self):
        q = self._queue({})
        for i in range(5):
            q.push("only", i)
        assert [q.pop() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_idle_tenants_earn_no_deficit_credit(self):
        # 'heavy' goes idle mid-run; on reactivation it restarts with a
        # clean deficit instead of bursting on banked credit.
        q = self._queue({"heavy": 3, "light": 1})
        q.push("heavy", "h0")
        assert q.pop() == "h0"  # heavy drains and retires
        for i in range(3):
            q.push("light", f"l{i}")
        q.push("heavy", "h1")
        # light was first in rotation; heavy re-joined at the back and
        # gets its 3:1 share only from here on — no retroactive burst.
        order = [q.pop() for _ in range(4)]
        assert order == ["l0", "h1", "l1", "l2"]

    def test_depth_tenants_len_and_drain(self):
        q = self._queue({"a": 2})
        q.push("a", 1)
        q.push("a", 2)
        q.push(None, 3)  # anonymous requests share the None queue
        assert len(q) == 3
        assert q.depth("a") == 2
        assert q.depth("missing") == 0
        assert tuple(q.tenants()) == ("a", None)
        assert q.drain() == [1, 2, 3]
        assert len(q) == 0
        assert tuple(q.tenants()) == ()


# ---------------------------------------------------------------------------
# BrownoutLadder: deterministic transitions, fast escalation, slow recovery
# ---------------------------------------------------------------------------


class TestBrownoutLadder:
    def test_target_scores(self):
        ladder = BrownoutLadder(max_queue_depth=8)
        assert ladder.target("ok", 0) == 0
        assert ladder.target("pressured", 0) == 1
        assert ladder.target("critical", 0) == 2
        assert ladder.target("ok", 5) == 1  # depth > max//2
        assert ladder.target("ok", 8) == 2  # both depth bumps
        assert ladder.target("pressured", 8) == 3
        assert ladder.target("critical", 8) == 3  # capped at shed

    def test_escalates_in_one_jump_decays_one_rung_at_a_time(self):
        ladder = BrownoutLadder(max_queue_depth=4)
        observations = [
            ("ok", 0),
            ("critical", 4),  # straight to shed
            ("ok", 0),        # one quiet sample: only one rung back
            ("ok", 0),
            ("ok", 0),
            ("ok", 0),        # already normal: no transition
        ]
        transitions = [ladder.evaluate(p, d) for p, d in observations]
        assert transitions == [
            None,
            "normal->shed",
            "shed->degrade",
            "degrade->clamp",
            "clamp->normal",
            None,
        ]
        assert ladder.name == "normal"
        assert BROWNOUT_LEVELS == ("normal", "clamp", "degrade", "shed")


# ---------------------------------------------------------------------------
# enforced quotas: typed refusals, release on settle, cache charging
# ---------------------------------------------------------------------------


class TestQuotaEnforcement:
    def test_error_is_typed_retryable_and_pickle_safe(self):
        exc = TenantQuotaExceededError(
            "over", tenant="acme", used_bytes=10, quota_bytes=8,
            retry_after=0.5,
        )
        assert is_retryable(exc)
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is TenantQuotaExceededError
        assert (clone.tenant, clone.used_bytes, clone.quota_bytes,
                clone.retry_after) == ("acme", 10, 8, 0.5)

    def test_quota_without_governor_is_refused_loudly(self):
        # quotas are attributed through the memory governor: a context
        # without a budget cannot enforce them, and silent non-enforcement
        # would be a security hole — so construction fails.
        sc = _context()  # no memory_budget_bytes
        assert sc.memory_manager is None
        config = ServiceConfig(
            tenant_policies={"capped": TenantPolicy(quota_bytes=1 << 20)},
        )
        try:
            with pytest.raises(ValueError, match="memory governor"):
                SolverService(sc, config=config)
            # weight/rate-only policies are fine without a governor
            service = SolverService(sc, config=ServiceConfig(
                tenant_policies={"capped": TenantPolicy(weight=2, rate=10.0)},
            ))
            service.stop()
        finally:
            sc.stop()

    def test_serve_cli_refuses_quota_without_memory_budget(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--socket", str(tmp_path / "t.sock"),
             "--tenant-quota", "capped=1048576"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert proc.returncode == 2
        assert "--tenant-quota requires --memory-budget" in proc.stderr

    @pytest.mark.timeout(120)
    def test_breach_refuses_only_the_breacher_and_releases_on_settle(self):
        charge = _table().nbytes * 3  # tenant_charge_factor default
        # room for one in-flight solve plus its cached result — but not
        # for a second concurrent flight
        quota = charge + _table().nbytes
        sc = _context(memory_budget_bytes=64 << 20)
        config = ServiceConfig(
            tenant_policies={"capped": TenantPolicy(quota_bytes=quota)},
        )
        service = SolverService(sc, config=config)
        gate = _gate_solves(service)
        try:
            first = service.submit(_request(0, tenant="capped"))
            with pytest.raises(TenantQuotaExceededError) as exc_info:
                service.submit(_request(1, tenant="capped"))
            err = exc_info.value
            assert err.tenant == "capped"
            assert err.used_bytes == charge
            assert err.quota_bytes == quota
            assert err.retry_after is not None
            # nobody else's state was touched: an unquota'd tenant and
            # the anonymous queue both admit fine
            other = service.submit(_request(2, tenant="free"))
            anon = service.submit(_request(3))
            assert service.metrics.quota_rejections == 1
            assert (
                service.metrics.per_tenant["capped"]["quota_rejections"] == 1
            )
            gate.set()
            result = first.result(120).result
            assert result.tobytes() == _reference(0).tobytes()
            assert other.result(120)
            assert anon.result(120)
            # the flight charge was released at settlement; what remains
            # attributed is exactly the tenant's cached result bytes
            held = sc.memory_manager.tenant_usage()["capped"]["held_bytes"]
            assert held == result.nbytes
            # ... so the previously refused solve now fits
            retry = service.solve(_request(1, tenant="capped"), timeout=120)
            assert retry.result.tobytes() == _reference(1).tobytes()
        finally:
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_cache_charge_breach_skips_caching_never_evicts_others(self):
        # quota exactly equals the in-flight charge: the flight fits, but
        # at settlement the cached-result charge would breach — so the
        # result is simply not cached for this tenant; no other tenant's
        # cache entry is sacrificed to make room.
        charge = _table().nbytes * 3
        sc = _context(memory_budget_bytes=64 << 20)
        config = ServiceConfig(
            tenant_policies={"tight": TenantPolicy(quota_bytes=charge)},
        )
        service = SolverService(sc, config=config)
        try:
            assert service.solve(_request(0, tenant="rich"), timeout=120)
            assert service.solve(_request(1, tenant="tight"), timeout=120)
            assert service.metrics.engine_passes == 2
            # tight's result never made the cache: same request is a miss
            again = service.solve(_request(1, tenant="tight"), timeout=120)
            assert not again.from_cache
            assert service.metrics.engine_passes == 3
            # rich's entry survived untouched
            hit = service.solve(_request(0, tenant="rich"), timeout=120)
            assert hit.from_cache
            held = sc.memory_manager.tenant_usage()["tight"]["held_bytes"]
            assert held == 0
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# token-bucket admission rate limit
# ---------------------------------------------------------------------------


class TestRateLimit:
    @pytest.mark.timeout(120)
    def test_over_rate_tenant_is_refused_with_retry_after(self):
        sc = _context()
        config = ServiceConfig(
            tenant_policies={
                "chatty": TenantPolicy(rate=0.001, burst=1),
            },
        )
        service = SolverService(sc, config=config)
        try:
            assert service.solve(_request(0, tenant="chatty"), timeout=120)
            with pytest.raises(TenantQuotaExceededError) as exc_info:
                service.submit(_request(1, tenant="chatty"))
            assert exc_info.value.tenant == "chatty"
            assert exc_info.value.retry_after > 0
            assert is_retryable(exc_info.value)
            assert service.metrics.rate_limited == 1
            assert service.metrics.per_tenant["chatty"]["rate_limited"] == 1
            # unlimited tenants are unaffected
            assert service.solve(_request(2, tenant="quiet"), timeout=120)
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# brownout effects on live passes: clamp, degrade (bit-identical), shed
# ---------------------------------------------------------------------------


class TestBrownoutEffects:
    @pytest.mark.timeout(120)
    def test_clamp_rung_forces_pipeline_depth_1_and_restores(self):
        sc = _context(pipeline_depth=4)
        service = SolverService(sc)
        observed = []
        service._solve = lambda req, offload: (
            observed.append((sc.pipeline_depth, req.strategy)),
            np.zeros((2, 2), dtype=SPEC.dtype),
        )[1]
        try:
            service.ladder.level = 1  # clamp
            service._run_engine_pass(_request(0), None, offload=False)
            assert observed == [(1, "im")]  # depth clamped, strategy kept
            assert sc.pipeline_depth == 4  # restored after the pass
            assert service.metrics.brownout_clamps == 1
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(180)
    def test_degrade_rung_serves_im_on_cb_bit_identical(self):
        sc = _context()
        service = SolverService(sc)
        seen = []
        original = service._solve
        service._solve = lambda req, offload: (
            seen.append(req.strategy),
            original(req, offload),
        )[1]
        try:
            service.ladder.level = 2  # degrade
            out = service._run_engine_pass(
                _request(0, strategy="im"), None, offload=False
            )
            assert seen == ["cb"]  # the PR 3 latch, by request rewrite
            assert out.tobytes() == _reference(0).tobytes()
            assert service.metrics.brownout_degrades == 1
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_disarmed_brownout_leaves_passes_alone(self):
        sc = _context(pipeline_depth=4)
        service = SolverService(sc, config=ServiceConfig(brownout=False))
        observed = []
        service._solve = lambda req, offload: (
            observed.append((sc.pipeline_depth, req.strategy)),
            np.zeros((2, 2), dtype=SPEC.dtype),
        )[1]
        try:
            service.ladder.level = 3
            service._run_engine_pass(
                _request(0, strategy="im"), None, offload=False
            )
            assert observed == [(4, "im")]
            assert service.metrics.brownout_clamps == 0
            assert service.metrics.brownout_degrades == 0
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(180)
    def test_shed_rung_refuses_lowest_weight_tenants_only(self):
        sc = _context(memory_budget_bytes=32 << 20)
        config = ServiceConfig(
            max_queue_depth=4,
            tenant_policies={
                "heavy": TenantPolicy(weight=3),
                "light": TenantPolicy(weight=1),
            },
        )
        service = SolverService(sc, config=config)
        gate = _gate_solves(service)
        mm = sc.memory_manager
        ballast = int(mm.budget_bytes * 0.95)
        try:
            tickets = [
                service.submit(_request(seed, tenant="heavy"))
                for seed in range(4)
            ]
            mm.reserve("execution", "test-ballast", ballast, force=True)
            # the lighter tenant is brownout-shed with a typed hint...
            with pytest.raises(ServiceOverloadedError) as light_exc:
                service.submit(_request(9, tenant="light"))
            assert light_exc.value.level == "brownout"
            assert light_exc.value.retry_after is not None
            assert is_retryable(light_exc.value)
            assert service.metrics.brownout_sheds == 1
            assert service.metrics.per_tenant["light"]["sheds"] == 1
            # ... while the heaviest tenant is never brownout-shed: it
            # falls through to the plain critical-pressure admission gate
            with pytest.raises(ServiceOverloadedError) as heavy_exc:
                service.submit(_request(10, tenant="heavy"))
            assert heavy_exc.value.level == "critical"
            assert service.metrics.brownout_sheds == 1  # unchanged
            # transitions are metered and clear on read
            transitions = service.metrics.drain_brownout_transitions()
            assert any(t.endswith("->shed") for t in transitions)
            assert service.metrics.drain_brownout_transitions() == []
            assert service.metrics.brownout_level == "shed"
            mm.release("execution", "test-ballast", ballast)
            gate.set()
            for ticket in tickets:
                assert ticket.result(120)
        finally:
            mm.release("execution", "test-ballast", ballast)
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.timeout(180)
    def test_equal_weights_brownout_shed_nobody(self):
        sc = _context(memory_budget_bytes=32 << 20)
        config = ServiceConfig(max_queue_depth=4)
        service = SolverService(sc, config=config)
        gate = _gate_solves(service)
        mm = sc.memory_manager
        ballast = int(mm.budget_bytes * 0.95)
        try:
            tickets = [
                service.submit(_request(seed, tenant="a")) for seed in range(4)
            ]
            mm.reserve("execution", "test-ballast", ballast, force=True)
            with pytest.raises(ServiceOverloadedError) as exc_info:
                service.submit(_request(9, tenant="b"))
            # equal weights: never the brownout gate, only the plain one
            assert exc_info.value.level == "critical"
            assert service.metrics.brownout_sheds == 0
            mm.release("execution", "test-ballast", ballast)
            gate.set()
            for ticket in tickets:
                assert ticket.result(120)
        finally:
            mm.release("execution", "test-ballast", ballast)
            gate.set()
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# the acceptance soak: seeded noisy-neighbor storm, equal weights
# ---------------------------------------------------------------------------


class TestNoisyNeighborStorm:
    @pytest.mark.chaos
    @pytest.mark.timeout(300)
    def test_victim_keeps_weighted_share_and_results_stay_bit_identical(self):
        plan = FaultPlan.from_string("seed=7,noisy_neighbor=1.0")
        sc = _context()
        config = ServiceConfig(
            max_queue_depth=32,
            tenant_policies={
                "hog": TenantPolicy(weight=1),
                "victim": TenantPolicy(weight=1),
            },
        )
        service = SolverService(sc, config=config)
        pass_order: list[str] = []
        original = service._solve
        service._solve = lambda req, offload: (
            pass_order.append(req.tenant),
            original(req, offload),
        )[1]

        def make_request(tenant: str, seq: int) -> SolveRequest:
            seed = {"hog": 1000, "victim": 2000}[tenant] + seq
            return SolveRequest(
                spec=SPEC, table=_table(16, seed), r=4, kernel=KERNEL,
                tenant=tenant,
            )

        try:
            outcomes = run_noisy_neighbor_storm(
                service, make_request, requests_per_tenant=4, plan=plan,
            )
        finally:
            service.stop()
            sc.stop()

        # the seeded hog actually fired (seed=7 bursts: 3,2,2,1)
        assert plan.fired()["noisy_neighbor"] == 4
        assert [r["burst"] for r in outcomes["hog"]] == [3, 2, 2, 1]
        # same seed → same burst schedule (deterministic chaos)
        replay = FaultPlan.from_string("seed=7,noisy_neighbor=1.0")
        assert [replay.noisy_neighbor(0, s) for s in range(4)] == [3, 2, 2, 1]

        # the victim was never shed and every request completed
        assert all(r["ok"] for r in outcomes["victim"]), outcomes["victim"]
        assert service.metrics.per_tenant["victim"]["sheds"] == 0

        # bit-identical to solo runs of the same workloads
        for record in outcomes["victim"]:
            reference = _reference(2000 + record["seq"], n=16, r=4)
            assert (
                record["response"].result.tobytes() == reference.tobytes()
            ), f"victim seq {record['seq']} drifted under the storm"

        # fairness: within the contention window (up to the victim's
        # last settled pass), equal weights give the victim >= 40% of
        # engine passes no matter how hard the hog floods
        last = max(i for i, t in enumerate(pass_order) if t == "victim")
        window = pass_order[: last + 1]
        share = window.count("victim") / len(window)
        assert share >= 0.4, f"victim starved: {share:.2f} of {window}"

    @pytest.mark.chaos
    @pytest.mark.timeout(300)
    def test_storm_composes_with_mem_squeeze(self):
        plan = FaultPlan.from_string(
            "seed=23,noisy_neighbor=1.0,mem_squeeze=0.2"
        )
        sc = _context(memory_budget_bytes=256 << 20, fault_plan=plan)
        config = ServiceConfig(
            max_queue_depth=32,
            tenant_policies={
                "hog": TenantPolicy(weight=1),
                "victim": TenantPolicy(weight=1),
            },
        )
        service = SolverService(sc, config=config)

        def make_request(tenant: str, seq: int) -> SolveRequest:
            seed = {"hog": 3000, "victim": 4000}[tenant] + seq
            return SolveRequest(
                spec=SPEC, table=_table(16, seed), r=4, kernel=KERNEL,
                tenant=tenant,
            )

        try:
            outcomes = run_noisy_neighbor_storm(
                service, make_request, requests_per_tenant=3, plan=plan,
            )
        finally:
            service.stop()
            sc.stop()
        assert plan.fired()["noisy_neighbor"] >= 1
        assert all(r["ok"] for r in outcomes["victim"])
        for record in outcomes["victim"]:
            reference = _reference(4000 + record["seq"], n=16, r=4)
            assert (
                record["response"].result.tobytes() == reference.tobytes()
            )


# ---------------------------------------------------------------------------
# send_request honors retry_after (satellite: sleep-schedule regression)
# ---------------------------------------------------------------------------


def _fake_server(sock_path: str, replies: list) -> threading.Thread:
    """Serve canned replies, one connection each, then close."""
    server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    server.bind(sock_path)
    server.listen(4)

    def loop() -> None:
        try:
            for reply in replies:
                conn, _ = server.accept()
                try:
                    _recv_msg(conn)
                    _send_msg(conn, reply)
                finally:
                    conn.close()
        finally:
            server.close()

    thread = threading.Thread(target=loop, daemon=True)
    thread.start()
    return thread


class TestSendRequestRetrySchedule:
    @pytest.mark.timeout(60)
    def test_typed_refusals_sleep_exactly_retry_after(self, monkeypatch):
        sleeps: list[float] = []
        import repro.service as service_module

        monkeypatch.setattr(
            service_module.time, "sleep", lambda s: sleeps.append(s)
        )
        shed = {
            "status": "error",
            "error": ServiceOverloadedError(
                "busy", level="critical", retry_after=0.31
            ),
            "retryable": True,
        }
        ok = {"status": "ok", "state": "completed"}
        sock_dir = tempfile.mkdtemp(prefix="repro-tenancy-")
        sock = os.path.join(sock_dir, "s.sock")
        try:
            _fake_server(sock, [shed, shed, ok])
            reply = send_request(sock, {"op": "stats"}, retries=5)
            assert reply["status"] == "ok"
            # the server's hint, verbatim — not exponential backoff
            assert sleeps == [0.31, 0.31]
        finally:
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(sock_dir)

    @pytest.mark.timeout(60)
    def test_exhausted_attempts_return_the_last_typed_refusal(
        self, monkeypatch
    ):
        sleeps: list[float] = []
        import repro.service as service_module

        monkeypatch.setattr(
            service_module.time, "sleep", lambda s: sleeps.append(s)
        )
        quota = {
            "status": "error",
            "error": TenantQuotaExceededError(
                "over", tenant="acme", retry_after=0.07
            ),
            "retryable": True,
        }
        sock_dir = tempfile.mkdtemp(prefix="repro-tenancy-")
        sock = os.path.join(sock_dir, "s.sock")
        try:
            _fake_server(sock, [quota, quota, quota])
            reply = send_request(sock, {"op": "stats"}, retries=2)
            assert reply["status"] == "error"
            assert isinstance(reply["error"], TenantQuotaExceededError)
            assert sleeps == [0.07, 0.07]
        finally:
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(sock_dir)

    @pytest.mark.timeout(60)
    def test_transport_failures_keep_jittered_exponential_backoff(
        self, monkeypatch
    ):
        sleeps: list[float] = []
        import repro.service as service_module

        monkeypatch.setattr(
            service_module.time, "sleep", lambda s: sleeps.append(s)
        )
        missing = os.path.join(
            tempfile.mkdtemp(prefix="repro-tenancy-"), "nobody.sock"
        )
        with pytest.raises(OSError):
            send_request(
                missing, {"op": "stats"}, retries=3,
                backoff_base=0.05, backoff_cap=2.0,
            )
        assert len(sleeps) == 3
        for attempt, slept in enumerate(sleeps):
            base = min(0.05 * 2**attempt, 2.0)
            assert base * 0.5 <= slept < base * 1.5, (attempt, slept)
        os.rmdir(os.path.dirname(missing))


# ---------------------------------------------------------------------------
# TileTracker charges the governor (PR 9 follow-up satellite)
# ---------------------------------------------------------------------------


class TestTrackerGovernorCharge:
    def test_settle_charges_prune_and_close_release(self):
        mm = MemoryManager(1 << 20)
        tracker = TileTracker(memory=mm)
        tile = np.ones((16, 16))
        tracker.settle((0, 0, 0), tile)
        tracker.settle((1, 0, 0), tile)
        usage = mm.usage()
        owner_held = usage["by_owner"]["execution"]["pipeline-tracker"]
        assert owner_held == 2 * tile.nbytes
        tracker.prune_below(1)  # drops version 0
        held = mm.usage()["by_owner"]["execution"].get("pipeline-tracker", 0)
        assert held == tile.nbytes
        tracker.close()  # the final window releases at end of solve
        assert "pipeline-tracker" not in mm.usage()["by_owner"]["execution"]
        assert mm.usage()["live_bytes"] == 0

    def test_memoryless_tracker_still_works(self):
        tracker = TileTracker()
        tracker.settle((0, 0, 0), np.ones(4))
        tracker.prune_below(1)
        tracker.close()

    @pytest.mark.pipeline
    @pytest.mark.timeout(180)
    def test_pipelined_solve_leaves_no_tracker_charge_behind(self):
        sc = _context(memory_budget_bytes=256 << 20, pipeline_depth=2)
        try:
            solver = GepSparkSolver(
                SPEC, sc, r=4, kernel=KERNEL, collect_stats=False
            )
            out, _ = solver.solve(_table(16, 0))
            assert out.tobytes() == _reference(0, n=16, r=4).tobytes()
            ledger = sc.memory_manager.usage()["by_owner"]["execution"]
            assert "pipeline-tracker" not in ledger
        finally:
            sc.stop()


# ---------------------------------------------------------------------------
# hypothesis property: multi-tenant WAL replay settles exactly once,
# bit-identical, metered to the right tenant (satellite 4's in-process
# half; the real-SIGKILL half lives in test_service_resume.py's soak)
# ---------------------------------------------------------------------------


class TestTenantResumeProperty:
    @pytest.mark.durability
    @pytest.mark.timeout(600)
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n_tenants=st.sampled_from([2, 3]),
        backend=st.sampled_from(["threads", "processes"]),
        seed=st.integers(min_value=0, max_value=2),
    )
    def test_replays_land_in_the_right_tenant_queues(
        self, n_tenants, backend, seed
    ):
        shm_before = (
            set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else set()
        )
        tenants = [f"t{i}" for i in range(n_tenants)]
        with tempfile.TemporaryDirectory(prefix="repro-tenancy-") as tmp:
            first_life = RequestJournal(os.path.join(tmp, "journal"))
            payloads = {}
            for i, tenant in enumerate(tenants):
                payload = {
                    "problem": "apsp",
                    "n": 16,
                    "seed": seed + 10 * i,
                    "density": 0.4,
                    "r": 4,
                    "strategy": "im",
                    "tenant": tenant,
                }
                payloads[tenant] = payload
                first_life.admit(
                    f"{tenant}-key",
                    _build_request(payload).fingerprint(),
                    payload,
                )
            # ... the first life dies here, mid-flight, with every
            # admission durable and nothing settled
            sc = SparkleContext(
                num_executors=2,
                cores_per_executor=1,
                backend=backend,
                memory_budget_bytes=64 << 20,
            )
            journal = RequestJournal(os.path.join(tmp, "journal"))
            config = ServiceConfig(
                tenant_policies={
                    t: TenantPolicy(weight=i + 1)
                    for i, t in enumerate(tenants)
                },
            )
            service = SolverService(sc, config=config, journal=journal)
            try:
                tickets = service.resume()
                assert len(tickets) == n_tenants
                for ticket in tickets:
                    tenant = ticket.request.tenant
                    assert tenant in payloads  # tenant survived the WAL
                    reference = _reference(
                        payloads[tenant]["seed"], n=16, r=4
                    )
                    assert (
                        ticket.result(120).result.tobytes()
                        == reference.tobytes()
                    ), f"{tenant} drifted across the restart"
                # exactly one engine pass, metered to the right tenant
                for tenant in tenants:
                    counters = service.metrics.per_tenant[tenant]
                    assert counters["engine_passes"] == 1
                    assert counters["completed"] == 1
                    assert counters["sheds"] == 0
                # exactly-once settle in the WAL
                for tenant in tenants:
                    settled = journal.settled_lookup(f"{tenant}-key")
                    assert settled["outcome"] == "completed"
                settles = [
                    e for e in journal.wal.entries()
                    if e.get("kind") == "settled"
                ]
                assert len(settles) == n_tenants
                assert journal.incomplete() == []
                # no leaked tenant attribution: all that remains is each
                # tenant's cached result bytes
                for ticket in tickets:
                    held = sc.memory_manager.tenant_usage()[
                        ticket.request.tenant
                    ]["held_bytes"]
                    assert held == ticket.result(5).result.nbytes
            finally:
                service.stop()
                sc.stop()
        if os.path.isdir("/dev/shm"):
            assert set(os.listdir("/dev/shm")) - shm_before == set()


# ---------------------------------------------------------------------------
# the real thing: SIGKILL a multi-tenant server mid-storm, --resume, and
# every tenant's acked work settles exactly once in its own queue
# ---------------------------------------------------------------------------


def _spawn_tenant_server(sock: str, journal_dir: str, *, resume: bool):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--socket", sock,
        "--journal-dir", journal_dir,
        "--executors", "2", "--cores", "1",
        "--max-queue-depth", "32",
        "--tenant-weight", "hog=1",
        "--tenant-weight", "victim=1",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd, cwd=str(REPO_ROOT), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )


def _wait_ready(sock_path: str, proc, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died during startup (rc={proc.returncode}):\n"
                + proc.stdout.read()
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(sock_path)
            return
        except OSError:
            time.sleep(0.05)
        finally:
            probe.close()
    raise AssertionError(f"server never listened on {sock_path}")


class TestMultiTenantCrashRestart:
    @pytest.mark.resilience
    @pytest.mark.chaos
    @pytest.mark.timeout(600)
    def test_sigkill_midstorm_settles_each_tenant_exactly_once(
        self, tmp_path
    ):
        tenants, per_tenant = ("hog", "victim"), 3
        # seed=1 fires driver_kill first at (client=0, seq=1) — mid-storm
        plan = FaultPlan.from_string("seed=1,driver_kill=0.25")
        base_seed = {"hog": 5000, "victim": 6000}
        sock_dir = tempfile.mkdtemp(prefix="repro-tnc-")
        sock = os.path.join(sock_dir, "s.sock")
        journal_dir = str(tmp_path / "journal")
        shm_before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm"
        ) else set()

        state = {"proc": _spawn_tenant_server(sock, journal_dir, resume=False)}
        _wait_ready(sock, state["proc"])
        killed = threading.Event()
        kill_lock = threading.Lock()
        failures: list[str] = []
        outcomes: list[tuple[str, int, dict]] = []
        outcomes_lock = threading.Lock()

        def kill_and_restart() -> None:
            proc = state["proc"]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            if proc.returncode != -signal.SIGKILL:
                failures.append(
                    f"first server exited rc={proc.returncode}, not SIGKILL"
                )
            state["proc"] = _spawn_tenant_server(
                sock, journal_dir, resume=True
            )
            try:
                _wait_ready(sock, state["proc"])
            except AssertionError as exc:
                failures.append(str(exc))

        def client_loop(client: int, tenant: str) -> None:
            for seq in range(per_tenant):
                if plan.driver_kill(client, seq) and not killed.is_set():
                    with kill_lock:
                        if not killed.is_set():
                            kill_and_restart()
                            killed.set()
                key = f"{tenant}-s{seq}"
                payload = {
                    "problem": "apsp",
                    "n": 16,
                    "seed": base_seed[tenant] + seq,
                    "density": 0.4,
                    "r": 4,
                    "strategy": "im",
                    "tenant": tenant,
                    "idempotency_key": key,
                    "return_result": True,
                    "timeout": 60,
                }
                try:
                    reply = send_request(sock, payload, timeout=60, retries=12)
                except OSError as exc:
                    failures.append(f"{key}: transport never recovered: {exc}")
                    continue
                with outcomes_lock:
                    outcomes.append((tenant, seq, reply))

        threads = [
            threading.Thread(
                target=client_loop, args=(i, t), name=f"tnc-{t}", daemon=True
            )
            for i, t in enumerate(tenants)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not any(t.is_alive() for t in threads), "storm deadlocked"
            assert not failures, failures
            assert killed.is_set(), "seeded driver_kill never fired"

            # every acked request, in every tenant, is bit-identical
            assert len(outcomes) == len(tenants) * per_tenant
            for tenant, seq, reply in outcomes:
                assert reply["status"] == "ok", f"{tenant}-s{seq}: {reply!r}"
                reference = _reference(base_seed[tenant] + seq, n=16, r=4)
                assert (
                    reply["result"].tobytes() == reference.tobytes()
                ), f"{tenant}-s{seq} drifted across the crash"

            # exactly-once per tenant key across both server lives
            completed = Counter()
            wal_path = Path(journal_dir) / "requests.wal"
            for line in wal_path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from the SIGKILL
                if (
                    record.get("kind") == "settled"
                    and record.get("outcome") == "completed"
                ):
                    completed[record["key"]] += 1
            double = {k: v for k, v in completed.items() if v > 1}
            assert not double, f"keys settled more than once: {double}"
            for tenant in tenants:
                for seq in range(per_tenant):
                    assert completed[f"{tenant}-s{seq}"] == 1

            # graceful drain prints the per-tenant breakdown
            proc = state["proc"]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, f"drain failed:\n{out}"
            assert "per-tenant:" in out
            assert "hog" in out and "victim" in out
            assert not os.path.exists(sock), "socket file leaked"
        finally:
            proc = state["proc"]
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(sock_dir)

        journal = RequestJournal(journal_dir)
        assert journal.incomplete() == []
        if os.path.isdir("/dev/shm"):
            assert set(os.listdir("/dev/shm")) - shm_before == set()
