"""RDD laws: random transformation pipelines vs plain-Python semantics.

Hypothesis drives random sequences of transformations applied in
parallel to (a) an RDD on the engine and (b) an ordinary Python list
with reference semantics; any divergence is an engine bug.  This is the
strongest guard the engine has against subtle shuffle/combine/ordering
regressions.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparkle import SparkleContext


# ----------------------------------------------------------------------
# Each op is (name, rdd_transform, list_reference). References operate
# on plain lists of (key, value) int pairs.
# ----------------------------------------------------------------------
def _ref_reduce_by_key(pairs, parts):
    acc: dict = {}
    order: list = []
    for k, v in pairs:
        if k in acc:
            acc[k] = acc[k] + v
        else:
            acc[k] = v
            order.append(k)
    return [(k, acc[k]) for k in order]


def _ref_group_by_key(pairs, parts):
    acc = defaultdict(list)
    order = []
    for k, v in pairs:
        if k not in acc:
            order.append(k)
        acc[k].append(v)
    return [(k, tuple(sorted(acc[k]))) for k in order]


def _num(v):
    """Numeric view of a value (grouping ops may nest values in tuples)."""
    return v if isinstance(v, int) else sum(_num(x) for x in v)


OPS = {
    "map": (
        lambda rdd: rdd.map(lambda kv: (kv[0], _num(kv[1]) * 2 + 1)),
        lambda data: [(k, _num(v) * 2 + 1) for k, v in data],
        False,
    ),
    "filter": (
        lambda rdd: rdd.filter(lambda kv: _num(kv[1]) % 3 != 0),
        lambda data: [(k, v) for k, v in data if _num(v) % 3 != 0],
        False,
    ),
    "flatMap": (
        lambda rdd: rdd.flatMap(lambda kv: [kv, (kv[0] + 1, -_num(kv[1]))]),
        lambda data: [x for kv in data for x in (kv, (kv[0] + 1, -_num(kv[1])))],
        False,
    ),
    "mapValues": (
        lambda rdd: rdd.mapValues(lambda v: _num(v) - 7),
        lambda data: [(k, _num(v) - 7) for k, v in data],
        False,
    ),
    "keyMod": (
        lambda rdd: rdd.map(lambda kv: (kv[0] % 4, kv[1])),
        lambda data: [(k % 4, v) for k, v in data],
        False,
    ),
    # Aggregating ops normalize values through _num first: an upstream
    # groupSorted nests values in tuples while a later flatMap emits
    # fresh ints for the same keys, and neither `tuple + int` nor
    # sorting a mixed list is defined (in the engine *or* the
    # reference).
    "reduceByKey": (
        lambda rdd: rdd.mapValues(_num).reduceByKey(lambda a, b: a + b, 3),
        lambda data: _ref_reduce_by_key([(k, _num(v)) for k, v in data], 3),
        True,
    ),
    "groupSorted": (
        lambda rdd: rdd.mapValues(_num)
        .groupByKey(3)
        .mapValues(lambda v: tuple(sorted(v))),
        lambda data: _ref_group_by_key([(k, _num(v)) for k, v in data], 3),
        True,
    ),
    "distinctish": (
        lambda rdd: rdd.distinct(3),
        lambda data: list(dict.fromkeys(data)),
        True,
    ),
    "partitionBy": (
        lambda rdd: rdd.partitionBy(5),
        lambda data: data,
        True,
    ),
    "coalesce": (
        lambda rdd: rdd.coalesce(2),
        lambda data: data,
        False,
    ),
    "union_self_head": (
        lambda rdd: rdd.union(rdd.filter(lambda kv: _num(kv[1]) > 50)),
        lambda data: data + [(k, v) for k, v in data if _num(v) > 50],
        False,
    ),
}

#: ops whose output order is engine-defined: compare as multisets.
_UNORDERED_AFTER = {"reduceByKey", "groupSorted", "distinctish", "partitionBy"}


@given(
    data=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=9),
            st.integers(min_value=-100, max_value=100),
        ),
        max_size=30,
    ),
    ops=st.lists(st.sampled_from(sorted(OPS)), min_size=1, max_size=5),
    parts=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=60, deadline=None)
def test_random_pipelines_match_reference(data, ops, parts):
    with SparkleContext(2, 2) as sc:
        rdd = sc.parallelize(data, parts)
        expect = list(data)
        unordered = False
        for name in ops:
            transform, reference, breaks_order = OPS[name]
            rdd = transform(rdd)
            expect = reference(expect)
            unordered = unordered or name in _UNORDERED_AFTER
        got = rdd.collect()
    if unordered:
        def freeze(x):
            return repr(x)

        assert sorted(map(freeze, got)) == sorted(map(freeze, expect))
    else:
        assert got == expect


@given(
    data=st.lists(st.integers(min_value=-50, max_value=50), max_size=25),
    parts=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_actions_match_python(data, parts):
    with SparkleContext(2, 2) as sc:
        rdd = sc.parallelize(data, parts)
        assert rdd.count() == len(data)
        assert rdd.collect() == data
        assert rdd.sum() == sum(data)
        if data:
            assert rdd.max() == max(data)
            assert rdd.min() == min(data)
            assert rdd.first() == data[0]
            assert rdd.takeOrdered(3) == sorted(data)[:3]
        assert rdd.isEmpty() == (len(data) == 0)


@given(
    data=st.lists(
        st.tuples(st.integers(0, 5), st.integers(-9, 9)), max_size=20
    ),
)
@settings(max_examples=30, deadline=None)
def test_join_matches_python(data):
    left = data[: len(data) // 2]
    right = data[len(data) // 2 :]
    with SparkleContext(2, 2) as sc:
        got = sorted(
            sc.parallelize(left, 2).join(sc.parallelize(right, 2), 3).collect()
        )
    expect = sorted(
        (k, (lv, rv)) for k, lv in left for k2, rv in right if k == k2
    )
    assert got == expect
