"""The §V reproductions: every table/figure experiment runs and its
shape claims hold."""

import pytest

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.fig7 import kernel_dependency_edges
from repro.experiments.report import ExperimentResult, Table, fmt_seconds
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep


class TestReportRendering:
    def test_fmt_seconds(self):
        assert fmt_seconds(None) == "—"
        assert fmt_seconds(30000) == ">8h"
        assert fmt_seconds(1500) == "1,500"
        assert fmt_seconds(42.4) == "42"

    def test_table_render(self):
        t = Table("T", ["a", "b"], ["r1"], [[1.0, 2.0]], note="hi")
        text = t.render()
        assert "T" in text and "r1" in text and "note: hi" in text

    def test_result_render_and_claims(self):
        r = ExperimentResult("x", "desc")
        r.add_claim("c", "p", "m", True)
        assert r.all_claims_hold
        r.add_claim("c2", "p", "m", False)
        assert not r.all_claims_hold
        assert "[FAIL]" in r.render()


class TestRegistry:
    def test_all_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig6", "fig7", "fig8", "fig9", "headline",
        }

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


class TestFig7Edges:
    def test_edges_stable_across_grid_sizes(self):
        for r in (2, 3, 5):
            assert kernel_dependency_edges(GaussianEliminationGep(), r=r) == {
                ("A", "B"), ("A", "C"), ("A", "D"), ("B", "D"), ("C", "D"),
            }
            assert kernel_dependency_edges(FloydWarshallGep(), r=r) == {
                ("A", "B"), ("A", "C"), ("B", "D"), ("C", "D"),
            }


@pytest.mark.parametrize("name", ["table1", "table2", "fig7", "fig9"])
def test_fast_experiments_claims_hold(name):
    result = run_experiment(name)
    assert result.tables, name
    failed = [c for c, *_rest, ok in [(c, p, m, ok) for c, p, m, ok in result.claims] if not ok]
    assert result.all_claims_hold, (name, result.claims)


@pytest.mark.slow
@pytest.mark.parametrize("name", ["fig6", "fig8", "headline"])
def test_slow_experiments_claims_hold(name):
    result = run_experiment(name, fast=True)
    assert result.all_claims_hold, (name, result.claims)
