"""Public solver APIs: floyd_warshall, gaussian_*, transitive_closure,
semiring_closure, run_gep plumbing."""

import numpy as np
import pytest

from repro.baselines import (
    boolean_closure_by_squaring,
    networkx_apsp,
    numpy_floyd_warshall,
    numpy_gaussian_solve,
    scipy_shortest_paths,
)
from repro.core import (
    PivotError,
    back_substitute,
    determinant,
    floyd_warshall,
    forward_eliminate,
    gaussian_solve,
    has_negative_cycle,
    lu_decompose,
    reconstruct_path,
    run_gep,
    semiring_closure,
    strongly_connected_pairs,
    transitive_closure,
)
from repro.core.fwapsp import _prepare_weights
from repro.core.gep import FloydWarshallGep
from repro.core.transitive import reachable_from
from repro.sparkle import SparkleContext
from repro.workloads import (
    diagonally_dominant,
    grid_road_network,
    layered_dag_weights,
    random_digraph_weights,
    spd_matrix,
    weights_to_boolean,
)


class TestFloydWarshall:
    def test_matches_scipy_and_numpy(self):
        w = random_digraph_weights(40, 0.25, seed=1)
        d = floyd_warshall(w)
        np.testing.assert_allclose(d, scipy_shortest_paths(w))
        np.testing.assert_allclose(d, numpy_floyd_warshall(w))

    def test_matches_networkx_dijkstra(self):
        w = grid_road_network(5, 5, seed=2)
        np.testing.assert_allclose(floyd_warshall(w), networkx_apsp(w))

    def test_unreachable_stays_inf(self):
        w = np.full((3, 3), np.inf)
        np.fill_diagonal(w, 0)
        w[0, 1] = 1.0
        d = floyd_warshall(w)
        assert d[0, 1] == 1.0 and np.isinf(d[1, 0]) and np.isinf(d[0, 2])

    def test_engines_agree(self):
        w = random_digraph_weights(20, 0.3, seed=3)
        ref = floyd_warshall(w, engine="reference")
        local = floyd_warshall(w, engine="local", r=3, kernel="recursive",
                               r_shared=2, base_size=4)
        with SparkleContext(2, 2) as sc:
            spark = floyd_warshall(w, engine="spark", sc=sc, r=3, strategy="cb")
        np.testing.assert_allclose(local, ref)
        np.testing.assert_allclose(spark, ref)

    def test_input_not_mutated(self):
        w = random_digraph_weights(10, 0.4, seed=4)
        before = w.copy()
        floyd_warshall(w)
        np.testing.assert_array_equal(w, before)

    def test_negative_cycle_detection(self):
        w = np.array([[0.0, 1.0, np.inf], [np.inf, 0.0, -3.0], [1.0, np.inf, 0.0]])
        assert has_negative_cycle(w)
        assert not has_negative_cycle(random_digraph_weights(10, 0.4, seed=5))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            floyd_warshall(np.zeros((2, 3)))

    def test_rejects_unknown_option(self):
        with pytest.raises(TypeError):
            floyd_warshall(np.zeros((2, 2)), warp_drive=True)

    def test_return_report(self):
        w = random_digraph_weights(8, 0.4, seed=6)
        d, report = floyd_warshall(w, engine="local", r=2, return_report=True)
        assert report.strategy == "local" and report.r == 2


class TestPathReconstruction:
    def test_path_is_shortest(self):
        w = grid_road_network(4, 4, seed=7)
        d = floyd_warshall(w)
        path = reconstruct_path(d, w, 0, 15)
        assert path[0] == 0 and path[-1] == 15
        total = sum(w[a, b] for a, b in zip(path, path[1:]))
        assert total == pytest.approx(d[0, 15])

    def test_trivial_path(self):
        w = random_digraph_weights(5, 0.5, seed=8)
        d = floyd_warshall(w)
        assert reconstruct_path(d, w, 2, 2) == [2]

    def test_unreachable_raises(self):
        w = np.full((2, 2), np.inf)
        np.fill_diagonal(w, 0)
        d = floyd_warshall(w)
        with pytest.raises(ValueError):
            reconstruct_path(d, w, 0, 1)

    def test_bad_vertex(self):
        w = np.zeros((2, 2))
        with pytest.raises(IndexError):
            reconstruct_path(w, w, 0, 5)


class TestGaussian:
    @pytest.mark.parametrize("n", [1, 2, 7, 20])
    def test_solve_matches_lapack(self, n):
        a = diagonally_dominant(n, seed=n)
        b = np.arange(n, dtype=float) + 1
        x = gaussian_solve(a, b)
        np.testing.assert_allclose(x, numpy_gaussian_solve(a, b), rtol=1e-8)

    def test_solve_spd(self):
        a = spd_matrix(12, condition=50, seed=1)
        b = np.ones(12)
        np.testing.assert_allclose(
            gaussian_solve(a, b), numpy_gaussian_solve(a, b), rtol=1e-6
        )

    def test_multi_rhs(self):
        a = diagonally_dominant(9, seed=2)
        b = np.random.default_rng(0).uniform(-1, 1, (9, 3))
        x = gaussian_solve(a, b)
        assert x.shape == (9, 3)
        np.testing.assert_allclose(a @ x, b, rtol=1e-8, atol=1e-10)

    def test_lu_decomposition(self):
        a = diagonally_dominant(11, seed=3)
        l, u = lu_decompose(a)
        np.testing.assert_allclose(l @ u, a, rtol=1e-9)
        np.testing.assert_allclose(np.diag(l), 1.0)
        assert np.allclose(l, np.tril(l)) and np.allclose(u, np.triu(u))

    def test_determinant(self):
        a = diagonally_dominant(8, seed=4)
        assert determinant(a) == pytest.approx(np.linalg.det(a), rel=1e-8)

    def test_forward_eliminate_shapes(self):
        a = diagonally_dominant(6, seed=5)
        u, y = forward_eliminate(a, np.ones(6))
        assert u.shape == (6, 6) and y.shape == (6,)
        u2, y2 = forward_eliminate(a, None)
        assert y2 is None

    def test_back_substitute_rejects_singular(self):
        with pytest.raises(PivotError):
            back_substitute(np.array([[1.0, 2.0], [0.0, 0.0]]), np.ones(2))

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_pivot_error_on_zero_pivot_matrix(self):
        # Needs pivoting: leading entry zero.
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(PivotError):
            lu_decompose(a)

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ValueError):
            gaussian_solve(np.eye(3), np.ones(4))

    def test_spark_engine_solves(self):
        a = diagonally_dominant(16, seed=6)
        b = np.ones(16)
        with SparkleContext(2, 2) as sc:
            x = gaussian_solve(a, b, engine="spark", sc=sc, r=3,
                               kernel="recursive", r_shared=2, base_size=4)
        np.testing.assert_allclose(x, numpy_gaussian_solve(a, b), rtol=1e-8)


class TestTransitiveClosure:
    def test_matches_boolean_squaring(self):
        adj = weights_to_boolean(random_digraph_weights(25, 0.12, seed=1))
        np.testing.assert_array_equal(
            transitive_closure(adj), boolean_closure_by_squaring(adj)
        )

    def test_layered_dag_reachability(self):
        w = layered_dag_weights(4, 3, density=1.0, seed=0)
        adj = np.isfinite(w) & ~np.eye(12, dtype=bool)
        closure = transitive_closure(adj)
        assert closure[0, 11]  # first layer reaches last
        assert not closure[11, 0]

    def test_non_reflexive(self):
        adj = np.zeros((3, 3), dtype=bool)
        closure = transitive_closure(adj, reflexive=False)
        assert not closure.any()

    def test_reachable_from(self):
        adj = np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=bool)
        np.testing.assert_array_equal(reachable_from(adj, 0), [True, True, True])
        with pytest.raises(IndexError):
            reachable_from(adj, 9)

    def test_strongly_connected_pairs(self):
        adj = np.array([[0, 1, 0], [1, 0, 0], [0, 1, 0]], dtype=bool)
        scc = strongly_connected_pairs(adj)
        assert scc[0, 1] and scc[1, 0]
        assert not scc[2, 0]

    def test_spark_engine(self):
        adj = weights_to_boolean(random_digraph_weights(18, 0.15, seed=2))
        ref = transitive_closure(adj)
        with SparkleContext(2, 2) as sc:
            got = transitive_closure(adj, engine="spark", sc=sc, r=3, strategy="im")
        np.testing.assert_array_equal(got, ref)


class TestSemiringClosure:
    def test_maxplus_longest_path_on_dag(self):
        w = layered_dag_weights(3, 2, density=1.0, seed=1)
        table = np.where(np.isfinite(w), w, -np.inf)
        np.fill_diagonal(table, 0.0)
        longest = semiring_closure(table, "maxplus")
        # longest path 0 -> last layer must be >= any single edge chain
        assert longest[0, 4] >= table[0, 2] + table[2, 4]

    def test_tropical_equals_fw(self):
        w = random_digraph_weights(15, 0.3, seed=3)
        np.testing.assert_allclose(semiring_closure(w, "tropical"), floyd_warshall(w))


class TestRunGepPlumbing:
    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            run_gep(FloydWarshallGep(), np.zeros((4, 4)), engine="gpu")

    def test_spark_engine_owns_context_when_missing(self):
        w = random_digraph_weights(8, 0.5, seed=9)
        out, report = run_gep(FloydWarshallGep(), _prepare_weights(w), engine="spark", r=2)
        np.testing.assert_allclose(out, floyd_warshall(w))

    def test_local_report_stats(self):
        w = random_digraph_weights(8, 0.5, seed=10)
        out, report = run_gep(
            FloydWarshallGep(), _prepare_weights(w), engine="local", r=2,
            collect_stats=True,
        )
        assert report.kernel_stats.updates == 8**3
