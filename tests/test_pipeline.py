"""Wavefront pipelining: dependence-driven stage admission (DESIGN.md §17).

The invariant under test is the tentpole contract of the pipelined solve
path: for any ``pipeline_depth >= 2`` the engine may overlap outer
iterations, but only under the *derived* tile-level dependence relation
(:func:`repro.poly.cross_iteration_edges`), so the result stays
bit-identical to barrier mode — across every distribution strategy,
both backends, seeded chaos, and crash-resume — while the pipeline
metrics prove real overlap happened.
"""

import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.api import run_gep
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
)
from repro.poly import (
    asap_levels,
    cross_iteration_edges,
    iteration_read_versions,
    schedule_iteration,
)
from repro.sparkle import FaultPlan, FaultSpec, SparkleContext
from repro.sparkle.pipeline import TileTracker

from .conftest import fw_table, ge_table, tc_table

pytestmark = pytest.mark.pipeline

REPO_ROOT = Path(__file__).resolve().parent.parent
FW = FloydWarshallGep()
GE = GaussianEliminationGep()
TC = TransitiveClosureGep()


def solve(table, *, spec=FW, strategy="im", r=8, depth=1, backend="threads",
          plan=None, memory_budget=None):
    with SparkleContext(3, 2, fault_plan=plan, pipeline_depth=depth,
                        backend=backend,
                        memory_budget_bytes=memory_budget) as sc:
        kernel = make_kernel(spec, "iterative", r_shared=2, base_size=4)
        solver = GepSparkSolver(spec, sc, r=r, kernel=kernel,
                                strategy=strategy)
        out, report = solver.solve(table)
        return out, report, sc.metrics


# ----------------------------------------------------------------------
# TileTracker: the readiness map the admission path is built on
# ----------------------------------------------------------------------
class TestTileTracker:
    def test_when_fires_immediately_when_satisfied(self):
        t = TileTracker()
        t.settle((1, 0, 0), "x")
        hits = []
        t.when([(1, 0, 0)], lambda: hits.append(1))
        assert hits == [1]

    def test_when_fires_on_last_gate(self):
        t = TileTracker()
        hits = []
        t.when([(1, 0, 0), (1, 0, 1)], lambda: hits.append(1))
        t.settle((1, 0, 0), "a")
        assert hits == []
        t.settle((1, 0, 1), "b")
        assert hits == [1]
        assert t.get((1, 0, 0)) == "a"

    def test_waiters_fire_in_registration_order(self):
        t = TileTracker()
        hits = []
        t.when([(2, 0, 0)], lambda: hits.append("first"))
        t.when([(2, 0, 0)], lambda: hits.append("second"))
        t.settle((2, 0, 0), None)
        assert hits == ["first", "second"]

    def test_double_settle_raises(self):
        t = TileTracker()
        t.settle((1, 0, 0), "x")
        with pytest.raises(RuntimeError, match="settled twice"):
            t.settle((1, 0, 0), "y")

    def test_forward_propagates_value(self):
        t = TileTracker()
        t.forward((1, 2, 3), (2, 2, 3))
        t.settle((1, 2, 3), "payload")
        assert t.get((2, 2, 3)) == "payload"

    def test_wait_all_timeout(self):
        t = TileTracker()
        with pytest.raises(TimeoutError, match="never settled"):
            t.wait_all([(9, 0, 0)], timeout=0.01)

    def test_abort_latches_first_error_and_wakes(self):
        t = TileTracker()
        t.abort(ValueError("boom"))
        t.abort(KeyError("later"))  # first error wins
        with pytest.raises(ValueError, match="boom"):
            t.wait_all([(1, 0, 0)], timeout=1.0)
        with pytest.raises(ValueError, match="boom"):
            t.get((1, 0, 0))
        # settles after abort are dropped, callbacks never fire
        hits = []
        t.when([(1, 0, 0)], lambda: hits.append(1))
        t.settle((1, 0, 0), "x")
        assert hits == []

    def test_prune_below_drops_old_versions_only(self):
        t = TileTracker()
        t.settle((1, 0, 0), "old")
        t.settle((3, 0, 0), "new")
        t.prune_below(2)
        with pytest.raises(KeyError):
            t.get((1, 0, 0))
        assert t.get((3, 0, 0)) == "new"


# ----------------------------------------------------------------------
# derived legality: ASAP levels and the cross-iteration relation
# ----------------------------------------------------------------------
class TestDerivedDependences:
    @pytest.mark.parametrize("spec", [FW, GE, TC], ids=["fw", "ge", "tc"])
    @pytest.mark.parametrize("nb", [1, 2, 4])
    def test_asap_levels_pin_the_wavefront(self, spec, nb):
        """Computed levels are exactly rank(A)=0, rank(B)=rank(C)=1,
        rank(D)=2 — the A -> (B || C) -> D wavefront, derived not
        asserted."""
        expected_rank = {"A": 0, "B": 1, "C": 1, "D": 2}
        for kb in range(nb):
            tiles, level = asap_levels(spec, kb, nb)
            assert len(tiles) == len(level)
            for tile, lv in zip(tiles, level):
                assert lv == expected_rank[tile.case], (kb, tile)
            # consistency with the staged view
            stages = schedule_iteration(spec, kb, nb)
            assert [t.case for st_ in stages for t in st_] == sorted(
                (t.case for t in tiles), key=expected_rank.get
            )

    def test_read_versions_fw_k0(self):
        """Version split for FW kb=0, nb=2: A reads its own tile pre;
        B/C read the pivot post-update; D reads its row/col/pivot
        operands post-update."""
        va = {v.point: v for v in iteration_read_versions(FW, 0, 2)}
        a = va[(0, 0, 0)]
        assert a.case == "A" and a.post_reads == frozenset()
        b = va[(0, 0, 1)]
        assert b.case == "B"
        assert b.pre_reads == frozenset({(0, 1)})
        assert b.post_reads == frozenset({(0, 0)})
        d = va[(0, 1, 1)]
        assert d.case == "D"
        assert d.pre_reads == frozenset({(1, 1)})
        assert d.post_reads == frozenset({(1, 0), (0, 1), (0, 0)})

    def test_cross_iteration_edges_fw(self):
        """Iteration 1's pivot work depends only on iteration 0's writes
        to the tiles it reads — not on all of iteration 0."""
        edges = cross_iteration_edges(FW, 0, 3)
        # next pivot A(1,1,1) needs k=0's D on (1,1) only
        assert edges[(1, 1, 1)] == frozenset({(0, 1, 1)})
        # B(1,1,2): reads (1,2) and pivot (1,1); both written at k=0
        assert edges[(1, 1, 2)] == frozenset({(0, 1, 2), (0, 1, 1)})
        # D(1,0,0): reads (0,0),(0,1),(1,0),(1,1) - all written at k=0
        assert edges[(1, 0, 0)] == frozenset(
            {(0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1)}
        )

    def test_cross_iteration_edges_shrink_for_ge(self):
        """GE's trailing submatrix shrinks: points outside iteration
        kb+1's active region simply do not appear."""
        edges = cross_iteration_edges(GE, 0, 3)
        assert (1, 0, 0) not in edges  # row 0 is retired after k=0
        assert (1, 1, 1) in edges


# ----------------------------------------------------------------------
# scheduler admission: submit_wave launches tasks as gates settle
# ----------------------------------------------------------------------
def test_submit_wave_admits_on_gate_settle():
    with SparkleContext(2, 2, pipeline_depth=2) as sc:
        sched = sc._scheduler
        tracker = TileTracker()
        trace = sc.metrics.new_job("wave_unit")
        order = []

        def body_a(tc):
            order.append("a")
            return 10

        def body_b(tc):
            order.append("b")
            return 20

        record = sched.submit_wave(trace, "unit", [
            (0, [(1, 0, 0)], body_a,
             lambda out: tracker.settle((2, 0, 0), out)),
            (1, [(2, 0, 0)], body_b,
             lambda out: tracker.settle((2, 1, 1), out)),
        ], tracker)
        assert order == []  # nothing admitted before its gates
        tracker.settle((1, 0, 0), None)
        tracker.wait_all([(2, 1, 1)], timeout=10.0)
        sched.pipeline_drain()
        assert order == ["a", "b"]  # b gated on a's settle
        assert tracker.get((2, 0, 0)) == 10
        assert tracker.get((2, 1, 1)) == 20
        assert record.kind == "pipeline:unit"
        assert len(record.tasks) == 2
        assert sc.metrics.pipeline_waves == 1


def test_wave_task_failure_aborts_tracker():
    with SparkleContext(2, 2, pipeline_depth=2, max_task_failures=1) as sc:
        sched = sc._scheduler
        tracker = TileTracker()
        trace = sc.metrics.new_job("wave_fail")

        def bad(tc):
            raise RuntimeError("kernel exploded")

        sched.submit_wave(
            trace, "unit",
            [(0, [], bad, lambda out: tracker.settle((1, 0, 0), out))],
            tracker,
        )
        with pytest.raises(RuntimeError, match="kernel exploded"):
            tracker.wait_all([(1, 0, 0)], timeout=10.0)
        sched.pipeline_drain()


# ----------------------------------------------------------------------
# bit-identity: pipelined == barrier, every strategy, both backends
# ----------------------------------------------------------------------
TABLE32 = fw_table(32, seed=3)


@pytest.fixture(scope="module")
def barrier32():
    out, _, _ = solve(TABLE32)
    return out


@settings(max_examples=12, deadline=None)
@given(
    strategy=st.sampled_from(["im", "cb", "bcast"]),
    depth=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kill=st.sampled_from([0.0, 0.05]),
    storage=st.sampled_from([0.0, 0.03]),
)
def test_pipelined_differential_under_chaos(
    barrier32, strategy, depth, seed, kill, storage
):
    """Any depth, any strategy, any recoverable seeded fault plan:
    the pipelined result is bit-identical to barrier mode."""
    plan = None
    if kill or storage:
        plan = FaultPlan(seed, [
            FaultSpec("kill", kill),
            FaultSpec("storage", storage),
        ])
    out, report, metrics = solve(TABLE32, strategy=strategy, depth=depth,
                                 plan=plan)
    np.testing.assert_array_equal(out, barrier32)
    pipe = report.extras["pipeline"]
    assert pipe["depth"] == depth
    assert pipe["depth_achieved"] >= 2
    assert metrics.pipeline_iterations == 8  # r=8 grid => 8 outer iterations


def test_pipelined_mem_squeeze_differential(barrier32):
    """Budgeted + seeded governor squeezes mid-solve: admission
    backpressure may reorder launches but never the answer."""
    plan = FaultPlan(11, [FaultSpec("mem_squeeze", 0.5)])
    out, _, _ = solve(TABLE32, strategy="im", depth=2, plan=plan,
                      memory_budget=8 * 1024 * 1024)
    np.testing.assert_array_equal(out, barrier32)


def test_pipelined_ge_and_tc_match_barrier():
    gt = ge_table(32, seed=5)
    base, _, _ = solve(gt, spec=GE, strategy="im")
    piped, _, _ = solve(gt, spec=GE, strategy="cb", depth=3)
    np.testing.assert_array_equal(piped, base)

    tt = tc_table(32, seed=5)
    base, _, _ = solve(tt, spec=TC, strategy="im")
    piped, _, _ = solve(tt, spec=TC, strategy="bcast", depth=2)
    np.testing.assert_array_equal(piped, base)


def test_processes_backend_worker_kill_no_leaks(barrier32):
    """Real SIGKILLed workers mid-pipeline: recovery is bit-identical
    and every shared-memory segment is freed."""
    plan = FaultPlan(7, [FaultSpec("worker_kill", 0.05)])
    out, _, metrics = solve(TABLE32, strategy="cb", depth=2,
                            backend="processes", plan=plan)
    np.testing.assert_array_equal(out, barrier32)
    s = metrics.summary()
    assert plan.total_fired() > 0
    assert s["shm_segments_created"] == s["shm_segments_freed"]


# ----------------------------------------------------------------------
# overlap metrics: pipelined mode provably overlaps, barrier never does
# ----------------------------------------------------------------------
def test_pipeline_summary_shows_overlap():
    t = fw_table(96, seed=1, density=0.35)
    with SparkleContext(2, 2, pipeline_depth=2) as sc:
        out_p, _ = run_gep(FW, t, engine="spark", r=12, strategy="im", sc=sc)
        piped = sc.metrics.pipeline_summary()
    with SparkleContext(2, 2) as sc:
        out_b, _ = run_gep(FW, t, engine="spark", r=12, strategy="im", sc=sc)
        barrier = sc.metrics.pipeline_summary()
    np.testing.assert_array_equal(out_p, out_b)
    assert piped["pipeline_depth"] == 2
    assert piped["pipeline_depth_achieved"] >= 2
    assert piped["overlapped_stages"] > 0
    assert barrier["overlapped_stages"] == 0
    assert barrier["pipeline_depth"] == 1
    assert barrier["barrier_wait_seconds"] >= 0.0
    # the summary() rollup carries the deterministic counters; the
    # wall-clock-derived fields live only in pipeline_summary() so that
    # identical-seed runs keep identical summaries
    rollup = sc.metrics.summary()
    for key in ("pipeline_depth", "pipeline_depth_achieved",
                "pipeline_iterations", "pipeline_waves", "stage_windows"):
        assert key in rollup
    assert "barrier_wait_seconds" not in rollup
    assert "overlapped_stages" not in rollup


# ----------------------------------------------------------------------
# crash-resume: SIGKILL mid-pipeline, resume bit-identical
# ----------------------------------------------------------------------
def test_sigkill_mid_pipeline_resume_bit_identical(tmp_path):
    """A depth-2 solve SIGKILLed while iteration k+1 is in flight must
    resume from the journal to the exact bytes of an uninterrupted
    run — the seal protocol never journals an iteration whose trailing
    tiles have not settled."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    ckdir = tmp_path / "ck"
    script = textwrap.dedent(f"""
        import os, signal
        from repro.core import floyd_warshall
        from repro.workloads import random_digraph_weights

        w = random_digraph_weights(32, 0.3, seed=0)

        def die(k):
            if k == 1:
                os.kill(os.getpid(), signal.SIGKILL)

        floyd_warshall(w, engine="spark", r=8, kernel="iterative",
                       r_shared=4, pipeline_depth=2,
                       checkpoint_dir={str(ckdir)!r}, on_iteration=die)
    """)
    proc = subprocess.run([sys.executable, "-c", script], env=env,
                          cwd=REPO_ROOT, capture_output=True)
    assert proc.returncode == -signal.SIGKILL

    resume = textwrap.dedent(f"""
        import numpy as np
        from repro.core import floyd_warshall
        from repro.workloads import random_digraph_weights

        w = random_digraph_weights(32, 0.3, seed=0)
        baseline = floyd_warshall(w, engine="spark", r=8,
                                  kernel="iterative", r_shared=4)
        resumed = floyd_warshall(w, engine="spark", r=8,
                                 kernel="iterative", r_shared=4,
                                 pipeline_depth=2,
                                 checkpoint_dir={str(ckdir)!r}, resume=True)
        assert np.asarray(baseline).tobytes() == np.asarray(resumed).tobytes()
        print("RESUME_OK")
    """)
    done = subprocess.run([sys.executable, "-c", resume], env=env,
                          cwd=REPO_ROOT, capture_output=True, text=True)
    assert done.returncode == 0, done.stdout + done.stderr
    assert "RESUME_OK" in done.stdout


def test_staged_solve_max_iterations_with_pipeline(tmp_path):
    base, _, _ = solve(TABLE32)
    out1, rep1 = run_gep(FW, TABLE32, engine="spark", r=8, strategy="im",
                         pipeline_depth=2, checkpoint_dir=str(tmp_path),
                         max_iterations=2)
    assert rep1.extras["partial"]["iterations_completed"] == 2
    out2, rep2 = run_gep(FW, TABLE32, engine="spark", r=8, strategy="im",
                         pipeline_depth=2, checkpoint_dir=str(tmp_path),
                         resume=True)
    assert "partial" not in rep2.extras
    np.testing.assert_array_equal(out2, base)


# ----------------------------------------------------------------------
# API validation + CLI plumbing
# ----------------------------------------------------------------------
class TestValidationAndCli:
    def test_depth_below_one_rejected(self):
        with pytest.raises(ValueError, match="pipeline_depth must be >= 1"):
            run_gep(FW, TABLE32, engine="spark", pipeline_depth=0)
        with pytest.raises(ValueError, match="pipeline_depth must be >= 1"):
            SparkleContext(2, 2, pipeline_depth=0)

    def test_depth_requires_spark_engine(self):
        with pytest.raises(ValueError, match="requires engine='spark'"):
            run_gep(FW, TABLE32, engine="local", pipeline_depth=2)

    def test_depth_requires_owned_context(self):
        with SparkleContext(2, 2) as sc:
            with pytest.raises(ValueError, match="owned context"):
                run_gep(FW, TABLE32, engine="spark", pipeline_depth=2, sc=sc)

    def test_cli_solve_pipelined(self, capsys):
        from repro.__main__ import main as cli_main

        rc = cli_main(["solve", "apsp", "--engine", "spark", "--n", "32",
                       "--r", "8", "--seed", "0", "--pipeline-depth", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "APSP solved" in out
        assert "pipeline:" in out

    def test_cli_rejects_pipelining_off_spark(self, capsys):
        from repro.__main__ import main as cli_main

        rc = cli_main(["solve", "apsp", "--engine", "local", "--n", "16",
                       "--pipeline-depth", "2"])
        assert rc == 2
        assert "requires --engine spark" in capsys.readouterr().err

    def test_cli_rejects_bad_depth(self, capsys):
        from repro.__main__ import main as cli_main

        rc = cli_main(["solve", "apsp", "--engine", "spark", "--n", "16",
                       "--pipeline-depth", "0"])
        assert rc == 2
        assert "must be >= 1" in capsys.readouterr().err
