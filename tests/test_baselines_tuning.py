"""Baseline solvers and the analytical tuning advisor."""

import numpy as np
import pytest

from repro.baselines import SchoenemanZolaAPSP, numpy_floyd_warshall
from repro.cluster import haswell16, laptop, skylake16
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.core.tuning import candidate_blocks, tune
from repro.sparkle import SparkleContext
from repro.workloads import random_digraph_weights


class TestSchoenemanZolaBaseline:
    def test_directed_solve_correct(self):
        w = random_digraph_weights(24, 0.3, seed=1)
        with SparkleContext(2, 2) as sc:
            baseline = SchoenemanZolaAPSP(sc, block_size=8)
            d, report = baseline.solve(w)
        np.testing.assert_allclose(d, numpy_floyd_warshall(w))
        assert report.strategy == "im"
        assert report.kernel["kind"] == "iterative"

    def test_undirected_mode(self):
        w = random_digraph_weights(12, 0.4, seed=2)
        sym = np.minimum(w, w.T)
        with SparkleContext(2, 2) as sc:
            d, _ = SchoenemanZolaAPSP(sc, block_size=4).solve(sym, directed=False)
        np.testing.assert_allclose(d, numpy_floyd_warshall(sym))
        np.testing.assert_allclose(d, d.T)  # symmetric output

    def test_undirected_requires_symmetry(self):
        w = random_digraph_weights(6, 0.5, seed=3)
        with SparkleContext(1, 1) as sc:
            with pytest.raises(ValueError):
                SchoenemanZolaAPSP(sc, block_size=2).solve(w, directed=False)

    def test_block_size_drives_r(self):
        w = random_digraph_weights(20, 0.4, seed=4)
        with SparkleContext(2, 2) as sc:
            _, report = SchoenemanZolaAPSP(sc, block_size=6).solve(w)
        assert report.r == 4  # ceil(20 / 6)

    def test_validation(self):
        with SparkleContext(1, 1) as sc:
            with pytest.raises(ValueError):
                SchoenemanZolaAPSP(sc, block_size=0)
            with pytest.raises(ValueError):
                SchoenemanZolaAPSP(sc).solve(np.zeros((2, 3)))


class TestRecursiveBeatsBaselineOnModel:
    def test_paper_headline_vs_baseline(self):
        """Our tuned recursive config must beat the S&Z-style baseline
        configuration on the modeled cluster (the paper's >= 2x claim)."""
        from repro.cluster import CostModel, ExecutionPlan

        model = CostModel(skylake16())
        spec = FloydWarshallGep()
        n = 32768
        baseline_best = min(
            model.estimate(spec, n, n // b, ExecutionPlan("im", "iterative")).total
            for b in (256, 512, 1024)
        )
        ours = tune(
            spec, n, skylake16(),
            kernels=("recursive",), omp_values=(8, 16, 32), r_shared_values=(4, 16),
        ).best[2]
        assert baseline_best / ours >= 1.8


class TestTuning:
    def test_candidate_blocks(self):
        assert candidate_blocks(4096) == [128, 256, 512, 1024, 2048]
        assert candidate_blocks(8, min_block=128)  # fallback non-empty

    def test_advice_structure(self):
        advice = tune(
            FloydWarshallGep(), 8192, laptop(),
            omp_values=(2, 4), r_shared_values=(2, 4), top=5,
        )
        assert advice.ranking == sorted(advice.ranking, key=lambda t: t[2])
        assert len(advice.ranking) <= 5
        assert advice.best == advice.ranking[0]
        assert "laptop" in advice.describe()
        assert advice.n // advice.best[0] == advice.block

    def test_recursive_preferred_at_scale(self):
        advice = tune(
            GaussianEliminationGep(), 32768, skylake16(),
            omp_values=(8, 16), r_shared_values=(4,),
        )
        assert advice.best[1].kernel == "recursive"

    def test_cluster_specific_answers_differ(self):
        """Fig. 8's lesson: the best plan depends on the cluster."""
        kw = dict(omp_values=(4, 8, 16), r_shared_values=(4, 16))
        sky = tune(FloydWarshallGep(), 32768, skylake16(), **kw)
        has = tune(FloydWarshallGep(), 32768, haswell16(), **kw)
        sky_cfg = (sky.best[0], sky.best[1].label(), sky.best[1].executor_cores)
        has_cfg = (has.best[0], has.best[1].label(), has.best[1].executor_cores)
        # predicted times must differ substantially; the chosen plan
        # usually differs too, but at minimum cluster 2 is slower.
        assert has.best[2] > 1.5 * sky.best[2]

    def test_rejects_infeasible(self):
        with pytest.raises(ValueError):
            tune(FloydWarshallGep(), 4, laptop(), kernels=())
