"""Request-plane tests for the solver service (DESIGN.md §15).

Covers the four defensive layers of :class:`repro.service.SolverService`
— admission control under memory pressure, single-flight dedup plus the
checksummed result cache, per-request deadlines that cancel mid-flight
without leaks, and the retry/circuit-breaker path — and closes with the
seeded request-storm chaos soak: ≥16 concurrent clients over a
process-backend context with worker kills and memory squeezes underneath,
asserting every admitted request completes bit-identical to a direct
solve or fails with a typed, retryable error, with zero leaked shm
segments, worker processes, or cache reservations.
"""

from __future__ import annotations

import glob
import multiprocessing
import pickle
import socket
import struct
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import floyd_warshall
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.service import (
    CircuitBreaker,
    ResultCache,
    ServiceConfig,
    SolverService,
    _recv_msg,
    _send_msg,
    is_retryable,
    run_request_storm,
    send_request,
    serve_forever,
)
from repro.sparkle import (
    CircuitOpenError,
    FaultPlan,
    FrameTooLargeError,
    JobAborted,
    RequestDeadlineExceeded,
    ServiceDrainingError,
    ServiceOverloadedError,
    SolveRequest,
    SparkleContext,
    WorkerCrashed,
)
from repro.sparkle.memory import PRESSURE_CRITICAL
from repro.sparkle.metrics import ServiceMetrics
from repro.workloads import random_digraph_weights

pytestmark = pytest.mark.service

SPEC = FloydWarshallGep()
KERNEL = make_kernel(SPEC, "iterative")


def _table(n: int = 24, seed: int = 0) -> np.ndarray:
    return random_digraph_weights(n, 0.4, seed=seed).astype(SPEC.dtype)


def _request(seed: int = 0, *, n: int = 24, r: int = 6, **kw) -> SolveRequest:
    return SolveRequest(
        spec=SPEC, table=_table(n, seed), r=r, kernel=KERNEL, **kw
    )


def _context(**kw) -> SparkleContext:
    kw.setdefault("num_executors", 2)
    kw.setdefault("cores_per_executor", 1)
    return SparkleContext(**kw)

_REFERENCES: dict = {}


def _reference(seed: int = 0, *, n: int = 24, r: int = 6) -> np.ndarray:
    """Direct (service-free) engine solve — THE bit-identity baseline.

    The blocked engine's update order drifts ~1e-15 from the dense
    ``floyd_warshall`` reference, so byte-level assertions must compare
    engine-vs-engine; semantic correctness vs the dense reference is
    checked separately with ``np.allclose``.
    """
    key = (seed, n, r)
    if key not in _REFERENCES:
        sc = _context()
        try:
            solver = GepSparkSolver(
                SPEC, sc, r=r, kernel=KERNEL, collect_stats=False
            )
            out, _ = solver.solve(_table(n, seed))
        finally:
            sc.stop()
        _REFERENCES[key] = out
    return _REFERENCES[key]



class SlowKernel:
    """Delegating kernel that sleeps before every tile update.

    Slows a solve down deterministically so a mid-flight deadline lands
    between scheduler attempt boundaries.  ``describe()`` includes the
    delay, so fingerprints never collide with the plain kernel's.
    Module-level (and state-light) so the process backend can pickle it.
    """

    def __init__(self, inner, delay: float) -> None:
        self.inner = inner
        self.delay = delay

    def describe(self) -> dict:
        return {**self.inner.describe(), "slow_delay": self.delay}

    def run(self, *args, **kwargs):
        time.sleep(self.delay)
        return self.inner.run(*args, **kwargs)

    def __getattr__(self, name):
        # guard against pickle probing attributes before __init__ ran
        if "inner" not in self.__dict__:
            raise AttributeError(name)
        return getattr(self.inner, name)


# ---------------------------------------------------------------------------
# typed service errors (satellite: pickle-safety regression)
# ---------------------------------------------------------------------------


class TestServiceErrors:
    @pytest.mark.parametrize(
        "exc",
        [
            ServiceOverloadedError(
                "shed", level="critical", queue_depth=7, retry_after=0.25
            ),
            RequestDeadlineExceeded("late", deadline=1.5, elapsed=2.25),
            CircuitOpenError("open", backend="processes", failures=3,
                             retry_after=1.0),
            ServiceDrainingError("draining for shutdown", retry_after=0.75),
            FrameTooLargeError("frame too big", length=1 << 40,
                               limit=1 << 20),
        ],
        ids=lambda e: type(e).__name__,
    )
    def test_pickle_round_trip_preserves_everything(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert clone.args == exc.args
        assert vars(clone) == vars(exc)

    def test_retryability_contract(self):
        assert is_retryable(ServiceOverloadedError("shed"))
        assert is_retryable(CircuitOpenError("open"))
        assert is_retryable(WorkerCrashed("died", 1, "kill"))
        assert not is_retryable(RequestDeadlineExceeded("late"))
        assert not is_retryable(ValueError("config"))

    def test_breaker_fault_unwraps_job_aborted_cause(self):
        from repro.service import _breaker_fault

        aborted = JobAborted("gave up")
        aborted.__cause__ = WorkerCrashed("died", 2, "kill")
        assert _breaker_fault(aborted)
        benign = JobAborted("gave up")
        benign.__cause__ = ValueError("not a crash")
        assert not _breaker_fault(benign)


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmission:
    @pytest.mark.timeout(120)
    def test_critical_pressure_sheds_with_typed_error(self):
        sc = _context(memory_budget_bytes=1 << 20)
        try:
            mm = sc.memory_manager
            assert mm.reserve("execution", "ballast", (1 << 20) - 1,
                              force=True)
            assert mm.pressure() == PRESSURE_CRITICAL
            with SolverService(sc) as service:
                with pytest.raises(ServiceOverloadedError) as excinfo:
                    service.submit(_request(seed=1))
                assert excinfo.value.level == PRESSURE_CRITICAL
                assert excinfo.value.retry_after is not None
                assert is_retryable(excinfo.value)
                assert service.metrics.requests_shed == 1
                # released pressure admits the same request again
                mm.release("execution", "ballast", (1 << 20) - 1)
                response = service.solve(_request(seed=1), timeout=60)
                assert np.array_equal(
                    response.result, _reference(1)
                )
        finally:
            sc.stop()

    @pytest.mark.timeout(120)
    def test_bounded_queue_sheds_overflow_then_recovers(self):
        sc = _context()
        gate = threading.Event()
        service = SolverService(sc, config=ServiceConfig(max_queue_depth=3))
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        try:
            tickets = [service.submit(_request(seed=s)) for s in range(3)]
            with pytest.raises(ServiceOverloadedError) as excinfo:
                service.submit(_request(seed=99))
            assert excinfo.value.queue_depth >= 3
            assert service.metrics.requests_shed == 1
            # shed requests leave no residue in the dedup table
            assert _request(seed=99).fingerprint() not in service._inflight
            gate.set()
            for seed, ticket in enumerate(tickets):
                response = ticket.result(60)
                assert np.array_equal(
                    response.result, _reference(seed)
                )
            # drained queue admits again
            assert service.solve(_request(seed=99), timeout=60)
        finally:
            gate.set()
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# single-flight dedup + result cache
# ---------------------------------------------------------------------------


class TestSingleFlight:
    @pytest.mark.timeout(120)
    def test_duplicates_coalesce_onto_one_engine_pass(self):
        sc = _context()
        service = SolverService(sc)
        gate = threading.Event()
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        try:
            tickets = [service.submit(_request(seed=5)) for _ in range(6)]
            gate.set()
            responses = [t.result(60) for t in tickets]
            reference = _reference(5)
            for response in responses:
                assert np.array_equal(response.result, reference)
            assert service.metrics.engine_passes == 1
            assert service.metrics.single_flight_coalesced == 5
            assert sum(1 for r in responses if r.coalesced) == 5
        finally:
            gate.set()
            service.stop()
            sc.stop()


class TestResultCache:
    @pytest.mark.timeout(300)
    @given(
        strategy=st.sampled_from(["im", "cb", "bcast"]),
        seed=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=6, deadline=None)
    def test_cached_response_is_byte_identical_to_fresh_solve(
        self, strategy, seed
    ):
        sc = _context(memory_budget_bytes=64 << 20)
        try:
            with SolverService(sc) as service:
                request = _request(seed=seed, strategy=strategy)
                fresh = service.solve(request, timeout=60)
                assert not fresh.from_cache
                repeat = service.solve(
                    _request(seed=seed, strategy=strategy), timeout=60
                )
                assert repeat.from_cache
                assert repeat.result.tobytes() == fresh.result.tobytes()
                assert repeat.result.dtype == fresh.result.dtype
                # and both match the direct (service-free) solver
                solver = GepSparkSolver(
                    SPEC, sc, r=6, kernel=KERNEL, strategy=strategy,
                    collect_stats=False,
                )
                direct, _ = solver.solve(_table(24, seed))
                sc.reclaim_solve_state()
                assert fresh.result.tobytes() == direct.tobytes()
                assert np.allclose(direct, floyd_warshall(_table(24, seed)))
                assert service.metrics.engine_passes == 1
        finally:
            sc.stop()

    @pytest.mark.timeout(120)
    def test_processes_backend_cache_identical_to_threads(self):
        reference = _reference(2)
        sc = _context(backend="processes", heartbeat_interval=0.0)
        try:
            with SolverService(sc) as service:
                fresh = service.solve(_request(seed=2), timeout=90)
                repeat = service.solve(_request(seed=2), timeout=90)
                assert repeat.from_cache
                assert fresh.result.tobytes() == repeat.result.tobytes()
                assert np.array_equal(fresh.result, reference)
        finally:
            sc.stop()

    @pytest.mark.timeout(120)
    def test_squeeze_invalidates_entries_instead_of_serving_stale(self):
        sc = _context(memory_budget_bytes=8 << 20)
        try:
            with SolverService(sc) as service:
                service.solve(_request(seed=0), timeout=60)
                assert len(service.cache) == 1
                # shrink the budget under the cache's feet: listener
                # must shed entries until pressure clears
                ballast = 5 << 20
                sc.memory_manager.reserve(
                    "execution", "ballast", ballast, force=True
                )
                sc.memory_manager.squeeze(0.5)
                assert len(service.cache) == 0
                assert service.metrics.cache_invalidations >= 1
                sc.memory_manager.release("execution", "ballast", ballast)
                # next request recomputes — correctly, not from a ghost
                response = service.solve(_request(seed=0), timeout=60)
                assert not response.from_cache
                assert service.metrics.engine_passes == 2
                assert np.array_equal(
                    response.result, _reference(0)
                )
        finally:
            sc.stop()

    @pytest.mark.timeout(120)
    def test_corrupted_entry_fails_checksum_and_is_never_served(self):
        sc = _context()
        try:
            with SolverService(sc) as service:
                fresh = service.solve(_request(seed=3), timeout=60)
                fingerprint = fresh.fingerprint
                entry = service.cache._entries[fingerprint]
                entry.array[0, 0] += 1.0  # simulate bit-rot in place
                response = service.solve(_request(seed=3), timeout=60)
                assert not response.from_cache
                assert service.metrics.cache_integrity_failures == 1
                assert np.array_equal(
                    response.result, _reference(3)
                )
        finally:
            sc.stop()

    @pytest.mark.timeout(120)
    def test_cache_bytes_charged_to_storage_pool_and_released_on_stop(self):
        sc = _context(memory_budget_bytes=64 << 20)
        try:
            service = SolverService(sc)
            service.solve(_request(seed=0), timeout=60)
            owners = sc.memory_manager.usage()["by_owner"]["storage"]
            assert owners.get(ResultCache.OWNER, 0) > 0
            service.stop()
            owners = sc.memory_manager.usage()["by_owner"]["storage"]
            assert owners.get(ResultCache.OWNER, 0) == 0
        finally:
            sc.stop()

    def test_lru_capacity_eviction(self):
        metrics = ServiceMetrics()
        cache = ResultCache(2, None, metrics)
        a, b, c = (np.full((2, 2), float(i)) for i in range(3))
        cache.put("a", a)
        cache.put("b", b)
        assert cache.get("a") is not None  # refresh a; b is now LRU
        cache.put("c", c)
        assert metrics.cache_evictions == 1
        assert cache.get("b") is None
        assert cache.get("a") is not None and cache.get("c") is not None


# ---------------------------------------------------------------------------
# deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    @pytest.mark.timeout(120)
    def test_deadline_expires_while_queued(self):
        sc = _context()
        gate = threading.Event()
        service = SolverService(sc)
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        try:
            blocker = service.submit(_request(seed=0))
            doomed = service.submit(_request(seed=1, deadline=0.05))
            with pytest.raises(RequestDeadlineExceeded) as excinfo:
                doomed.result(60)
            assert not is_retryable(excinfo.value)
            assert doomed.outcome == "deadline-cancelled"
            assert service.metrics.deadline_cancelled == 1
            gate.set()
            assert blocker.result(60)  # unrelated request unaffected
            assert service.metrics.retries == 0  # deadlines never retry
        finally:
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_deadline_cancels_mid_solve_at_scheduler_boundary(self):
        sc = _context()
        try:
            with SolverService(sc) as service:
                slow = SolveRequest(
                    spec=SPEC,
                    table=_table(24, 7),
                    r=6,
                    kernel=SlowKernel(KERNEL, 0.01),
                    deadline=0.15,
                )
                started = time.monotonic()
                with pytest.raises(RequestDeadlineExceeded):
                    service.solve(slow, timeout=60)
                # enforcement is prompt — nowhere near a full slow solve
                # (~200 tile updates x 10ms), and the engine stays usable
                assert time.monotonic() - started < 30.0
                response = service.solve(_request(seed=7), timeout=60)
                assert np.array_equal(
                    response.result, _reference(7)
                )
        finally:
            sc.stop()

    @pytest.mark.timeout(240)
    def test_deadline_kills_offloaded_pass_without_shm_leak(self):
        sc = _context(backend="processes", heartbeat_interval=0.0)
        prefix = sc._executors.backend.arena.prefix
        try:
            with SolverService(sc) as service:
                stuck = SolveRequest(
                    spec=SPEC,
                    table=_table(24, 8),
                    r=2,
                    kernel=SlowKernel(KERNEL, 60.0),
                    deadline=1.0,
                )
                with pytest.raises(RequestDeadlineExceeded):
                    service.solve(stuck, timeout=120)
                # engine still healthy after the SIGKILL/respawn cycle
                # (this solve also serializes behind the stuck flight's
                # cleanup, so the restore below is safe to assert)
                response = service.solve(_request(seed=8, r=2), timeout=120)
                assert np.array_equal(
                    response.result, _reference(8, r=2)
                )
                # the stuck pass's temporary task deadline was restored
                assert sc.supervision.task_deadline is None
        finally:
            sc.stop()
        assert glob.glob(f"/dev/shm/{prefix}*") == []

    @pytest.mark.timeout(120)
    def test_coalesced_waiters_time_out_individually(self):
        sc = _context()
        gate = threading.Event()
        service = SolverService(sc)
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        try:
            table = _table(24, 9)
            patient = service.submit(
                SolveRequest(spec=SPEC, table=table, r=6, kernel=KERNEL)
            )
            hasty = service.submit(
                SolveRequest(
                    spec=SPEC, table=table, r=6, kernel=KERNEL, deadline=0.05
                )
            )
            assert hasty.coalesced
            with pytest.raises(RequestDeadlineExceeded):
                hasty.result(60)
            gate.set()
            response = patient.result(60)  # the flight itself survives
            assert np.array_equal(response.result, _reference(9))
            assert service.metrics.engine_passes == 1
        finally:
            gate.set()
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# retry + circuit breaker
# ---------------------------------------------------------------------------


class TestCircuitBreaker:
    def test_state_machine_trips_half_opens_closes(self):
        metrics = ServiceMetrics()
        breaker = CircuitBreaker(2, 0.1, metrics)
        assert breaker.allow_offload()
        breaker.record_failure(offloaded=True)
        assert breaker.allow_offload()  # one failure is not a pattern
        breaker.record_failure(offloaded=True)
        assert not breaker.allow_offload()  # tripped
        assert metrics.circuit_trips == 1
        assert breaker.retry_after() > 0
        time.sleep(0.12)
        assert breaker.allow_offload()  # half-open probe
        assert metrics.circuit_half_opens == 1
        assert not breaker.allow_offload()  # only ONE probe at a time
        breaker.record_success(offloaded=True)
        assert breaker.state == CircuitBreaker.CLOSED
        assert metrics.circuit_closes == 1

    def test_half_open_failure_reopens(self):
        metrics = ServiceMetrics()
        breaker = CircuitBreaker(1, 0.05, metrics)
        breaker.record_failure(offloaded=True)
        time.sleep(0.06)
        assert breaker.allow_offload()  # probe
        breaker.record_failure(offloaded=True)
        assert not breaker.allow_offload()
        assert metrics.circuit_trips == 2

    def test_thread_path_failures_never_count(self):
        breaker = CircuitBreaker(1, 0.05, ServiceMetrics())
        breaker.record_failure(offloaded=False)
        assert breaker.allow_offload()

    @pytest.mark.timeout(120)
    def test_service_fails_over_to_thread_path_and_recovers(self):
        sc = _context()
        sc.backend = "processes"  # make the breaker arm (no real workers:
        # _solve is stubbed below, so nothing is actually offloaded)
        service = SolverService(
            sc,
            config=ServiceConfig(
                retries=3,
                retry_backoff_base=0.001,
                breaker_threshold=2,
                breaker_cooldown=0.2,
                cache_entries=0,  # force engine passes every time
            ),
        )
        original = service._solve
        crashes = []

        def flaky(request, offload):
            if offload:
                crashes.append(1)
                raise WorkerCrashed("chaos", pid=1234, reason="test")
            return original(request, False)

        service._solve = flaky
        try:
            response = service.solve(_request(seed=4), timeout=60)
            assert np.array_equal(
                response.result, _reference(4)
            )
            m = service.metrics
            assert len(crashes) == 2  # threshold crashes, then failover
            assert m.circuit_trips == 1
            assert m.circuit_failovers >= 1
            assert m.retries == 2
            # after the cooldown the breaker half-opens, probes, closes
            time.sleep(0.25)
            crashes.clear()
            service._solve = original
            assert service.solve(_request(seed=6), timeout=60)
            assert m.circuit_half_opens == 1
            assert m.circuit_closes == 1
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# the seeded request storm (acceptance soak)
# ---------------------------------------------------------------------------


def _assert_storm_outcomes(outcomes, references):
    """Every request: bit-identical success or a typed, honest failure."""
    assert outcomes, "storm produced no outcomes"
    completed = 0
    for record in outcomes:
        if record["ok"]:
            completed += 1
            expected = references[record["fingerprint"]]
            assert record["response"].result.tobytes() == expected.tobytes()
        else:
            error = record["error"]
            assert isinstance(
                error,
                (
                    ServiceOverloadedError,
                    ServiceDrainingError,
                    RequestDeadlineExceeded,
                    CircuitOpenError,
                    WorkerCrashed,
                    JobAborted,
                ),
            ), f"untyped storm failure: {error!r}"
            assert is_retryable(error) or isinstance(
                error, RequestDeadlineExceeded
            )
    return completed


class TestRequestStorm:
    @pytest.mark.chaos
    @pytest.mark.timeout(300)
    def test_sixteen_client_storm_threads(self):
        plan = FaultPlan.from_string("seed=11,request_storm=0.4")
        sc = _context(memory_budget_bytes=64 << 20)
        service = SolverService(sc, config=ServiceConfig(max_queue_depth=32))
        tables = {seed: _table(24, seed) for seed in (0, 1)}
        references = {}
        for seed, table in tables.items():
            request = SolveRequest(spec=SPEC, table=table, r=6, kernel=KERNEL)
            references[request.fingerprint()] = _reference(seed)

        def make_request(client, seq):
            return SolveRequest(
                spec=SPEC,
                table=tables[seq % 2],
                r=6,
                kernel=KERNEL,
                client=f"client-{client}",
            )

        try:
            outcomes = run_request_storm(
                service,
                make_request,
                clients=16,
                requests_per_client=2,
                plan=plan,
                tight_deadline=0.002,
                timeout=120.0,
            )
            completed = _assert_storm_outcomes(outcomes, references)
            m = service.metrics
            assert completed >= 1
            assert m.single_flight_coalesced >= 1
            # dedup + cache bound the real work: 2 distinct solves exist
            assert m.engine_passes <= 2 * (1 + service.config.retries)
            assert plan.fired().get("request_storm", 0) >= 1
        finally:
            service.stop()
            sc.stop()
        assert len(service.cache) == 0

    @pytest.mark.chaos
    @pytest.mark.supervision
    @pytest.mark.timeout(600)
    def test_storm_survives_worker_kills_and_squeezes_without_leaks(self):
        plan = FaultPlan.from_string(
            "seed=23,request_storm=0.3,worker_kill=0.03,mem_squeeze=0.05"
        )
        sc = _context(
            backend="processes",
            fault_plan=plan,
            memory_budget_bytes=96 << 20,
            heartbeat_interval=0.0,
        )
        prefix = sc._executors.backend.arena.prefix
        service = SolverService(
            sc,
            config=ServiceConfig(max_queue_depth=32, retries=3,
                                 retry_backoff_base=0.01),
        )
        tables = {seed: _table(24, seed) for seed in (0, 1)}
        references = {}
        for seed, table in tables.items():
            request = SolveRequest(spec=SPEC, table=table, r=2, kernel=KERNEL)
            references[request.fingerprint()] = _reference(seed, r=2)

        def make_request(client, seq):
            return SolveRequest(
                spec=SPEC,
                table=tables[seq % 2],
                r=2,
                kernel=KERNEL,
                client=f"client-{client}",
            )

        try:
            outcomes = run_request_storm(
                service,
                make_request,
                clients=16,
                requests_per_client=2,
                plan=plan,
                tight_deadline=0.002,
                timeout=300.0,
            )
            completed = _assert_storm_outcomes(outcomes, references)
            assert completed >= 1
            assert service.metrics.single_flight_coalesced >= 1
        finally:
            service.stop()
            sc.stop()
        # nothing leaked: shm segments, worker processes, cache bytes
        assert glob.glob(f"/dev/shm/{prefix}*") == []
        assert multiprocessing.active_children() == []
        assert len(service.cache) == 0


# ---------------------------------------------------------------------------
# socket plane + lifecycle
# ---------------------------------------------------------------------------


class TestSocketPlane:
    @pytest.mark.timeout(120)
    def test_serve_and_request_round_trip(self, tmp_path):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        ready = threading.Event()
        server = threading.Thread(
            target=serve_forever,
            args=(service, socket_path),
            kwargs={"max_requests": 3, "ready": ready},
            daemon=True,
        )
        server.start()
        assert ready.wait(30)
        try:
            payload = {
                "problem": "apsp", "n": 24, "seed": 5, "r": 4,
                "return_result": True,
            }
            first = send_request(socket_path, payload, timeout=60)
            assert first["status"] == "ok"
            assert not first["from_cache"]
            second = send_request(socket_path, payload, timeout=60)
            assert second["status"] == "ok"
            assert second["from_cache"]
            assert first["result"].tobytes() == second["result"].tobytes()
            stats = send_request(socket_path, {"op": "stats"}, timeout=60)
            assert stats["cache_hits"] == 1
            server.join(timeout=30)
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_socket_error_reply_is_typed(self, tmp_path):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        ready = threading.Event()
        server = threading.Thread(
            target=serve_forever,
            args=(service, socket_path),
            kwargs={"max_requests": 1, "ready": ready},
            daemon=True,
        )
        server.start()
        assert ready.wait(30)
        try:
            reply = send_request(
                socket_path, {"problem": "nonsense", "n": 8}, timeout=60
            )
            assert reply["status"] == "error"
            assert isinstance(reply["error"], ValueError)
            server.join(timeout=30)
        finally:
            service.stop()
            sc.stop()


class TestLifecycle:
    @pytest.mark.timeout(120)
    def test_stop_without_drain_fails_queued_requests_typed(self):
        sc = _context()
        gate = threading.Event()
        service = SolverService(sc)
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        running = service.submit(_request(seed=0))
        queued = service.submit(_request(seed=1))
        stopper = threading.Thread(
            target=service.stop, kwargs={"drain": False}, daemon=True
        )
        stopper.start()
        try:
            with pytest.raises(ServiceOverloadedError):
                queued.result(60)
            gate.set()
            assert running.result(60)  # in-flight work still lands
            stopper.join(timeout=30)
            with pytest.raises(RuntimeError):
                service.submit(_request(seed=2))
        finally:
            gate.set()
            stopper.join(timeout=30)
            sc.stop()


# ---------------------------------------------------------------------------
# socket hardening (PR 8 satellites): hostile frames, vanishing clients,
# stale socket files
# ---------------------------------------------------------------------------


def _start_server(service, socket_path, **kwargs):
    """serve_forever on a daemon thread; returns it once the socket binds."""
    ready = threading.Event()
    kwargs.setdefault("ready", ready)
    server = threading.Thread(
        target=serve_forever,
        args=(service, socket_path),
        kwargs=kwargs,
        daemon=True,
    )
    server.start()
    assert ready.wait(30), "server failed to bind"
    return server


class TestSocketHardening:
    @pytest.mark.timeout(120)
    def test_oversized_frame_gets_typed_refusal_and_loop_survives(
        self, tmp_path
    ):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        server = _start_server(
            service, socket_path, max_requests=2, max_frame_bytes=1 << 16
        )
        try:
            hostile = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            hostile.settimeout(30)
            try:
                hostile.connect(socket_path)
                # A header announcing a petabyte: the server must refuse
                # before reading (or allocating) a single payload byte.
                hostile.sendall(struct.pack(">Q", 1 << 50))
                reply = _recv_msg(hostile)
            finally:
                hostile.close()
            assert reply["status"] == "error"
            assert isinstance(reply["error"], FrameTooLargeError)
            assert reply["error"].length == 1 << 50
            assert reply["error"].limit == 1 << 16
            assert reply["retryable"] is False
            # the accept loop is still alive and serving
            stats = send_request(socket_path, {"op": "stats"}, timeout=60)
            assert stats["status"] == "ok"
            assert stats["frames_rejected"] == 1
            server.join(timeout=30)
            assert not server.is_alive()
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_torn_frame_is_that_connections_problem_only(self, tmp_path):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        server = _start_server(service, socket_path, max_requests=2)
        try:
            torn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            torn.connect(socket_path)
            torn.sendall(b"\x00\x00\x00")  # 3 of 8 header bytes, then gone
            torn.close()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                with service._metrics_lock:
                    if service.metrics.client_disconnects:
                        break
                time.sleep(0.01)
            stats = send_request(socket_path, {"op": "stats"}, timeout=60)
            assert stats["status"] == "ok"
            assert stats["client_disconnects"] == 1
            server.join(timeout=30)
            assert not server.is_alive()
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_client_vanishing_before_reply_still_settles_the_work(
        self, tmp_path
    ):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        server = _start_server(service, socket_path, max_requests=2)
        payload = {"problem": "apsp", "n": 24, "seed": 9, "r": 4}
        try:
            ghost = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            ghost.connect(socket_path)
            _send_msg(ghost, payload)
            ghost.close()  # gone before the reply: EPIPE on the server
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                with service._metrics_lock:
                    if service.metrics.client_disconnects:
                        break
                time.sleep(0.01)
            with service._metrics_lock:
                assert service.metrics.client_disconnects == 1
            # the solve itself settled and is served from cache
            reply = send_request(
                socket_path, {**payload, "return_result": True}, timeout=60
            )
            assert reply["status"] == "ok"
            assert reply["from_cache"]
            server.join(timeout=30)
            assert not server.is_alive()
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_stale_socket_file_is_reclaimed_on_next_bind(self, tmp_path):
        socket_path = str(tmp_path / "solver.sock")
        # simulate a SIGKILLed server: bound socket file, no listener
        corpse = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        corpse.bind(socket_path)
        corpse.close()
        assert glob.glob(socket_path)  # the file survived the "crash"
        sc = _context()
        service = SolverService(sc)
        server = _start_server(service, socket_path, max_requests=1)
        try:
            stats = send_request(socket_path, {"op": "stats"}, timeout=60)
            assert stats["status"] == "ok"
            assert stats["stale_sockets_reclaimed"] == 1
            server.join(timeout=30)
        finally:
            service.stop()
            sc.stop()
        assert glob.glob(socket_path) == []  # unlinked on shutdown

    @pytest.mark.timeout(120)
    def test_live_socket_is_never_stolen(self, tmp_path):
        socket_path = str(tmp_path / "solver.sock")
        sc = _context()
        service = SolverService(sc)
        server = _start_server(service, socket_path, max_requests=1)
        try:
            # a second server must refuse to bind over a live listener
            with pytest.raises(OSError, match="live service"):
                serve_forever(service, socket_path, max_requests=1)
            server.join(timeout=30)
            assert not server.is_alive()
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# per-tenant accounting (PR 8 satellite)
# ---------------------------------------------------------------------------


class TestTenantAccounting:
    @pytest.mark.timeout(120)
    def test_requests_and_cache_hits_split_by_tenant(self):
        sc = _context()
        service = SolverService(sc)
        try:
            assert service.solve(_request(0, tenant="acme"), timeout=60)
            hit = service.solve(_request(0, tenant="acme"), timeout=60)
            assert hit.from_cache
            assert service.solve(_request(1, tenant="globex"), timeout=60)
            assert service.solve(_request(2), timeout=60)  # untenanted
            assert service.metrics.per_tenant == {
                "acme": {"requests": 2, "sheds": 0, "cache_hits": 1,
                         "completed": 2, "engine_passes": 1,
                         "quota_rejections": 0, "rate_limited": 0},
                "globex": {"requests": 1, "sheds": 0, "cache_hits": 0,
                           "completed": 1, "engine_passes": 1,
                           "quota_rejections": 0, "rate_limited": 0},
            }
            summary = service.metrics.summary()
            assert summary["per_tenant"]["acme"]["cache_hits"] == 1
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(120)
    def test_sheds_are_charged_to_the_shed_tenant(self):
        sc = _context()
        service = SolverService(sc)
        try:
            service.drain()
            with pytest.raises(ServiceDrainingError):
                service.submit(_request(0, tenant="acme"))
            assert service.metrics.per_tenant["acme"] == {
                "requests": 1, "sheds": 1, "cache_hits": 0,
                "completed": 0, "engine_passes": 0,
                "quota_rejections": 0, "rate_limited": 0,
            }
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# graceful drain (PR 8 tentpole): typed shedding, in-flight work lands
# ---------------------------------------------------------------------------


class TestDrain:
    @pytest.mark.timeout(120)
    def test_drain_sheds_typed_while_inflight_work_lands(self):
        sc = _context()
        gate = threading.Event()
        service = SolverService(sc)
        original = service._solve
        service._solve = lambda req, offload: (
            gate.wait(60),
            original(req, offload),
        )[1]
        try:
            running = service.submit(_request(seed=0))
            assert not service.draining
            service.drain()
            service.drain()  # idempotent
            assert service.draining
            with pytest.raises(ServiceDrainingError) as excinfo:
                service.submit(_request(seed=1))
            assert excinfo.value.retry_after == service.config.drain_retry_after
            assert is_retryable(excinfo.value)
            assert service.metrics.draining_sheds == 1
            gate.set()
            assert running.result(60)  # drain never cancels in-flight work
        finally:
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.chaos
    @pytest.mark.timeout(300)
    def test_storm_with_seeded_driver_kill_twist_drains_midflight(self):
        # seed=13 fires driver_kill first at (client=1, seq=1): the hook
        # drains the service mid-storm, so that client's own request —
        # and every later submission — sheds with the typed draining
        # error while already-admitted flights run to settlement.
        plan = FaultPlan.from_string("seed=13,driver_kill=0.25")
        sc = _context()
        service = SolverService(sc, config=ServiceConfig(max_queue_depth=32))
        tables = {seed: _table(24, seed) for seed in (0, 1)}
        references = {}
        for seed, table in tables.items():
            request = SolveRequest(spec=SPEC, table=table, r=6, kernel=KERNEL)
            references[request.fingerprint()] = _reference(seed)

        def make_request(client, seq):
            return SolveRequest(
                spec=SPEC,
                table=tables[seq % 2],
                r=6,
                kernel=KERNEL,
                client=f"client-{client}",
            )

        try:
            outcomes = run_request_storm(
                service,
                make_request,
                clients=8,
                requests_per_client=3,
                plan=plan,
                timeout=120.0,
                on_driver_kill=lambda client, seq: service.drain(),
            )
            _assert_storm_outcomes(outcomes, references)
            drained = [
                r for r in outcomes
                if not r["ok"] and isinstance(r["error"], ServiceDrainingError)
            ]
            assert drained, "seeded driver_kill twist never shed a request"
            assert all(r["retryable"] for r in drained)
            assert plan.fired().get("driver_kill", 0) >= 1
            assert service.metrics.draining_sheds == len(drained)
        finally:
            service.stop()
            sc.stop()
