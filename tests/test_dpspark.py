"""Distributed GEP drivers (IM/CB) — integration against references."""

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
    gep_reference_vectorized,
)
from repro.sparkle import FaultPlan, FaultSpec, GridPartitioner, SparkleContext
from repro.baselines import numpy_floyd_warshall

from .conftest import assert_tables_equal, fw_table, ge_table, tc_table

SPECS = {
    "fw": (FloydWarshallGep(), fw_table),
    "ge": (GaussianEliminationGep(), ge_table),
    "tc": (TransitiveClosureGep(), tc_table),
}


def _solve(spec, table, strategy, kernel_kind, r, **kw):
    with SparkleContext(num_executors=3, cores_per_executor=2) as sc:
        kernel = make_kernel(spec, kernel_kind, r_shared=2, base_size=4)
        solver = GepSparkSolver(
            spec, sc, r=r, kernel=kernel, strategy=strategy, **kw
        )
        return solver.solve(table)


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("strategy", ["im", "cb"])
@pytest.mark.parametrize("kernel", ["iterative", "recursive"])
@pytest.mark.parametrize("r", [1, 2, 5])
def test_all_quadrants_match_reference(name, strategy, kernel, r):
    spec, make = SPECS[name]
    t = make(20, seed=3)
    expect = gep_reference_vectorized(spec, t)
    got, report = _solve(spec, t, strategy, kernel, r)
    assert_tables_equal(got, expect)
    assert report.strategy == strategy
    assert report.n == 20 and report.r == r


def test_uneven_tiles_supported():
    spec, make = SPECS["fw"]
    t = make(17, seed=1)  # 17 not divisible by 4
    expect = gep_reference_vectorized(spec, t)
    got, _ = _solve(spec, t, "im", "iterative", 4)
    assert_tables_equal(got, expect)


def test_custom_grid_partitioner():
    spec, make = SPECS["fw"]
    t = make(16, seed=2)
    expect = gep_reference_vectorized(spec, t)
    with SparkleContext(2, 2) as sc:
        solver = GepSparkSolver(
            spec, sc, r=4, kernel=make_kernel(spec, "iterative"),
            strategy="im", partitioner=GridPartitioner(8, 4),
        )
        got, _ = solver.solve(t)
    assert_tables_equal(got, expect)


def test_grid_partitioner_reduces_network_copies():
    """§VI future work: a tile-aware partitioner cuts shuffle traffic."""
    spec, make = SPECS["ge"]
    t = make(24, seed=5)

    def run(partitioner):
        with SparkleContext(2, 2, default_parallelism=8) as sc:
            solver = GepSparkSolver(
                spec, sc, r=4, kernel=make_kernel(spec, "iterative"),
                strategy="im", partitioner=partitioner,
            )
            out, report = solver.solve(t)
            return out, report.engine_metrics.total_shuffle_bytes

    out_hash, bytes_hash = run(None)
    out_grid, bytes_grid = run(GridPartitioner(8, 4))
    assert_tables_equal(out_hash, out_grid)
    # Identical logical plan => identical shuffled volume; the partitioner
    # changes placement (and hence network vs local), not the byte count.
    assert bytes_grid == bytes_hash


def test_report_summary_contents():
    spec, make = SPECS["fw"]
    t = make(12, seed=4)
    got, report = _solve(spec, t, "cb", "recursive", 3)
    summary = report.summary()
    assert summary["spec"] == "fw-apsp"
    assert summary["strategy"] == "cb"
    assert summary["kernel"]["kind"] == "recursive"
    assert summary["kernel_updates"] == 12**3
    assert summary["shuffle_bytes"] > 0
    assert summary["storage_bytes_written"] > 0


def test_kernel_stats_updates_exact():
    spec, make = SPECS["ge"]
    n = 18
    t = make(n, seed=6)
    got, report = _solve(spec, t, "im", "iterative", 3)
    expect = sum((n - 1 - k) ** 2 for k in range(n))
    assert report.kernel_stats.updates == expect


def test_driver_survives_task_failures():
    spec, make = SPECS["fw"]
    t = make(12, seed=7)
    expect = gep_reference_vectorized(spec, t)

    plan = FaultPlan(11, [FaultSpec("kill", rate=0.25)])
    with SparkleContext(2, 2, fault_plan=plan) as sc:
        solver = GepSparkSolver(
            spec, sc, r=3, kernel=make_kernel(spec, "iterative"), strategy="im"
        )
        got, _ = solver.solve(t)
        assert sc.metrics.tasks_retried >= 1
    assert_tables_equal(got, expect)


def test_cb_failure_recovery():
    spec, make = SPECS["ge"]
    t = make(12, seed=8)
    expect = gep_reference_vectorized(spec, t)

    plan = FaultPlan(
        5, [FaultSpec("kill", rate=0.2), FaultSpec("storage", rate=0.2)]
    )
    with SparkleContext(2, 2, fault_plan=plan) as sc:
        solver = GepSparkSolver(
            spec, sc, r=3, kernel=make_kernel(spec, "iterative"), strategy="cb"
        )
        got, _ = solver.solve(t)
    assert_tables_equal(got, expect)


def test_validation_errors():
    spec = FloydWarshallGep()
    with SparkleContext(1, 1) as sc:
        with pytest.raises(ValueError):
            GepSparkSolver(spec, sc, r=2, kernel=make_kernel(spec, "iterative"),
                           strategy="bogus")
        with pytest.raises(ValueError):
            GepSparkSolver(spec, sc, r=0, kernel=make_kernel(spec, "iterative"))
        solver = GepSparkSolver(spec, sc, r=2, kernel=make_kernel(spec, "iterative"))
        with pytest.raises(ValueError):
            solver.solve(np.zeros((2, 3)))
    with pytest.raises(ValueError):
        make_kernel(spec, "quantum")


def test_matches_independent_numpy_fw():
    spec, make = SPECS["fw"]
    t = make(24, seed=9)
    got, _ = _solve(spec, t, "im", "recursive", 4)
    np.testing.assert_allclose(got, numpy_floyd_warshall(t))


def test_im_and_cb_produce_identical_tables():
    for name in SPECS:
        spec, make = SPECS[name]
        t = make(15, seed=11)
        im, _ = _solve(spec, t, "im", "iterative", 3)
        cb, _ = _solve(spec, t, "cb", "iterative", 3)
        assert_tables_equal(im, cb)


@pytest.mark.parametrize("name", SPECS)
def test_bcast_strategy_matches_reference(name):
    """The broadcast-distribution ablation (beyond the paper's IM/CB)."""
    spec, make = SPECS[name]
    t = make(18, seed=13)
    expect = gep_reference_vectorized(spec, t)
    got, report = _solve(spec, t, "bcast", "recursive", 3)
    assert_tables_equal(got, expect)
    assert report.engine_metrics.broadcast_bytes > 0
    # bcast replaces both the IM copy shuffles and the CB storage reads.
    assert report.engine_metrics.storage_gets == 0


def test_bcast_uses_less_shuffle_than_im():
    spec, make = SPECS["ge"]
    t = make(24, seed=14)
    _, im = _solve(spec, t, "im", "iterative", 4)
    _, bc = _solve(spec, t, "bcast", "iterative", 4)
    assert (
        bc.engine_metrics.total_shuffle_bytes
        < im.engine_metrics.total_shuffle_bytes
    )
