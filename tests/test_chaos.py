"""Chaos harness: seeded fault injection against the GEP drivers.

The invariant under test is the paper's §II fault-tolerance story made
executable: for any :class:`FaultPlan` below the abort threshold
(``max_attempt=1``, so every retry has a clean attempt), the engine must
recover through lineage and produce output *bit-identical* to the
fault-free run — for both the In-Memory and Collect-Broadcast
distribution strategies — while the recovery metrics account for every
injected fault.  Determinism is part of the contract: identical seeds
must yield identical traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import FaultPlan, FaultSpec, SparkleContext

from .conftest import fw_table

pytestmark = pytest.mark.chaos

SPEC = FloydWarshallGep()
TABLE16 = fw_table(16, seed=3)
SMOKE_SEEDS = (3, 17, 41, 97, 123)


def solve_fw(table, strategy, r, plan=None):
    with SparkleContext(3, 2, fault_plan=plan) as sc:
        kernel = make_kernel(SPEC, "iterative", r_shared=2, base_size=4)
        solver = GepSparkSolver(SPEC, sc, r=r, kernel=kernel, strategy=strategy)
        out, report = solver.solve(table)
        return out, report, sc.metrics


def smoke_mix(seed):
    """Everything-on mix, `lose` kept rare: each loss cascades into
    partial re-runs of every live shuffle it clipped."""
    return FaultPlan(seed, [
        FaultSpec("kill", 0.05),
        FaultSpec("lose", 0.01),
        FaultSpec("slow", 0.05, delay=0.01),
        FaultSpec("storage", 0.03),
        FaultSpec("overflow", 0.02),
    ])


@pytest.fixture(scope="module")
def clean16():
    """Fault-free engine outputs, the bit-identity baseline."""
    return {s: solve_fw(TABLE16, s, 4)[0] for s in ("im", "cb")}


# ----------------------------------------------------------------------
# property: recoverable plans cannot change the answer
# ----------------------------------------------------------------------
RATE = st.sampled_from([0.0, 0.05, 0.15, 0.35])


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kill=RATE,
    slow=RATE,
    storage=RATE,
    overflow=RATE,
    strategy=st.sampled_from(["im", "cb"]),
)
def test_any_recoverable_plan_is_bit_identical(
    clean16, seed, kill, slow, storage, overflow, strategy
):
    """Seeded faults at max_attempt=1 (guaranteed-recoverable by
    construction) never perturb the FW result, via IM or CB."""
    plan = FaultPlan(seed, [
        FaultSpec("kill", kill),
        FaultSpec("slow", slow, delay=0.005),
        FaultSpec("storage", storage),
        FaultSpec("overflow", overflow),
    ])
    out, _report, metrics = solve_fw(TABLE16, strategy, 4, plan)
    np.testing.assert_array_equal(out, clean16[strategy])
    # every injected task fault shows up in the recovery accounting
    fired = plan.fired()
    assert metrics.tasks_retried >= fired["kill"]
    assert metrics.transient_io_failures == fired["storage"] + fired["overflow"]
    assert metrics.speculative_launched == fired["slow"]


# ----------------------------------------------------------------------
# smoke matrix: 5 fixed seeds x both strategies, full fault mix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy", ["im", "cb"])
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_smoke_matrix(clean16, seed, strategy):
    plan = smoke_mix(seed)
    out, report, metrics = solve_fw(TABLE16, strategy, 4, plan)
    np.testing.assert_array_equal(out, clean16[strategy])
    assert plan.total_fired() > 0  # the mix is hot at these sizes
    assert metrics.tasks_retried > 0
    # the solver surfaces the chaos provenance on its report
    assert report.recovery == metrics.recovery_summary()
    assert report.extras["chaos"] == plan.describe()
    assert report.extras["faults_injected"] == plan.fired()
    assert report.summary()["extras"]["faults_injected"] == plan.fired()


# ----------------------------------------------------------------------
# acceptance: 8x8 tile grid, executor loss + stragglers, trace equality
# ----------------------------------------------------------------------
def acceptance_plan():
    # seed 5 injects executor losses and stragglers on this workload
    # (asserted below) yet recovers in well under a second.
    return FaultPlan(5, [
        FaultSpec("kill", 0.02),
        FaultSpec("lose", 0.004),
        FaultSpec("slow", 0.03, delay=0.05),
        FaultSpec("overflow", 0.01),
    ])


def trace_signature(metrics):
    """Everything deterministic about a run's trace (no wall-clock)."""
    return [
        (
            job.action,
            [
                (
                    s.stage_id,
                    s.kind,
                    [
                        (t.partition, t.executor, t.attempts, t.speculative_win)
                        for t in s.tasks
                    ],
                )
                for s in job.stages
            ],
        )
        for job in metrics.jobs
    ]


def test_acceptance_fw_8x8_grid_under_chaos():
    table = fw_table(32, seed=5)
    clean, _, _ = solve_fw(table, "im", 8)

    plan1 = acceptance_plan()
    out1, _rep1, m1 = solve_fw(table, "im", 8, plan1)
    np.testing.assert_array_equal(out1, clean)

    fired = plan1.fired()
    assert fired["lose"] >= 1
    assert fired["slow"] >= 1
    summary1 = m1.summary()
    assert summary1["partitions_recomputed"] > 0
    assert summary1["speculative_launched"] > 0

    # identical seed, fresh plan => identical results, metrics and trace
    plan2 = acceptance_plan()
    out2, _rep2, m2 = solve_fw(table, "im", 8, plan2)
    np.testing.assert_array_equal(out2, out1)
    assert plan2.fired() == fired
    assert m2.summary() == summary1
    assert trace_signature(m2) == trace_signature(m1)
