"""Unified memory governor: spill-to-disk, backpressure, degradation.

The invariant under test is the robustness counterpart of the capacity
failure mode the seed engine reproduced faithfully: a solve whose
working set exceeds the memory budget must *complete* — by spilling
cached blocks and staged shuffle outputs to checksummed disk, queueing
task launches under pressure, and (when armed) degrading IM→CB at an
outer-iteration boundary — and the result must be bit-identical to an
unbudgeted run.  The same configuration on the ungoverned engine fails
with :class:`StorageCapacityError`, which pins down exactly what the
governor buys.  The ``mem_squeeze`` chaos kind shrinks the budget
mid-solve under the seeded determinism contract: same seed, same
pressure-transition trace, same counters.
"""

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main as cli_main
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import (
    EngineMetrics,
    FaultPlan,
    FaultSpec,
    MemoryManager,
    PRESSURE_CRITICAL,
    PRESSURE_OK,
    PRESSURE_PRESSURED,
    ShuffleFetchFailed,
    SparkleContext,
    StorageCapacityError,
    TaskError,
)
from repro.sparkle.durable import DurableBlockStore
from repro.sparkle.shuffle import ShuffleManager
from repro.sparkle.storage import BlockManager

from .conftest import fw_table

pytestmark = pytest.mark.memory

SPEC = FloydWarshallGep()
TABLE = fw_table(16, seed=3)
R = 4

#: Deliberately below the IM working set for TABLE/R: the ungoverned
#: engine overflows this as a shuffle staging capacity, the governed
#: engine completes under it as a memory budget.
TIGHT_BUDGET = 2048


def flip_byte(path: Path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def spark_solve(
    table,
    *,
    strategy="im",
    budget=None,
    plan=None,
    degrade=False,
    shuffle_capacity=None,
    spill_dir=None,
):
    sc = SparkleContext(
        2,
        1,
        fault_plan=plan,
        shuffle_capacity_bytes=shuffle_capacity,
        memory_budget_bytes=budget,
        spill_dir=spill_dir,
    )
    try:
        solver = GepSparkSolver(
            SPEC,
            sc,
            r=R,
            kernel=make_kernel(SPEC, "iterative"),
            strategy=strategy,
            degrade_on_pressure=degrade,
        )
        out, report = solver.solve(table)
    finally:
        sc.stop()
    return out, report, sc.metrics


_EXPECTED = {}


def expected_result():
    """The unbudgeted IM result (computed once; the bit-identity oracle)."""
    if "out" not in _EXPECTED:
        _EXPECTED["out"], _, _ = spark_solve(TABLE)
    return _EXPECTED["out"]


# ----------------------------------------------------------------------
# MemoryManager units
# ----------------------------------------------------------------------
class TestMemoryManager:
    def test_reserve_release_accounting(self):
        mm = MemoryManager(1000)
        assert mm.reserve("execution", "e0", 400)
        assert mm.reserve("storage", "e1", 500)
        assert mm.live_bytes == 900
        assert not mm.reserve("execution", "e0", 200)  # 1100 > 1000
        mm.release("storage", "e1", 500)
        assert mm.reserve("execution", "e0", 200)
        u = mm.usage()
        assert u["execution_bytes"] == 600
        assert u["storage_bytes"] == 0
        assert u["by_owner"]["execution"] == {"e0": 600}

    def test_unknown_pool_rejected(self):
        mm = MemoryManager(100)
        with pytest.raises(ValueError):
            mm.reserve("heap", "e0", 1)
        with pytest.raises(ValueError):
            mm.release("heap", "e0", 1)

    def test_forced_grant_oversubscribes_and_is_metered(self):
        metrics = EngineMetrics()
        mm = MemoryManager(100, metrics=metrics)
        assert mm.reserve("execution", "e0", 90)
        assert mm.reserve("execution", "e0", 90, force=True)
        assert mm.live_bytes == 180
        assert metrics.forced_grants == 1
        # a force that *fits* is not an oversubscription
        mm.release("execution", "e0", 180)
        assert mm.reserve("execution", "e0", 10, force=True)
        assert metrics.forced_grants == 1

    def test_over_release_clamps_to_zero(self):
        mm = MemoryManager(100)
        mm.reserve("storage", "e0", 30)
        mm.release("storage", "e0", 90)
        assert mm.live_bytes == 0
        assert mm.usage()["by_owner"]["storage"] == {}

    def test_pressure_transitions_are_traced(self):
        metrics = EngineMetrics()
        mm = MemoryManager(1000, metrics=metrics)
        assert mm.pressure() == PRESSURE_OK
        mm.reserve("storage", "e0", 750)
        assert mm.pressure() == PRESSURE_PRESSURED
        mm.reserve("storage", "e0", 200)
        assert mm.pressure() == PRESSURE_CRITICAL
        mm.release("storage", "e0", 900)
        assert mm.pressure() == PRESSURE_OK
        assert metrics.pressure_transitions == [
            "ok->pressured",
            "pressured->critical",
            "critical->ok",
        ]

    def test_first_admission_always_granted(self):
        # Budget already exhausted by storage: the first task must still
        # be admitted (deadlock-freedom), oversubscribing the budget.
        mm = MemoryManager(100, task_quantum_bytes=60)
        mm.reserve("storage", "e0", 100)
        grant = mm.admit_task()
        assert grant == 60
        assert mm.live_bytes == 160
        mm.finish_task(grant)
        assert mm.live_bytes == 100

    def test_admission_backpressure_queues_and_wakes(self):
        metrics = EngineMetrics()
        mm = MemoryManager(100, task_quantum_bytes=60, metrics=metrics)
        first = mm.admit_task()
        admitted = threading.Event()

        def second_task():
            g = mm.admit_task()
            admitted.set()
            mm.finish_task(g)

        t = threading.Thread(target=second_task, daemon=True)
        t.start()
        # 60 + 60 > 100 and a task is already admitted: must queue.
        assert not admitted.wait(0.15)
        mm.finish_task(first)
        assert admitted.wait(2.0)
        t.join(timeout=2.0)
        assert metrics.admission_waits == 1
        assert metrics.admission_wait_seconds > 0.0
        assert mm.live_bytes == 0

    def test_squeeze_shrinks_with_quantum_floor(self):
        metrics = EngineMetrics()
        mm = MemoryManager(1000, task_quantum_bytes=100, metrics=metrics)
        assert mm.squeeze(0.5) == 500
        assert mm.squeeze(0.1) == 100  # floored at one task quantum
        assert mm.squeeze(0.5) == 100
        assert metrics.mem_squeezes == 3
        with pytest.raises(ValueError):
            mm.squeeze(0.0)
        with pytest.raises(ValueError):
            mm.squeeze(1.5)

    def test_squeeze_can_transition_pressure(self):
        metrics = EngineMetrics()
        mm = MemoryManager(1000, task_quantum_bytes=10, metrics=metrics)
        mm.reserve("storage", "e0", 500)
        assert mm.pressure() == PRESSURE_OK
        mm.squeeze(0.5)
        assert mm.pressure() == PRESSURE_CRITICAL
        assert "ok->critical" in metrics.pressure_transitions


# ----------------------------------------------------------------------
# BlockManager spill (MEMORY_AND_DISK)
# ----------------------------------------------------------------------
class TestBlockManagerSpill:
    def make(self, tmp_path, budget):
        metrics = EngineMetrics()
        mm = MemoryManager(budget, metrics=metrics, task_quantum_bytes=1)
        store = DurableBlockStore(tmp_path / "spill", metrics=metrics, sync=False)
        bm = BlockManager(memory=mm, spill=store, metrics=metrics)
        return bm, mm, store, metrics

    def test_eviction_spills_and_reads_back(self, tmp_path):
        bm, mm, store, metrics = self.make(tmp_path, 300)
        a, b, c = (np.full(16, float(i)) for i in range(3))  # 128 B each
        bm.put(0, 0, [a])
        bm.put(0, 1, [b])
        bm.put(0, 2, [c])  # 384 B > 300: evicts LRU (0,0) to disk
        assert bm.num_spilled == 1
        assert metrics.blocks_spilled == 1
        assert metrics.spill_bytes_written == 128
        got = bm.get(0, 0)
        np.testing.assert_array_equal(got[0], a)
        assert metrics.spill_reads == 1
        assert metrics.spill_bytes_read == 128
        assert bm.contains(0, 0)
        assert mm.live_bytes <= 300

    def test_memory_only_evicts_by_dropping(self, tmp_path):
        bm, mm, store, metrics = self.make(tmp_path, 300)
        bm.put(0, 0, [np.zeros(16)], level="MEMORY_ONLY")
        bm.put(0, 1, [np.zeros(16)])
        bm.put(0, 2, [np.zeros(16)])  # evicts (0,0), which opted out of disk
        assert bm.get(0, 0) is None  # recompute from lineage
        assert bm.num_spilled == 0
        assert metrics.blocks_spilled == 0

    def test_block_larger_than_budget_goes_disk_only(self, tmp_path):
        bm, mm, store, metrics = self.make(tmp_path, 64)
        big = np.zeros(32)  # 256 B > budget
        bm.put(0, 0, [big])
        assert bm.num_blocks == 0
        assert bm.num_spilled == 1
        np.testing.assert_array_equal(bm.get(0, 0)[0], big)
        assert mm.live_bytes == 0

    def test_corrupt_spill_is_never_served(self, tmp_path):
        bm, mm, store, metrics = self.make(tmp_path, 300)
        bm.put(0, 0, [np.ones(16)])
        bm.put(0, 1, [np.ones(16)])
        bm.put(0, 2, [np.ones(16)])
        assert bm.num_spilled == 1
        flip_byte(store.blocks_dir / store._filename(repr(("cache", 0, 0))))
        assert bm.get(0, 0) is None  # checksum caught it: recompute
        assert metrics.corrupt_blocks_detected == 1
        assert not bm.contains(0, 0)  # marker discarded, put can refresh
        assert bm.get(0, 0) is None

    def test_unpersist_deletes_spill_files(self, tmp_path):
        bm, mm, store, metrics = self.make(tmp_path, 300)
        for p in range(3):
            bm.put(7, p, [np.ones(16)])
        assert bm.num_spilled == 1
        bm.evict_rdd(7)
        assert bm.num_blocks == 0
        assert bm.num_spilled == 0
        assert len(store) == 0
        assert mm.live_bytes == 0


# ----------------------------------------------------------------------
# ShuffleManager spill
# ----------------------------------------------------------------------
def bucket(value):
    """One single-pair reduce bucket: 16 (key) + value bytes."""
    return {0: [(0, value)]}


class TestShuffleManagerSpill:
    def make(self, tmp_path, budget):
        metrics = EngineMetrics()
        mm = MemoryManager(budget, metrics=metrics, task_quantum_bytes=1)
        store = DurableBlockStore(tmp_path / "spill", metrics=metrics, sync=False)
        sm = ShuffleManager(memory=mm, spill=store, metrics=metrics)
        return sm, mm, store, metrics

    def test_overflow_spills_oldest_and_fetches_back(self, tmp_path):
        sm, mm, store, metrics = self.make(tmp_path, 300)
        sid = sm.new_shuffle_id()
        for mp in range(3):  # 144 B each; third write exceeds 300
            sm.write(sid, mp, bucket(np.full(16, float(mp))))
        assert sm.num_spilled == 1
        assert metrics.shuffle_blocks_spilled == 1
        assert sm.has_output(sid, 0)
        items, nbytes, _remote = sm.fetch(sid, 0, 3)
        assert [v[0] for _k, v in [(k, v) for k, v in items]] == [0.0, 1.0, 2.0]
        assert metrics.spill_reads == 1
        assert mm.live_bytes <= 300

    def test_no_spill_store_drops_oldest_for_recompute(self, tmp_path):
        metrics = EngineMetrics()
        mm = MemoryManager(300, metrics=metrics, task_quantum_bytes=1)
        sm = ShuffleManager(memory=mm, metrics=metrics)
        sid = sm.new_shuffle_id()
        for mp in range(3):
            sm.write(sid, mp, bucket(np.ones(16)))
        assert not sm.has_output(sid, 0)  # dropped, not spilled
        with pytest.raises(ShuffleFetchFailed) as exc_info:
            sm.fetch(sid, 0, 3)
        assert exc_info.value.missing == (0,)

    def test_corrupt_spill_surfaces_as_fetch_failure(self, tmp_path):
        sm, mm, store, metrics = self.make(tmp_path, 300)
        sid = sm.new_shuffle_id()
        for mp in range(3):
            sm.write(sid, mp, bucket(np.ones(16)))
        assert sm.num_spilled == 1
        flip_byte(store.blocks_dir / store._filename(repr(("shuffle", sid, 0))))
        with pytest.raises(ShuffleFetchFailed) as exc_info:
            sm.fetch(sid, 0, 3)
        assert exc_info.value.missing == (0,)
        assert metrics.corrupt_blocks_detected == 1
        # the scheduler's recompute path re-stages the output; idempotent
        sm.write(sid, 0, bucket(np.ones(16)))
        items, _n, _r = sm.fetch(sid, 0, 3)
        assert len(items) == 3

    def test_release_reclaims_memory_and_spill_files(self, tmp_path):
        sm, mm, store, metrics = self.make(tmp_path, 300)
        sid = sm.new_shuffle_id()
        for mp in range(3):
            sm.write(sid, mp, bucket(np.ones(16)))
        sm.release(sid)
        assert sm.live_bytes() == 0
        assert sm.num_spilled == 0
        assert len(store) == 0
        assert mm.live_bytes == 0

    def test_executor_loss_drops_spilled_outputs_too(self, tmp_path):
        sm, mm, store, metrics = self.make(tmp_path, 300)
        sid = sm.new_shuffle_id()
        for mp in range(3):
            sm.write(sid, mp, bucket(np.ones(16)))
        dropped = sm.drop_executor_outputs(lambda mp: mp == 0)
        assert (sid, 0) in dropped
        assert not sm.has_output(sid, 0)


# ----------------------------------------------------------------------
# Stage abort cleans up partial map outputs (satellite 3)
# ----------------------------------------------------------------------
class TestStageAbortCleanup:
    def test_capacity_overflow_mid_stage_leaves_nothing_staged(self):
        # Legacy (ungoverned) staging capacity: each of the 4 map tasks
        # stages ~320 B, so the stage overflows after the first write.
        with SparkleContext(2, 1, shuffle_capacity_bytes=500) as sc:
            pairs = sc.parallelize(range(16), 4).map(
                lambda x: (x % 4, np.ones(8))
            )
            with pytest.raises(TaskError) as exc_info:
                pairs.reduceByKey(lambda a, b: a + b).collect()
            assert isinstance(exc_info.value.__cause__, StorageCapacityError)
            assert sc._shuffle_manager.live_bytes() == 0
            assert sc.metrics.shuffle_partial_cleanups >= 1


# ----------------------------------------------------------------------
# End-to-end: budgeted solves
# ----------------------------------------------------------------------
class TestBudgetedSolve:
    def test_ungoverned_engine_fails_where_governor_completes(self):
        expected = expected_result()
        # Pre-governor failure mode: the same byte ceiling as a staging
        # capacity kills the solve with StorageCapacityError...
        with pytest.raises(TaskError) as exc_info:
            spark_solve(TABLE, shuffle_capacity=TIGHT_BUDGET)
        assert isinstance(exc_info.value.__cause__, StorageCapacityError)
        # ...while the governed engine completes under it, bit-identical,
        # by spilling to disk.
        out, report, metrics = spark_solve(TABLE, budget=TIGHT_BUDGET)
        assert np.array_equal(out, expected)
        mem = report.memory
        assert mem["spill_bytes_written"] > 0
        assert mem["shuffle_blocks_spilled"] > 0
        assert mem["spill_reads"] > 0
        assert report.extras["memory_budget"]["budget_bytes"] == TIGHT_BUDGET

    def test_spill_dir_is_honored(self, tmp_path):
        spill = tmp_path / "myspill"
        out, report, _metrics = spark_solve(
            TABLE, budget=TIGHT_BUDGET, spill_dir=str(spill)
        )
        assert np.array_equal(out, expected_result())
        assert (spill / "blocks").is_dir()

    def test_mem_squeeze_is_deterministic_per_seed(self):
        plan = lambda: FaultPlan(11, [FaultSpec("mem_squeeze", 1.0)])  # noqa: E731
        runs = [
            spark_solve(TABLE, budget=4 * TIGHT_BUDGET, plan=plan())
            for _ in range(2)
        ]
        (out_a, rep_a, met_a), (out_b, rep_b, met_b) = runs
        assert np.array_equal(out_a, out_b)
        assert np.array_equal(out_a, expected_result())
        assert met_a.mem_squeezes == met_b.mem_squeezes > 0
        assert met_a.pressure_transitions == met_b.pressure_transitions
        a, b = rep_a.memory, rep_b.memory
        for key in (
            "spill_bytes_written",
            "blocks_spilled",
            "shuffle_blocks_spilled",
            "forced_grants",
        ):
            assert a[key] == b[key], key
        # a different seed makes different squeeze decisions
        _out_c, rep_c, met_c = spark_solve(
            TABLE,
            budget=4 * TIGHT_BUDGET,
            plan=FaultPlan(12, [FaultSpec("mem_squeeze", 1.0)]),
        )
        assert np.array_equal(_out_c, expected_result())

    def test_degradation_switches_im_to_cb_bit_identically(self):
        plan = FaultPlan(11, [FaultSpec("mem_squeeze", 1.0)])
        out, report, metrics = spark_solve(
            TABLE, budget=TIGHT_BUDGET, plan=plan, degrade=True
        )
        assert np.array_equal(out, expected_result())
        degraded = report.extras["degraded"]
        assert degraded["from"] == "im"
        assert degraded["to"] == "cb"
        assert degraded["at_iteration"] >= 0
        assert metrics.strategy_degradations == 1
        assert report.memory["strategy_degradations"] == 1

    def test_degradation_is_noop_for_cb(self):
        plan = FaultPlan(11, [FaultSpec("mem_squeeze", 1.0)])
        out, report, metrics = spark_solve(
            TABLE, budget=TIGHT_BUDGET, plan=plan, degrade=True, strategy="cb"
        )
        assert np.array_equal(out, expected_result())
        assert "degraded" not in report.extras
        assert metrics.strategy_degradations == 0

    @given(
        budget=st.integers(min_value=1500, max_value=20000),
        seed=st.integers(min_value=0, max_value=50),
        strategy=st.sampled_from(["im", "cb"]),
        squeeze_rate=st.sampled_from([0.0, 1.0]),
    )
    @settings(max_examples=8, deadline=None)
    def test_any_budget_is_bit_identical(
        self, budget, seed, strategy, squeeze_rate
    ):
        plan = FaultPlan(seed, [FaultSpec("mem_squeeze", squeeze_rate)])
        out, _report, _metrics = spark_solve(
            TABLE, budget=budget, plan=plan, degrade=True, strategy=strategy
        )
        assert np.array_equal(out, expected_result())


# ----------------------------------------------------------------------
# CLI: --memory-budget / --report / memstat
# ----------------------------------------------------------------------
class TestCli:
    def test_budgeted_solve_and_memstat_roundtrip(self, tmp_path, capsys):
        report_path = tmp_path / "report.json"
        rc = cli_main(
            [
                "solve", "apsp", "--n", "16", "--engine", "spark",
                "--r", "4", "--kernel", "iterative",
                "--executors", "2", "--cores", "1",
                "--memory-budget", str(TIGHT_BUDGET),
                "--report", str(report_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "memory:" in out
        summary = json.loads(report_path.read_text())
        assert summary["spill_bytes_written"] > 0
        rc = cli_main(["memstat", str(report_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "spill_bytes_written" in out
        assert "pressure_transitions" in out

    def test_memstat_rejects_non_memory_reports(self, tmp_path, capsys):
        path = tmp_path / "not_a_report.json"
        path.write_text(json.dumps({"hello": 1}))
        assert cli_main(["memstat", str(path)]) == 2
        assert cli_main(["memstat", str(tmp_path / "missing.json")]) == 2

    def test_flag_validation(self, capsys):
        assert (
            cli_main(["solve", "apsp", "--n", "16", "--memory-budget", "4096"])
            == 2
        )
        assert (
            cli_main(["solve", "apsp", "--n", "16", "--degrade-on-pressure"])
            == 2
        )
        assert (
            cli_main(
                ["solve", "apsp", "--n", "16", "--engine", "spark",
                 "--spill-dir", "/tmp/x"]
            )
            == 2
        )
