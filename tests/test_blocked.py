"""Grid-level blocked execution vs the unblocked reference."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import (
    b_range,
    blocked_gep_inplace,
    c_range,
    grid_bounds,
    updated_tiles,
    virtual_pad,
    virtual_unpad,
)
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
    gep_reference_vectorized,
)
from repro.kernels import IterativeKernel, KernelStats, OmpRuntime, RecursiveKernel

from .conftest import assert_tables_equal, fw_table, ge_table, tc_table

SPECS = {
    "fw": (FloydWarshallGep(), fw_table),
    "ge": (GaussianEliminationGep(), ge_table),
    "tc": (TransitiveClosureGep(), tc_table),
}


class TestRanges:
    def test_fw_ranges_exclude_pivot(self):
        spec = FloydWarshallGep()
        assert b_range(spec, 1, 4) == [0, 2, 3]
        assert c_range(spec, 0, 3) == [1, 2]

    def test_ge_ranges_strictly_after_pivot(self):
        spec = GaussianEliminationGep()
        assert b_range(spec, 1, 4) == [2, 3]
        assert c_range(spec, 3, 4) == []

    def test_updated_tiles_fw(self):
        spec = FloydWarshallGep()
        tiles = updated_tiles(spec, 0, 2)
        assert tiles["A"] == [(0, 0)]
        assert tiles["B"] == [(0, 1)]
        assert tiles["C"] == [(1, 0)]
        assert tiles["D"] == [(1, 1)]

    def test_updated_tiles_ge_last_iteration(self):
        spec = GaussianEliminationGep()
        tiles = updated_tiles(spec, 2, 3)
        assert tiles["A"] == [(2, 2)]
        assert tiles["B"] == [] and tiles["C"] == [] and tiles["D"] == []

    def test_grid_bounds_uneven(self):
        assert grid_bounds(10, 4) == [0, 2, 5, 7, 10]
        assert grid_bounds(3, 8) == [0, 1, 2, 3]


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r", [1, 2, 3, 4, 7])
def test_blocked_iterative_matches_reference(name, r):
    spec, make = SPECS[name]
    n = 14
    t = make(n, seed=r)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    blocked_gep_inplace(spec, got, r, IterativeKernel(spec))
    assert_tables_equal(got, expect)


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r,r_shared,base", [(2, 2, 2), (4, 2, 2), (3, 4, 1), (5, 2, 8)])
def test_blocked_recursive_matches_reference(name, r, r_shared, base):
    spec, make = SPECS[name]
    n = 15
    t = make(n, seed=r * 3 + r_shared)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    blocked_gep_inplace(spec, got, r, RecursiveKernel(spec, r_shared, base))
    assert_tables_equal(got, expect)


@pytest.mark.parametrize("name", SPECS)
def test_blocked_with_parallel_runtime(name):
    spec, make = SPECS[name]
    n = 16
    t = make(n, seed=8)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    with OmpRuntime(4) as rt:
        blocked_gep_inplace(spec, got, 4, IterativeKernel(spec), runtime=rt)
    assert_tables_equal(got, expect)


def test_blocked_with_padding_to_uniform_grid():
    spec = FloydWarshallGep()
    n, r = 13, 4
    t = fw_table(n, seed=1)
    expect = gep_reference_vectorized(spec, t)
    padded = virtual_pad(spec, t, 16)
    blocked_gep_inplace(spec, padded, r, IterativeKernel(spec))
    assert_tables_equal(virtual_unpad(padded, n), expect)


def test_blocked_validations(fw_spec):
    with pytest.raises(ValueError):
        blocked_gep_inplace(fw_spec, np.zeros((2, 3)), 2, IterativeKernel(fw_spec))
    with pytest.raises(ValueError):
        blocked_gep_inplace(fw_spec, np.zeros((4, 4)), 0, IterativeKernel(fw_spec))


def test_blocked_stats_total_work(fw_spec):
    n, r = 12, 3
    t = fw_table(n, seed=3)
    stats = KernelStats()
    blocked_gep_inplace(fw_spec, t, r, IterativeKernel(fw_spec), stats=stats)
    assert stats.updates == n**3
    # Per iteration: 1 A + (r-1) B + (r-1) C + (r-1)^2 D invocations.
    per_iter = 1 + 2 * (r - 1) + (r - 1) ** 2
    assert stats.total_invocations == r * per_iter


@given(
    n=st.integers(min_value=1, max_value=18),
    r=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_property_blocked_tc_matches_reference(n, r, seed):
    spec = TransitiveClosureGep()
    t = tc_table(n, seed=seed)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    blocked_gep_inplace(spec, got, r, IterativeKernel(spec))
    np.testing.assert_array_equal(got, expect)


@given(
    n=st.integers(min_value=2, max_value=14),
    r=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=30),
)
@settings(max_examples=30, deadline=None)
def test_property_blocked_ge_matches_reference(n, r, seed):
    spec = GaussianEliminationGep()
    t = ge_table(n, seed=seed)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    blocked_gep_inplace(spec, got, r, IterativeKernel(spec))
    np.testing.assert_allclose(got, expect, rtol=1e-9, atol=1e-9)
