"""Tile kernels: iterative vs scalar loop, recursive vs iterative,
aliasing cases, stats accounting, OpenMP runtime behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import blocked_gep_inplace
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
    gep_reference_vectorized,
)
from repro.kernels import (
    IterativeKernel,
    KernelStats,
    OmpRuntime,
    RecursiveKernel,
    SerialRuntime,
    case_of,
    gep_tile_update,
    gep_tile_update_loop,
)

from .conftest import assert_tables_equal, fw_table, ge_table, tc_table

SPECS = {
    "fw": (FloydWarshallGep(), fw_table),
    "ge": (GaussianEliminationGep(), ge_table),
    "tc": (TransitiveClosureGep(), tc_table),
}


def _tiles(table, k, r_bounds):
    """Views of pivot-aligned tiles for manual kernel calls."""
    b = r_bounds

    def t(i, j):
        return table[b[i] : b[i + 1], b[j] : b[j + 1]]

    return t


@pytest.mark.parametrize("name", SPECS)
class TestIterativeTileKernel:
    def test_vectorized_equals_scalar_loop_case_a(self, name):
        spec, make = SPECS[name]
        t1 = make(8, seed=1).copy()
        t2 = t1.copy()
        gep_tile_update(spec, t1, t1, t1, t1, 0, 0, 0, 8)
        gep_tile_update_loop(spec, t2, t2, t2, t2, 0, 0, 0, 8)
        assert_tables_equal(t1, t2)

    def test_vectorized_equals_scalar_loop_all_cases(self, name):
        spec, make = SPECS[name]
        n, r = 12, 3
        bounds = [0, 4, 8, 12]
        full_a = make(n, seed=2).copy()
        full_b = full_a.copy()
        for table, fn in ((full_a, gep_tile_update), (full_b, gep_tile_update_loop)):
            t = _tiles(table, 0, bounds)
            k = 0
            fn(spec, t(k, k), t(k, k), t(k, k), t(k, k), 0, 0, 0, n)
            fn(spec, t(0, 1), t(0, 0), t(0, 1), t(0, 0), 0, 4, 0, n)  # B
            fn(spec, t(1, 0), t(1, 0), t(0, 0), t(0, 0), 4, 0, 0, n)  # C
            fn(spec, t(1, 1), t(1, 0), t(0, 1), t(0, 0), 4, 4, 0, n)  # D
        assert_tables_equal(full_a, full_b)

    def test_kernel_class_runs(self, name):
        spec, make = SPECS[name]
        t = make(6, seed=3).copy()
        stats = KernelStats()
        IterativeKernel(spec).run("A", t, t, t, t, 0, 0, 0, 6, stats=stats)
        assert stats.invocations["A"] == 1
        assert stats.updates > 0

    def test_pure_loop_kernel_matches(self, name):
        spec, make = SPECS[name]
        ref = make(10, seed=4)
        fast = ref.copy()
        slow = ref.copy()
        blocked_gep_inplace(spec, fast, 2, IterativeKernel(spec))
        blocked_gep_inplace(spec, slow, 2, IterativeKernel(spec, pure_loop=True))
        assert_tables_equal(fast, slow)


@pytest.mark.parametrize("name", SPECS)
class TestMaskHoistFastPath:
    """The vectorized kernel's hoisted fast path (no per-``kk`` mask /
    activity probes) must be indistinguishable from the general path —
    and from the scalar loop — wherever it fires."""

    def test_fast_and_masked_tiles_match_loop(self, name):
        spec, make = SPECS[name]
        n, r = 16, 4
        full = make(n, seed=13).copy()
        # Walk every tile of the second pivot step: GE tiles touching
        # the pivot row/column band take the masked path, tiles strictly
        # below/right of it take the hoisted path, FW/TC always hoist.
        gk0 = 4
        for gi0 in range(0, n, r):
            for gj0 in range(0, n, r):
                x1 = full[gi0 : gi0 + r, gj0 : gj0 + r].copy()
                x2 = x1.copy()
                u = full[gi0 : gi0 + r, gk0 : gk0 + r].copy()
                v = full[gk0 : gk0 + r, gj0 : gj0 + r].copy()
                w = full[gk0 : gk0 + r, gk0 : gk0 + r].copy()
                gep_tile_update(spec, x1, u, v, w, gi0, gj0, gk0, n)
                gep_tile_update_loop(spec, x2, u, v, w, gi0, gj0, gk0, n)
                assert_tables_equal(x1, x2)

    def test_fast_path_fires_where_expected(self, name, monkeypatch):
        """Below/right of the pivot band no per-step probe runs at all."""
        spec, make = SPECS[name]
        n, r, gk0 = 16, 4, 4
        calls = {"mask": 0}
        orig = type(spec).sigma_mask

        def counting_mask(self, gi0, gj0, shape, gk):
            calls["mask"] += 1
            return orig(self, gi0, gj0, shape, gk)

        monkeypatch.setattr(type(spec), "sigma_mask", counting_mask)
        full = make(n, seed=3).copy()
        x = full[8:12, 8:12].copy()
        u = full[8:12, gk0 : gk0 + r].copy()
        v = full[gk0 : gk0 + r, 8:12].copy()
        w = full[gk0 : gk0 + r, gk0 : gk0 + r].copy()
        gep_tile_update(spec, x, u, v, w, 8, 8, gk0, n)
        # one probe from sigma_mask_free's single gk_hi-1 check; the
        # hoisted loop itself never calls sigma_mask again
        assert calls["mask"] == 1

    def test_fast_path_stats_match_general_path(self, name):
        spec, make = SPECS[name]
        n, r = 12, 4
        full = make(n, seed=8).copy()
        x = full[8:12, 8:12].copy()
        u = full[8:12, 0:4].copy()
        v = full[0:4, 8:12].copy()
        w = full[0:4, 0:4].copy()
        fast = KernelStats()
        gep_tile_update(spec, x.copy(), u, v, w, 8, 8, 0, n, stats=fast, case="D")
        # Force the general path by lying about mask freedom.
        class NoHoist(type(spec)):
            def sigma_mask_free(self, gi0, gj0, shape, gk_lo, gk_hi):
                return False

        plain = KernelStats()
        gep_tile_update(
            _copy_spec(spec, NoHoist), x.copy(), u, v, w, 8, 8, 0, n,
            stats=plain, case="D",
        )
        assert fast.updates == plain.updates
        assert fast.invocations == plain.invocations


def _copy_spec(spec, cls):
    """A shallow clone of ``spec`` re-typed to ``cls`` (test helper)."""
    clone = object.__new__(cls)
    clone.__dict__.update(spec.__dict__)
    return clone


def test_fast_path_respects_partial_pivot_range():
    """GE with ``n_pivots`` short of the tile's range must not hoist —
    inactive trailing steps would be applied by the hoisted loop."""
    n = 12
    spec_full = GaussianEliminationGep()
    spec_part = GaussianEliminationGep(n_pivots=6)
    t = ge_table(n, seed=21)
    # pivot range [4, 8) straddles n_pivots=6: steps 6,7 are inactive
    x_p = t[8:12, 8:12].copy()
    x_ref = x_p.copy()
    u = t[8:12, 4:8].copy()
    v = t[4:8, 8:12].copy()
    w = t[4:8, 4:8].copy()
    gep_tile_update(spec_part, x_p, u, v, w, 8, 8, 4, n)
    gep_tile_update_loop(spec_part, x_ref, u, v, w, 8, 8, 4, n)
    assert_tables_equal(x_p, x_ref)
    # and the partial result genuinely differs from the full-pivot one
    x_full = t[8:12, 8:12].copy()
    gep_tile_update(spec_full, x_full, u, v, w, 8, 8, 4, n)
    assert not np.allclose(x_p, x_full)


def test_sigma_mask_free_antitone_contract():
    """``sigma_mask_free`` checks only ``gk_hi - 1`` — valid because
    base-Σ mask-freedom is antitone in ``gk``.  Spot-check the claim."""
    spec = GaussianEliminationGep()
    n, shape = 16, (4, 4)
    for gi0, gj0 in [(0, 0), (8, 8), (8, 0), (0, 8), (12, 12)]:
        for gk_lo in range(0, 8):
            for gk_hi in range(gk_lo, 8):
                free = spec.sigma_mask_free(gi0, gj0, shape, gk_lo, gk_hi)
                probed = all(
                    spec.sigma_mask(gi0, gj0, shape, gk) is None
                    for gk in range(gk_lo, gk_hi)
                )
                assert free == probed, (gi0, gj0, gk_lo, gk_hi)


class TestKernelShapeValidation:
    def test_bad_pivot_shape(self, fw_spec):
        x = np.zeros((4, 4))
        with pytest.raises(ValueError):
            gep_tile_update(fw_spec, x, x, x, np.zeros((4, 3)), 0, 0, 0, 4)

    def test_bad_u_shape(self, fw_spec):
        x = np.zeros((4, 4))
        w = np.zeros((2, 2))
        with pytest.raises(ValueError):
            gep_tile_update(fw_spec, x, np.zeros((3, 2)), np.zeros((2, 4)), w, 0, 0, 0, 4)

    def test_bad_v_shape(self, fw_spec):
        x = np.zeros((4, 4))
        w = np.zeros((2, 2))
        with pytest.raises(ValueError):
            gep_tile_update(fw_spec, x, np.zeros((4, 2)), np.zeros((3, 4)), w, 0, 0, 0, 4)

    def test_unknown_case_rejected(self, fw_spec):
        k = RecursiveKernel(fw_spec)
        x = np.zeros((2, 2))
        with pytest.raises(ValueError):
            k.run("E", x, x, x, x, 0, 0, 0, 2)

    def test_bad_kernel_params(self, fw_spec):
        with pytest.raises(ValueError):
            RecursiveKernel(fw_spec, r_shared=1)
        with pytest.raises(ValueError):
            RecursiveKernel(fw_spec, base_size=0)


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r_shared,base", [(2, 1), (2, 4), (3, 2), (4, 4), (8, 2)])
def test_recursive_equals_reference(name, r_shared, base):
    spec, make = SPECS[name]
    n = 17  # deliberately not divisible by anything relevant
    t = make(n, seed=r_shared * 10 + base)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    kern = RecursiveKernel(spec, r_shared=r_shared, base_size=base)
    kern.run("A", got, got, got, got, 0, 0, 0, n)
    assert_tables_equal(got, expect)


@pytest.mark.parametrize("name", SPECS)
def test_recursive_parallel_equals_serial(name):
    spec, make = SPECS[name]
    n = 24
    t = make(n, seed=9)
    serial = t.copy()
    RecursiveKernel(spec, 4, 4, SerialRuntime()).run(
        "A", serial, serial, serial, serial, 0, 0, 0, n
    )
    with OmpRuntime(num_threads=4) as rt:
        par = t.copy()
        RecursiveKernel(spec, 4, 4, rt).run("A", par, par, par, par, 0, 0, 0, n)
    assert_tables_equal(par, serial)


def test_recursive_stats_accounting(fw_spec):
    n = 16
    t = fw_table(n, seed=1)
    stats = KernelStats()
    kern = RecursiveKernel(fw_spec, r_shared=2, base_size=4)
    kern.run("A", t, t, t, t, 0, 0, 0, n, stats=stats)
    # Every cell update is counted exactly once: n^3 for FW.
    assert stats.updates == n**3
    assert stats.recursion_calls > 0
    assert stats.parallel_stages > 0
    assert set(stats.invocations) <= {"A", "B", "C", "D"}


def test_iterative_stats_updates_count(ge_spec):
    n = 8
    t = ge_table(n, seed=2)
    stats = KernelStats()
    IterativeKernel(ge_spec).run("A", t, t, t, t, 0, 0, 0, n, stats=stats)
    # GE updates sum_k (n-1-k)^2
    expect = sum((n - 1 - k) ** 2 for k in range(n))
    assert stats.updates == expect


def test_stats_merge_and_log():
    a = KernelStats(keep_log=True)
    b = KernelStats(keep_log=True)
    a.record_base("A", 2, 2, 2, 8)
    b.record_base("D", 2, 2, 2, 8)
    b.record_parallel_for(5)
    a.merge(b)
    assert a.updates == 16
    assert a.total_invocations == 2
    assert a.max_parallel_width == 5
    assert len(a.log) == 2


def test_case_of_roundtrip():
    from repro.kernels import CASE_FLAGS

    for case, flags in CASE_FLAGS.items():
        assert case_of(*flags) == case


class TestOmpRuntime:
    def test_serial_executes_in_order(self):
        seen = []
        rt = SerialRuntime()
        rt.parallel_for([lambda i=i: seen.append(i) for i in range(5)])
        assert seen == [0, 1, 2, 3, 4]

    def test_parallel_executes_all(self):
        seen = set()
        with OmpRuntime(3) as rt:
            rt.parallel_for([lambda i=i: seen.add(i) for i in range(20)])
        assert seen == set(range(20))

    def test_nested_parallel_for_is_inlined(self):
        order = []

        def outer(i):
            rt.parallel_for([lambda j=j: order.append((i, j)) for j in range(3)])

        with OmpRuntime(2) as rt_outer:
            rt = rt_outer
            rt.parallel_for([lambda i=i: outer(i) for i in range(4)])
        assert len(order) == 12

    def test_exception_propagates(self):
        def boom():
            raise RuntimeError("task failed")

        with OmpRuntime(2) as rt:
            with pytest.raises(RuntimeError, match="task failed"):
                rt.parallel_for([boom, lambda: None])

    def test_empty_batch_is_noop(self):
        with OmpRuntime(2) as rt:
            rt.parallel_for([])

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            OmpRuntime(0)

    def test_map_helper(self):
        out = []
        SerialRuntime().map(out.append, [1, 2, 3])
        assert out == [1, 2, 3]

    def test_stats_width_recording(self):
        stats = KernelStats()
        rt = OmpRuntime(1, stats=stats)
        rt.parallel_for([lambda: None] * 7)
        assert stats.max_parallel_width == 7
        assert stats.parallel_stages == 1


@given(
    n=st.integers(min_value=1, max_value=20),
    r_shared=st.integers(min_value=2, max_value=5),
    base=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_property_recursive_fw_equals_reference(n, r_shared, base, seed):
    spec = FloydWarshallGep()
    t = fw_table(n, seed=seed)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    RecursiveKernel(spec, r_shared, base).run("A", got, got, got, got, 0, 0, 0, n)
    np.testing.assert_allclose(got, expect)


@given(
    n=st.integers(min_value=1, max_value=16),
    r_shared=st.integers(min_value=2, max_value=4),
    base=st.integers(min_value=1, max_value=5),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=25, deadline=None)
def test_property_recursive_ge_equals_reference(n, r_shared, base, seed):
    spec = GaussianEliminationGep()
    t = ge_table(n, seed=seed)
    expect = gep_reference_vectorized(spec, t)
    got = t.copy()
    RecursiveKernel(spec, r_shared, base).run("A", got, got, got, got, 0, 0, 0, n)
    np.testing.assert_allclose(got, expect, rtol=1e-9, atol=1e-9)
