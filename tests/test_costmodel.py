"""Cluster cost model: component behaviour and paper-shape invariants."""

import dataclasses

import pytest

from repro.cluster import (
    ClusterConfig,
    CostModel,
    ExecutionPlan,
    haswell16,
    laptop,
    skylake16,
)
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep

FW = FloydWarshallGep()
GE = GaussianEliminationGep()
N = 8192  # smaller than the paper's 32K to keep grids cheap


class TestConfig:
    def test_presets_describe(self):
        assert "skylake16" in skylake16().describe()
        assert haswell16().cores_per_node == 20
        assert laptop().nodes == 1

    def test_with_nodes(self):
        c = skylake16().with_nodes(64)
        assert c.nodes == 64 and c.total_cores == 64 * 32
        assert "n64" in c.name

    def test_cache_residency_rule(self):
        sky = skylake16()
        assert sky.iterative_tile_in_cache(512)
        assert not sky.iterative_tile_in_cache(1024)
        # Haswell's smaller caches: 1024 decidedly does not fit.
        assert not haswell16().iterative_tile_in_cache(1024)
        assert haswell16().iterative_tile_in_cache(256)


class TestBreakdownSanity:
    def test_components_sum_to_total(self):
        model = CostModel(skylake16())
        cb = model.estimate(FW, N, 16, ExecutionPlan("im", "iterative"))
        parts = cb.compute + cb.shuffle + cb.collect + cb.storage + cb.overhead
        assert cb.total == pytest.approx(parts)
        assert len(cb.per_iteration) == 16
        assert cb.detail["block"] == N // 16

    def test_im_has_no_collect_or_storage(self):
        model = CostModel(skylake16())
        cb = model.estimate(FW, N, 8, ExecutionPlan("im", "iterative"))
        assert cb.storage == 0.0
        # IM still pays the final result collect.
        assert cb.collect > 0.0

    def test_cb_pays_collect_and_storage(self):
        model = CostModel(skylake16())
        cb = model.estimate(GE, N, 8, ExecutionPlan("cb", "iterative"))
        assert cb.collect > 0 and cb.storage > 0

    def test_unknown_kernel_rejected(self):
        model = CostModel(skylake16())
        with pytest.raises(ValueError):
            model.estimate(FW, N, 8, ExecutionPlan("im", "quantum"))


class TestComputeModel:
    def test_more_nodes_is_faster(self):
        small = CostModel(skylake16(nodes=4)).estimate(
            FW, N, 16, ExecutionPlan("im", "iterative")
        )
        big = CostModel(skylake16(nodes=16)).estimate(
            FW, N, 16, ExecutionPlan("im", "iterative")
        )
        assert big.total < small.total

    def test_omp_threads_help_recursive(self):
        model = CostModel(skylake16())
        t1 = model.estimate(
            GE, N, 16, ExecutionPlan("cb", "recursive", 4, 64, 1, executor_cores=8)
        )
        t8 = model.estimate(
            GE, N, 16, ExecutionPlan("cb", "recursive", 4, 64, 8, executor_cores=8)
        )
        assert t8.total < t1.total

    def test_iterative_cache_cliff(self):
        """Iterative kernels slow down sharply past the L2 boundary,
        recursive ones degrade gracefully (cache-oblivious)."""
        model = CostModel(skylake16())
        n = 16384
        iter_512 = model.estimate(FW, n, n // 512, ExecutionPlan("im", "iterative"))
        iter_1024 = model.estimate(FW, n, n // 1024, ExecutionPlan("im", "iterative"))
        rec_512 = model.estimate(
            FW, n, n // 512, ExecutionPlan("im", "recursive", 8, 64, 8, executor_cores=8)
        )
        rec_1024 = model.estimate(
            FW, n, n // 1024, ExecutionPlan("im", "recursive", 8, 64, 8, executor_cores=8)
        )
        assert iter_1024.compute > 2 * iter_512.compute
        assert rec_1024.compute < 2 * rec_512.compute

    def test_oversubscription_grid_is_u_shaped(self):
        """Fixing executor-cores, the time vs OMP curve falls then the
        ec=32 row stays above the moderate-ec rows (Tables I/II shape)."""
        model = CostModel(skylake16())
        n = 32768  # paper geometry: r=32, block=1024 (enough tiles that
        # executor-cores actually bounds concurrency)
        times = {
            (ec, omp): model.estimate(
                GE, n, 32, ExecutionPlan("cb", "recursive", 4, 64, omp, executor_cores=ec)
            ).total
            for ec in (2, 8, 32)
            for omp in (1, 8, 32)
        }
        assert times[(8, 8)] < times[(8, 1)]
        assert times[(2, 1)] > times[(8, 1)]
        assert times[(32, 32)] > times[(8, 32)]


class TestCommunicationModel:
    def test_ge_im_single_source_bottleneck(self):
        """GE's pivot fan-out makes IM shuffle >> CB shuffle at small b."""
        model = CostModel(skylake16())
        im = model.estimate(GE, N, 32, ExecutionPlan("im", "iterative"))
        cb = model.estimate(GE, N, 32, ExecutionPlan("cb", "iterative"))
        assert im.shuffle > 3 * cb.shuffle

    def test_hdd_cluster_pays_more_for_shuffle(self):
        sky = CostModel(skylake16()).estimate(FW, N, 16, ExecutionPlan("im", "iterative"))
        has = CostModel(haswell16()).estimate(FW, N, 16, ExecutionPlan("im", "iterative"))
        assert has.shuffle > sky.shuffle

    def test_cb_lineage_overhead_grows_with_r(self):
        model = CostModel(skylake16())
        small_r = model.estimate(GE, N, 8, ExecutionPlan("cb", "iterative"))
        large_r = model.estimate(GE, N, 64, ExecutionPlan("cb", "iterative"))
        assert large_r.overhead > small_r.overhead

    def test_shuffle_seconds_zero_for_zero_bytes(self):
        model = CostModel(skylake16())
        assert model._shuffle_seconds(0, 0) == 0.0
        assert model._collect_seconds(0) == 0.0


class TestCalibrationQuality:
    """The model must stay within 2x of every published cluster-1 cell."""

    def test_anchor_residuals(self):
        from repro.experiments.calibration import anchor_set, evaluate

        err, rows = evaluate(skylake16(), anchor_set())
        assert err < 0.30  # mean |log error| (x1.35)
        for anchor, est in rows:
            ratio = est / anchor.paper_seconds
            assert 0.4 <= ratio <= 2.6, (anchor.name, ratio)

    def test_shape_robust_to_constant_perturbation(self):
        """The headline orderings survive 20% perturbation of the
        calibrated constants (the claims are structural, not fitted)."""
        base = skylake16()
        for factor in (0.8, 1.25):
            cfg = dataclasses.replace(
                base,
                update_rate_cache=base.update_rate_cache * factor,
                update_rate_mem=base.update_rate_mem / factor,
                task_contention=base.task_contention * factor,
            )
            model = CostModel(cfg)
            n = 32768
            best_iter = min(
                model.estimate(FW, n, n // b, ExecutionPlan("im", "iterative")).total
                for b in (256, 512)
            )
            best_rec = model.estimate(
                FW, n, 32, ExecutionPlan("im", "recursive", 16, 64, 16, executor_cores=8)
            ).total
            assert best_rec < best_iter  # recursive still wins
            # paper geometry (b=512): CB still beats IM for GE
            ge_im = model.estimate(GE, n, n // 512, ExecutionPlan("im", "iterative")).total
            ge_cb = model.estimate(GE, n, n // 512, ExecutionPlan("cb", "iterative")).total
            assert ge_cb < ge_im
