"""Shared helpers: splits and payload sizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util import near_equal_splits, sizeof_block


class TestNearEqualSplits:
    def test_examples(self):
        assert near_equal_splits(10, 4) == [0, 2, 5, 7, 10]
        assert near_equal_splits(3, 8) == [0, 1, 2, 3]
        assert near_equal_splits(0, 3) == [0, 0]
        assert near_equal_splits(7, 1) == [0, 7]

    def test_validation(self):
        with pytest.raises(ValueError):
            near_equal_splits(-1, 2)
        with pytest.raises(ValueError):
            near_equal_splits(4, 0)

    @given(
        extent=st.integers(min_value=1, max_value=500),
        parts=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_partition_invariants(self, extent, parts):
        b = near_equal_splits(extent, parts)
        assert b[0] == 0 and b[-1] == extent
        sizes = [hi - lo for lo, hi in zip(b, b[1:])]
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1  # near-equal
        assert len(sizes) == min(parts, extent)


class TestSizeofBlock:
    def test_numpy_nbytes(self):
        assert sizeof_block(np.zeros((4, 4))) == 128
        assert sizeof_block(np.zeros(3, dtype=bool)) == 3

    def test_containers_measured_recursively(self):
        arr = np.zeros(8)
        assert sizeof_block(("x", arr)) == 8 + 1 + 64
        assert sizeof_block({"u": arr, "v": arr}) == 8 + 2 * (1 + 64)
        assert sizeof_block([arr, arr]) == 8 + 128

    def test_scalars_and_strings(self):
        assert sizeof_block(5) == 8
        assert sizeof_block(None) == 8
        assert sizeof_block("abc") == 3
        assert sizeof_block(b"abcd") == 4
