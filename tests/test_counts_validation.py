"""The cost model's count formulas vs the real engine's meters.

This is the load-bearing validation of the reproduction strategy
(DESIGN.md §2): ``repro.cluster.counts`` claims to predict exactly what
the drivers shuffle/collect/store, and these tests hold it to that on
real engine runs.  Byte comparisons allow a small per-record envelope
(keys/role tags around each tile payload); discrete counters (storage
puts/gets, kernel updates) must match exactly.
"""

import numpy as np
import pytest

from repro.cluster import analyze_solve, kernel_updates
from repro.cluster.counts import SolveCounts
from repro.core.blocked import grid_bounds
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
)
from repro.kernels import IterativeKernel, KernelStats
from repro.sparkle import SparkleContext

from .conftest import fw_table, ge_table, tc_table

SPECS = {
    "fw": (FloydWarshallGep(), fw_table, 8),
    "ge": (GaussianEliminationGep(), ge_table, 8),
    "tc": (TransitiveClosureGep(), tc_table, 1),
}


def _run(spec, table, strategy, r):
    with SparkleContext(num_executors=2, cores_per_executor=2) as sc:
        solver = GepSparkSolver(
            spec, sc, r=r, kernel=make_kernel(spec, "iterative"), strategy=strategy
        )
        _out, report = solver.solve(table)
        return report


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r", [2, 4])
def test_im_shuffle_bytes_match_counts(name, r):
    spec, make, dtype_bytes = SPECS[name]
    n = 24
    t = make(n, seed=1)
    counts = analyze_solve(spec, n, r)
    report = _run(spec, t, "im", r)
    blocks = counts.total_shuffle_blocks("im")
    payload = blocks * counts.tile_bytes(dtype_bytes)
    measured = report.engine_metrics.total_shuffle_bytes
    # Envelope: each shuffled record adds key/tag bytes on top of the tile.
    assert payload <= measured <= payload + blocks * 64


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r", [2, 4])
def test_cb_shuffle_collect_storage_match_counts(name, r):
    spec, make, dtype_bytes = SPECS[name]
    n = 24
    t = make(n, seed=2)
    counts = analyze_solve(spec, n, r)
    report = _run(spec, t, "cb", r)
    m = report.engine_metrics

    blocks = counts.total_shuffle_blocks("cb")
    payload = blocks * counts.tile_bytes(dtype_bytes)
    assert payload <= m.total_shuffle_bytes <= payload + blocks * 64

    collect_blocks = counts.total_collect_blocks() + counts.final_collect_blocks
    collect_payload = collect_blocks * counts.tile_bytes(dtype_bytes)
    assert collect_payload <= m.total_collect_bytes <= collect_payload + collect_blocks * 64

    assert m.storage_puts == sum(it.cb_storage_puts for it in counts.iterations)
    assert m.storage_gets == sum(it.cb_storage_gets for it in counts.iterations)


@pytest.mark.parametrize("name", SPECS)
@pytest.mark.parametrize("r", [1, 2, 4, 8])
def test_kernel_update_counts_exact(name, r):
    spec, make, _ = SPECS[name]
    n = 24
    t = make(n, seed=3)
    counts = analyze_solve(spec, n, r)
    report = _run(spec, t, "im", r)
    assert report.kernel_stats.updates == counts.total_updates()


@pytest.mark.parametrize("name", SPECS)
def test_per_case_updates_match_kernel_stats(name):
    """counts.kernel_updates == what the real kernel reports, per case."""
    spec, make, _ = SPECS[name]
    n, r = 20, 4
    t = make(n, seed=4)
    bounds = grid_bounds(n, r)
    stats = KernelStats()
    kern = IterativeKernel(spec)
    k = 1
    pivot = t[bounds[k] : bounds[k + 1], bounds[k] : bounds[k + 1]].copy()
    kern.run("A", pivot, pivot, pivot, pivot, bounds[k], bounds[k], bounds[k], n, stats=stats)
    assert stats.updates == kernel_updates(spec, "A", n, bounds, k, k, k)


def test_ge_copy_fanout_formula():
    """The paper's formula: A makes 2(r-k-1) + (r-k-1)^2 copies for GE."""
    spec = GaussianEliminationGep()
    r = 6
    counts = analyze_solve(spec, 24, r)
    for it in counts.iterations:
        expect = 2 * (r - it.k - 1) + (r - it.k - 1) ** 2
        if it.nb or it.nc:
            assert it.im_single_source_blocks == expect


def test_fw_no_pivot_copies_to_d():
    """FW's f ignores c[k,k]: A only fans out to B and C."""
    spec = FloydWarshallGep()
    counts = analyze_solve(spec, 24, 4)
    for it in counts.iterations:
        assert it.im_single_source_blocks == it.nb + it.nc


def test_counts_totals_and_block_maths():
    counts = analyze_solve(FloydWarshallGep(), 32, 4)
    assert isinstance(counts, SolveCounts)
    assert counts.block == 8
    assert counts.tile_bytes(8) == 8 * 8 * 8
    assert counts.final_collect_blocks == 16
    assert counts.total_updates() == 32**3
    assert counts.initial_shuffle_blocks == 16


def test_counts_requires_divisibility():
    with pytest.raises(ValueError):
        analyze_solve(FloydWarshallGep(), 30, 4)


def test_ge_last_iteration_a_only():
    counts = analyze_solve(GaussianEliminationGep(), 24, 4)
    last = counts.iterations[-1]
    assert last.nb == last.nc == last.nd == 0
    assert last.cb_collect_blocks == 1
    assert last.updates["B"] == last.updates["C"] == last.updates["D"] == 0


def test_ge_pivot_truncation_counts():
    """GE with n_pivots < n performs no updates in trailing blocks."""
    spec = GaussianEliminationGep(n_pivots=10)
    counts = analyze_solve(spec, 24, 4)
    stats_total = counts.total_updates()
    # independent: sum over active pivots of (n-1-k)^2
    expect = sum((24 - 1 - k) ** 2 for k in range(10))
    assert stats_total == expect
