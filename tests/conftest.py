"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
)
from repro.workloads import random_digraph_weights, weights_to_boolean

try:  # pragma: no cover - environment probe
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False

#: Per-test wall-clock ceiling (seconds) enforced by the SIGALRM
#: fallback below when the real ``pytest-timeout`` plugin is absent.
#: Generous on purpose: it exists to turn a hung test (e.g. a worker
#: supervision bug leaving a SIGSTOPped process blocking a future) into
#: a loud failure instead of a wedged CI job, not to police slowness.
FALLBACK_TEST_TIMEOUT = 300.0


if not _HAVE_PYTEST_TIMEOUT and hasattr(signal, "SIGALRM"):

    def pytest_configure(config):
        # Accept @pytest.mark.timeout(...) so tests can declare tighter
        # ceilings portably whether or not the plugin is installed.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): per-test wall-clock ceiling (fallback "
            "implementation; SIGALRM-based, main-thread only)",
        )

    @pytest.hookimpl(hookwrapper=True)
    def pytest_runtest_call(item):
        marker = item.get_closest_marker("timeout")
        seconds = FALLBACK_TEST_TIMEOUT
        if marker is not None and marker.args:
            seconds = float(marker.args[0])

        def _expired(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds:g}s wall-clock ceiling "
                "(SIGALRM fallback for the missing pytest-timeout plugin)"
            )

        if seconds > 0:
            previous = signal.signal(signal.SIGALRM, _expired)
            signal.setitimer(signal.ITIMER_REAL, seconds)
            try:
                yield
            finally:
                signal.setitimer(signal.ITIMER_REAL, 0)
                signal.signal(signal.SIGALRM, previous)
        else:
            yield

elif not _HAVE_PYTEST_TIMEOUT:  # pragma: no cover - non-POSIX fallback

    def pytest_configure(config):
        config.addinivalue_line(
            "markers", "timeout(seconds): per-test wall-clock ceiling"
        )


@pytest.fixture
def multi_worker():
    """Skip tests whose assertion only holds with real hardware
    parallelism (wall-clock comparisons between worker placements);
    correctness tests should NOT use this — the process backend is
    bit-identical regardless of core count."""
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"needs >= 2 cores for a meaningful timing claim "
                    f"(host has {cores})")
    return cores


@pytest.fixture
def fw_spec():
    return FloydWarshallGep()


@pytest.fixture
def ge_spec():
    return GaussianEliminationGep()


@pytest.fixture
def tc_spec():
    return TransitiveClosureGep()


def fw_table(n: int, seed: int = 0, density: float = 0.35) -> np.ndarray:
    """Random FW-APSP input table."""
    return random_digraph_weights(n, density, seed=seed)


def tc_table(n: int, seed: int = 0, density: float = 0.2) -> np.ndarray:
    """Random transitive-closure input table."""
    return weights_to_boolean(random_digraph_weights(n, density, seed=seed))


def ge_table(n: int, seed: int = 0) -> np.ndarray:
    """Random square GE table (diagonally dominant, no RHS column)."""
    from repro.workloads import diagonally_dominant

    return diagonally_dominant(n, seed=seed)


def assert_tables_equal(a: np.ndarray, b: np.ndarray, **kw) -> None:
    if a.dtype == np.bool_:
        np.testing.assert_array_equal(a, b)
    else:
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9, **kw)
