"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    TransitiveClosureGep,
)
from repro.workloads import random_digraph_weights, weights_to_boolean


@pytest.fixture
def fw_spec():
    return FloydWarshallGep()


@pytest.fixture
def ge_spec():
    return GaussianEliminationGep()


@pytest.fixture
def tc_spec():
    return TransitiveClosureGep()


def fw_table(n: int, seed: int = 0, density: float = 0.35) -> np.ndarray:
    """Random FW-APSP input table."""
    return random_digraph_weights(n, density, seed=seed)


def tc_table(n: int, seed: int = 0, density: float = 0.2) -> np.ndarray:
    """Random transitive-closure input table."""
    return weights_to_boolean(random_digraph_weights(n, density, seed=seed))


def ge_table(n: int, seed: int = 0) -> np.ndarray:
    """Random square GE table (diagonally dominant, no RHS column)."""
    from repro.workloads import diagonally_dominant

    return diagonally_dominant(n, seed=seed)


def assert_tables_equal(a: np.ndarray, b: np.ndarray, **kw) -> None:
    if a.dtype == np.bool_:
        np.testing.assert_array_equal(a, b)
    else:
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-9, **kw)
