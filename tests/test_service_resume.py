"""Hot-restart recovery tests (DESIGN.md §16).

Covers :meth:`repro.service.SolverService.resume` in-process — WAL
replay through normal admission, deadline re-clamping against wall-clock
admission time, cache rehydration from the durable result spool,
idempotent replay for reconnecting clients, and cross-restart dedup by
key and by fingerprint — and closes with the resilience soak: a real
``repro serve`` subprocess SIGKILLed mid-storm at a seeded chaos point,
restarted with ``--resume``, with every acked request settling exactly
once, bit-identical to an in-process reference solve.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.service import (
    RequestJournal,
    SolverService,
    _build_request,
    send_request,
)
from repro.sparkle import FaultPlan, RequestDeadlineExceeded, SparkleContext

pytestmark = pytest.mark.service

SPEC = FloydWarshallGep()
KERNEL = make_kernel(SPEC, "iterative")
REPO_ROOT = Path(__file__).resolve().parents[1]

_REFERENCES: dict = {}


def _context(**kw) -> SparkleContext:
    kw.setdefault("num_executors", 2)
    kw.setdefault("cores_per_executor", 1)
    return SparkleContext(**kw)


def _payload(seed: int, *, n: int = 24, r: int = 6, **kw) -> dict:
    """The JSON-safe wire form of a request — what the WAL persists."""
    payload = {
        "problem": "apsp",
        "n": n,
        "seed": seed,
        "density": 0.4,
        "r": r,
        "strategy": "im",
    }
    payload.update(kw)
    return payload


def _reference(seed: int, *, n: int = 24, r: int = 6) -> np.ndarray:
    """Direct engine solve of the same wire payload (bit-identity base)."""
    key = (seed, n, r)
    if key not in _REFERENCES:
        sc = _context()
        try:
            solver = GepSparkSolver(
                SPEC, sc, r=r, kernel=KERNEL, collect_stats=False
            )
            table = _build_request(_payload(seed, n=n, r=r)).table
            out, _ = solver.solve(np.array(table))
        finally:
            sc.stop()
        _REFERENCES[key] = out
    return _REFERENCES[key]


def _gate_solves(service: SolverService) -> threading.Event:
    """Block every engine pass on an event — freezes flights in-flight."""
    gate = threading.Event()
    original = service._solve
    service._solve = lambda req, offload: (
        gate.wait(60),
        original(req, offload),
    )[1]
    return gate


class TestResume:
    @pytest.mark.timeout(300)
    def test_incomplete_admissions_replay_bit_identical(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal")
        payload = _payload(5)
        fingerprint = _build_request(payload).fingerprint()
        journal.admit("k-1", fingerprint, payload, deadline=300.0,
                      admitted_unix=time.time() - 5.0)
        sc = _context()
        service = SolverService(sc, journal=journal)
        try:
            tickets = service.resume()
            assert len(tickets) == 1
            # the deadline was re-clamped to the remaining budget
            assert tickets[0].request.deadline < 300.0
            response = tickets[0].result(120)
            assert response.result.tobytes() == _reference(5).tobytes()
            assert service.metrics.journal_replayed == 1
            assert journal.incomplete() == []
            assert journal.settled_lookup("k-1")["outcome"] == "completed"
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_reconnecting_key_is_served_from_the_durable_spool(
        self, tmp_path
    ):
        # a previous life admitted, solved, settled — then the reply was
        # lost with the process
        payload = _payload(3)
        request = _build_request({**payload, "idempotency_key": "k-req"})
        fingerprint = request.fingerprint()
        reference = _reference(3)
        first_life = RequestJournal(tmp_path / "journal")
        first_life.admit("k-req", fingerprint, payload)
        first_life.settle("k-req", "completed", fingerprint=fingerprint,
                          result=reference)

        sc = _context()
        service = SolverService(
            sc, journal=RequestJournal(tmp_path / "journal")
        )
        try:
            response = service.solve(request, timeout=120)
            assert response.from_cache
            assert response.result.tobytes() == reference.tobytes()
            assert service.metrics.engine_passes == 0
            assert service.metrics.idempotent_replays == 1
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_expired_deadline_cancels_without_an_engine_pass(self, tmp_path):
        journal = RequestJournal(tmp_path / "journal")
        payload = _payload(2)
        fingerprint = _build_request(payload).fingerprint()
        journal.admit("k-late", fingerprint, payload, deadline=0.05,
                      admitted_unix=time.time() - 60.0)
        sc = _context()
        service = SolverService(sc, journal=journal)
        try:
            assert service.resume() == []
            assert service.metrics.engine_passes == 0
            assert service.metrics.deadline_cancelled == 1
            settled = journal.settled_lookup("k-late")
            assert settled["outcome"] == "deadline-cancelled"
            assert settled["error_type"] == "RequestDeadlineExceeded"
            assert journal.incomplete() == []
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_cache_rehydrates_from_the_spool(self, tmp_path):
        payload = _payload(4)
        fingerprint = _build_request(payload).fingerprint()
        reference = _reference(4)
        first_life = RequestJournal(tmp_path / "journal")
        first_life.admit("k-done", fingerprint, payload)
        first_life.settle("k-done", "completed", fingerprint=fingerprint,
                          result=reference)

        sc = _context(memory_budget_bytes=64 << 20)
        service = SolverService(
            sc, journal=RequestJournal(tmp_path / "journal")
        )
        try:
            service.resume()
            assert service.metrics.results_rehydrated == 1
            assert service.cache.live_bytes == reference.nbytes
            # an unkeyed request with the same fingerprint is a pure
            # cache hit — no engine pass after the restart
            response = service.solve(_build_request(payload), timeout=120)
            assert response.from_cache
            assert response.result.tobytes() == reference.tobytes()
            assert service.metrics.engine_passes == 0
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_replay_landing_on_rehydrated_cache_still_settles_the_wal(
        self, tmp_path
    ):
        # k-a completed (spooled); k-b — same fingerprint — was still in
        # flight at the crash.  Resume rehydrates the cache from k-a's
        # spooled result, so k-b's replay is a cache hit — which must
        # STILL settle k-b durably, or it would replay forever.
        payload = _payload(6)
        fingerprint = _build_request(payload).fingerprint()
        reference = _reference(6)
        first_life = RequestJournal(tmp_path / "journal")
        first_life.admit("k-a", fingerprint, payload)
        first_life.settle("k-a", "completed", fingerprint=fingerprint,
                          result=reference)
        first_life.admit("k-b", fingerprint, payload)

        sc = _context()
        journal = RequestJournal(tmp_path / "journal")
        service = SolverService(sc, journal=journal)
        try:
            tickets = service.resume()
            assert len(tickets) == 1
            assert tickets[0].result(120).from_cache
            assert service.metrics.engine_passes == 0
            assert journal.incomplete() == []
            assert journal.settled_lookup("k-b")["outcome"] == "completed"
        finally:
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_duplicate_fingerprints_across_restart_share_one_engine_pass(
        self, tmp_path
    ):
        payload = _payload(7)
        fingerprint = _build_request(payload).fingerprint()
        journal = RequestJournal(tmp_path / "journal")
        journal.admit("k-a", fingerprint, payload)
        journal.admit("k-b", fingerprint, payload)
        sc = _context()
        service = SolverService(sc, journal=journal)
        gate = _gate_solves(service)
        try:
            tickets = service.resume()
            assert len(tickets) == 2
            gate.set()
            for ticket in tickets:
                assert (
                    ticket.result(120).result.tobytes()
                    == _reference(7).tobytes()
                )
            assert service.metrics.engine_passes == 1
            assert service.metrics.journal_replayed == 2
            assert journal.settled_lookup("k-a")["outcome"] == "completed"
            assert journal.settled_lookup("k-b")["outcome"] == "completed"
        finally:
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_client_retry_racing_the_replay_coalesces_by_key(self, tmp_path):
        payload = _payload(8)
        fingerprint = _build_request(payload).fingerprint()
        journal = RequestJournal(tmp_path / "journal")
        journal.admit("k-dup", fingerprint, payload)
        sc = _context()
        service = SolverService(sc, journal=journal)
        gate = _gate_solves(service)
        try:
            (replayed,) = service.resume()
            wal_len = len(journal.wal.entries())
            wire = {**payload, "idempotency_key": "k-dup"}
            retry = service.submit(_build_request(wire), wire=wire)
            assert retry.coalesced
            assert service.metrics.resume_coalesced == 1
            # the admission was already durable: nothing re-appended
            assert len(journal.wal.entries()) == wal_len
            gate.set()
            assert (
                retry.result(120).result.tobytes()
                == replayed.result(120).result.tobytes()
            )
            assert service.metrics.engine_passes == 1
            # both tickets share the key; it settled exactly once
            settles = [
                e for e in journal.wal.entries()
                if e.get("kind") == "settled" and e.get("key") == "k-dup"
            ]
            assert len(settles) == 1
        finally:
            gate.set()
            service.stop()
            sc.stop()

    @pytest.mark.timeout(300)
    def test_resume_requires_a_journal(self):
        sc = _context()
        service = SolverService(sc)
        try:
            with pytest.raises(RuntimeError, match="RequestJournal"):
                service.resume()
        finally:
            service.stop()
            sc.stop()


# ---------------------------------------------------------------------------
# the resilience soak: SIGKILL a real server mid-storm, restart --resume
# ---------------------------------------------------------------------------


def _spawn_server(sock: str, journal_dir: str, *, resume: bool):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    cmd = [
        sys.executable, "-m", "repro", "serve",
        "--socket", sock,
        "--journal-dir", journal_dir,
        "--executors", "2", "--cores", "1",
        "--max-queue-depth", "32",
    ]
    if resume:
        cmd.append("--resume")
    return subprocess.Popen(
        cmd,
        cwd=str(REPO_ROOT),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait_ready(sock_path: str, proc, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"server died during startup (rc={proc.returncode}):\n"
                + proc.stdout.read()
            )
        probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        probe.settimeout(1.0)
        try:
            probe.connect(sock_path)
            return
        except OSError:
            time.sleep(0.05)
        finally:
            probe.close()
    raise AssertionError(f"server never listened on {sock_path}")


class TestCrashRestartSoak:
    @pytest.mark.resilience
    @pytest.mark.chaos
    @pytest.mark.timeout(600)
    def test_sigkill_midstorm_then_resume_settles_every_ack_exactly_once(
        self, tmp_path
    ):
        clients, per_client = 6, 3
        # seed=13 fires driver_kill first at (client=1, seq=1) — a
        # seeded mid-storm murder, not a hand-picked quiet moment
        plan = FaultPlan.from_string("seed=13,driver_kill=0.25")
        # AF_UNIX paths are capped at ~107 bytes; stay short and shared
        sock_dir = tempfile.mkdtemp(prefix="repro-soak-")
        sock = os.path.join(sock_dir, "s.sock")
        journal_dir = str(tmp_path / "journal")
        shm_before = set(os.listdir("/dev/shm")) if os.path.isdir(
            "/dev/shm"
        ) else set()

        state = {"proc": _spawn_server(sock, journal_dir, resume=False)}
        _wait_ready(sock, state["proc"])
        killed = threading.Event()
        kill_lock = threading.Lock()
        failures: list[str] = []
        outcomes: list[tuple[str, int, dict]] = []
        outcomes_lock = threading.Lock()

        def kill_and_restart() -> None:
            proc = state["proc"]
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
            if proc.returncode != -signal.SIGKILL:
                failures.append(
                    f"first server exited rc={proc.returncode}, not SIGKILL"
                )
            state["proc"] = _spawn_server(sock, journal_dir, resume=True)
            try:
                _wait_ready(sock, state["proc"])
            except AssertionError as exc:
                failures.append(str(exc))

        def client_loop(client: int) -> None:
            for seq in range(per_client):
                if plan.driver_kill(client, seq) and not killed.is_set():
                    with kill_lock:
                        if not killed.is_set():
                            kill_and_restart()
                            killed.set()
                key = f"c{client}-s{seq}"
                payload = _payload(
                    seq % 2,
                    client=f"client-{client}",
                    idempotency_key=key,
                    return_result=True,
                    timeout=60,
                )
                try:
                    reply = send_request(
                        sock, payload, timeout=60, retries=12
                    )
                except OSError as exc:
                    failures.append(f"{key}: transport never recovered: {exc}")
                    continue
                with outcomes_lock:
                    outcomes.append((key, seq % 2, reply))

        threads = [
            threading.Thread(target=client_loop, args=(c,), daemon=True)
            for c in range(clients)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)
            assert not any(t.is_alive() for t in threads), "storm deadlocked"
            assert not failures, failures
            assert killed.is_set(), "seeded driver_kill never fired"
            assert plan.fired().get("driver_kill", 0) >= 1

            # every acked request returned the bit-identical result
            assert len(outcomes) == clients * per_client
            for key, seed, reply in outcomes:
                assert reply["status"] == "ok", f"{key}: {reply!r}"
                assert (
                    reply["result"].tobytes() == _reference(seed).tobytes()
                ), f"{key}: result drifted across the crash"

            # exactly-once-visible: scan the WAL (both lives append to
            # it; compaction has not run yet) — no key ever settled
            # "completed" twice
            completed = Counter()
            wal_path = Path(journal_dir) / "requests.wal"
            for line in wal_path.read_text().splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue  # torn tail from the SIGKILL
                if (
                    record.get("kind") == "settled"
                    and record.get("outcome") == "completed"
                ):
                    completed[record["key"]] += 1
            assert completed, "no settles ever reached the WAL"
            double = {k: v for k, v in completed.items() if v > 1}
            assert not double, f"keys settled more than once: {double}"

            # graceful drain: SIGTERM → settle → checkpoint → unlink
            proc = state["proc"]
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            assert proc.returncode == 0, f"drain failed (rc={proc.returncode}):\n{out}"
            assert "service counters" in out
            assert not os.path.exists(sock), "socket file leaked"
        finally:
            proc = state["proc"]
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
            if os.path.exists(sock):
                os.unlink(sock)
            os.rmdir(sock_dir)

        # the journal is checkpointed and internally consistent
        journal = RequestJournal(journal_dir)
        assert journal.torn_records == 0
        assert journal.incomplete() == []
        fsck = journal.spool.fsck()
        assert fsck.clean, f"spool damaged: {fsck.summary()}"
        assert fsck.orphans == [], "compaction leaked spool blocks"

        # nothing leaked in /dev/shm
        if os.path.isdir("/dev/shm"):
            assert set(os.listdir("/dev/shm")) - shm_before == set()
