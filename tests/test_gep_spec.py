"""GEP specifications: Σ_G, masks, references, padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.blocked import virtual_pad, virtual_unpad
from repro.core.gep import (
    FloydWarshallGep,
    GaussianEliminationGep,
    SemiringGep,
    TransitiveClosureGep,
    gep_reference,
    gep_reference_vectorized,
)
from repro.semiring import CountingSemiring

from .conftest import assert_tables_equal, fw_table, ge_table, tc_table


class TestSigma:
    def test_fw_sigma_is_full_cube(self, fw_spec):
        assert all(
            fw_spec.sigma(i, j, k) for i in range(3) for j in range(3) for k in range(3)
        )

    def test_ge_sigma_requires_strictly_greater(self, ge_spec):
        assert ge_spec.sigma(2, 2, 1)
        assert not ge_spec.sigma(1, 2, 1)
        assert not ge_spec.sigma(2, 1, 1)
        assert not ge_spec.sigma(1, 1, 1)

    def test_ge_mask_matches_sigma(self, ge_spec):
        n = 7
        for k in (0, 3, 6):
            mask = ge_spec.sigma_mask(0, 0, (n, n), k)
            expect = np.array(
                [[ge_spec.sigma(i, j, k) for j in range(n)] for i in range(n)]
            )
            np.testing.assert_array_equal(mask, expect)

    def test_fw_mask_is_none(self, fw_spec):
        assert fw_spec.sigma_mask(0, 0, (5, 5), 2) is None

    def test_ge_mask_fast_path_below_pivot(self, ge_spec):
        # Tile entirely right/below the pivot: no masking needed.
        assert ge_spec.sigma_mask(5, 5, (3, 3), 4) is None

    def test_ge_mask_zero_for_dead_tile(self, ge_spec):
        mask = ge_spec.sigma_mask(0, 5, (3, 3), 4)
        assert mask is not None and not mask.any()

    def test_offset_mask_consistency(self, ge_spec):
        n, gi0, gj0, k = 4, 3, 6, 4
        mask = ge_spec.sigma_mask(gi0, gj0, (n, n), k)
        expect = np.array(
            [
                [ge_spec.sigma(gi0 + a, gj0 + b, k) for b in range(n)]
                for a in range(n)
            ]
        )
        np.testing.assert_array_equal(mask, expect)


class TestPivotRange:
    def test_ge_k_active_respects_n_pivots(self):
        spec = GaussianEliminationGep(n_pivots=3)
        assert spec.k_active(2, 10)
        assert not spec.k_active(3, 10)
        assert not spec.k_active(-1, 10)

    def test_default_runs_all_k(self, fw_spec):
        assert fw_spec.k_active(0, 4) and fw_spec.k_active(3, 4)
        assert not fw_spec.k_active(4, 4)

    def test_negative_pivots_rejected(self):
        with pytest.raises(ValueError):
            GaussianEliminationGep(n_pivots=-1)


class TestReferences:
    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_fw_vectorized_equals_scalar(self, fw_spec, n):
        t = fw_table(n, seed=n)
        assert_tables_equal(
            gep_reference(fw_spec, t), gep_reference_vectorized(fw_spec, t)
        )

    @pytest.mark.parametrize("n", [1, 2, 5, 9])
    def test_ge_vectorized_equals_scalar(self, ge_spec, n):
        t = ge_table(n, seed=n)
        assert_tables_equal(
            gep_reference(ge_spec, t), gep_reference_vectorized(ge_spec, t)
        )

    def test_tc_vectorized_equals_scalar(self, tc_spec):
        t = tc_table(8, seed=2)
        assert_tables_equal(
            gep_reference(tc_spec, t), gep_reference_vectorized(tc_spec, t)
        )

    def test_fw_matches_scipy(self, fw_spec):
        import scipy.sparse as sps
        import scipy.sparse.csgraph as csg

        w = fw_table(16, seed=5)
        ours = gep_reference_vectorized(fw_spec, w)
        m = np.where(np.isfinite(w) & (w != 0), w, 0)
        ref = csg.shortest_path(sps.csr_matrix(m), method="FW", directed=True)
        np.testing.assert_allclose(ours, ref)

    def test_tc_matches_networkx(self, tc_spec):
        import networkx as nx

        from repro.workloads import random_digraph_weights, weights_to_networkx

        w = random_digraph_weights(12, 0.15, seed=7)
        t = np.isfinite(w)
        np.fill_diagonal(t, True)
        ours = gep_reference_vectorized(tc_spec, t)
        g = weights_to_networkx(w)
        closure = nx.transitive_closure(g, reflexive=True)
        ref = np.zeros((12, 12), dtype=bool)
        for u, v in closure.edges():
            ref[u, v] = True
        np.fill_diagonal(ref, True)
        np.testing.assert_array_equal(ours, ref)

    def test_counting_semiring_gep_counts_paths(self):
        # Over the counting semiring, the GEP fold counts, per (i, j),
        # simple-path enumerations through prefix intermediate sets on a
        # DAG; for a strictly upper-triangular adjacency this equals the
        # number of distinct paths i -> j, checkable by DP.
        n = 7
        rng = np.random.default_rng(11)
        adj = np.triu((rng.random((n, n)) < 0.5).astype(np.int64), 1)
        spec = SemiringGep(CountingSemiring(), name="path-count")
        got = gep_reference_vectorized(spec, adj.copy())
        # Independent reference: path counts by topological DP.
        ref = adj.astype(np.int64).copy()
        for j in range(n):
            for i in range(n - 1, -1, -1):
                ref[i, j] += sum(adj[i, m] * ref[m, j] for m in range(i + 1, j))
        np.testing.assert_array_equal(np.triu(got, 1), np.triu(ref, 1))

    def test_reference_rejects_non_square(self, fw_spec):
        with pytest.raises(ValueError):
            gep_reference(fw_spec, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            gep_reference_vectorized(fw_spec, np.zeros((2, 3)))

    def test_ge_solves_linear_system(self):
        from repro.workloads import augmented_system

        n = 10
        _, x_true, aug = augmented_system(n, seed=4)
        size = n + 1
        spec = GaussianEliminationGep(n_pivots=n - 1)
        sq = np.zeros((size, size))
        sq[:n, :] = aug
        sq[n, n] = 1.0
        done = gep_reference_vectorized(spec, sq)
        x = np.linalg.solve(np.triu(done[:n, :n]), done[:n, n])
        np.testing.assert_allclose(x, x_true, rtol=1e-8)


class TestPadding:
    @pytest.mark.parametrize("n,target", [(5, 8), (7, 12), (4, 4)])
    def test_fw_padding_is_inert(self, fw_spec, n, target):
        t = fw_table(n, seed=n)
        plain = gep_reference_vectorized(fw_spec, t)
        padded = virtual_pad(fw_spec, t, target)
        done = gep_reference_vectorized(fw_spec, padded)
        assert_tables_equal(virtual_unpad(done, n), plain)

    @pytest.mark.parametrize("n,target", [(5, 8), (6, 11)])
    def test_ge_padding_is_inert(self, n, target):
        spec = GaussianEliminationGep(n_pivots=n - 1)
        t = ge_table(n, seed=n)
        plain = gep_reference_vectorized(spec, t)
        padded = virtual_pad(spec, t, target)
        done = gep_reference_vectorized(spec, padded)
        assert_tables_equal(virtual_unpad(done, n), plain)

    def test_tc_padding_is_inert(self, tc_spec):
        t = tc_table(6, seed=3)
        plain = gep_reference_vectorized(tc_spec, t)
        padded = virtual_pad(tc_spec, t, 9)
        done = gep_reference_vectorized(tc_spec, padded)
        assert_tables_equal(virtual_unpad(done, 6), plain)

    def test_pad_validates(self, fw_spec):
        with pytest.raises(ValueError):
            virtual_pad(fw_spec, np.zeros((3, 3)), 2)
        with pytest.raises(ValueError):
            virtual_pad(fw_spec, np.zeros((2, 3)), 4)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_fw_reference_idempotent(n, seed):
    """Running FW twice changes nothing (fixpoint property)."""
    spec = FloydWarshallGep()
    t = fw_table(n, seed=seed)
    once = gep_reference_vectorized(spec, t)
    twice = gep_reference_vectorized(spec, once)
    np.testing.assert_allclose(twice, once)


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=0, max_value=100))
@settings(max_examples=40, deadline=None)
def test_tc_reference_idempotent(n, seed):
    spec = TransitiveClosureGep()
    t = tc_table(n, seed=seed)
    once = gep_reference_vectorized(spec, t)
    twice = gep_reference_vectorized(spec, once)
    np.testing.assert_array_equal(twice, once)
