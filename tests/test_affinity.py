"""Tile-affinity scheduling: the driver's placement memory.

Two layers under test (DESIGN.md §14): the :class:`AffinityRegistry`
unit semantics (route / majority-vote batch routing / gang routing /
rebalance / reset, all metered), and the solve-level claims — a steady
grid converges to a >= 90% hit rate, a quarantined worker's tiles spill
and re-home gracefully, and placements never leak across solves.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import FaultPlan, SparkleContext
from repro.sparkle.affinity import AffinityRegistry
from repro.sparkle.metrics import EngineMetrics
from repro.sparkle.serialize import shm_supported

from .conftest import fw_table

pytestmark = pytest.mark.batching

needs_shm = pytest.mark.skipif(
    not shm_supported(), reason="multiprocessing.shared_memory unavailable"
)


# ----------------------------------------------------------------------
# registry unit semantics
# ----------------------------------------------------------------------
class TestAffinityRegistry:
    def test_route_homes_then_sticks(self):
        m = EngineMetrics()
        reg = AffinityRegistry(4, metrics=m)
        assert reg.route((0, 8), default=2) == 2  # first touch: miss
        assert reg.route((0, 8), default=3) == 2  # sticks to its home
        assert reg.route((8, 0), default=7) == 3  # defaults wrap mod W
        assert (m.affinity_hits, m.affinity_misses) == (1, 2)
        assert len(reg) == 2

    def test_route_batch_majority_vote_rehomes_all(self):
        m = EngineMetrics()
        reg = AffinityRegistry(4, metrics=m)
        reg.route("a", 1)
        reg.route("b", 1)
        reg.route("c", 2)
        m2 = EngineMetrics()
        reg._metrics = m2
        chosen = reg.route_batch(["a", "b", "c", "d"], default=0)
        assert chosen == 1  # 2 votes for slot 1 beat 1 vote for slot 2
        assert (m2.affinity_hits, m2.affinity_misses) == (2, 2)
        # every key in the batch now lives on the winner
        assert reg.slots_of(["a", "b", "c", "d"]) == {1}

    def test_route_batch_tie_breaks_to_lowest_slot(self):
        reg = AffinityRegistry(4)
        reg.route("a", 3)
        reg.route("b", 1)
        assert reg.route_batch(["a", "b"], default=0) == 1
        # empty batch: the default wins, nothing is homed
        assert reg.route_batch([], default=9) == 1  # 9 % 4
        assert len(reg) == 2

    def test_route_many_is_per_tile(self):
        reg = AffinityRegistry(4)
        reg.route("a", 0)
        slots = reg.route_many(["a", "b", "c"], [3, 1, 2])
        assert slots == [0, 1, 2]  # a goes home; b/c take their defaults
        assert reg.route_many(["b", "c"], [0, 0]) == [1, 2]

    def test_invalidate_worker_spills_and_meters(self):
        m = EngineMetrics()
        reg = AffinityRegistry(4, metrics=m)
        for i in range(6):
            reg.route(i, i % 2)  # slots 0 and 1, three tiles each
        assert reg.invalidate_worker(1) == 3
        assert m.affinity_rebalances == 3
        assert len(reg) == 3
        # spilled tiles re-home on their next dispatch instead of
        # chasing the dead slot
        assert reg.route(1, default=3) == 3

    def test_reset_forgets_everything(self):
        reg = AffinityRegistry(2)
        reg.route_batch(["x", "y"], 1)
        reg.reset()
        assert len(reg) == 0
        assert reg.snapshot() == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            AffinityRegistry(0)


# ----------------------------------------------------------------------
# solve-level claims
# ----------------------------------------------------------------------
def _solve(sc, table, *, r):
    spec = FloydWarshallGep()
    solver = GepSparkSolver(
        spec, sc, r=r, kernel=make_kernel(spec, "iterative"), strategy="im"
    )
    return solver.solve(table.copy())


@needs_shm
def test_steady_grid_hit_rate_at_least_90_percent():
    """FW touches every tile each of the r outer iterations, so only the
    first iteration misses: hit rate converges to 1 - 1/r.  At r=16
    that is 0.9375 — comfortably over the 90% acceptance bar."""
    table = fw_table(48, seed=2)
    with SparkleContext(2, 2, backend="processes", dispatch="batch") as sc:
        out, _ = _solve(sc, table, r=16)
        summ = sc.metrics.dispatch_summary()
    baseline = fw_table(48, seed=2)
    with SparkleContext(2, 2) as sc:
        expect, _ = _solve(sc, baseline, r=16)
    assert np.array_equal(out, expect)
    assert summ["affinity_hit_rate"] is not None
    assert summ["affinity_hit_rate"] >= 0.90
    assert summ["affinity_rebalances"] == 0


@needs_shm
@pytest.mark.supervision
def test_quarantined_worker_spills_affinity_and_rebalances():
    """A SIGKILLed worker's tiles must not keep chasing the dead slot:
    the respawn protocol evicts them (metered) and the solve still
    lands bit-identical."""
    table = fw_table(24, seed=3)
    with SparkleContext(2, 2) as sc:
        baseline, _ = _solve(sc, table, r=4)
    plan = FaultPlan.from_string("seed=7,worker_kill=0.25")
    with SparkleContext(
        2,
        2,
        backend="processes",
        dispatch="batch",
        fault_plan=plan,
        heartbeat_interval=0.1,
    ) as sc:
        out, _ = _solve(sc, table, r=4)
        summ = sc.metrics.dispatch_summary()
        crashes = sc.metrics.worker_crashes
        prefix = sc._executors.backend.arena.prefix
    assert np.array_equal(out, baseline)
    assert crashes >= 1
    assert summ["affinity_rebalances"] >= 1
    assert glob.glob(f"/dev/shm/{prefix}*") == []


@needs_shm
def test_no_affinity_leak_across_solves():
    """The registry is scoped to one solve: a second solve on the same
    context starts from an empty placement table (different grid sizes
    would otherwise inherit stale homes)."""
    with SparkleContext(2, 2, backend="processes", dispatch="batch") as sc:
        reg = sc._executors.backend.affinity
        out1, _ = _solve(sc, fw_table(24, seed=4), r=4)
        assert len(reg) > 0, "first solve should have homed tiles"
        first = reg.snapshot()
        out2, _ = _solve(sc, fw_table(36, seed=5), r=6)
        second = reg.snapshot()
    # the r=6 grid's tile keys replaced the r=4 grid's wholesale
    assert set(second) != set(first)
    with SparkleContext(2, 2) as sc:
        expect1, _ = _solve(sc, fw_table(24, seed=4), r=4)
        expect2, _ = _solve(sc, fw_table(36, seed=5), r=6)
    assert np.array_equal(out1, expect1)
    assert np.array_equal(out2, expect2)


@needs_shm
def test_affinity_off_still_bit_identical():
    table = fw_table(24, seed=6)
    outs = {}
    for affinity in (True, False):
        with SparkleContext(
            2, 2, backend="processes", dispatch="batch", affinity=affinity
        ) as sc:
            outs[affinity], _ = _solve(sc, table, r=4)
            if not affinity:
                assert sc._executors.backend.affinity is None
                assert sc.metrics.dispatch_summary()["affinity_hit_rate"] is None
    assert np.array_equal(outs[True], outs[False])
