"""Every shipped example must run end to end (their asserts are real
validations against independent references)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.stem} produced no output"


def test_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable: quickstart + >= 2 scenarios
