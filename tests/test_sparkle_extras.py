"""Engine extras: sortByKey, sample, coalesce, cache eviction, stress."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparkle import SparkleContext


@pytest.fixture
def sc():
    with SparkleContext(2, 2) as ctx:
        yield ctx


class TestSortByKey:
    def test_ascending_descending(self, sc):
        kv = sc.parallelize([(3, "c"), (1, "a"), (2, "b")], 2)
        assert kv.sortByKey(num_partitions=2).collect() == [
            (1, "a"), (2, "b"), (3, "c"),
        ]
        assert kv.sortByKey(ascending=False, num_partitions=2).collect() == [
            (3, "c"), (2, "b"), (1, "a"),
        ]

    def test_empty(self, sc):
        assert sc.empty_rdd().sortByKey().collect() == []

    def test_duplicate_keys_kept(self, sc):
        kv = sc.parallelize([(1, "x"), (1, "y"), (0, "z")], 3)
        out = kv.sortByKey(num_partitions=2).collect()
        assert [k for k, _ in out] == [0, 1, 1]
        assert {v for _, v in out} == {"x", "y", "z"}

    @given(
        data=st.lists(st.integers(min_value=-100, max_value=100), max_size=40),
        parts=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_sorted(self, data, parts):
        with SparkleContext(2, 2) as ctx:
            kv = ctx.parallelize([(x, x) for x in data], parts)
            got = [k for k, _ in kv.sortByKey(num_partitions=3).collect()]
        assert got == sorted(data)


class TestSample:
    def test_fraction_bounds(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([1]).sample(1.5)

    def test_extremes(self, sc):
        rdd = sc.parallelize(range(100), 4)
        assert rdd.sample(0.0).count() == 0
        assert rdd.sample(1.0).count() == 100

    def test_deterministic_per_seed(self, sc):
        rdd = sc.parallelize(range(500), 4)
        a = rdd.sample(0.2, seed=7).collect()
        b = rdd.sample(0.2, seed=7).collect()
        c = rdd.sample(0.2, seed=8).collect()
        assert a == b
        assert a != c


class TestCoalesce:
    def test_merges_without_shuffle(self, sc):
        rdd = sc.parallelize(range(20), 8).coalesce(3)
        assert rdd.getNumPartitions() == 3
        assert rdd.collect() == list(range(20))
        sc.metrics.jobs.clear()
        rdd.count()
        assert sc.metrics.jobs[-1].num_stages == 1  # narrow

    def test_cannot_exceed_parents(self, sc):
        rdd = sc.parallelize(range(4), 2).coalesce(10)
        assert rdd.getNumPartitions() == 2

    def test_validation(self, sc):
        with pytest.raises(ValueError):
            sc.parallelize([1]).coalesce(0)


class TestCacheEviction:
    def test_lru_eviction_recomputes(self):
        calls = []
        with SparkleContext(1, 1, cache_capacity_bytes=1500) as ctx:
            rdd = (
                ctx.parallelize(range(6), 3)
                .map(lambda x: (calls.append(x), np.ones(32) * x)[1])
                .cache()
            )
            rdd.count()
            first = len(calls)
            assert ctx._block_manager.evictions > 0
            rdd.count()
            assert len(calls) > first  # evicted partitions recomputed

        # Results stay correct regardless of eviction.
        with SparkleContext(1, 1, cache_capacity_bytes=1500) as ctx:
            rdd = ctx.parallelize(range(6), 3).map(lambda x: x * 2).cache()
            assert rdd.collect() == rdd.collect() == [x * 2 for x in range(6)]

    def test_unbounded_cache_never_evicts(self):
        with SparkleContext(1, 1) as ctx:
            rdd = ctx.parallelize(range(4), 2).map(lambda x: np.ones(64)).cache()
            rdd.count()
            rdd.count()
            assert ctx._block_manager.evictions == 0
            assert ctx._block_manager.live_bytes > 0

    def test_oversized_block_not_cached(self):
        with SparkleContext(1, 1, cache_capacity_bytes=100) as ctx:
            rdd = ctx.parallelize([0], 1).map(lambda x: np.ones(1000)).cache()
            rdd.count()
            assert ctx._block_manager.num_blocks == 0


class TestStress:
    def test_many_partitions_many_keys(self):
        with SparkleContext(4, 4) as ctx:
            n = 5000
            got = dict(
                ctx.parallelize([(i % 97, i) for i in range(n)], 64)
                .reduceByKey(lambda a, b: a + b, 32)
                .collect()
            )
        expect = {}
        for i in range(n):
            expect[i % 97] = expect.get(i % 97, 0) + i
        assert got == expect

    def test_deep_narrow_chain(self):
        with SparkleContext(2, 2) as ctx:
            rdd = ctx.parallelize(range(10), 2)
            for _ in range(60):
                rdd = rdd.map(lambda x: x + 1)
            assert rdd.collect() == [x + 60 for x in range(10)]

    def test_many_sequential_shuffles(self):
        with SparkleContext(2, 2) as ctx:
            rdd = ctx.parallelize([(i % 4, 1) for i in range(32)], 4)
            for _ in range(8):
                rdd = rdd.reduceByKey(lambda a, b: a + b, 4).mapValues(lambda v: v)
            got = dict(rdd.collect())
        assert got == {k: 8 for k in range(4)}
