"""Bench gate for the batched dispatch plane (tier-2, ``make bench-gate``).

The regression this locks down: BENCH_engine.json once recorded the
process backend *losing* to threads because every tile update paid its
own IPC round-trip.  Batched dispatch must (a) cut driver<->worker
round-trips by at least 10x at gate scale and (b) never regress
wall-clock by more than 10% against per-tile dispatch.  The round-trip
claim is a pure counter comparison and runs everywhere; the wall-clock
claim needs real parallelism and skips on single-core hosts (the
``multi_worker`` fixture).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import SparkleContext
from repro.sparkle.serialize import shm_supported

from .conftest import fw_table

pytestmark = [
    pytest.mark.perf,
    pytest.mark.batching,
    pytest.mark.slow,
    pytest.mark.skipif(
        not shm_supported(), reason="needs multiprocessing.shared_memory"
    ),
]

GATE_N = 96
GATE_R = 12
MIN_ROUND_TRIP_REDUCTION = 10.0
MAX_WALL_REGRESSION = 1.10

_RESULTS: dict[str, dict] = {}


def _measure():
    """Run the pinned gate workload once per dispatch mode (cached
    across the gate's tests) and collect wall + dispatch counters."""
    if _RESULTS:
        return _RESULTS
    spec = FloydWarshallGep()
    table = fw_table(GATE_N, seed=0)
    for mode in ("tile", "batch"):
        with SparkleContext(
            2, 2, backend="processes", dispatch=mode
        ) as sc:
            solver = GepSparkSolver(
                spec,
                sc,
                r=GATE_R,
                kernel=make_kernel(spec, "iterative"),
                strategy="im",
                # one partition per worker slot: the tuned configuration
                # (matches bench_driver.py); more partitions only shrink
                # each batch
                num_partitions=4,
            )
            t0 = time.perf_counter()
            out, _ = solver.solve(table.copy())
            wall = time.perf_counter() - t0
            _RESULTS[mode] = {
                "out": out,
                "wall": wall,
                **sc.metrics.dispatch_summary(),
            }
    return _RESULTS


def test_gate_round_trip_reduction():
    res = _measure()
    assert np.array_equal(res["tile"]["out"], res["batch"]["out"])
    tile_rt = res["tile"]["dispatch_round_trips"]
    batch_rt = res["batch"]["dispatch_round_trips"]
    assert tile_rt > 0 and batch_rt > 0, "gate workload must offload"
    reduction = tile_rt / batch_rt
    assert reduction >= MIN_ROUND_TRIP_REDUCTION, (
        f"batched dispatch only cut round-trips {reduction:.1f}x "
        f"({tile_rt} -> {batch_rt}); the gate requires "
        f">= {MIN_ROUND_TRIP_REDUCTION:.0f}x"
    )


def _record_wall_gate(status: str) -> None:
    """Write the wall-clock gate outcome into ``BENCH_engine.json``.

    A skip on an undersized host must be an explicit, auditable record
    (``derived.wall_clock_gate = "SKIPPED: ..."``) rather than silence —
    otherwise a 1-core CI container looks identical to a passing gate.
    Merges into an existing bench report when one is present; creates a
    minimal stub otherwise.
    """
    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    try:
        report = json.loads(path.read_text()) if path.exists() else {}
    except (OSError, json.JSONDecodeError):
        report = {}
    report.setdefault("derived", {})["wall_clock_gate"] = status
    path.write_text(json.dumps(report, indent=2) + "\n")


def test_gate_no_wall_clock_regression():
    cores = os.cpu_count() or 1
    if cores < 2:
        reason = (
            f"SKIPPED: <2 cores (host has {cores}; the wall-clock claim "
            "needs real hardware parallelism)"
        )
        _record_wall_gate(reason)
        pytest.skip(reason)
    res = _measure()
    tile_wall, batch_wall = res["tile"]["wall"], res["batch"]["wall"]
    assert batch_wall <= tile_wall * MAX_WALL_REGRESSION, (
        f"batched dispatch regressed wall-clock: {batch_wall:.2f}s vs "
        f"{tile_wall:.2f}s per-tile (limit {MAX_WALL_REGRESSION:.0%})"
    )
    _record_wall_gate(
        f"PASS: batch {batch_wall:.2f}s vs tile {tile_wall:.2f}s "
        f"(limit {MAX_WALL_REGRESSION:.0%}, {cores} cores)"
    )


# ----------------------------------------------------------------------
# wavefront pipelining gate: barrier-wait reduction at bench scale
# ----------------------------------------------------------------------
MIN_BARRIER_WAIT_REDUCTION = 0.30

_PIPELINE_RESULTS: dict[int, dict] = {}


def _measure_pipelined():
    """The bench configuration (4 executors x 2 cores, threads) at gate
    scale, once per pipeline depth, cached across the gate's tests."""
    if _PIPELINE_RESULTS:
        return _PIPELINE_RESULTS
    spec = FloydWarshallGep()
    table = fw_table(GATE_N, seed=0)
    for depth in (1, 2):
        with SparkleContext(4, 2, pipeline_depth=depth) as sc:
            solver = GepSparkSolver(
                spec,
                sc,
                r=GATE_R,
                kernel=make_kernel(spec, "iterative"),
                strategy="im",
            )
            t0 = time.perf_counter()
            out, _ = solver.solve(table.copy())
            wall = time.perf_counter() - t0
            _PIPELINE_RESULTS[depth] = {
                "out": out,
                "wall": wall,
                **sc.metrics.pipeline_summary(),
            }
    return _PIPELINE_RESULTS


def _record_pipeline_gate(status: str) -> None:
    """Write the barrier-wait gate outcome into ``BENCH_engine.json``
    (``pipeline.barrier_wait_gate``) — same honesty contract as
    :func:`_record_wall_gate`: a skip must be auditable, not silent."""
    path = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
    try:
        report = json.loads(path.read_text()) if path.exists() else {}
    except (OSError, json.JSONDecodeError):
        report = {}
    report.setdefault("pipeline", {})["barrier_wait_gate"] = status
    path.write_text(json.dumps(report, indent=2) + "\n")


@pytest.mark.pipeline
def test_gate_pipelining_overlaps_and_stays_bit_identical():
    """Host-independent half of the pipelining claim: depth 2 really
    overlaps stage windows (counter, not wall-clock) and never changes
    the answer."""
    res = _measure_pipelined()
    assert np.array_equal(res[1]["out"], res[2]["out"])
    assert res[1]["overlapped_stages"] == 0, "barrier mode must not overlap"
    assert res[2]["overlapped_stages"] > 0
    assert res[2]["pipeline_depth_achieved"] >= 2


@pytest.mark.pipeline
def test_gate_barrier_wait_reduction():
    """Timing half: depth 2 must cut per-stage idle executor-seconds by
    >= 30% at bench scale.  The interval accounting is wall-clock-based,
    so on a single-core host it measures OS scheduling noise, not
    overlap — skip with a recorded reason, exactly like the wall gate."""
    cores = os.cpu_count() or 1
    if cores < 2:
        reason = (
            f"SKIPPED: <2 cores (host has {cores}; barrier-wait intervals "
            "are wall-clock spans, which a single core cannot overlap "
            "deterministically)"
        )
        _record_pipeline_gate(reason)
        pytest.skip(reason)
    res = _measure_pipelined()
    barrier = res[1]["barrier_wait_seconds"]
    piped = res[2]["barrier_wait_seconds"]
    assert barrier > 0, "gate workload produced no measurable stage tail"
    reduction = 1.0 - piped / barrier
    assert reduction >= MIN_BARRIER_WAIT_REDUCTION, (
        f"pipelining only cut barrier wait {reduction:.0%} "
        f"({barrier:.3f}s -> {piped:.3f}s); the gate requires "
        f">= {MIN_BARRIER_WAIT_REDUCTION:.0%}"
    )
    _record_pipeline_gate(
        f"PASS: {reduction:.0%} reduction ({barrier:.3f}s -> {piped:.3f}s, "
        f"{cores} cores)"
    )
