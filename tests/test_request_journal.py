"""Unit tests for the durable request WAL (DESIGN.md §16).

:class:`repro.service.RequestJournal` is the survivability substrate of
the solver service: a checksummed admit/settle write-ahead log plus a
bounded durable result spool.  These tests exercise it in isolation —
no service, no engine — covering the in-flight bookkeeping, the
spool-then-settle commit protocol, torn-tail truncation after a crash
mid-append, capacity pruning, key reuse after failed settles, and the
compaction that keeps the journal directory bounded.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import RequestJournal
from repro.sparkle.metrics import ServiceMetrics

pytestmark = [pytest.mark.service, pytest.mark.durability]


def _result(seed: int = 0, n: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n))


def _payload(seed: int = 0) -> dict:
    return {"problem": "apsp", "n": 24, "seed": seed, "r": 6}


class TestAdmitSettle:
    def test_admission_is_inflight_until_settled(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k-1", "fp-1", _payload(1), deadline=5.0, tenant="acme")
        journal.admit("k-2", "fp-2", _payload(2))
        assert journal.is_inflight("k-1")
        assert journal.is_inflight("k-2")
        assert not journal.is_inflight("k-ghost")
        records = journal.incomplete()
        assert [r["key"] for r in records] == ["k-1", "k-2"]
        assert records[0]["deadline"] == 5.0
        assert records[0]["tenant"] == "acme"
        assert records[0]["payload"] == _payload(1)
        assert records[0]["admitted_unix"] > 0

        assert journal.settle("k-1", "completed", fingerprint="fp-1",
                              result=_result(1))
        assert not journal.is_inflight("k-1")
        assert [r["key"] for r in journal.incomplete()] == ["k-2"]

    def test_settle_is_exactly_once_per_key(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        assert journal.settle("k", "completed", fingerprint="fp",
                              result=_result())
        # a second settle (coalesced waiter, racing retry) is a no-op
        assert not journal.settle("k", "failed", fingerprint="fp")
        settled = journal.settled_lookup("k")
        assert settled["outcome"] == "completed"

    def test_settled_result_round_trips_verified(self, tmp_path):
        journal = RequestJournal(tmp_path)
        result = _result(7)
        journal.admit("k", "fp", _payload(7))
        journal.settle("k", "completed", fingerprint="fp", result=result)
        settled = journal.settled_lookup("k")
        assert settled["result_check"]
        out = journal.settled_result(settled)
        assert out.tobytes() == result.tobytes()

    def test_corrupt_spool_block_is_refused_not_served(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        journal.settle("k", "completed", fingerprint="fp", result=_result())
        # flip bytes in the spooled block file behind the manifest's back
        blocks = [
            p for p in (tmp_path / "results").rglob("*")
            if p.is_file() and "manifest" not in p.name.lower()
        ]
        assert blocks
        victim = max(blocks, key=lambda p: p.stat().st_size)
        raw = bytearray(victim.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        victim.write_bytes(bytes(raw))
        assert journal.settled_result(journal.settled_lookup("k")) is None

    def test_failed_settle_records_error_and_no_result(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        journal.settle("k", "failed", fingerprint="fp",
                       error=RuntimeError("kernel exploded"))
        settled = journal.settled_lookup("k")
        assert settled["outcome"] == "failed"
        assert settled["error_type"] == "RuntimeError"
        assert "exploded" in settled["error_message"]
        assert journal.settled_result(settled) is None

    def test_settled_key_can_be_readmitted(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        journal.settle("k", "failed", fingerprint="fp")
        assert not journal.is_inflight("k")
        # a failed key is a legitimate retry target: re-admission
        # supersedes the settle in the per-key state
        journal.admit("k", "fp", _payload())
        assert journal.is_inflight("k")
        assert journal.settled_lookup("k") is None


class TestCrashRecovery:
    def test_reopen_rebuilds_state_from_the_wal(self, tmp_path):
        result = _result(3)
        journal = RequestJournal(tmp_path)
        journal.admit("k-done", "fp-done", _payload(1))
        journal.settle("k-done", "completed", fingerprint="fp-done",
                       result=result)
        journal.admit("k-open", "fp-open", _payload(2))

        reopened = RequestJournal(tmp_path)
        assert reopened.torn_records == 0
        assert reopened.is_inflight("k-open")
        assert not reopened.is_inflight("k-done")
        settled = reopened.settled_lookup("k-done")
        assert reopened.settled_result(settled).tobytes() == result.tobytes()
        assert [r["key"] for r in reopened.incomplete()] == ["k-open"]
        assert dict(reopened.spooled())["fp-done"].tobytes() == result.tobytes()

    def test_torn_tail_is_truncated_on_reopen(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k-1", "fp-1", _payload(1))
        journal.admit("k-2", "fp-2", _payload(2))
        with open(journal.wal.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "admitted", "key": "k-torn", "half')  # crash

        reopened = RequestJournal(tmp_path)
        assert reopened.torn_records == 1
        assert not reopened.is_inflight("k-torn")
        assert [r["key"] for r in reopened.incomplete()] == ["k-1", "k-2"]
        # the torn tail was truncated: appends extend committed history
        reopened.admit("k-3", "fp-3", _payload(3))
        third = RequestJournal(tmp_path)
        assert third.torn_records == 0
        assert [r["key"] for r in third.incomplete()] == ["k-1", "k-2", "k-3"]

    def test_bind_metrics_reports_torn_records(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        with open(journal.wal.path, "a", encoding="utf-8") as fh:
            fh.write("garbage that never sealed\n")
        metrics = ServiceMetrics()
        reopened = RequestJournal(tmp_path)
        reopened.bind_metrics(metrics, threading.Lock())
        assert metrics.journal_torn_records == 1


class TestSpoolCapacity:
    def test_spool_prunes_oldest_beyond_capacity(self, tmp_path):
        journal = RequestJournal(tmp_path, spool_entries=2)
        for i in (1, 2, 3):
            journal.admit(f"k-{i}", f"fp-{i}", _payload(i))
            journal.settle(f"k-{i}", "completed", fingerprint=f"fp-{i}",
                           result=_result(i))
        spooled = dict(journal.spooled())
        assert sorted(spooled) == ["fp-2", "fp-3"]
        # the pruned result is unservable — callers re-run the solve
        assert journal.settled_result(journal.settled_lookup("k-1")) is None
        assert journal.settled_result(
            journal.settled_lookup("k-3")
        ).tobytes() == _result(3).tobytes()

    def test_zero_capacity_spool_never_writes(self, tmp_path):
        journal = RequestJournal(tmp_path, spool_entries=0)
        journal.admit("k", "fp", _payload())
        journal.settle("k", "completed", fingerprint="fp", result=_result())
        assert journal.spooled() == []
        assert journal.settled_result(journal.settled_lookup("k")) is None

    def test_negative_capacity_is_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RequestJournal(tmp_path, spool_entries=-1)


class TestCompaction:
    def test_compact_keeps_inflight_and_serviceable_settles_only(
        self, tmp_path
    ):
        result = _result(4)
        journal = RequestJournal(tmp_path)
        metrics = ServiceMetrics()
        journal.bind_metrics(metrics, threading.Lock())
        journal.admit("k-open", "fp-open", _payload(1))
        journal.admit("k-done", "fp-done", _payload(2))
        journal.settle("k-done", "completed", fingerprint="fp-done",
                       result=result)
        journal.admit("k-fail", "fp-fail", _payload(3))
        journal.settle("k-fail", "failed", fingerprint="fp-fail")
        journal.admit("k-stale", "fp-stale", _payload(4))
        journal.settle("k-stale", "completed", fingerprint="fp-stale",
                       result=_result(5))
        journal.admit("k-stale", "fp-stale", _payload(4))  # superseded
        journal.settle("k-stale", "failed", fingerprint="fp-stale")

        total_before = len(journal.wal.entries())
        dropped = journal.compact()
        # kept: k-open's admission + k-done's completed settle
        assert dropped == total_before - 2
        assert metrics.journal_compactions == 1
        assert metrics.journal_records_compacted == dropped
        assert journal.is_inflight("k-open")
        settled = journal.settled_lookup("k-done")
        assert journal.settled_result(settled).tobytes() == result.tobytes()
        # dropped settles are forgotten (they were unserviceable anyway)
        assert journal.settled_lookup("k-fail") is None
        assert journal.settled_lookup("k-stale") is None
        # unreferenced spool blocks were pruned with their records
        assert sorted(dict(journal.spooled())) == ["fp-done"]
        assert journal.spool.fsck().clean

    def test_compacted_journal_reopens_equivalent(self, tmp_path):
        result = _result(6)
        journal = RequestJournal(tmp_path)
        journal.admit("k-open", "fp-open", _payload(1))
        journal.admit("k-done", "fp-done", _payload(2))
        journal.settle("k-done", "completed", fingerprint="fp-done",
                       result=result)
        journal.compact()

        reopened = RequestJournal(tmp_path)
        assert reopened.torn_records == 0
        assert len(reopened.wal.entries()) == 2
        assert [r["key"] for r in reopened.incomplete()] == ["k-open"]
        settled = reopened.settled_lookup("k-done")
        assert reopened.settled_result(settled).tobytes() == result.tobytes()

    def test_compact_is_idempotent(self, tmp_path):
        journal = RequestJournal(tmp_path)
        journal.admit("k", "fp", _payload())
        journal.settle("k", "completed", fingerprint="fp", result=_result())
        assert journal.compact() >= 0
        assert journal.compact() == 0
