"""Methodology 1 (inline-and-optimize) and the stage scheduler."""

import pytest

from repro.core.autogen import (
    derive_by_inlining,
    inline_once,
    rway_algorithm,
    two_way_algorithm,
)
from repro.core.calls import Call, Region, expand_call, render_program, top_call
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.core.scheduling import Relation, classify_pair, schedule_stages

FW = FloydWarshallGep()
GE = GaussianEliminationGep()


def _call_key(c: Call):
    return (c.case, c.x, c.u, c.v, c.w)


class TestRegionsAndCalls:
    def test_region_overlap(self):
        a = Region(0, 0, 2)
        assert a.overlaps(Region(1, 1, 2))
        assert not a.overlaps(Region(2, 0, 2))
        assert not a.overlaps(Region(0, 2, 2))

    def test_flexibility(self):
        x, u, v, w = Region(1, 1, 1), Region(1, 0, 1), Region(0, 1, 1), Region(0, 0, 1)
        assert Call("D", x, u, v, w).flexible
        assert not Call("A", x, x, x, x).flexible
        assert not Call("B", x, w, x, w).flexible

    def test_top_call(self):
        c = top_call(4)
        assert c.case == "A" and c.x == Region(0, 0, 4)

    def test_expand_requires_divisibility(self):
        with pytest.raises(ValueError):
            expand_call(FW, top_call(3), 2)

    def test_render_program_smoke(self):
        alg = two_way_algorithm(GE)
        text = alg.render()
        assert "stage 1" in text and "A(" in text


class TestClassifyPair:
    def test_raw_dependency(self):
        a = Call("A", Region(0, 0, 1), Region(0, 0, 1), Region(0, 0, 1), Region(0, 0, 1))
        b = Call(
            "B", Region(0, 1, 1), Region(0, 0, 1), Region(0, 1, 1), Region(0, 0, 1)
        )
        assert classify_pair(a, b) == Relation.BEFORE

    def test_parallel_disjoint(self):
        b = Call(
            "B", Region(0, 1, 1), Region(0, 0, 1), Region(0, 1, 1), Region(0, 0, 1)
        )
        c = Call(
            "C", Region(1, 0, 1), Region(1, 0, 1), Region(0, 0, 1), Region(0, 0, 1)
        )
        assert classify_pair(b, c) == Relation.PARALLEL

    def test_serial_flexible_same_write(self):
        d1 = Call(
            "D", Region(2, 2, 1), Region(2, 0, 1), Region(0, 2, 1), Region(0, 0, 1)
        )
        d2 = Call(
            "D", Region(2, 2, 1), Region(2, 1, 1), Region(1, 2, 1), Region(1, 1, 1)
        )
        assert classify_pair(d1, d2) == Relation.SERIAL

    def test_same_write_mixed_keeps_order(self):
        d = Call(
            "D", Region(1, 1, 1), Region(1, 0, 1), Region(0, 1, 1), Region(0, 0, 1)
        )
        a = Call("A", Region(1, 1, 1), Region(1, 1, 1), Region(1, 1, 1), Region(1, 1, 1))
        assert classify_pair(d, a) == Relation.BEFORE

    def test_mixed_granularity_overlap(self):
        big = Call("A", Region(0, 0, 2), Region(0, 0, 2), Region(0, 0, 2), Region(0, 0, 2))
        small = Call(
            "B", Region(0, 2, 1), Region(0, 0, 1), Region(0, 2, 1), Region(0, 0, 1)
        )
        # small reads the unit pivot inside big's write region.
        assert classify_pair(big, small) == Relation.BEFORE


class TestStageCounts:
    def test_ge_two_way_has_four_stages(self):
        # A00; B01 ‖ C10; D11; A11  (GE's last iteration has no B/C/D).
        alg = two_way_algorithm(GE)
        assert alg.num_stages == 4
        stages = alg.stages()
        assert [c.case for c in stages[0]] == ["A"]
        assert sorted(c.case for c in stages[1]) == ["B", "C"]
        assert [c.case for c in stages[2]] == ["D"]
        assert [c.case for c in stages[3]] == ["A"]

    def test_fw_two_way_has_six_stages(self):
        alg = two_way_algorithm(FW)
        assert alg.num_stages == 6

    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_fw_rway_stage_count(self, r):
        # FW: every iteration contributes A; B‖C; D -> 3r stages.
        alg = rway_algorithm(FW, r)
        assert alg.num_stages == 3 * r

    @pytest.mark.parametrize("r", [2, 3, 4, 5])
    def test_ge_rway_stage_count(self, r):
        # GE: iterations 0..r-2 contribute 3 stages, the last only A.
        alg = rway_algorithm(GE, r)
        assert alg.num_stages == 3 * (r - 1) + 1

    def test_fig4_structure_per_iteration(self):
        """The r-way GE program has Fig. 4's call counts per iteration."""
        r = 4
        alg = rway_algorithm(GE, r)
        by_case = {"A": 0, "B": 0, "C": 0, "D": 0}
        for c in alg.calls:
            by_case[c.case] += 1
        assert by_case["A"] == r
        assert by_case["B"] == sum(r - 1 - k for k in range(r))
        assert by_case["C"] == by_case["B"]
        assert by_case["D"] == sum((r - 1 - k) ** 2 for k in range(r))


class TestInlineAndOptimize:
    @pytest.mark.parametrize("spec", [GE, FW], ids=["ge", "fw"])
    def test_inline_preserves_call_multiset(self, spec):
        direct = rway_algorithm(spec, 4, unit=4)
        inlined = derive_by_inlining(spec, 2)
        assert sorted(map(_call_key, direct.calls)) == sorted(
            map(_call_key, inlined.calls)
        )

    def test_ge_inlined_schedule_equals_direct(self):
        direct = rway_algorithm(GE, 4, unit=4)
        inlined = derive_by_inlining(GE, 2)
        d = {_call_key(c): s for s, calls in enumerate(direct.stages()) for c in calls}
        i = {_call_key(c): s for s, calls in enumerate(inlined.stages()) for c in calls}
        assert d == i

    @pytest.mark.parametrize("spec", [GE, FW], ids=["ge", "fw"])
    def test_optimize_compresses_naive_order(self, spec):
        """Fig. 3: re-staging beats the naive sequential inlined order."""
        inlined_calls = inline_once(spec, inline_once(spec, [top_call(4)]))
        optimized = schedule_stages(inlined_calls)
        assert optimized.num_stages < len(inlined_calls)

    def test_fw_inlined_at_least_as_many_stages_as_direct(self):
        # Strict Bernstein keeps conservative orderings for unconstrained
        # specs (see autogen docstring); the direct pattern is tighter.
        direct = rway_algorithm(FW, 4, unit=4)
        inlined = derive_by_inlining(FW, 2)
        assert inlined.num_stages >= direct.num_stages

    def test_derive_validates_t(self):
        with pytest.raises(ValueError):
            derive_by_inlining(GE, 0)

    def test_inline_once_granularity(self):
        calls = inline_once(GE, [top_call(2)])
        assert all(c.x.size == 1 for c in calls)


class TestScheduleGraph:
    def test_stages_partition_calls(self):
        alg = rway_algorithm(FW, 3)
        stages = alg.stages()
        assert sum(len(s) for s in stages) == len(alg.calls)

    def test_stage_monotone_along_edges(self):
        alg = rway_algorithm(GE, 3)
        g = alg.graph
        for src, dst in g.edges:
            assert g.stage_of[src] < g.stage_of[dst]

    def test_serial_pairs_in_distinct_stages(self):
        alg = rway_algorithm(FW, 4)
        g = alg.graph
        for a, b in g.serial_pairs:
            assert g.stage_of[a] != g.stage_of[b]

    def test_parallel_calls_write_disjoint_tiles(self):
        alg = rway_algorithm(FW, 4)
        for stage in alg.stages():
            for i, c1 in enumerate(stage):
                for c2 in stage[i + 1 :]:
                    assert not c1.writes.overlaps(c2.writes)
