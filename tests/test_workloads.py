"""Workload generators: determinism, structure, validity."""

import numpy as np
import pytest

from repro.workloads import (
    augmented_system,
    diagonally_dominant,
    grid_road_network,
    layered_dag_weights,
    random_digraph_weights,
    random_rhs,
    scale_free_weights,
    spd_matrix,
    weights_to_boolean,
    weights_to_networkx,
)


class TestDigraphs:
    def test_shape_and_diagonal(self):
        w = random_digraph_weights(10, 0.5, seed=1)
        assert w.shape == (10, 10)
        np.testing.assert_allclose(np.diag(w), 0.0)

    def test_deterministic(self):
        a = random_digraph_weights(12, 0.3, seed=42)
        b = random_digraph_weights(12, 0.3, seed=42)
        np.testing.assert_array_equal(a, b)
        c = random_digraph_weights(12, 0.3, seed=43)
        assert not np.array_equal(a, c)

    def test_density_extremes(self):
        empty = random_digraph_weights(8, 0.0, seed=0)
        assert np.isinf(empty).sum() == 8 * 8 - 8
        full = random_digraph_weights(8, 1.0, seed=0)
        assert np.isfinite(full).all()

    def test_weight_range(self):
        w = random_digraph_weights(20, 1.0, weight_range=(2.0, 3.0), seed=5)
        finite = w[np.isfinite(w) & (w > 0)]
        assert finite.min() >= 2.0 and finite.max() < 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            random_digraph_weights(0)
        with pytest.raises(ValueError):
            random_digraph_weights(4, density=1.5)


class TestGridRoadNetwork:
    def test_lattice_edges_exist(self):
        w = grid_road_network(3, 4, diagonal_shortcuts=0.0, seed=0)
        assert w.shape == (12, 12)
        assert np.isfinite(w[0, 1]) and np.isfinite(w[1, 0])  # east-west pair
        assert np.isfinite(w[0, 4]) and np.isfinite(w[4, 0])  # north-south pair
        assert np.isinf(w[0, 5])  # no diagonal without shortcuts

    def test_asymmetric_weights(self):
        w = grid_road_network(4, 4, diagonal_shortcuts=0.0, seed=3)
        ij = np.isfinite(w) & np.isfinite(w.T) & ~np.eye(16, dtype=bool)
        assert np.any(w[ij] != w.T[ij])

    def test_shortcuts_add_edges(self):
        base = grid_road_network(5, 5, diagonal_shortcuts=0.0, seed=7)
        cut = grid_road_network(5, 5, diagonal_shortcuts=0.5, seed=7)
        assert np.isfinite(cut).sum() >= np.isfinite(base).sum()


class TestScaleFree:
    def test_connectivity_bias(self):
        w = scale_free_weights(50, attach=2, seed=1)
        deg = np.isfinite(w).sum(axis=0) + np.isfinite(w).sum(axis=1)
        assert deg.max() > np.median(deg) * 2  # heavy tail

    def test_validation(self):
        with pytest.raises(ValueError):
            scale_free_weights(10, attach=0)


class TestLayeredDag:
    def test_edges_only_forward(self):
        w = layered_dag_weights(4, 3, seed=2)
        n = 12
        for i in range(n):
            for j in range(n):
                if i != j and np.isfinite(w[i, j]):
                    assert j // 3 == i // 3 + 1

    def test_reachability_is_layer_monotone(self):
        w = layered_dag_weights(3, 2, density=1.0, seed=0)
        adj = weights_to_boolean(w)
        assert adj[0, 2] or adj[0, 3]


class TestMatrices:
    def test_diagonally_dominant_property(self):
        a = diagonally_dominant(15, dominance=2.0, seed=1)
        off = np.abs(a).sum(axis=1) - np.abs(np.diag(a))
        assert np.all(np.abs(np.diag(a)) > off)

    def test_diag_dominant_validation(self):
        with pytest.raises(ValueError):
            diagonally_dominant(0)
        with pytest.raises(ValueError):
            diagonally_dominant(4, dominance=0.5)

    def test_spd_is_spd(self):
        a = spd_matrix(10, condition=50.0, seed=2)
        np.testing.assert_allclose(a, a.T, atol=1e-12)
        eig = np.linalg.eigvalsh(a)
        assert eig.min() > 0

    def test_spd_condition_controlled(self):
        a = spd_matrix(20, condition=100.0, seed=3)
        eig = np.linalg.eigvalsh(a)
        assert eig.max() / eig.min() == pytest.approx(100.0, rel=0.05)

    def test_spd_validation(self):
        with pytest.raises(ValueError):
            spd_matrix(4, condition=0.5)

    def test_augmented_system_consistent(self):
        a, x, aug = augmented_system(9, seed=5)
        np.testing.assert_allclose(aug[:, :9], a)
        np.testing.assert_allclose(aug[:, 9], a @ x)

    def test_augmented_spd_kind(self):
        a, x, aug = augmented_system(6, kind="spd", seed=1)
        np.testing.assert_allclose(a, a.T, atol=1e-12)

    def test_augmented_unknown_kind(self):
        with pytest.raises(ValueError):
            augmented_system(4, kind="bogus")

    def test_random_rhs_shape(self):
        assert random_rhs(5, 3, seed=0).shape == (5, 3)


class TestConversions:
    def test_weights_to_boolean(self):
        w = random_digraph_weights(6, 0.3, seed=1)
        b = weights_to_boolean(w)
        assert b.dtype == bool and b.diagonal().all()

    def test_weights_to_networkx_roundtrip(self):
        w = random_digraph_weights(8, 0.4, seed=2)
        g = weights_to_networkx(w)
        assert g.number_of_nodes() == 8
        for u, v, data in g.edges(data=True):
            assert data["weight"] == pytest.approx(w[u, v])
