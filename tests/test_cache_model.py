"""Ideal-cache simulation: LRU mechanics and the locality claim."""

import pytest

from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.kernels import (
    IterativeKernel,
    KernelStats,
    LRUCache,
    RecursiveKernel,
    iterative_gep_misses,
    recursive_gep_misses,
)

from .conftest import fw_table, ge_table

FW = FloydWarshallGep()
GE = GaussianEliminationGep()


class TestLRUCache:
    def test_cold_miss_then_hit(self):
        c = LRUCache(capacity_bytes=256, line_bytes=64)
        c.access_range(0, 0, 8)
        c.access_range(0, 0, 8)
        assert c.misses == 1 and c.accesses == 2

    def test_eviction_order_is_lru(self):
        c = LRUCache(capacity_bytes=128, line_bytes=64)  # 2 lines
        c.access_range(0, 0, 8)  # line 0 (miss)
        c.access_range(0, 64, 8)  # line 1 (miss)
        c.access_range(0, 0, 8)  # line 0 hit (now MRU)
        c.access_range(0, 128, 8)  # line 2 miss, evicts line 1
        c.access_range(0, 0, 8)  # line 0 still resident
        assert c.misses == 3

    def test_range_spans_lines(self):
        c = LRUCache(capacity_bytes=1024, line_bytes=64)
        c.access_range(0, 0, 200)  # lines 0..3
        assert c.accesses == 4 and c.misses == 4

    def test_distinct_arrays_do_not_alias(self):
        c = LRUCache(capacity_bytes=1024, line_bytes=64)
        c.access_range(0, 0, 8)
        c.access_range(1, 0, 8)
        assert c.misses == 2

    def test_zero_bytes_noop(self):
        c = LRUCache(capacity_bytes=1024, line_bytes=64)
        c.access_range(0, 0, 0)
        assert c.accesses == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity_bytes=32, line_bytes=64)

    def test_miss_rate(self):
        c = LRUCache(capacity_bytes=1024, line_bytes=64)
        assert c.report().miss_rate == 0.0
        c.access_range(0, 0, 8)
        assert c.report().miss_rate == 1.0


class TestWalkerConsistency:
    """The walkers' update counts must equal the real kernels' stats."""

    @pytest.mark.parametrize("spec,make", [(FW, fw_table), (GE, ge_table)], ids=["fw", "ge"])
    def test_iterative_walker_updates(self, spec, make):
        n = 24
        t = make(n, seed=1)
        stats = KernelStats()
        IterativeKernel(spec).run("A", t, t, t, t, 0, 0, 0, n, stats=stats)
        report = iterative_gep_misses(spec, n, capacity_bytes=1 << 20)
        assert report.updates == stats.updates

    @pytest.mark.parametrize("spec,make", [(FW, fw_table), (GE, ge_table)], ids=["fw", "ge"])
    @pytest.mark.parametrize("r_shared,base", [(2, 8), (4, 8)])
    def test_recursive_walker_updates(self, spec, make, r_shared, base):
        n = 24
        t = make(n, seed=2)
        stats = KernelStats()
        RecursiveKernel(spec, r_shared, base).run("A", t, t, t, t, 0, 0, 0, n, stats=stats)
        report = recursive_gep_misses(
            spec, n, capacity_bytes=1 << 20, r_shared=r_shared, base_size=base
        )
        assert report.updates == stats.updates


class TestLocalityClaim:
    """Paper §V-C: recursive kernels win once the table exceeds the cache."""

    def test_recursive_beats_iterative_out_of_cache(self):
        n = 96  # table = 73 KB
        cache = 16 * 1024  # much smaller than the table
        it = iterative_gep_misses(FW, n, cache)
        rec = recursive_gep_misses(FW, n, cache, r_shared=2, base_size=16)
        assert rec.misses < it.misses / 2  # decisive, not marginal

    def test_similar_when_table_fits(self):
        n = 32  # table = 8 KB
        cache = 64 * 1024
        it = iterative_gep_misses(FW, n, cache)
        rec = recursive_gep_misses(FW, n, cache, r_shared=2, base_size=16)
        # Both are compulsory-miss bound: within 2x of each other.
        assert rec.misses < 2 * it.misses
        assert it.misses < 2 * rec.misses

    def test_ge_locality_gap(self):
        n = 96
        cache = 16 * 1024
        it = iterative_gep_misses(GE, n, cache)
        rec = recursive_gep_misses(GE, n, cache, r_shared=2, base_size=16)
        assert rec.misses < it.misses

    def test_cache_oblivious_across_levels(self):
        """One recursion, two cache sizes: misses scale ~1/sqrt(M)-ish —
        the recursive kernel adapts without retuning."""
        n = 96
        small = recursive_gep_misses(FW, n, 8 * 1024, r_shared=2, base_size=8)
        large = recursive_gep_misses(FW, n, 64 * 1024, r_shared=2, base_size=8)
        assert large.misses < small.misses

    def test_iterative_insensitive_to_cache_once_spilled(self):
        n = 96
        small = iterative_gep_misses(FW, n, 8 * 1024)
        large = iterative_gep_misses(FW, n, 32 * 1024)
        # Streaming pattern: enlarging a too-small cache barely helps.
        assert large.misses > 0.6 * small.misses
