"""Durability harness: checksummed block store, write-ahead solve
journal, and crash-resume.

The invariant under test is the robustness counterpart of the chaos
suite: a solve that is killed (simulated crash hook, or a real SIGKILL
in the CLI test) after any journaled iteration and then re-run with
``resume`` must produce output *bit-identical* to an uninterrupted run
— for both the In-Memory and Collect-Broadcast strategies — and any
corruption of the durable bytes must be detected by checksum, never
served as data: reads raise :class:`CorruptBlockError`, ``fsck``
reports the damage, and the solvers recover by recomputation.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main as cli_main
from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.sparkle import (
    BlockNotFoundError,
    CorruptBlockError,
    DurableBlockStore,
    EngineMetrics,
    FaultPlan,
    FaultSpec,
    JournalError,
    ResumeMismatchError,
    SolveJournal,
    SparkleContext,
)

from .conftest import fw_table, ge_table

pytestmark = pytest.mark.durability

REPO_ROOT = Path(__file__).resolve().parents[1]

SPECS = {"fw": FloydWarshallGep(), "ge": GaussianEliminationGep()}
TABLES = {"fw": fw_table(16, seed=3), "ge": ge_table(16, seed=3)}
R = 4  # 4x4 tile grid -> nt = 4 outer iterations on these tables


def solve(
    table,
    spec,
    strategy,
    *,
    ckdir=None,
    plan=None,
    resume=False,
    max_iterations=None,
    on_iteration=None,
    checkpoint_every=None,
):
    with SparkleContext(
        3,
        2,
        fault_plan=plan,
        checkpoint_dir=str(ckdir) if ckdir is not None else None,
    ) as sc:
        kernel = make_kernel(spec, "iterative", r_shared=2, base_size=4)
        solver = GepSparkSolver(
            spec,
            sc,
            r=R,
            kernel=kernel,
            strategy=strategy,
            checkpoint_every=checkpoint_every,
            resume=resume,
            max_iterations=max_iterations,
            on_iteration=on_iteration,
        )
        out, report = solver.solve(table)
        return out, report, sc.metrics


class _SimCrash(RuntimeError):
    """Raised from the on_iteration hook to stop a solve mid-flight.

    The hook runs *after* iteration ``k`` is snapshotted and journaled,
    so raising at ``k`` models a driver crash with ``k`` committed.
    """


def run_until_crash(table, spec, strategy, ckdir, kill_k, plan=None):
    def die(k):
        if k == kill_k:
            raise _SimCrash(k)

    with pytest.raises(_SimCrash):
        solve(table, spec, strategy, ckdir=ckdir, plan=plan, on_iteration=die)


def flip_byte(path: Path) -> None:
    data = bytearray(path.read_bytes())
    data[len(data) // 2] ^= 0xFF
    path.write_bytes(bytes(data))


def snapshot_block_path(ckdir: Path, k: int, i: int, j: int) -> Path:
    key_repr = repr(("snap", k, i, j))
    return Path(ckdir) / "blocks" / DurableBlockStore._filename(key_repr)


@pytest.fixture(scope="module")
def clean():
    """Fault-free, checkpoint-free outputs: the bit-identity baseline."""
    return {
        (name, strategy): solve(TABLES[name], SPECS[name], strategy)[0]
        for name in ("fw", "ge")
        for strategy in ("im", "cb")
    }


# ----------------------------------------------------------------------
# DurableBlockStore
# ----------------------------------------------------------------------
class TestDurableBlockStore:
    def test_roundtrip_persistence_and_accounting(self, tmp_path):
        metrics = EngineMetrics()
        store = DurableBlockStore(tmp_path / "ck", metrics=metrics)
        arr = np.arange(64.0).reshape(8, 8)
        nbytes = store.put(("snap", 0, 1, 2), arr)
        store.put("scalar", {"x": 3})
        assert len(store) == 2
        assert store.contains(("snap", 0, 1, 2))
        assert store.live_bytes >= nbytes
        np.testing.assert_array_equal(store.get(("snap", 0, 1, 2)), arr)
        assert metrics.durable_puts == 2
        assert metrics.durable_gets == 1
        assert metrics.durable_bytes_written >= nbytes
        # a fresh handle on the same directory sees the committed state
        reopened = DurableBlockStore(tmp_path / "ck")
        np.testing.assert_array_equal(reopened.get(("snap", 0, 1, 2)), arr)
        assert reopened.get("scalar") == {"x": 3}
        # atomic-write protocol leaves no temp files behind
        assert not list((tmp_path / "ck").rglob(".tmp.*"))

    def test_missing_key_is_typed(self, tmp_path):
        store = DurableBlockStore(tmp_path / "ck")
        with pytest.raises(BlockNotFoundError) as exc_info:
            store.get(("snap", 9, 9, 9))
        # still a KeyError for callers written against the dict idiom
        assert isinstance(exc_info.value, KeyError)
        assert exc_info.value.key == ("snap", 9, 9, 9)

    def test_disk_corruption_detected_and_fscked(self, tmp_path):
        metrics = EngineMetrics()
        store = DurableBlockStore(tmp_path / "ck", metrics=metrics)
        store.put("good", np.ones(16))
        store.put("bad", np.full(16, 7.0))
        flip_byte(store.blocks_dir / store._filename(repr("bad")))
        np.testing.assert_array_equal(store.get("good"), np.ones(16))
        with pytest.raises(CorruptBlockError):
            store.get("bad")
        assert metrics.corrupt_blocks_detected == 1
        report = store.fsck()
        assert not report.clean
        assert report.corrupt == [repr("bad")]
        assert report.blocks_ok == 1
        # dropping the rotten block restores a clean bill of health
        assert store.delete("bad")
        assert store.fsck().clean

    def test_missing_file_and_orphans(self, tmp_path):
        store = DurableBlockStore(tmp_path / "ck")
        store.put("a", 1)
        store.put("b", 2)
        (store.blocks_dir / store._filename(repr("b"))).unlink()
        # an uncommitted stray block (crash between rename and manifest)
        (store.blocks_dir / "deadbeefdeadbeefdeadbeef.blk").write_bytes(b"?")
        report = store.fsck()
        assert report.missing == [repr("b")]
        assert report.orphans == ["deadbeefdeadbeefdeadbeef.blk"]
        assert not report.clean

    def test_manifest_version_guard(self, tmp_path):
        DurableBlockStore(tmp_path / "ck").put("a", 1)
        manifest = tmp_path / "ck" / "MANIFEST.json"
        doc = json.loads(manifest.read_text())
        doc["version"] = 99
        manifest.write_text(json.dumps(doc))
        with pytest.raises(JournalError):
            DurableBlockStore(tmp_path / "ck")

    def test_torn_write_chaos_auto_heals(self, tmp_path):
        metrics = EngineMetrics()
        plan = FaultPlan(11, [FaultSpec("torn_write", 1.0)])
        store = DurableBlockStore(
            tmp_path / "ck", metrics=metrics, fault_plan=plan
        )
        arr = np.arange(128.0)
        store.put(("t", 0), arr)
        # the torn first attempt was caught by read-back and rewritten
        np.testing.assert_array_equal(store.get(("t", 0)), arr)
        assert plan.fired()["torn_write"] == 1
        assert metrics.torn_writes_detected == 1
        assert store.fsck().clean

    def test_corrupt_block_chaos_is_never_served(self, tmp_path):
        metrics = EngineMetrics()
        plan = FaultPlan(7, [FaultSpec("corrupt_block", 1.0)])
        store = DurableBlockStore(
            tmp_path / "ck", metrics=metrics, fault_plan=plan
        )
        store.put("blob", np.ones(32))
        with pytest.raises(CorruptBlockError):
            store.get("blob")
        assert metrics.corrupt_blocks_detected == 1
        assert store.fsck().corrupt == [repr("blob")]


# ----------------------------------------------------------------------
# SolveJournal
# ----------------------------------------------------------------------
class TestSolveJournal:
    def test_append_replay_and_torn_tail(self, tmp_path):
        journal = SolveJournal(tmp_path)
        journal.append({"kind": "begin", "fingerprint": "f"})
        journal.append({"kind": "iteration", "k": 0})
        journal.append({"kind": "iteration", "k": 1})
        # SIGKILL mid-append: a partial trailing line
        with open(journal.path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "iteration", "k": 2, "se')
        view = journal.verify()
        assert view["records_total"] == 4
        assert view["records_valid"] == 3
        assert view["torn_tail"] and not view["complete"]
        assert view["last_iteration"] == 1
        # resume truncates the torn tail and extends committed history
        resumed = SolveJournal(tmp_path)
        kinds = [e["kind"] for e in resumed.truncate_to_valid()]
        assert kinds == ["begin", "iteration", "iteration"]
        assert not resumed.verify()["torn_tail"]
        resumed.append({"kind": "done"})
        assert resumed.verify()["complete"]

    def test_tampered_record_invalidates_suffix(self, tmp_path):
        journal = SolveJournal(tmp_path)
        for k in range(3):
            journal.append({"kind": "iteration", "k": k})
        lines = journal.path.read_text().splitlines()
        doc = json.loads(lines[1])
        doc["k"] = 99  # bit-flip without resealing the checksum
        lines[1] = json.dumps(doc, sort_keys=True)
        journal.path.write_text("\n".join(lines) + "\n")
        assert [e["k"] for e in SolveJournal(tmp_path).entries()] == [0]

    def test_sequence_gap_invalidates_suffix(self, tmp_path):
        journal = SolveJournal(tmp_path)
        for k in range(3):
            journal.append({"kind": "iteration", "k": k})
        lines = journal.path.read_text().splitlines()
        del lines[1]
        journal.path.write_text("\n".join(lines) + "\n")
        assert [e["k"] for e in SolveJournal(tmp_path).entries()] == [0]

    def test_reset(self, tmp_path):
        journal = SolveJournal(tmp_path)
        journal.append({"kind": "iteration", "k": 0})
        journal.reset()
        assert journal.entries() == []
        assert journal.exists


# ----------------------------------------------------------------------
# durable RDD checkpoints and CB shared storage
# ----------------------------------------------------------------------
class TestDurableEngineIntegration:
    def test_reliable_checkpoint_survives_corruption(self, tmp_path):
        with SparkleContext(2, 2, checkpoint_dir=str(tmp_path / "ck")) as sc:
            rdd = sc.parallelize(range(32), 4).map(lambda x: x * x)
            ck = rdd.checkpoint()
            expect = [x * x for x in range(32)]
            assert ck.collect() == expect
            path = sc.durable_store.blocks_dir / DurableBlockStore._filename(
                repr(ck.block_key(0))
            )
            flip_byte(path)
            # checksum catches the rot; lineage recomputes the partition
            assert ck.collect() == expect
            assert sc.metrics.corrupt_blocks_detected >= 1
            assert sc.metrics.checkpoint_recomputes >= 1

    def test_shared_storage_miss_is_typed(self):
        with SparkleContext(1, 1) as sc:
            with pytest.raises(BlockNotFoundError) as exc_info:
                sc.shared_storage.get("nope")
            assert isinstance(exc_info.value, KeyError)

    def test_shared_storage_backing_fallback(self, tmp_path):
        with SparkleContext(2, 1, checkpoint_dir=str(tmp_path / "ck")) as sc:
            arr = np.ones((4, 4))
            sc.shared_storage.put(("pivot", 1), arr)
            sc.shared_storage.clear()  # driver-restart analogue
            assert len(sc.shared_storage) == 0
            np.testing.assert_array_equal(
                sc.shared_storage.get(("pivot", 1)), arr
            )
            assert sc.metrics.storage_backing_reads == 1
            # re-warmed into memory: the next get is a pure memory hit
            sc.shared_storage.get(("pivot", 1))
            assert sc.metrics.storage_backing_reads == 1


# ----------------------------------------------------------------------
# crash-resume equivalence (in-process crash hook)
# ----------------------------------------------------------------------
class TestCrashResume:
    @pytest.mark.parametrize("strategy", ["im", "cb"])
    @pytest.mark.parametrize("problem", ["fw", "ge"])
    def test_kill_then_resume_bit_identical(
        self, clean, tmp_path, problem, strategy
    ):
        table, spec = TABLES[problem], SPECS[problem]
        ckdir = tmp_path / "ck"
        run_until_crash(table, spec, strategy, ckdir, kill_k=1)
        out, report, metrics = solve(
            table, spec, strategy, ckdir=ckdir, resume=True
        )
        assert out.tobytes() == clean[problem, strategy].tobytes()
        assert metrics.resumed_from_iteration == 1
        assert report.extras["resumed_from_iteration"] == 1
        assert metrics.journal_entries_replayed == 3  # begin + k=0 + k=1

    @pytest.mark.parametrize("kill_k", [0, 3])
    def test_kill_at_first_and_last_iteration(self, clean, tmp_path, kill_k):
        table, spec = TABLES["fw"], SPECS["fw"]
        ckdir = tmp_path / "ck"
        run_until_crash(table, spec, "im", ckdir, kill_k=kill_k)
        out, _, metrics = solve(table, spec, "im", ckdir=ckdir, resume=True)
        assert out.tobytes() == clean["fw", "im"].tobytes()
        assert metrics.resumed_from_iteration == kill_k

    def test_resume_with_empty_dir_starts_fresh(self, clean, tmp_path):
        out, report, metrics = solve(
            TABLES["fw"], SPECS["fw"], "im", ckdir=tmp_path / "ck", resume=True
        )
        assert out.tobytes() == clean["fw", "im"].tobytes()
        assert metrics.resumed_from_iteration is None
        assert "resumed_from_iteration" not in report.extras

    def test_resume_after_completion_is_identical(self, clean, tmp_path):
        ckdir = tmp_path / "ck"
        solve(TABLES["fw"], SPECS["fw"], "cb", ckdir=ckdir)
        out, _, metrics = solve(
            TABLES["fw"], SPECS["fw"], "cb", ckdir=ckdir, resume=True
        )
        assert out.tobytes() == clean["fw", "cb"].tobytes()
        assert metrics.resumed_from_iteration == 3  # restored, not re-run

    def test_resume_rejects_different_input(self, tmp_path):
        ckdir = tmp_path / "ck"
        run_until_crash(TABLES["fw"], SPECS["fw"], "im", ckdir, kill_k=1)
        with pytest.raises(ResumeMismatchError):
            solve(fw_table(16, seed=9), SPECS["fw"], "im",
                  ckdir=ckdir, resume=True)

    def test_resume_rejects_different_strategy(self, tmp_path):
        ckdir = tmp_path / "ck"
        run_until_crash(TABLES["fw"], SPECS["fw"], "im", ckdir, kill_k=1)
        with pytest.raises(ResumeMismatchError):
            solve(TABLES["fw"], SPECS["fw"], "cb", ckdir=ckdir, resume=True)

    def test_corrupt_newest_snapshot_falls_back(self, clean, tmp_path):
        ckdir = tmp_path / "ck"
        run_until_crash(TABLES["fw"], SPECS["fw"], "im", ckdir, kill_k=2)
        nt = 16 // R
        for i in range(nt):
            for j in range(nt):
                flip_byte(snapshot_block_path(ckdir, 2, i, j))
        out, _, metrics = solve(
            TABLES["fw"], SPECS["fw"], "im", ckdir=ckdir, resume=True
        )
        # snapshot 2 is rotten; resume falls back to the retained k=1
        assert out.tobytes() == clean["fw", "im"].tobytes()
        assert metrics.resumed_from_iteration == 1
        assert metrics.corrupt_blocks_detected >= 1

    def test_all_snapshots_corrupt_recomputes_from_scratch(
        self, clean, tmp_path
    ):
        ckdir = tmp_path / "ck"
        run_until_crash(TABLES["fw"], SPECS["fw"], "im", ckdir, kill_k=0)
        nt = 16 // R
        for i in range(nt):
            for j in range(nt):
                flip_byte(snapshot_block_path(ckdir, 0, i, j))
        out, _, metrics = solve(
            TABLES["fw"], SPECS["fw"], "im", ckdir=ckdir, resume=True
        )
        # no usable snapshot: recover by recomputation, never wrong data
        assert out.tobytes() == clean["fw", "im"].tobytes()
        assert metrics.resumed_from_iteration is None
        assert metrics.corrupt_blocks_detected >= 1

    def test_staged_solve_with_max_iterations(self, clean, tmp_path):
        ckdir = tmp_path / "ck"
        _, report, _ = solve(
            TABLES["ge"], SPECS["ge"], "im", ckdir=ckdir, max_iterations=2
        )
        assert report.extras["partial"] == {
            "iterations_completed": 2,
            "grid_iterations": 4,
        }
        out, report, metrics = solve(
            TABLES["ge"], SPECS["ge"], "im", ckdir=ckdir, resume=True
        )
        assert "partial" not in report.extras
        assert out.tobytes() == clean["ge", "im"].tobytes()
        assert metrics.resumed_from_iteration == 1


# ----------------------------------------------------------------------
# property: durability knobs and faults cannot change the answer
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    checkpoint_every=st.sampled_from([None, 1, 2, R]),
    strategy=st.sampled_from(["im", "cb"]),
    problem=st.sampled_from(["fw", "ge"]),
)
def test_checkpointing_is_bit_identical_under_chaos(
    clean, tmp_path_factory, seed, checkpoint_every, strategy, problem
):
    """Any checkpoint cadence, journaled to durable storage, under a
    seeded recoverable fault mix (including torn writes, which the
    store must auto-heal, and post-commit bitrot, which checkpoint
    reads must detect and recompute around) yields the exact bytes of
    the clean baseline for FW and GE via IM and CB."""
    plan = FaultPlan(seed, [
        FaultSpec("kill", 0.05),
        FaultSpec("storage", 0.03),
        FaultSpec("torn_write", 0.3),
        FaultSpec("corrupt_block", 0.1),
    ])
    ckdir = tmp_path_factory.mktemp("durck")
    out, _, metrics = solve(
        TABLES[problem],
        SPECS[problem],
        strategy,
        ckdir=ckdir,
        plan=plan,
        checkpoint_every=checkpoint_every,
    )
    assert out.tobytes() == clean[problem, strategy].tobytes()
    # every torn write was caught by read-back verification
    assert metrics.torn_writes_detected == plan.fired()["torn_write"]


@settings(max_examples=4, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    kill_k=st.sampled_from([0, 1, 2]),
    strategy=st.sampled_from(["im", "cb"]),
)
def test_resume_under_chaos_is_bit_identical(
    clean, tmp_path_factory, seed, kill_k, strategy
):
    """Crash after iteration ``kill_k`` under a hot fault mix, then
    resume under a *different* seeded mix: still the exact bytes."""
    ckdir = tmp_path_factory.mktemp("durck")
    mix = lambda s: FaultPlan(s, [
        FaultSpec("kill", 0.05),
        FaultSpec("torn_write", 0.2),
    ])
    run_until_crash(
        TABLES["fw"], SPECS["fw"], strategy, ckdir, kill_k, plan=mix(seed)
    )
    out, _, metrics = solve(
        TABLES["fw"], SPECS["fw"], strategy,
        ckdir=ckdir, resume=True, plan=mix(seed ^ 0xA5A5),
    )
    assert out.tobytes() == clean["fw", strategy].tobytes()
    assert metrics.resumed_from_iteration == kill_k


# ----------------------------------------------------------------------
# CLI: validation, staged solves, fsck, and a real SIGKILL
# ----------------------------------------------------------------------
CLI_SOLVE = [
    "solve", "apsp", "--n", "16", "--engine", "spark",
    "--r", "4", "--kernel", "iterative",
]


class TestCli:
    def test_flag_validation(self, tmp_path, capsys):
        assert cli_main(["solve", "apsp", "--resume"]) == 2
        assert cli_main(
            ["solve", "apsp", "--engine", "local",
             "--checkpoint-dir", str(tmp_path / "ck")]
        ) == 2
        assert cli_main(["fsck", str(tmp_path / "missing")]) == 2
        capsys.readouterr()

    def test_staged_solve_resume_and_fsck(self, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        full = tmp_path / "full.npy"
        resumed = tmp_path / "resumed.npy"
        assert cli_main(CLI_SOLVE + ["--output", str(full)]) == 0
        assert cli_main(
            CLI_SOLVE + ["--checkpoint-dir", str(ckdir),
                         "--max-iterations", "2"]
        ) == 0
        assert "partial solve: 2 of 4" in capsys.readouterr().out
        assert cli_main(
            CLI_SOLVE + ["--checkpoint-dir", str(ckdir), "--resume",
                         "--output", str(resumed)]
        ) == 0
        assert "resumed after journaled iteration 1" in capsys.readouterr().out
        assert np.load(full).tobytes() == np.load(resumed).tobytes()
        assert cli_main(["fsck", str(ckdir)]) == 0
        assert "clean" in capsys.readouterr().out
        flip_byte(next((ckdir / "blocks").glob("*.blk")))
        assert cli_main(["fsck", str(ckdir)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT block" in out and "DAMAGED" in out

    def test_resume_mismatch_exits_2(self, tmp_path, capsys):
        ckdir = tmp_path / "ck"
        assert cli_main(
            CLI_SOLVE + ["--checkpoint-dir", str(ckdir),
                         "--max-iterations", "1"]
        ) == 0
        assert cli_main(
            CLI_SOLVE + ["--checkpoint-dir", str(ckdir), "--resume",
                         "--seed", "9"]
        ) == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_bcast_strategy_exposed(self, capsys):
        assert cli_main(CLI_SOLVE + ["--strategy", "bcast"]) == 0
        assert "APSP solved" in capsys.readouterr().out

    def test_sigkill_then_cli_resume_bit_identical(self, tmp_path):
        """The acceptance scenario, with a real SIGKILL: a checkpointed
        solve killed dead mid-run, resumed by the CLI, matches the
        uninterrupted run byte for byte."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        args = [sys.executable, "-m", "repro"] + CLI_SOLVE
        baseline = tmp_path / "baseline.npy"
        subprocess.run(
            args + ["--output", str(baseline)],
            env=env, cwd=REPO_ROOT, check=True, capture_output=True,
        )
        ckdir = tmp_path / "ck"
        # same table the CLI generates (n=16, density 0.3, seed 0),
        # killed for real after iteration 1 is journaled
        script = textwrap.dedent(f"""
            import os, signal
            from repro.core import floyd_warshall
            from repro.workloads import random_digraph_weights

            w = random_digraph_weights(16, 0.3, seed=0)

            def die(k):
                if k == 1:
                    os.kill(os.getpid(), signal.SIGKILL)

            floyd_warshall(w, engine="spark", r=4, kernel="iterative",
                           r_shared=4, checkpoint_dir={str(ckdir)!r},
                           on_iteration=die)
        """)
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env, cwd=REPO_ROOT, capture_output=True,
        )
        assert proc.returncode == -signal.SIGKILL
        fsck = subprocess.run(
            args[:3] + ["fsck", str(ckdir)],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
        )
        assert fsck.returncode == 0, fsck.stdout + fsck.stderr
        assert "in progress through iteration 1" in fsck.stdout
        resumed = tmp_path / "resumed.npy"
        done = subprocess.run(
            args + ["--checkpoint-dir", str(ckdir), "--resume",
                    "--output", str(resumed)],
            env=env, cwd=REPO_ROOT, capture_output=True, text=True,
            check=True,
        )
        assert "resumed after journaled iteration 1" in done.stdout
        assert np.load(baseline).tobytes() == np.load(resumed).tobytes()
