"""Semiring axioms and array-level semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (
    Boolean,
    CountingSemiring,
    MaxPlus,
    MinPlus,
    RealField,
    SemiringError,
    available_semirings,
    get_semiring,
)

ALL = [MinPlus(), MaxPlus(), Boolean(), RealField(), CountingSemiring()]


def _elements(sr, rng, shape=()):
    if sr.name == "boolean":
        return rng.random(shape) < 0.5
    if sr.name == "counting":
        return rng.integers(0, 5, size=shape).astype(np.int64)
    vals = rng.uniform(-3, 3, size=shape)
    if sr.name in ("tropical", "maxplus"):
        mask = rng.random(shape) < 0.2
        vals = np.where(mask, sr.zero, vals)
    return vals.astype(sr.dtype)


@pytest.mark.parametrize("sr", ALL, ids=lambda s: s.name)
class TestAxioms:
    def test_add_identity(self, sr):
        rng = np.random.default_rng(0)
        a = _elements(sr, rng, (8,))
        z = np.full(8, sr.zero, dtype=sr.dtype)
        np.testing.assert_array_equal(sr.add(a, z), a)

    def test_mul_identity(self, sr):
        rng = np.random.default_rng(1)
        a = _elements(sr, rng, (8,))
        one = np.full(8, sr.one, dtype=sr.dtype)
        np.testing.assert_array_equal(sr.mul(a, one), a)

    def test_mul_annihilator(self, sr):
        rng = np.random.default_rng(2)
        a = _elements(sr, rng, (8,))
        z = np.full(8, sr.zero, dtype=sr.dtype)
        np.testing.assert_array_equal(sr.mul(a, z), z)

    def test_add_commutative_associative(self, sr):
        rng = np.random.default_rng(3)
        a, b, c = (_elements(sr, rng, (16,)) for _ in range(3))
        np.testing.assert_array_equal(sr.add(a, b), sr.add(b, a))
        np.testing.assert_array_equal(
            sr.add(sr.add(a, b), c), sr.add(a, sr.add(b, c))
        )

    def test_distributivity(self, sr):
        rng = np.random.default_rng(4)
        a, b, c = (_elements(sr, rng, (16,)) for _ in range(3))
        lhs = sr.mul(a, sr.add(b, c))
        rhs = sr.add(sr.mul(a, b), sr.mul(a, c))
        if sr.dtype.kind == "f":
            np.testing.assert_allclose(lhs, rhs, rtol=1e-12)
        else:
            np.testing.assert_array_equal(lhs, rhs)

    def test_add_inplace_matches(self, sr):
        rng = np.random.default_rng(5)
        a = _elements(sr, rng, (8,))
        b = _elements(sr, rng, (8,))
        expect = sr.add(a, b)
        out = a.copy()
        sr.add_inplace(out, b)
        np.testing.assert_array_equal(out, expect)

    def test_matmul_matches_generic_fold(self, sr):
        rng = np.random.default_rng(6)
        a = _elements(sr, rng, (5, 4))
        b = _elements(sr, rng, (4, 6))
        from repro.semiring.base import Semiring

        generic = Semiring.matmul(sr, a, b)
        fast = sr.matmul(a, b)
        if sr.dtype.kind == "f":
            np.testing.assert_allclose(fast, generic, rtol=1e-12)
        else:
            np.testing.assert_array_equal(fast, generic)

    def test_eye_is_matmul_identity(self, sr):
        rng = np.random.default_rng(7)
        a = _elements(sr, rng, (5, 5))
        e = sr.eye(5)
        np.testing.assert_array_equal(sr.matmul(e, a), a)
        np.testing.assert_array_equal(sr.matmul(a, e), a)

    def test_matpow_repeated_squaring(self, sr):
        rng = np.random.default_rng(8)
        a = _elements(sr, rng, (4, 4))
        direct = sr.eye(4)
        for _ in range(3):
            direct = sr.matmul(direct, a)
        result = sr.matpow(a, 3)
        if sr.dtype.kind == "f":
            np.testing.assert_allclose(result, direct, rtol=1e-9)
        else:
            np.testing.assert_array_equal(result, direct)

    def test_zeros_ones_constructors(self, sr):
        assert sr.zeros((2, 3)).shape == (2, 3)
        assert np.all(sr.zeros(4) == sr.zero)
        assert np.all(sr.ones(4) == sr.one)


class TestTropicalSpecifics:
    def test_inf_plus_neg_inf_is_zero(self):
        sr = MinPlus()
        out = sr.mul(np.array([np.inf]), np.array([-np.inf]))
        assert out[0] == np.inf  # the semiring zero annihilates

    def test_maxplus_dual(self):
        sr = MaxPlus()
        out = sr.mul(np.array([-np.inf]), np.array([np.inf]))
        assert out[0] == -np.inf

    def test_star_minplus(self):
        sr = MinPlus()
        assert sr.star(2.5) == 0.0
        assert sr.star(0.0) == 0.0
        assert sr.star(-1.0) == -np.inf

    def test_star_boolean(self):
        assert Boolean().star(True) is True
        assert Boolean().star(False) is True

    def test_star_real_diverges(self):
        with pytest.raises(SemiringError):
            RealField().star(1.5)
        assert RealField().star(0.5) == pytest.approx(2.0)

    def test_star_undefined_by_default(self):
        with pytest.raises(SemiringError):
            CountingSemiring().star(2)

    def test_minplus_matmul_is_shortest_hop(self):
        sr = MinPlus()
        a = np.array([[0.0, 1.0], [np.inf, 0.0]])
        out = sr.matmul(a, a)
        np.testing.assert_allclose(out, a)


class TestRegistry:
    def test_lookup_by_name_and_alias(self):
        assert get_semiring("tropical").name == "tropical"
        assert get_semiring("minplus").name == "tropical"
        assert get_semiring("bool").name == "boolean"

    def test_passthrough_instance(self):
        sr = MinPlus()
        assert get_semiring(sr) is sr

    def test_unknown_raises(self):
        with pytest.raises(SemiringError):
            get_semiring("nope")

    def test_available_contains_all(self):
        names = available_semirings()
        for expect in ("tropical", "boolean", "real", "counting", "maxplus"):
            assert expect in names


@given(
    st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_add_reduce_minplus_is_min(values):
    sr = MinPlus()
    arr = np.array(values)
    assert sr.add_reduce(arr) == pytest.approx(min(values))


@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=4))
@settings(max_examples=30, deadline=None)
def test_boolean_matpow_counts_reachability(n, p):
    rng = np.random.default_rng(n * 17 + p)
    adj = rng.random((n, n)) < 0.4
    sr = Boolean()
    got = sr.matpow(adj, p)
    # independent reference: integer matrix power > 0
    ref = np.linalg.matrix_power(adj.astype(np.int64), p) > 0 if p else np.eye(n, dtype=bool)
    np.testing.assert_array_equal(got, ref)


def test_add_reduce_axis():
    sr = MinPlus()
    a = np.array([[3.0, 1.0], [2.0, 5.0]])
    np.testing.assert_allclose(sr.add_reduce(a, axis=0), [2.0, 1.0])
    np.testing.assert_allclose(sr.add_reduce(a, axis=1), [1.0, 2.0])


def test_matmul_shape_mismatch():
    sr = MinPlus()
    with pytest.raises(ValueError):
        sr.matmul(np.zeros((2, 3)), np.zeros((2, 3)))


def test_matpow_negative_raises():
    with pytest.raises(SemiringError):
        RealField().matpow(np.eye(2), -1)
