"""Methodology 2: polyhedral-lite tiling, splitting, dependence analysis."""

import pytest

from repro.core.autogen import rway_algorithm
from repro.core.blocked import updated_tiles
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep, TransitiveClosureGep
from repro.poly import (
    AffB,
    LinearConstraint,
    TileStatus,
    TiledGep,
    bernstein_dependent,
    TileAccess,
    gep_domain_constraints,
    index_set_split,
    poly_schedule,
    schedule_iteration,
)

FW = FloydWarshallGep()
GE = GaussianEliminationGep()
TC = TransitiveClosureGep()


class TestAffB:
    def test_arithmetic(self):
        a = AffB(2, -1) + AffB(1, 3)
        assert (a.alpha, a.beta) == (3, 2)
        b = AffB(2, -1) - 1
        assert (b.alpha, b.beta) == (2, -2)
        assert AffB(1, 0).scale(-2) == AffB(-2, 0)

    def test_always_nonneg(self):
        assert AffB(1, -1).always_nonneg()  # b - 1 >= 0 for b >= 1
        assert not AffB(1, -2).always_nonneg()  # fails at b = 1
        assert not AffB(-1, 100).always_nonneg()  # fails for large b

    def test_always_negative(self):
        assert AffB(0, -1).always_negative()
        assert AffB(-1, 0).always_negative()
        assert not AffB(0, 0).always_negative()
        assert not AffB(1, -100).always_negative()


class TestTileClassification:
    def test_i_gt_k_statuses(self):
        c = LinearConstraint.greater("i", "k")
        # tile fully above the pivot block: FULL
        assert c.tile_status({"i": 2, "k": 0, "j": 0}) is TileStatus.FULL
        # same block: PARTIAL (diagonal boundary)
        assert c.tile_status({"i": 1, "k": 1, "j": 0}) is TileStatus.PARTIAL
        # below: EMPTY
        assert c.tile_status({"i": 0, "k": 1, "j": 0}) is TileStatus.EMPTY

    def test_holds_pointwise(self):
        c = LinearConstraint.greater("i", "k")
        assert c.holds({"i": 3, "k": 2, "j": 0})
        assert not c.holds({"i": 2, "k": 2, "j": 0})

    def test_unconstrained_spec_has_no_constraints(self):
        assert gep_domain_constraints(FW) == []
        assert len(gep_domain_constraints(GE)) == 2

    def test_case_classification(self):
        tiled = TiledGep(FW)
        assert tiled.classify(1, 1, 1).case == "A"
        assert tiled.classify(1, 1, 2).case == "B"
        assert tiled.classify(1, 0, 1).case == "C"
        assert tiled.classify(1, 0, 2).case == "D"

    def test_ge_dead_tiles_are_empty(self):
        tiled = TiledGep(GE)
        # tile strictly above the pivot row block is never updated
        assert tiled.classify(2, 0, 3).empty
        assert tiled.classify(2, 3, 0).empty
        assert not tiled.classify(2, 3, 3).empty

    def test_partial_tiles_need_masks(self):
        tiled = TiledGep(GE)
        assert tiled.intra_tile_is_partial(tiled.classify(1, 1, 2))  # B: i boundary
        assert not tiled.intra_tile_is_partial(tiled.classify(1, 2, 3))  # D: interior


@pytest.mark.parametrize("spec", [FW, GE, TC], ids=["fw", "ge", "tc"])
@pytest.mark.parametrize("nb", [2, 3, 5])
def test_updated_tiles_match_blocked_module(spec, nb):
    """The polyhedral enumeration equals the executable grid ranges."""
    tiled = TiledGep(spec)
    for kb in range(nb):
        poly = {(t.case, (t.ib, t.jb)) for t in tiled.updated_tiles(kb, nb)}
        grid = updated_tiles(spec, kb, nb)
        expect = {
            (case, tile) for case, tiles in grid.items() for tile in tiles
        }
        assert poly == expect


class TestIndexSetSplit:
    def test_ge_produces_four_functions(self):
        fns = index_set_split(GE)
        assert [f.name for f in fns] == ["A", "B", "C", "D"]

    def test_parallelism_ranking(self):
        fns = {f.name: f for f in index_set_split(GE)}
        assert fns["D"].parallelism_rank == 3
        assert fns["B"].parallelism_rank == fns["C"].parallelism_rank == 2
        assert fns["A"].parallelism_rank == 0

    def test_disjoint_operands(self):
        fns = {f.name: f for f in index_set_split(GE)}
        assert fns["B"].reads_disjoint == ("U", "W")
        assert fns["C"].reads_disjoint == ("V", "W")
        assert fns["D"].reads_disjoint == ("U", "V", "W")

    def test_ge_boundary_masks(self):
        fns = {f.name: f for f in index_set_split(GE)}
        # A, B, C straddle the Σ_G boundary; D tiles are interior.
        assert fns["A"].needs_sigma_mask
        assert fns["B"].needs_sigma_mask
        assert fns["C"].needs_sigma_mask
        assert not fns["D"].needs_sigma_mask

    def test_fw_no_masks_needed(self):
        fns = index_set_split(FW)
        assert [f.name for f in fns] == ["A", "B", "C", "D"]
        assert not any(f.needs_sigma_mask for f in fns)

    @pytest.mark.parametrize("nb", [2, 3, 4, 6])
    def test_split_stable_across_grid_sizes(self, nb):
        assert index_set_split(GE, nb=nb) == index_set_split(GE, nb=4)


class TestDependence:
    def test_bernstein_pairs(self):
        a = TileAccess.of(0, 0, 0)  # writes (0,0)
        b = TileAccess.of(0, 0, 1)  # reads (0,0)
        d = TileAccess.of(0, 1, 1)  # reads (1,0),(0,1),(0,0)
        assert bernstein_dependent(a, b)
        assert bernstein_dependent(a, d)

    def test_b_and_c_parallel(self):
        b = TileAccess.of(0, 0, 1)
        c = TileAccess.of(0, 1, 0)
        assert not bernstein_dependent(b, c)

    def test_iteration_schedule_is_abc_d(self):
        stages = schedule_iteration(GE, 0, 3)
        assert [sorted({t.case for t in s}) for s in stages] == [
            ["A"],
            ["B", "C"],
            ["D"],
        ]

    def test_last_ge_iteration_single_stage(self):
        stages = schedule_iteration(GE, 2, 3)
        assert len(stages) == 1
        assert stages[0][0].case == "A"


@pytest.mark.parametrize("spec", [FW, GE], ids=["fw", "ge"])
@pytest.mark.parametrize("nb", [2, 3, 4])
def test_poly_schedule_equals_methodology_one(spec, nb):
    """§IV's two derivations must produce the same staged algorithm."""
    alg = rway_algorithm(spec, nb)
    a = [
        {(c.case, (c.x.i0, c.x.j0)) for c in stage_calls}
        for stage_calls in alg.stages()
    ]
    p = [
        {(t.case, (t.ib, t.jb)) for t in stage_tiles}
        for stage_tiles in poly_schedule(spec, nb)
    ]
    assert a == p
