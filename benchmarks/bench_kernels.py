"""Bench: real wall-clock of the tile-kernel families.

These are genuine measurements (not cost-model outputs): the iterative
per-k vectorized kernel vs the r-way recursive kernels on a single
table, plus the pure-Python loop ablation that quantifies the "offload
to bare metal" effect the paper gets from Numba.
"""

import numpy as np
import pytest

from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.kernels import IterativeKernel, RecursiveKernel, gep_tile_update_loop
from repro.workloads import diagonally_dominant, random_digraph_weights

N = 192


def _fw_table():
    return random_digraph_weights(N, 0.3, seed=7)


def _ge_table():
    return diagonally_dominant(N, seed=7)


@pytest.mark.parametrize("name,make,spec", [
    ("fw", _fw_table, FloydWarshallGep()),
    ("ge", _ge_table, GaussianEliminationGep()),
])
def test_bench_iterative_kernel(benchmark, name, make, spec):
    table = make()
    kern = IterativeKernel(spec)

    def run():
        t = table.copy()
        kern.run("A", t, t, t, t, 0, 0, 0, N)
        return t

    benchmark(run)


@pytest.mark.parametrize("r_shared", [2, 4, 8])
@pytest.mark.parametrize("name,make,spec", [
    ("fw", _fw_table, FloydWarshallGep()),
    ("ge", _ge_table, GaussianEliminationGep()),
])
def test_bench_recursive_kernel(benchmark, name, make, spec, r_shared):
    table = make()
    kern = RecursiveKernel(spec, r_shared=r_shared, base_size=32)

    def run():
        t = table.copy()
        kern.run("A", t, t, t, t, 0, 0, 0, N)
        return t

    benchmark(run)


def test_bench_pure_loop_ablation(benchmark):
    """The un-offloaded scalar loop (tiny n — it is ~1000x slower)."""
    n = 32
    spec = FloydWarshallGep()
    table = random_digraph_weights(n, 0.3, seed=1)

    def run():
        t = table.copy()
        gep_tile_update_loop(spec, t, t, t, t, 0, 0, 0, n)
        return t

    benchmark(run)


def test_vectorized_beats_pure_loop():
    """Sanity on the ablation direction (one timed comparison)."""
    import time

    n = 48
    spec = FloydWarshallGep()
    table = random_digraph_weights(n, 0.3, seed=2)
    t0 = time.perf_counter()
    fast = table.copy()
    IterativeKernel(spec).run("A", fast, fast, fast, fast, 0, 0, 0, n)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    slow = table.copy()
    gep_tile_update_loop(spec, slow, slow, slow, slow, 0, 0, 0, n)
    t_slow = time.perf_counter() - t0
    np.testing.assert_allclose(fast, slow)
    assert t_slow > t_fast
