"""Bench: regenerate Table I — GE time grid over executor-cores x OMP_NUM_THREADS (paper §V).

Runs the table1 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/table1.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_table1(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("table1",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("table1", result.render())
    assert result.tables
