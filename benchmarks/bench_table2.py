"""Bench: regenerate Table II — FW-APSP time grid over executor-cores x OMP_NUM_THREADS (paper §V).

Runs the table2 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/table2.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_table2(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("table2",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("table2", result.render())
    assert result.tables
