"""Bench: regenerate Headline 2-5x recursive-over-iterative speedups (paper §V).

Runs the headline reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/headline.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_headline(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("headline",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("headline", result.render())
    assert result.tables
