"""Shared fixtures for the benchmark harness.

Every table/figure bench (a) regenerates the paper artifact through
``repro.experiments``, (b) asserts its shape claims hold, (c) writes the
rendered rows to ``benchmarks/reports/<name>.txt`` so the regenerated
tables are inspectable after a ``--benchmark-only`` run, and (d) times
the regeneration under pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def report_dir() -> pathlib.Path:
    REPORT_DIR.mkdir(exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def save_report(report_dir):
    def _save(name: str, text: str) -> None:
        (report_dir / f"{name}.txt").write_text(text + "\n")

    return _save


def run_and_check(name: str, fast: bool = False):
    """Run one experiment and require every shape claim to hold."""
    from repro.experiments import run_experiment

    result = run_experiment(name, fast=fast)
    assert result.all_claims_hold, [c for c in result.claims if not c[3]]
    return result
