"""Bench: regenerate Figure 6 — all implementations x block sizes, both benchmarks (paper §V).

Runs the fig6 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/fig6.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_fig6(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("fig6",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("fig6", result.render())
    assert result.tables
