"""Bench: regenerate Figure 9 — weak scaling on 1/8/64 nodes (paper §V).

Runs the fig9 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/fig9.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_fig9(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("fig9",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("fig9", result.render())
    assert result.tables
