"""Bench: regenerate Figure 8 — two-cluster portability comparison (paper §V).

Runs the fig8 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/fig8.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_fig8(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("fig8",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("fig8", result.render())
    assert result.tables
