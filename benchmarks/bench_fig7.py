"""Bench: regenerate Figure 7 — kernel dependency structure (paper §V).

Runs the fig7 reproduction, checks its paper-shape claims, writes the
regenerated rows to benchmarks/reports/fig7.txt, and times the
regeneration.
"""

from .conftest import run_and_check


def test_bench_fig7(benchmark, save_report):
    result = benchmark.pedantic(
        run_and_check, args=("fig7",), rounds=1, iterations=1, warmup_rounds=0
    )
    save_report("fig7", result.render())
    assert result.tables
