"""Bench: sparkle engine throughput (real wall-clock).

End-to-end distributed solves at laptop scale and the engine's shuffle
path in isolation — the overheads a downstream user of the engine
actually pays.
"""

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import SparkleContext
from repro.workloads import random_digraph_weights

N = 128


@pytest.mark.parametrize("strategy", ["im", "cb"])
@pytest.mark.parametrize("kernel", ["iterative", "recursive"])
def test_bench_distributed_solve(benchmark, strategy, kernel):
    spec = FloydWarshallGep()
    table = random_digraph_weights(N, 0.3, seed=3)

    def run():
        with SparkleContext(4, 2) as sc:
            solver = GepSparkSolver(
                spec, sc, r=4,
                kernel=make_kernel(spec, kernel, r_shared=2, base_size=16),
                strategy=strategy, collect_stats=False,
            )
            out, _ = solver.solve(table)
            return out

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.shape == (N, N)


def test_bench_shuffle_path(benchmark):
    """reduceByKey over many numpy payloads (map combine + fetch)."""
    def run():
        with SparkleContext(2, 2) as sc:
            data = [(i % 16, np.full(64, float(i))) for i in range(256)]
            return (
                sc.parallelize(data, 8)
                .reduceByKey(lambda a, b: a + b, 4)
                .count()
            )

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 16


def test_bench_narrow_pipeline(benchmark):
    """map/filter chains stay pipelined in one stage (no copies)."""
    def run():
        with SparkleContext(2, 2) as sc:
            return (
                sc.parallelize(range(20000), 8)
                .map(lambda x: x * 3)
                .filter(lambda x: x % 2 == 0)
                .map(lambda x: x + 1)
                .count()
            )

    assert benchmark.pedantic(run, rounds=3, iterations=1) == 10000
