"""Benchmark package (pytest-benchmark harness for the paper reproductions)."""
