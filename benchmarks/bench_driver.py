"""`make bench`: A/B the execution backends on a pinned FW-APSP solve.

Runs the same seeded workload — Floyd-Warshall APSP on an ``--grid`` x
``--grid`` tile grid (the acceptance configuration is 8x8 over a
1024^2 table) — once per backend, and writes ``BENCH_engine.json``
with wall-clock, shuffle-byte and zero-copy accounting per backend.

The wall-clock *speedup* claim only applies on multicore hosts; the
report records ``cpu_count`` and sets ``speedup_claim_applicable``
accordingly rather than pretending a 1-core container can demonstrate
parallel kernel execution.  The shuffle-byte reduction (pickle-5
out-of-band dedup) is host-independent and asserted unconditionally
by ``tests/test_backend.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_driver.py            # full
    PYTHONPATH=src python benchmarks/bench_driver.py --quick    # CI scale
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep
from repro.sparkle import SparkleContext
from repro.workloads import random_digraph_weights

DEFAULT_N = 1024
DEFAULT_GRID = 8
DEFAULT_SEED = 42


def run_once(
    backend: str,
    table: np.ndarray,
    r: int,
    strategy: str,
    heartbeat_interval: float | None = None,
    dispatch: str = "tile",
    gang_stages: bool = False,
    pipeline_depth: int = 1,
):
    ctx_kw = {}
    if heartbeat_interval is not None:
        ctx_kw["heartbeat_interval"] = heartbeat_interval
    with SparkleContext(
        num_executors=4,
        cores_per_executor=2,
        backend=backend,
        dispatch=dispatch,
        gang_stages=gang_stages,
        pipeline_depth=pipeline_depth,
        **ctx_kw,
    ) as sc:
        spec = FloydWarshallGep()
        solver = GepSparkSolver(
            spec,
            sc,
            r=r,
            kernel=make_kernel(spec, "iterative"),
            strategy=strategy,
        )
        t0 = time.perf_counter()
        out, report = solver.solve(table)
        wall = time.perf_counter() - t0
        m = report.engine_metrics
        return out, {
            "backend": backend,
            "dispatch": dispatch,
            "gang_stages": gang_stages,
            "wall_seconds": round(wall, 4),
            "jobs": len(m.jobs),
            "stages": m.total_stages,
            "tasks": m.total_tasks,
            "tasks_per_solve": m.total_tasks,
            "dispatch_round_trips": m.dispatch_round_trips,
            "batch_dispatches": m.batch_dispatches,
            "batched_kernel_calls": m.batched_kernel_calls,
            "affinity_hit_rate": m.dispatch_summary()["affinity_hit_rate"],
            "gang_dispatches": m.gang_dispatches,
            "gang_retries": m.gang_retries,
            "shuffle_total_bytes_written": sc._shuffle_manager.total_bytes_written,
            "shuffle_bytes_deduplicated": m.shuffle_bytes_deduplicated,
            "serialized_shuffle_writes": m.serialized_shuffle_writes,
            "kernel_offloads": m.kernel_offloads,
            "copies_eliminated": m.copies_eliminated,
            "shm_segments_created": m.shm_segments_created,
            "shm_segments_freed": m.shm_segments_freed,
            "shm_bytes_shared": m.shm_bytes_shared,
            "pipeline": m.pipeline_summary(),
        }


def run_service_bench(r: int, strategy: str, *, clients: int = 8,
                      requests_per_client: int = 3, n: int = 128):
    """Throughput probe of the request plane (``repro serve``).

    Storms the service with concurrent clients alternating between two
    request fingerprints, so the record prices exactly what the service
    adds over raw solves: single-flight dedup, the checksummed result
    cache, and admission control.  Host-independent — the counters are
    about request-plane behaviour, not kernel parallelism.
    """
    from repro.service import ServiceConfig, SolverService, run_request_storm
    from repro.sparkle.requests import SolveRequest

    spec = FloydWarshallGep()
    kernel = make_kernel(spec, "iterative")
    tables = {
        seed: random_digraph_weights(n, 0.3, seed=seed).astype(spec.dtype)
        for seed in (0, 1)
    }
    with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
        service = SolverService(sc, config=ServiceConfig(max_queue_depth=8))

        def make_request(client, seq):
            return SolveRequest(
                spec=spec,
                table=tables[seq % 2],
                r=min(r, n),
                kernel=kernel,
                strategy=strategy,
                client=f"bench-{client}",
            )

        t0 = time.perf_counter()
        outcomes = run_request_storm(
            service,
            make_request,
            clients=clients,
            requests_per_client=requests_per_client,
            timeout=600.0,
        )
        wall = time.perf_counter() - t0
        service.stop()
        summary = service.metrics.summary()
        completed = sum(1 for o in outcomes if o["ok"])
        return {
            "clients": clients,
            "requests": len(outcomes),
            "completed": completed,
            "wall_seconds": round(wall, 4),
            "requests_per_second": round(len(outcomes) / wall, 2) if wall else None,
            "cache_hit_rate": summary["cache_hit_rate"],
            "shed_count": summary["requests_shed"],
            "single_flight_coalesced": summary["single_flight_coalesced"],
            "engine_passes": summary["engine_passes"],
            "deadline_cancelled": summary["deadline_cancelled"],
        }


def run_fairness_bench(r: int, strategy: str, *, n: int = 128,
                       requests_per_tenant: int = 4,
                       chaos: str = "seed=7,noisy_neighbor=1.0"):
    """Tenant-isolation probe: hog vs victim under the seeded storm.

    Equal weights (the DESIGN.md §18 acceptance configuration): the hog
    floods seeded bursts of extra solves while the victim submits its
    scheduled share.  The record prices fairness directly — the victim's
    share of engine passes inside the contention window (up to its last
    settled pass), which weighted deficit-round-robin must keep >= 0.4
    — plus the hog:victim throughput ratio and whatever brownout
    transitions the pressure actually drove.  Host-independent.
    """
    from repro.service import (
        ServiceConfig,
        SolverService,
        TenantPolicy,
        run_noisy_neighbor_storm,
    )
    from repro.sparkle import FaultPlan
    from repro.sparkle.requests import SolveRequest

    spec = FloydWarshallGep()
    kernel = make_kernel(spec, "iterative")
    plan = FaultPlan.from_string(chaos)
    base_seed = {"hog": 1000, "victim": 2000}
    with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
        service = SolverService(
            sc,
            config=ServiceConfig(
                max_queue_depth=32,
                tenant_policies={
                    "hog": TenantPolicy(weight=1),
                    "victim": TenantPolicy(weight=1),
                },
            ),
        )
        pass_order = []
        original = service._solve
        service._solve = lambda req, offload: (
            pass_order.append(req.tenant),
            original(req, offload),
        )[1]

        def make_request(tenant, seq):
            return SolveRequest(
                spec=spec,
                table=random_digraph_weights(
                    n, 0.3, seed=base_seed[tenant] + seq
                ).astype(spec.dtype),
                r=min(r, n),
                kernel=kernel,
                strategy=strategy,
                tenant=tenant,
            )

        t0 = time.perf_counter()
        outcomes = run_noisy_neighbor_storm(
            service,
            make_request,
            requests_per_tenant=requests_per_tenant,
            plan=plan,
            timeout=600.0,
        )
        wall = time.perf_counter() - t0
        service.stop()
        per_tenant = service.metrics.summary()["per_tenant"]
        transitions = service.metrics.drain_brownout_transitions()
    victim_rows = outcomes["victim"]
    hog_rows = outcomes["hog"]
    victim_idx = [i for i, t in enumerate(pass_order) if t == "victim"]
    window = pass_order[: victim_idx[-1] + 1] if victim_idx else []
    victim_share = (
        round(window.count("victim") / len(window), 4) if window else None
    )
    hog_passes = per_tenant.get("hog", {}).get("engine_passes", 0)
    victim_passes = per_tenant.get("victim", {}).get("engine_passes", 0)
    return {
        "chaos": chaos,
        "weights": {"hog": 1, "victim": 1},
        "requests_per_tenant": requests_per_tenant,
        "hog_bursts": [row["burst"] for row in hog_rows],
        "wall_seconds": round(wall, 4),
        "hog_engine_passes": hog_passes,
        "victim_engine_passes": victim_passes,
        "hog_victim_throughput_ratio": (
            round(hog_passes / victim_passes, 4) if victim_passes else None
        ),
        "victim_pass_share_in_window": victim_share,
        "victim_completed": sum(1 for row in victim_rows if row.get("ok")),
        "victim_sheds": per_tenant.get("victim", {}).get("sheds", 0),
        "brownout_transitions": transitions,
    }


def run_resume_bench(r: int, strategy: str, *, requests: int = 8,
                     n: int = 128):
    """Recovery-cost probe of the request journal (``serve --resume``).

    Simulates a crashed server: a :class:`RequestJournal` seeded with
    ``requests`` in-flight wire admissions (two distinct fingerprints,
    so dedup does its share), then a cold service ``resume()``-ing from
    it.  The record prices the whole recovery path — WAL replay through
    normal admission, fingerprint coalescing, engine passes for the
    deduped work, durable settles — as wall-clock from first replay to
    last settlement.
    """
    import shutil
    import tempfile

    from repro.service import (
        RequestJournal,
        ServiceConfig,
        SolverService,
        _build_request,
    )

    root = tempfile.mkdtemp(prefix="repro-resume-bench-")
    try:
        journal = RequestJournal(root)
        for i in range(requests):
            payload = {
                "problem": "apsp",
                "n": n,
                "seed": i % 2,
                "density": 0.3,
                "r": min(r, n),
                "strategy": strategy,
                "client": f"bench-{i}",
            }
            fingerprint = _build_request(payload).fingerprint()
            journal.admit(f"bench-k{i}", fingerprint, payload)
        with SparkleContext(num_executors=4, cores_per_executor=2) as sc:
            service = SolverService(
                sc,
                config=ServiceConfig(max_queue_depth=max(8, requests)),
                journal=journal,
            )
            t0 = time.perf_counter()
            tickets = service.resume()
            for ticket in tickets:
                ticket.result(600)
            wall = time.perf_counter() - t0
            service.stop()
            summary = service.metrics.summary()
        return {
            "replayed_requests": summary["journal_replayed"],
            "rehydrated_results": summary["results_rehydrated"],
            "recovery_wall_seconds": round(wall, 4),
            "engine_passes": summary["engine_passes"],
            "journal_settles": summary["journal_settles"],
            "journal_records_compacted": summary["journal_records_compacted"],
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=DEFAULT_N, help="table size")
    ap.add_argument(
        "--grid", type=int, default=DEFAULT_GRID, help="tiles per side"
    )
    ap.add_argument("--seed", type=int, default=DEFAULT_SEED)
    ap.add_argument("--strategy", default="im", choices=["im", "cb", "bcast"])
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI scale (256^2 on the same 8x8 grid)",
    )
    ap.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    args = ap.parse_args(argv)
    n = 256 if args.quick else args.n
    if n % args.grid:
        ap.error(f"--n {n} must be divisible by --grid {args.grid}")
    r = n // args.grid

    print(f"bench: FW-APSP n={n} grid={args.grid}x{args.grid} (r={r}) "
          f"strategy={args.strategy} seed={args.seed}")
    table = random_digraph_weights(n, 0.3, seed=args.seed)
    # The dispatch plane A/B: per-tile IPC (the historical loss to
    # threads), batched per-worker round-trips, and barrier gangs.
    configs = [
        ("threads", {}),
        ("processes", {}),
        ("processes-batch", {"dispatch": "batch"}),
        ("processes-gang", {"dispatch": "batch", "gang_stages": True}),
    ]
    runs = {}
    baseline = None
    for label, kw in configs:
        backend = "threads" if label == "threads" else "processes"
        out, rec = run_once(backend, table.copy(), r, args.strategy, **kw)
        if baseline is None:
            baseline = out
        elif not np.array_equal(baseline, out):
            raise SystemExit(f"{label} output diverges — refusing to report")
        runs[label] = rec
        print(f"  {label:15s} wall={rec['wall_seconds']:8.3f}s "
              f"shuffle={rec['shuffle_total_bytes_written']:>12,d}B "
              f"offloads={rec['kernel_offloads']} "
              f"round_trips={rec['dispatch_round_trips']} "
              f"copies_eliminated={rec['copies_eliminated']}")

    # Supervision overhead: the same process-backend workload with the
    # heartbeat/watchdog machinery disabled.  The delta prices the
    # liveness layer (shared-memory beat writes + driver-side scans);
    # it should be noise against the kernel math.
    out, unsup = run_once(
        "processes", table.copy(), r, args.strategy, heartbeat_interval=0.0
    )
    if not np.array_equal(baseline, out):
        raise SystemExit("unsupervised run diverges — refusing to report")
    print(f"  {'no-heartbeat':12s} wall={unsup['wall_seconds']:8.3f}s "
          f"(supervision off)")

    # Wavefront pipelining: the same threads workload at depth 2, priced
    # against the barrier-mode threads run above.  The headline is
    # barrier-wait executor-seconds (idle tail inside each stage window)
    # — host-independent accounting; the wall-clock win needs real
    # cores, like every other parallelism claim here.
    out, piped = run_once(
        "threads", table.copy(), r, args.strategy, pipeline_depth=2
    )
    if not np.array_equal(baseline, out):
        raise SystemExit("pipelined run diverges — refusing to report")
    barrier_pipe = runs["threads"]["pipeline"]
    piped_pipe = piped["pipeline"]
    barrier_wait = barrier_pipe["barrier_wait_seconds"]
    pipe_wait = piped_pipe["barrier_wait_seconds"]
    wait_reduction = (
        round(1.0 - pipe_wait / barrier_wait, 4) if barrier_wait > 0 else None
    )
    print(f"  {'pipelined':15s} wall={piped['wall_seconds']:8.3f}s "
          f"barrier_wait={pipe_wait:.3f}s (vs {barrier_wait:.3f}s) "
          f"overlapped={piped_pipe['overlapped_stages']} "
          f"depth_achieved={piped_pipe['pipeline_depth_achieved']}")

    # The request plane: concurrent clients through one shared context.
    service_rec = run_service_bench(r, args.strategy)
    print(f"  {'service':15s} {service_rec['requests_per_second']}req/s "
          f"hit_rate={service_rec['cache_hit_rate']} "
          f"coalesced={service_rec['single_flight_coalesced']} "
          f"shed={service_rec['shed_count']}")

    # Tenant isolation: the noisy-neighbor fairness storm.
    fairness_rec = run_fairness_bench(r, args.strategy)
    print(f"  {'fairness':15s} "
          f"victim_share={fairness_rec['victim_pass_share_in_window']} "
          f"hog:victim={fairness_rec['hog_victim_throughput_ratio']} "
          f"victim_sheds={fairness_rec['victim_sheds']}")

    # Hot-restart recovery: journal replay cost after a simulated crash.
    resume_rec = run_resume_bench(r, args.strategy)
    print(f"  {'service-resume':15s} "
          f"replayed={resume_rec['replayed_requests']} "
          f"recovery={resume_rec['recovery_wall_seconds']}s "
          f"engine_passes={resume_rec['engine_passes']}")

    cpus = os.cpu_count() or 1
    t, p = runs["threads"], runs["processes"]
    b = runs["processes-batch"]
    report = {
        "workload": {
            "spec": "fw-apsp",
            "n": n,
            "grid": args.grid,
            "r": r,
            "strategy": args.strategy,
            "seed": args.seed,
        },
        "host": {
            "cpu_count": cpus,
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "backends": runs,
        "derived": {
            "bit_identical": True,
            "speedup_processes_vs_threads": round(
                t["wall_seconds"] / p["wall_seconds"], 4
            ),
            "shuffle_bytes_saved": t["shuffle_total_bytes_written"]
            - p["shuffle_total_bytes_written"],
            # the batching headline: driver<->worker IPC round-trips,
            # per-tile vs fused per-worker batches (host-independent)
            "round_trip_reduction": round(
                p["dispatch_round_trips"] / b["dispatch_round_trips"], 2
            )
            if b["dispatch_round_trips"]
            else None,
            "batch_speedup_vs_per_tile": round(
                p["wall_seconds"] / b["wall_seconds"], 4
            ),
            # parallel-kernel wall-clock wins need real cores; recorded
            # honestly instead of asserted on undersized hosts
            "speedup_claim_applicable": cpus >= 4,
            # overwritten with PASS/SKIPPED by tests/test_bench_gate.py;
            # pre-seeded here so the field always exists with a reason
            "wall_clock_gate": (
                "not run (make bench-gate)"
                if cpus >= 2
                else f"SKIPPED: <2 cores (host has {cpus}; the wall-clock "
                     "claim needs real hardware parallelism)"
            ),
        },
        "pipeline": {
            "depth": 2,
            "barrier_mode": barrier_pipe,
            "pipelined": piped_pipe,
            "pipelined_wall_seconds": piped["wall_seconds"],
            "barrier_wall_seconds": t["wall_seconds"],
            "barrier_wait_reduction": wait_reduction,
            "bit_identical": True,
            # overwritten with PASS/SKIPPED by tests/test_bench_gate.py
            "barrier_wait_gate": "not run (make bench-gate)",
        },
        "service": service_rec,
        "fairness": fairness_rec,
        "service_resume": resume_rec,
        "supervision": {
            "heartbeat_interval": 0.25,
            "supervised_wall_seconds": p["wall_seconds"],
            "unsupervised_wall_seconds": unsup["wall_seconds"],
            "overhead_seconds": round(
                p["wall_seconds"] - unsup["wall_seconds"], 4
            ),
            "overhead_fraction": round(
                p["wall_seconds"] / unsup["wall_seconds"] - 1.0, 4
            ),
        },
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")
    if cpus >= 4 and p["wall_seconds"] >= t["wall_seconds"]:
        print("WARNING: process backend did not win wall-clock on a "
              f"{cpus}-core host")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
