"""Bench: ablations of the design choices called out in DESIGN.md §6.

* grid-aware vs hash partitioner (the §VI future-work proposal) — the
  modeled shuffle seconds at paper scale, plus real engine runs;
* recursive base-case size sensitivity (real kernel wall-clock);
* cache-simulator evidence for the L2 crossover (miss counts);
* failure-injection recovery overhead (real engine).
"""

import numpy as np
import pytest

from repro.core.dpspark import GepSparkSolver, make_kernel
from repro.core.gep import FloydWarshallGep, GaussianEliminationGep
from repro.kernels import (
    RecursiveKernel,
    iterative_gep_misses,
    recursive_gep_misses,
)
from repro.sparkle import GridPartitioner, SparkleContext
from repro.workloads import diagonally_dominant, random_digraph_weights


@pytest.mark.parametrize("base_size", [8, 32, 128])
def test_bench_base_case_sensitivity(benchmark, base_size):
    """Too-small base cases pay recursion overhead; too-large ones lose
    locality — the r_shared/base tradeoff the paper tunes."""
    n = 192
    spec = GaussianEliminationGep()
    table = diagonally_dominant(n, seed=5)
    kern = RecursiveKernel(spec, r_shared=2, base_size=base_size)

    def run():
        t = table.copy()
        kern.run("A", t, t, t, t, 0, 0, 0, n)
        return t

    benchmark(run)


@pytest.mark.parametrize("partitioner", ["hash", "grid"])
def test_bench_partitioner_choice(benchmark, partitioner):
    """§VI ablation on the real engine (identical results, different
    placement)."""
    spec = FloydWarshallGep()
    n = 96
    table = random_digraph_weights(n, 0.3, seed=6)

    def run():
        with SparkleContext(4, 2, default_parallelism=16) as sc:
            part = GridPartitioner(16, 4) if partitioner == "grid" else None
            solver = GepSparkSolver(
                spec, sc, r=4, kernel=make_kernel(spec, "iterative"),
                strategy="im", partitioner=part, collect_stats=False,
            )
            out, _ = solver.solve(table)
            return out

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.shape == (n, n)


def test_bench_cache_miss_counting(benchmark, save_report):
    """The locality ablation: simulated misses, iterative vs recursive."""
    spec = FloydWarshallGep()
    n, cache = 96, 16 * 1024

    def run():
        it = iterative_gep_misses(spec, n, cache)
        rec = recursive_gep_misses(spec, n, cache, r_shared=2, base_size=16)
        return it, rec

    it, rec = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_cache",
        f"ideal-cache misses, n={n}, M={cache}B:\n"
        f"  iterative: {it.misses:,} misses / {it.accesses:,} accesses\n"
        f"  recursive: {rec.misses:,} misses / {rec.accesses:,} accesses\n"
        f"  ratio: {it.misses / rec.misses:.1f}x fewer misses recursively",
    )
    assert rec.misses < it.misses


def test_bench_failure_recovery_overhead(benchmark):
    """Lineage recomputation cost under injected executor faults."""
    spec = FloydWarshallGep()
    n = 64
    table = random_digraph_weights(n, 0.3, seed=8)

    def run():
        killed = set()

        def injector(stage, part, attempt):
            key = (stage, part)
            if attempt == 1 and len(killed) < 8 and key not in killed:
                killed.add(key)
                return True
            return False

        with SparkleContext(2, 2, failure_injector=injector) as sc:
            solver = GepSparkSolver(
                spec, sc, r=4, kernel=make_kernel(spec, "iterative"),
                strategy="im", collect_stats=False,
            )
            out, _ = solver.solve(table)
            return out

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.shape == (n, n)


@pytest.mark.parametrize("strategy", ["im", "cb", "bcast"])
def test_bench_distribution_strategies(benchmark, strategy):
    """Three-way strategy ablation (IM / CB / broadcast) on one input."""
    spec = GaussianEliminationGep()
    n = 96
    table = diagonally_dominant(n, seed=17)

    def run():
        with SparkleContext(4, 2) as sc:
            solver = GepSparkSolver(
                spec, sc, r=4, kernel=make_kernel(spec, "iterative"),
                strategy=strategy, collect_stats=False,
            )
            out, _ = solver.solve(table)
            return out

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
    assert result.shape == (n, n)
