"""Bench: the extensions — R-Kleene vs GEP kernels, parenthesis DP
evaluation orders, and the distributed wavefront driver."""

import numpy as np
import pytest

from repro.core.gep import FloydWarshallGep
from repro.core.parenthesis import parenthesis_solve
from repro.core.parenthesis_spark import parenthesis_solve_spark
from repro.core.rkleene import apsp_rkleene
from repro.kernels import RecursiveKernel
from repro.sparkle import SparkleContext
from repro.workloads import random_digraph_weights

N = 192


def test_bench_rkleene_apsp(benchmark):
    """Semiring-matmul APSP (the GPU-friendly alternative the paper cites)."""
    w = random_digraph_weights(N, 0.3, seed=11)
    out = benchmark(lambda: apsp_rkleene(w, base_size=32))
    assert out.shape == (N, N)


def test_bench_gep_recursive_apsp_same_input(benchmark):
    """The GEP recursive kernel on the identical input, for comparison."""
    spec = FloydWarshallGep()
    w = random_digraph_weights(N, 0.3, seed=11)
    kern = RecursiveKernel(spec, r_shared=2, base_size=32)

    def run():
        t = w.copy()
        np.fill_diagonal(t, 0.0)
        kern.run("A", t, t, t, t, 0, 0, 0, N)
        return t

    benchmark(run)


@pytest.mark.parametrize("method", ["iterative", "recursive"])
def test_bench_parenthesis_methods(benchmark, method):
    rng = np.random.default_rng(3)
    dims = rng.integers(1, 64, size=120).astype(float)

    def cost(i, ks, j):
        return dims[i] * dims[ks] * dims[j]

    c, _ = benchmark(lambda: parenthesis_solve(dims.size, cost, method=method))
    assert np.isfinite(c[0, dims.size - 1])


def test_bench_parenthesis_distributed(benchmark):
    rng = np.random.default_rng(4)
    dims = rng.integers(1, 64, size=60).astype(float)

    def cost(i, ks, j):
        return dims[i] * dims[ks] * dims[j]

    def run():
        with SparkleContext(4, 2) as sc:
            return parenthesis_solve_spark(dims.size, cost, sc, r=4)

    c, _ = benchmark.pedantic(run, rounds=3, iterations=1)
    ref, _ = parenthesis_solve(dims.size, cost)
    iu = np.triu_indices(dims.size, 1)
    np.testing.assert_allclose(c[iu], ref[iu])
