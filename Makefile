PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test tier1 robustness smoke

# full suite
test:
	$(PYTEST) -q

# the CI gate: fail-fast over everything
tier1:
	$(PYTEST) -x -q

# seeded fault-injection + durability/crash-resume + memory-governor suites
robustness:
	$(PYTEST) -q -m "chaos or durability or memory"

# robustness gate: tier-1, then the chaos/durability/memory suites verbosely
smoke: tier1 robustness
