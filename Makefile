PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test tier1 robustness supervision batching service soak perf pipeline tenancy smoke bench bench-gate

# full suite
test:
	$(PYTEST) -q

# the CI gate: fail-fast over everything
tier1:
	$(PYTEST) -x -q

# seeded fault-injection + durability/crash-resume + memory-governor +
# worker-supervision + request-plane + tenant-isolation suites (includes
# the seeded request-storm chaos soak from tests/test_service.py, the
# SIGKILL/--resume crash-restart soaks, and the noisy-neighbor fairness
# storm from tests/test_tenancy.py)
robustness:
	$(PYTEST) -q -m "chaos or durability or memory or supervision or service or resilience or tenancy"

# worker supervision only: heartbeats, deadlines, crash/respawn, quarantine
supervision:
	$(PYTEST) -q -m supervision

# batched dispatch plane: differential dispatch-mode property, tile
# affinity, gang stages
batching:
	$(PYTEST) -q -m batching

# solver-as-a-service request plane: admission control, single-flight
# dedup + result cache, deadlines, circuit breaker, request storms
service:
	$(PYTEST) -q -m service

# crash-restart soak: SIGKILL a live `repro serve` mid-storm, restart
# with --resume, assert every acked request settled exactly once with
# bit-identical results and nothing leaked
soak:
	$(PYTEST) -q -m resilience

# performance-claim gates (multicore wall-clock assertions; they
# self-skip on hosts with < 4 cores, so this is always safe to run)
perf:
	$(PYTEST) -q -m perf

# wavefront pipelining: dependence-driven stage admission, pipelined vs
# barrier differentials (all strategies, chaos, crash-resume), overlap
# metrics
pipeline:
	$(PYTEST) -q -m pipeline

# tenant isolation plane: enforced quotas, token-bucket rate limits,
# weighted deficit-round-robin fairness, the brownout ladder, and the
# seeded noisy-neighbor storm
tenancy:
	$(PYTEST) -q -m tenancy

# robustness gate: tier-1, then chaos/durability/memory/service, then
# pipelining and tenancy, then perf gates
smoke: tier1 robustness batching service pipeline tenancy perf

# tier-2 dispatch bench gate: fail unless batched dispatch cuts IPC
# round-trips >= 10x without a wall-clock regression (the wall claim
# self-skips on single-core hosts)
bench-gate:
	$(PYTEST) -q -m perf tests/test_bench_gate.py

# A/B the thread and process data planes on the pinned FW-APSP workload
# and write BENCH_engine.json (wall-clock, shuffle bytes, zero-copy
# accounting per backend).  BENCH_ARGS="--quick" for CI scale.
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_driver.py $(BENCH_ARGS)
