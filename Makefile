PYTHON ?= python
PYTEST = PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test tier1 robustness smoke

# full suite
test:
	$(PYTEST) -q

# the CI gate: fail-fast over everything
tier1:
	$(PYTEST) -x -q

# seeded fault-injection + durability/crash-resume suites only
robustness:
	$(PYTEST) -q -m "chaos or durability"

# robustness gate: tier-1, then the chaos and durability suites verbosely
smoke: tier1 robustness
