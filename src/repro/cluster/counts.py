"""Exact per-iteration communication and work counts of the GEP drivers.

The cost model needs, at paper scale, the same quantities the engine
meters at test scale: tiles updated per kernel case, pivot-copy fan-out,
blocks moved through each shuffle, blocks collected to the driver, and
shared-storage traffic.  All of these are *deterministic functions of
(spec, n, r, strategy)* — they mirror
:class:`~repro.core.dpspark.GepSparkSolver` line for line, and the test
suite asserts the derived byte volumes match the engine's metered
shuffle/collect/storage bytes on real runs.  That validation is what
licenses evaluating the formulas at n = 32K where running the real
engine is infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.blocked import b_range, c_range, grid_bounds
from ..core.gep import GepSpec

__all__ = ["IterationCounts", "SolveCounts", "analyze_solve", "kernel_updates"]


def kernel_updates(
    spec: GepSpec,
    case: str,
    n: int,
    bounds: list[int],
    k: int,
    i: int,
    j: int,
) -> int:
    """Exact GEP cell updates of one tile-kernel invocation.

    Sums, over the active pivot steps of block ``k``, the Σ_G-active
    cells of tile ``(i, j)`` — the same quantity the kernels report via
    :class:`~repro.kernels.stats.KernelStats`.
    """
    import numpy as np

    i0, i1 = bounds[i], bounds[i + 1]
    j0, j1 = bounds[j], bounds[j + 1]
    gk = np.arange(bounds[k], bounds[k + 1])
    active = np.fromiter(
        (spec.k_active(int(g), n) for g in gk), dtype=bool, count=len(gk)
    )
    gk = gk[active]
    if gk.size == 0:
        return 0
    rows = (i1 - np.maximum(i0, gk + 1)) if spec.constrains_i else np.full(gk.size, i1 - i0)
    cols = (j1 - np.maximum(j0, gk + 1)) if spec.constrains_j else np.full(gk.size, j1 - j0)
    prod = np.maximum(rows, 0) * np.maximum(cols, 0)
    return int(prod.sum())


@dataclass
class IterationCounts:
    """Counts for one outer iteration ``k`` of a driver."""

    k: int
    nb: int  # kernel-B tiles (pivot row)
    nc: int  # kernel-C tiles (pivot column)
    nd: int  # kernel-D tiles
    #: cell updates per kernel case, summed over that case's tiles
    updates: dict[str, int] = field(default_factory=dict)
    #: blocks through wide shuffles this iteration (IM strategy)
    im_shuffle_blocks: int = 0
    #: of those, blocks shipped under a *new* key (pivot/row/column
    #: copies) — these cross the network; stable-key repartition blocks
    #: hash back to their previous partition and only pay local staging
    im_network_blocks: int = 0
    #: network copies that all originate from the single task holding
    #: the pivot tile (kernel A's fan-out): that one node's NIC
    #: serializes them — the paper's IM bottleneck for GE
    im_single_source_blocks: int = 0
    #: blocks through wide shuffles this iteration (CB strategy)
    cb_shuffle_blocks: int = 0
    #: blocks collected to the driver (CB)
    cb_collect_blocks: int = 0
    #: shared-storage puts / gets (CB)
    cb_storage_puts: int = 0
    cb_storage_gets: int = 0

    @property
    def total_updates(self) -> int:
        return sum(self.updates.values())


@dataclass
class SolveCounts:
    """All iterations of one solve plus the setup shuffle."""

    spec_name: str
    n: int
    r: int
    needs_w: bool
    initial_shuffle_blocks: int
    iterations: list[IterationCounts] = field(default_factory=list)

    @property
    def block(self) -> int:
        return self.n // self.r

    def tile_bytes(self, dtype_bytes: int = 8) -> int:
        return self.block * self.block * dtype_bytes

    def total_shuffle_blocks(self, strategy: str) -> int:
        per_iter = sum(
            it.im_shuffle_blocks if strategy == "im" else it.cb_shuffle_blocks
            for it in self.iterations
        )
        return self.initial_shuffle_blocks + per_iter

    def total_collect_blocks(self) -> int:
        return sum(it.cb_collect_blocks for it in self.iterations)

    def total_updates(self) -> int:
        return sum(it.total_updates for it in self.iterations)

    @property
    def final_collect_blocks(self) -> int:
        """Result assembly: every tile returns to the driver once."""
        return self.r * self.r


_ANALYZE_CACHE: dict[tuple, SolveCounts] = {}


def analyze_solve(spec: GepSpec, n: int, r: int) -> SolveCounts:
    """Derive the per-iteration counts of both strategies for one solve.

    Results are memoized per (spec identity, n, r): the sweeps in
    ``repro.experiments`` revisit the same geometries hundreds of times.

    Mirrors ``GepSparkSolver``:

    IM, per iteration (block counts through wide shuffles):

    * ``a_out.partitionBy``: 1 updated pivot + nb ``uw`` + nc ``vw``
      copies, + nd ``w`` copies iff the spec needs W;
    * BC ``combineByKey``: (nb+nc) tiles + (nb+nc) pivot copies;
    * ``bc_out.partitionBy``: (nb+nc) updated tiles + 2·nd U/V copies;
    * D ``combineByKey``: nd tiles + 2·nd U/V copies, + nd W copies iff
      needed;
    * new-DP ``partitionBy``: all r² tiles.

    CB, per iteration: the new-DP repartition (r² blocks) is the only
    shuffle; 1 + (nb+nc) blocks are collected; storage sees 1 + (nb+nc)
    puts and (nb+nc) + {2 or 3}·nd gets.
    """
    cache_key = (
        spec.name,
        getattr(spec, "n_pivots", None),
        spec.constrains_i,
        spec.constrains_j,
        spec.needs_w,
        n,
        r,
    )
    cached = _ANALYZE_CACHE.get(cache_key)
    if cached is not None:
        return cached
    if n % r:
        raise ValueError(
            f"cost analysis assumes uniform tiles: r={r} must divide n={n} "
            "(apply virtual padding first)"
        )
    bounds = grid_bounds(n, r)
    nt = len(bounds) - 1
    out = SolveCounts(
        spec_name=spec.name,
        n=n,
        r=r,
        needs_w=spec.needs_w,
        initial_shuffle_blocks=nt * nt,
    )
    for k in range(nt):
        if not any(spec.k_active(g, n) for g in range(bounds[k], bounds[k + 1])):
            continue
        bs = b_range(spec, k, nt)
        cs = c_range(spec, k, nt)
        nb, nc = len(bs), len(cs)
        nd = nb * nc
        it = IterationCounts(k=k, nb=nb, nc=nc, nd=nd)
        # Uniform tiles: every B (resp. C, D) invocation of one iteration
        # performs identical work, so one representative suffices.
        upd = {"A": kernel_updates(spec, "A", n, bounds, k, k, k)}
        upd["B"] = nb * kernel_updates(spec, "B", n, bounds, k, k, bs[0]) if nb else 0
        upd["C"] = nc * kernel_updates(spec, "C", n, bounds, k, cs[0], k) if nc else 0
        upd["D"] = (
            nd * kernel_updates(spec, "D", n, bounds, k, cs[0], bs[0]) if nd else 0
        )
        it.updates = upd

        r2 = nt * nt
        if nb or nc:
            a_copies = nb + nc + (nd if spec.needs_w else 0)
            a_out = 1 + a_copies
            bc_combine = 2 * (nb + nc)
            bc_copies = 2 * nd
            bc_out = (nb + nc) + bc_copies
            d_combine = nd + 2 * nd + (nd if spec.needs_w else 0)
            it.im_shuffle_blocks = a_out + bc_combine + bc_out + d_combine + r2
            # A copy crosses the network once, when first shuffled to its
            # consumer's key; subsequent stable-key shuffles stay local.
            it.im_network_blocks = a_copies + bc_copies
            it.im_single_source_blocks = a_copies
            it.cb_shuffle_blocks = r2
            it.cb_collect_blocks = 1 + nb + nc
            it.cb_storage_puts = 1 + nb + nc
            it.cb_storage_gets = (nb + nc) + (3 if spec.needs_w else 2) * nd
        else:
            # Last GE iteration: only kernel A runs.
            it.im_shuffle_blocks = 1 + r2
            it.cb_shuffle_blocks = r2
            it.cb_collect_blocks = 1
            it.cb_storage_puts = 1
        out.iterations.append(it)
    _ANALYZE_CACHE[cache_key] = out
    return out
