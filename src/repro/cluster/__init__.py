"""Simulated cluster substrate: declarative cluster configs (the paper's
two testbeds), exact driver communication/work counts, and the analytic
cost model that prices paper-scale executions."""

from .config import ClusterConfig, haswell16, laptop, skylake16
from .costmodel import CostBreakdown, CostModel, ExecutionPlan
from .counts import IterationCounts, SolveCounts, analyze_solve, kernel_updates

__all__ = [
    "ClusterConfig",
    "skylake16",
    "haswell16",
    "laptop",
    "CostModel",
    "CostBreakdown",
    "ExecutionPlan",
    "SolveCounts",
    "IterationCounts",
    "analyze_solve",
    "kernel_updates",
]
