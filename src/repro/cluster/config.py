"""Declarative cluster descriptions (the paper's two testbeds).

A :class:`ClusterConfig` captures the hardware/software parameters the
paper identifies as performance-relevant: node and core counts, the
memory/cache hierarchy, network bandwidth, local storage speed, and the
Spark runtime constants.  The two presets correspond to §V-B:

* :func:`skylake16` — cluster 1: 16 nodes x dual 16-core Xeon Gold 6130
  (32 cores, 32 KB L1 / 1 MB L2 per core), 192 GB RAM, GbE, 1 TB SSD.
* :func:`haswell16` — cluster 2: 16 nodes x dual 10-core Xeon E5-2650v3
  (20 cores, 256 KB L2 per core), 64 GB RAM, GbE, 7.5k rpm spinning HDD.

The ``*_rate`` and ``*_penalty`` fields are the cost model's calibrated
constants; they are part of the config because they describe the
machine (per-core update throughput in and out of cache, thread-scaling
behaviour), not the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ClusterConfig", "skylake16", "haswell16", "laptop"]

MB = 1024 * 1024
GB = 1024 * MB


@dataclass(frozen=True)
class ClusterConfig:
    """One homogeneous cluster (all values per node unless noted)."""

    name: str
    nodes: int
    cores_per_node: int
    mem_per_node_bytes: int
    l1_bytes: int  # per core
    l2_bytes: int  # per core
    l3_bytes: int  # per node (shared)
    network_bytes_per_s: float  # effective per-node NIC bandwidth
    storage_read_bytes_per_s: float  # local/shared storage
    storage_write_bytes_per_s: float
    storage_latency_s: float
    # --- calibrated compute-rate model ---------------------------------
    #: per-core GEP cell-update rate when the tile working set is
    #: cache-resident (vectorized kernels on hot data)
    update_rate_cache: float
    #: per-core rate when the kernel streams from DRAM (iterative kernels
    #: on tiles past the L2 boundary)
    update_rate_mem: float
    #: multiplicative efficiency of the recursive kernels' base cases
    #: (recursion/call overhead versus a straight loop)
    recursive_efficiency: float = 0.92
    #: efficiency of the iterative (Numba/NumPy) kernels relative to the
    #: hand-tuned C base cases of the recursive kernels, on cache-hot data
    iterative_efficiency: float = 0.6
    #: serial fraction charged per extra OpenMP thread (Amdahl-style)
    omp_serial_fraction: float = 0.02
    #: throughput multiplier exponent for thread oversubscription
    #: (active_threads/cores > 1): rate *= oversub**(-penalty)
    oversubscription_penalty: float = 0.12
    #: per-node contention per extra concurrent *OpenMP* task (competing
    #: OpenMP runtimes/working sets — the COSMIC effect the paper cites
    #: for thread oversubscription)
    task_contention: float = 0.065
    #: contention per extra concurrent single-threaded (iterative) task
    iter_task_contention: float = 0.01
    #: fraction of a task's time that is serial launch/JNI/Python glue,
    #: hidden by OpenMP threads (node efficiency 1 - x/sqrt(threads))
    thread_serial_overhead: float = 0.3
    #: effective speed-up of shuffle staging I/O from the OS page cache
    staging_cache_factor: float = 4.0
    #: effective compression ratio of shuffled tile payloads (Spark
    #: compresses shuffle blocks with lz4 by default)
    shuffle_compression: float = 2.5
    # --- Spark runtime constants ----------------------------------------
    task_overhead_s: float = 0.004
    stage_overhead_s: float = 0.15
    #: driver cost to launch one job (action) — scheduling, closure ship
    job_overhead_s: float = 0.3
    #: driver DAG-walk cost per *accumulated* lineage stage: each action
    #: re-walks the whole lineage, so iteration k's collects pay O(k)
    #: (the CB strategy runs 2 actions per iteration; IM runs none until
    #: the final collect)
    lineage_walk_s: float = 0.02
    #: driver NIC bandwidth for collect()/redistribution
    driver_bytes_per_s: float = 110 * MB
    #: load imbalance factor of the default hash partitioner (max/mean
    #: tiles per node); the paper over-provisions partitions 2x to tame it
    hash_imbalance: float = 1.3

    # ------------------------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def with_nodes(self, nodes: int) -> "ClusterConfig":
        """Same hardware, different node count (weak-scaling sweeps)."""
        return replace(self, nodes=nodes, name=f"{self.name}-n{nodes}")

    def iterative_tile_in_cache(self, block: int, dtype_bytes: int = 8) -> bool:
        """Whether an iterative kernel keeps its per-``k`` working set hot.

        The per-core effective capacity is taken as L2 plus the core's
        share of L3 (private + shared residency), matching the paper's
        observation that block 512 behaves cache-resident on the Skylake
        nodes while 1024 does not.
        """
        effective = self.l2_bytes + self.l3_bytes // self.cores_per_node
        # Working set of one k-step: the tile itself (streamed row-wise,
        # reused across the pivot loop) dominates.
        return block * block * dtype_bytes <= 2 * effective

    def describe(self) -> str:
        return (
            f"{self.name}: {self.nodes} nodes x {self.cores_per_node} cores, "
            f"{self.mem_per_node_bytes // GB} GB RAM, "
            f"L2 {self.l2_bytes // 1024} KB/core, "
            f"net {self.network_bytes_per_s / MB:.0f} MB/s, "
            f"storage R/W {self.storage_read_bytes_per_s / MB:.0f}/"
            f"{self.storage_write_bytes_per_s / MB:.0f} MB/s"
        )


def skylake16(nodes: int = 16) -> ClusterConfig:
    """The paper's cluster 1 (Intel Xeon Gold 6130, SSD, GbE)."""
    return ClusterConfig(
        name="skylake16",
        nodes=nodes,
        cores_per_node=32,
        mem_per_node_bytes=192 * GB,
        l1_bytes=32 * 1024,
        l2_bytes=1024 * 1024,
        l3_bytes=22 * MB,
        network_bytes_per_s=110 * MB,
        storage_read_bytes_per_s=500 * MB,
        storage_write_bytes_per_s=450 * MB,
        storage_latency_s=1e-4,
        # Calibrated against the paper's cluster-1 numbers (all Table I
        # and Table II cells plus the Fig. 6 anchors); mean |log error|
        # 0.153 (x1.16 typical).  See repro/experiments/calibration.py.
        update_rate_cache=1.194e9,
        update_rate_mem=1.797e8,
        task_contention=0.0853,
        iter_task_contention=0.0,
        thread_serial_overhead=0.362,
        oversubscription_penalty=0.02,
        shuffle_compression=5.0,
        staging_cache_factor=7.62,
        recursive_efficiency=0.9786,
        iterative_efficiency=1.0,
        lineage_walk_s=0.0422,
        job_overhead_s=0.05,
        hash_imbalance=1.483,
    )


def haswell16(nodes: int = 16) -> ClusterConfig:
    """The paper's cluster 2 (Intel Xeon E5-2650v3, spinning HDD, GbE)."""
    return ClusterConfig(
        name="haswell16",
        nodes=nodes,
        cores_per_node=20,
        mem_per_node_bytes=64 * GB,
        l1_bytes=32 * 1024,
        l2_bytes=256 * 1024,
        l3_bytes=25 * MB,
        network_bytes_per_s=110 * MB,
        storage_read_bytes_per_s=120 * MB,
        storage_write_bytes_per_s=90 * MB,
        storage_latency_s=8e-3,
        # Cluster 2 reuses the cluster-1 software constants; the compute
        # rates are scaled for Haswell (no AVX-512, 2.3 GHz) and the
        # storage rates reflect the spinning disks.  Validated against
        # the two Fig. 8 anchors (best ~951 s; the cluster-1-optimal
        # config degrading ~3.3x).
        update_rate_cache=3.6e8,
        update_rate_mem=6.0e7,
        task_contention=0.08,
        iter_task_contention=0.0,
        thread_serial_overhead=0.362,
        oversubscription_penalty=0.4,
        shuffle_compression=5.0,
        staging_cache_factor=4.0,
        recursive_efficiency=0.9786,
        iterative_efficiency=1.0,
        lineage_walk_s=0.0422,
        job_overhead_s=0.05,
        hash_imbalance=1.483,
    )


def laptop() -> ClusterConfig:
    """A single developer machine (used by examples for realistic tuning)."""
    return ClusterConfig(
        name="laptop",
        nodes=1,
        cores_per_node=8,
        mem_per_node_bytes=16 * GB,
        l1_bytes=48 * 1024,
        l2_bytes=1280 * 1024,
        l3_bytes=12 * MB,
        network_bytes_per_s=1000 * MB,
        storage_read_bytes_per_s=2000 * MB,
        storage_write_bytes_per_s=1500 * MB,
        storage_latency_s=1e-5,
        update_rate_cache=2.5e8,
        update_rate_mem=8.0e7,
    )
