"""Analytic cluster cost model: simulated seconds for paper-scale runs.

The reproduction strategy (DESIGN.md §2): all *counts* — tiles per
stage, copy fan-out, shuffle/collect/storage volumes, kernel cell
updates — are exact, mirrored from the real drivers and validated
against engine-metered runs at test scale.  This module prices those
counts on a :class:`~repro.cluster.config.ClusterConfig`:

compute
    Per stage, the max-loaded node runs ``q`` tile kernels on
    ``min(executor_cores, q)`` concurrent task slots; recursive kernels
    additionally fan out to ``OMP_NUM_THREADS`` threads.  The per-task
    rate combines the kernel's base update rate (cache-resident or
    memory-bound for iterative kernels by tile size; cache-oblivious
    with per-level recursion overhead for recursive kernels), an
    Amdahl-style thread efficiency capped by the kernel's fan-out
    parallelism, an oversubscription penalty once
    ``tasks x threads > cores`` (the Table I/II U-shape), and a
    per-concurrent-task contention term (distinct working sets fighting
    for the memory system).
trans/shuffle
    Wide transformations stage to local storage and cross the network;
    per-node volume uses the partitioner imbalance factor.  Spark's
    shuffle compression is modelled by ``shuffle_compression``.
collect / storage (CB)
    Collected blocks serialize through the driver NIC; shared-storage
    writes at the driver, reads once per distinct block per node
    (executors cache repeated reads — the OS page-cache behaviour of
    reading staged files).
overhead
    Per-stage barriers plus per-task launch costs over the slot count.

Calibration: the rate/penalty constants live in the cluster presets and
were fitted against the paper's anchor numbers (see
``repro.experiments.calibration`` and EXPERIMENTS.md); the *shape*
claims (who wins, crossovers) are robust to the exact constants, which
the sensitivity tests exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.gep import GepSpec
from .config import ClusterConfig
from .counts import SolveCounts, analyze_solve

__all__ = ["CostModel", "CostBreakdown", "ExecutionPlan"]


@dataclass
class ExecutionPlan:
    """One fully-specified configuration to price."""

    strategy: str = "im"  # "im" | "cb"
    kernel: str = "iterative"  # "iterative" | "recursive"
    r_shared: int = 2
    base_size: int = 64
    omp_threads: int = 1
    executor_cores: int | None = None  # default: all cores per node
    num_partitions: int | None = None  # default: 2x total cores
    dtype_bytes: int = 8

    def label(self) -> str:
        if self.kernel == "recursive":
            return f"{self.strategy.upper()} {self.r_shared}-way rec (omp={self.omp_threads})"
        return f"{self.strategy.upper()} iterative"


@dataclass
class CostBreakdown:
    """Priced execution with component attribution (seconds)."""

    total: float
    compute: float
    shuffle: float
    collect: float
    storage: float
    overhead: float
    per_iteration: list[tuple[int, float]] = field(default_factory=list)
    detail: dict = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.total:8.1f}s  (compute {self.compute:.1f}, shuffle "
            f"{self.shuffle:.1f}, collect {self.collect:.1f}, storage "
            f"{self.storage:.1f}, overhead {self.overhead:.1f})"
        )


class CostModel:
    """Prices GEP solves on a cluster description."""

    def __init__(self, cluster: ClusterConfig) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    def estimate(
        self, spec: GepSpec, n: int, r: int, plan: ExecutionPlan
    ) -> CostBreakdown:
        """Simulated wall-clock for one solve of size ``n`` with grid ``r``."""
        counts = analyze_solve(spec, n, r)
        return self.estimate_from_counts(counts, plan, spec.update_weight)

    def estimate_from_counts(
        self, counts: SolveCounts, plan: ExecutionPlan, update_weight: float = 1.0
    ) -> CostBreakdown:
        cl = self.cluster
        c = plan.executor_cores or cl.cores_per_node
        p = plan.num_partitions or 2 * cl.total_cores
        block = counts.block
        tile_b = counts.tile_bytes(plan.dtype_bytes)
        rate = self._kernel_rate(plan, block) / update_weight
        fanout_cap = self._fanout_cap(plan)

        compute = shuffle = collect = storage = overhead = 0.0
        per_iter: list[tuple[int, float]] = []

        # Setup: the initial table distribution (network: data starts at
        # the driver).
        shuffle += self._shuffle_seconds(
            counts.initial_shuffle_blocks * tile_b,
            counts.initial_shuffle_blocks * tile_b,
        )

        for it in counts.iterations:
            t_compute = 0.0
            # stage A (one tile), stage B‖C, stage D
            t_compute += self._stage_seconds(1, it.updates["A"], rate, plan, fanout_cap)
            if it.nb + it.nc:
                per_tile_bc = (it.updates["B"] + it.updates["C"]) / (it.nb + it.nc)
                t_compute += self._stage_seconds(
                    it.nb + it.nc, per_tile_bc, rate, plan, fanout_cap
                )
            if it.nd:
                t_compute += self._stage_seconds(
                    it.nd, it.updates["D"] / it.nd, rate, plan, fanout_cap
                )

            if plan.strategy == "im":
                t_shuffle = self._shuffle_seconds(
                    it.im_shuffle_blocks * tile_b,
                    it.im_network_blocks * tile_b,
                    single_source_bytes=it.im_single_source_blocks * tile_b,
                )
                t_collect = 0.0
                t_storage = 0.0
                n_stages = 5 if it.nd else 2
            else:
                t_shuffle = self._shuffle_seconds(it.cb_shuffle_blocks * tile_b, 0)
                t_collect = self._collect_seconds(it.cb_collect_blocks * tile_b)
                t_storage = self._cb_storage_seconds(it, tile_b, counts.needs_w)
                n_stages = 4 if it.nd else 2
            t_overhead = self._overhead_seconds(n_stages, p, c)
            if plan.strategy == "cb":
                # Two driver actions per iteration, each re-walking the
                # accumulated lineage (see ClusterConfig.lineage_walk_s).
                lineage_stages = 4 * it.k
                t_overhead += 2 * (cl.job_overhead_s + cl.lineage_walk_s * lineage_stages)

            compute += t_compute
            shuffle += t_shuffle
            collect += t_collect
            storage += t_storage
            overhead += t_overhead
            per_iter.append(
                (it.k, t_compute + t_shuffle + t_collect + t_storage + t_overhead)
            )

        # Result assembly back to the driver.
        collect += self._collect_seconds(counts.final_collect_blocks * tile_b)

        total = compute + shuffle + collect + storage + overhead
        return CostBreakdown(
            total=total,
            compute=compute,
            shuffle=shuffle,
            collect=collect,
            storage=storage,
            overhead=overhead,
            per_iteration=per_iter,
            detail={
                "cluster": cl.name,
                "n": counts.n,
                "r": counts.r,
                "block": block,
                "plan": plan.label(),
                "rate_per_core": rate,
            },
        )

    # ------------------------------------------------------------------
    # component models
    # ------------------------------------------------------------------
    def _kernel_rate(self, plan: ExecutionPlan, block: int) -> float:
        """Per-core update rate of one single-threaded kernel invocation."""
        cl = self.cluster
        if plan.kernel == "iterative":
            if cl.iterative_tile_in_cache(block, plan.dtype_bytes):
                return cl.update_rate_cache * cl.iterative_efficiency
            return cl.update_rate_mem
        if plan.kernel == "recursive":
            if block <= plan.base_size:
                depth = 1
            else:
                depth = max(
                    1, math.ceil(math.log(block / plan.base_size, plan.r_shared))
                )
            return cl.update_rate_cache * (cl.recursive_efficiency**depth)
        raise ValueError(f"unknown kernel {plan.kernel!r}")

    def _fanout_cap(self, plan: ExecutionPlan) -> int:
        """Usable OpenMP parallelism inside one tile kernel.

        Bounded by the recursive fan-out: a D call exposes ~r_shared²
        independent sub-calls per sub-iteration; iterative kernels are
        single-threaded.
        """
        if plan.kernel != "recursive":
            return 1
        return max(2, plan.r_shared * plan.r_shared)

    def _stage_seconds(
        self, m: int, work_per_tile: float, rate: float, plan: ExecutionPlan, cap: int
    ) -> float:
        """Compute time of one doall stage of ``m`` tile kernels.

        Throughput form: the max-loaded node holds ``q`` tiles and runs
        ``conc = min(executor_cores, q)`` concurrent tasks of
        ``omp_threads`` threads each.  Node throughput is

        ``rate x used_cores x e_task(conc) x e_thread(t) x e_osub``

        where ``e_task`` is the per-concurrent-task contention (distinct
        working sets competing for the memory system — the reason large
        ``executor-cores`` rows of Tables I/II degrade), ``e_thread``
        rewards multithreaded tasks (OpenMP regions overlap each task's
        serial/launch sections — the reason OMP_NUM_THREADS=1 columns are
        uniformly slow), and ``e_osub`` mildly penalizes
        ``conc x t >> cores``.  The stage can never beat one tile's
        critical time.
        """
        if m <= 0 or work_per_tile <= 0:
            return 0.0
        cl = self.cluster
        c = plan.executor_cores or cl.cores_per_node
        cores = cl.cores_per_node
        per_node = m / cl.nodes
        q = max(1, math.ceil(per_node * cl.hash_imbalance)) if m >= cl.nodes else 1
        conc = min(c, q)
        t = min(plan.omp_threads, cap) if plan.kernel == "recursive" else 1
        active = conc * t
        used = min(active, cores)
        osub = max(1.0, active / cores)
        contention = (
            cl.task_contention
            if plan.kernel == "recursive"
            else cl.iter_task_contention
        )
        e_task = 1.0 / (1.0 + contention * (conc - 1))
        e_thread = 1.0 - cl.thread_serial_overhead / math.sqrt(t)
        e_osub = osub ** (-cl.oversubscription_penalty)
        node_rate = rate * used * e_task * e_thread * e_osub
        stage = q * work_per_tile / node_rate
        # Critical path: one tile on up to min(t, cores) cores.
        single = work_per_tile / (rate * min(t, cores) * e_thread)
        return max(stage, single)

    def _shuffle_seconds(
        self,
        staged_bytes: float,
        network_bytes: float,
        single_source_bytes: float = 0.0,
    ) -> float:
        """Wide-transformation cost.

        Every shuffled block is staged on local storage (write + read;
        the OS page cache absorbs most of it — ``staging_cache_factor``);
        only re-keyed blocks (copies) cross the network, stable-key
        repartition blocks hash back to their previous executor.  Copies
        fanning out of one task (GE's pivot-to-everyone pattern) bottleneck
        on that node's NIC rather than the aggregate bandwidth, so the
        network term is the max of the balanced and single-source views.
        """
        cl = self.cluster
        seconds = 0.0
        if staged_bytes > 0:
            per_node = staged_bytes / cl.shuffle_compression * cl.hash_imbalance / cl.nodes
            io = 1.0 / cl.storage_write_bytes_per_s + 1.0 / cl.storage_read_bytes_per_s
            seconds += per_node * io / cl.staging_cache_factor
        if network_bytes > 0:
            wire = network_bytes / cl.shuffle_compression * cl.hash_imbalance
            remote = wire * (cl.nodes - 1) / max(cl.nodes, 1)
            balanced = remote / cl.nodes / cl.network_bytes_per_s
            # The single-source fan-out is a serialized critical path on
            # one NIC: unlike the bulk traffic (whose effective rate folds
            # in compression and compute/transfer overlap), it gets no
            # pipelining discount.
            source = (
                single_source_bytes
                * (cl.nodes - 1)
                / max(cl.nodes, 1)
                / cl.network_bytes_per_s
            )
            seconds += max(balanced, source)
        return seconds

    def _collect_seconds(self, nbytes: float) -> float:
        """Driver-serialized collect + staging write to shared storage."""
        if nbytes <= 0:
            return 0.0
        cl = self.cluster
        wire = nbytes / cl.shuffle_compression
        return wire / cl.driver_bytes_per_s + wire / cl.storage_write_bytes_per_s

    def _cb_storage_seconds(self, it, tile_b: int, needs_w: bool) -> float:
        """Executor-side reads from shared storage (distinct per node)."""
        cl = self.cluster
        if it.nd:
            nd_node = math.ceil(it.nd / cl.nodes)
            distinct = (
                min(it.nc, nd_node)  # U blocks
                + min(it.nb, nd_node)  # V blocks
                + (1 if needs_w else 0)
            )
        else:
            distinct = 0
        distinct += 1 if (it.nb + it.nc) else 0  # BC stage reads the pivot
        reads = distinct * cl.nodes
        return reads * (tile_b / cl.storage_read_bytes_per_s + cl.storage_latency_s) / cl.nodes

    def _overhead_seconds(self, n_stages: int, partitions: int, c: int) -> float:
        cl = self.cluster
        slots = cl.nodes * c
        per_stage = cl.stage_overhead_s + math.ceil(partitions / slots) * cl.task_overhead_s
        return n_stages * per_stage
