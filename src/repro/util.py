"""Small shared helpers used across subpackages."""

from __future__ import annotations

__all__ = ["near_equal_splits", "sizeof_block"]


def near_equal_splits(extent: int, parts: int) -> list[int]:
    """Boundaries of ``min(parts, extent)`` near-equal contiguous ranges.

    ``near_equal_splits(10, 4) == [0, 2, 5, 7, 10]``.  Every part is
    non-empty; blocked GEP is correct for any contiguous partition, so
    callers never need divisibility.
    """
    if extent < 0:
        raise ValueError("extent must be non-negative")
    if parts < 1:
        raise ValueError("parts must be >= 1")
    n = min(parts, extent) if extent else 1
    return [(extent * t) // n for t in range(n + 1)]


def sizeof_block(value) -> int:
    """Byte size of a payload as shipped over the simulated network.

    NumPy arrays report their buffer size; containers are measured
    recursively (the engine ships role-tagged tuples and role dicts), so
    shuffle/collect accounting reflects the real data volume, not
    container-header sizes.
    """
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (tuple, list, set, frozenset)):
        return 8 + sum(sizeof_block(v) for v in value)
    if isinstance(value, dict):
        return 8 + sum(
            sizeof_block(k) + sizeof_block(v) for k, v in value.items()
        )
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, (int, float, complex, bool)) or value is None:
        return 8
    import sys

    return sys.getsizeof(value)
