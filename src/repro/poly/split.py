"""Index-set splitting of the tiled GEP (§IV-B step 3).

After tiling and conversion to a single recursive function, the paper
splits the inter-tile iteration space by *the degree of overlap between
the output tile and the input tiles* — the more disjoint, the more
relaxed the dependencies and the more parallelism.  For GEP the input
tiles of point ``(kb, ib, jb)`` are ``(ib, kb)``, ``(kb, jb)`` and
``(kb, kb)``; the overlap signature is therefore exactly
``(ib == kb, jb == kb)``, and splitting on it yields four recursive
functions — the A/B/C/D family *emerges* from the transformation
instead of being postulated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gep import GepSpec
from .tiling import TileClass, TiledGep

__all__ = ["SplitFunction", "index_set_split", "OVERLAP_SIGNATURES"]

#: overlap signature -> canonical function name
OVERLAP_SIGNATURES: dict[tuple[bool, bool], str] = {
    (True, True): "A",
    (True, False): "B",
    (False, True): "C",
    (False, False): "D",
}


@dataclass(frozen=True)
class SplitFunction:
    """One recursive function produced by index-set splitting.

    Attributes
    ----------
    name:
        Canonical case name (A/B/C/D).
    row_aliased / col_aliased:
        The overlap signature: whether the output tile coincides with
        the ``(ib, kb)`` / ``(kb, jb)`` input tile.
    reads_disjoint:
        Input tiles guaranteed disjoint from the output tile — the
        measure of available parallelism the paper's criterion ranks
        cases by (D: all three disjoint; A: none).
    needs_sigma_mask:
        Whether the intra-tile loop must retain the Σ_G guard (boundary
        tiles).
    """

    name: str
    row_aliased: bool
    col_aliased: bool
    reads_disjoint: tuple[str, ...]
    needs_sigma_mask: bool

    @property
    def parallelism_rank(self) -> int:
        """Number of disjoint operands — higher is more parallel."""
        return len(self.reads_disjoint)


def _signature_of(cls: TileClass) -> tuple[bool, bool]:
    return (cls.row_aliased, cls.col_aliased)


def index_set_split(spec: GepSpec, nb: int = 4) -> list[SplitFunction]:
    """Split the tiled GEP into its overlap classes.

    Enumerates the inter-tile domain for a representative grid size
    ``nb`` (the classification is size-independent; tests verify
    stability across ``nb``) and produces one :class:`SplitFunction`
    per occurring overlap signature, ordered A, B, C, D.
    """
    tiled = TiledGep(spec)
    seen: dict[tuple[bool, bool], SplitFunction] = {}
    for kb in range(nb):
        for cls in tiled.updated_tiles(kb, nb):
            sig = _signature_of(cls)
            # Which operands are provably disjoint from the output tile:
            # U = (ib, kb), V = (kb, jb), W = (kb, kb), X = (ib, jb).
            if cls.row_aliased and cls.col_aliased:  # A: X = U = V = W
                disjoint: list[str] = []
            elif cls.row_aliased:  # B: V aliases X, pivot operands don't
                disjoint = ["U", "W"]
            elif cls.col_aliased:  # C: U aliases X
                disjoint = ["V", "W"]
            else:  # D: fully disjoint
                disjoint = ["U", "V", "W"]
            fn = SplitFunction(
                name=OVERLAP_SIGNATURES[sig],
                row_aliased=cls.row_aliased,
                col_aliased=cls.col_aliased,
                reads_disjoint=tuple(disjoint),
                needs_sigma_mask=tiled.intra_tile_is_partial(cls),
            )
            prev = seen.get(sig)
            if prev is None:
                seen[sig] = fn
            elif prev != fn:
                # A signature must classify uniformly; merge the mask
                # requirement conservatively (boundary tiles need it).
                seen[sig] = SplitFunction(
                    fn.name,
                    fn.row_aliased,
                    fn.col_aliased,
                    fn.reads_disjoint,
                    prev.needs_sigma_mask or fn.needs_sigma_mask,
                )
    order = {"A": 0, "B": 1, "C": 2, "D": 3}
    return sorted(seen.values(), key=lambda f: order[f.name])
