"""Mono-parametric tiling of the GEP loop nest (§IV-B step 1).

The GEP update set of a :class:`~repro.core.gep.GepSpec` is the
polyhedron ``{(k, i, j) : 0 <= k, i, j < n} ∩ Σ_G`` with
``Σ_G = {i > k} and/or {j > k}`` (or unconstrained).  Tiling every
dimension by the single parameter ``b`` (``n = nb * b`` after virtual
padding) yields the inter-tile domain over ``(kb, ib, jb)``; each
inter-tile point is classified against every Σ_G constraint as FULL,
PARTIAL or EMPTY — the information index-set splitting (step 3) needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gep import GepSpec
from .affine import LinearConstraint, TileStatus

__all__ = ["gep_domain_constraints", "TiledGep", "TileClass"]


def gep_domain_constraints(spec: GepSpec) -> list[LinearConstraint]:
    """The Σ_G constraints of a spec as affine inequalities.

    Bounds ``0 <= v < n`` are implicit (mono-parametric tiling keeps
    them tile-uniform when ``b | n``), so only the constraints that can
    *split* tiles are materialized.
    """
    out = []
    if spec.constrains_i:
        out.append(LinearConstraint.greater("i", "k"))
    if spec.constrains_j:
        out.append(LinearConstraint.greater("j", "k"))
    return out


@dataclass(frozen=True)
class TileClass:
    """Classification of one inter-tile point ``(kb, ib, jb)``.

    ``statuses`` maps each Σ_G constraint (by repr) to its
    :class:`TileStatus`; ``row_aliased``/``col_aliased`` record the
    overlap of the updated tile with the pivot row/column — the
    polyhedral counterpart of the kernel cases.
    """

    kb: int
    ib: int
    jb: int
    statuses: tuple[tuple[str, TileStatus], ...]
    row_aliased: bool
    col_aliased: bool

    @property
    def empty(self) -> bool:
        return any(s is TileStatus.EMPTY for _, s in self.statuses)

    @property
    def case(self) -> str:
        """The emergent kernel case name (A/B/C/D)."""
        if self.row_aliased:
            return "A" if self.col_aliased else "B"
        return "C" if self.col_aliased else "D"


class TiledGep:
    """The mono-parametrically tiled GEP of one spec."""

    def __init__(self, spec: GepSpec) -> None:
        self.spec = spec
        self.constraints = gep_domain_constraints(spec)

    def classify(self, kb: int, ib: int, jb: int) -> TileClass:
        """Classify inter-tile point ``(kb, ib, jb)`` symbolically in b."""
        tile = {"k": kb, "i": ib, "j": jb}
        statuses = tuple(
            (repr(c), c.tile_status(tile)) for c in self.constraints
        )
        return TileClass(
            kb, ib, jb, statuses, row_aliased=ib == kb, col_aliased=jb == kb
        )

    def updated_tiles(self, kb: int, nb: int) -> list[TileClass]:
        """Non-empty inter-tile points of outer iteration ``kb``.

        This is the polyhedral derivation of the grid-update pattern the
        Spark drivers use; tests check it equals
        :func:`repro.core.blocked.updated_tiles`.
        """
        out = []
        for ib in range(nb):
            for jb in range(nb):
                cls = self.classify(kb, ib, jb)
                if not cls.empty:
                    out.append(cls)
        return out

    def intra_tile_is_partial(self, cls: TileClass) -> bool:
        """Whether the tile needs a Σ_G mask inside (boundary tile)."""
        return any(s is TileStatus.PARTIAL for _, s in cls.statuses)
