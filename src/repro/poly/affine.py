"""Minimal affine machinery for the polyhedral derivation (§IV-B).

Full polyhedral compilation is out of scope offline; what the paper's
second methodology actually needs at the *inter-tile* level is small:

* affine expressions over the GEP iteration variables ``(k, i, j)``;
* after mono-parametric tiling ``x = xb * b + xl`` (tile size ``b`` a
  single symbolic parameter, ``0 <= xl < b``), the ability to decide —
  *symbolically in b* — whether a constraint holds for all / some / no
  points of a given tile.

Values that are affine in the single parameter ``b`` are represented by
:class:`AffB` (``alpha * b + beta``); tile coordinates are concrete
integers.  This is exactly the fragment Iooss et al.'s mono-parametric
tiling theorem guarantees stays polyhedral, restricted to what GEP
needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["AffB", "LinearConstraint", "TileStatus", "VARS"]

#: The GEP iteration variables, in loop-nest order.
VARS = ("k", "i", "j")


@dataclass(frozen=True)
class AffB:
    """``alpha * b + beta`` for the symbolic tile-size parameter ``b``."""

    alpha: int
    beta: int

    def __add__(self, other: "AffB | int") -> "AffB":
        if isinstance(other, int):
            return AffB(self.alpha, self.beta + other)
        return AffB(self.alpha + other.alpha, self.beta + other.beta)

    def __sub__(self, other: "AffB | int") -> "AffB":
        if isinstance(other, int):
            return AffB(self.alpha, self.beta - other)
        return AffB(self.alpha - other.alpha, self.beta - other.beta)

    def scale(self, c: int) -> "AffB":
        return AffB(self.alpha * c, self.beta * c)

    def always_nonneg(self, min_b: int = 1) -> bool:
        """``alpha*b + beta >= 0`` for every ``b >= min_b``.

        Affine in ``b`` and monotone, so it suffices to check the slope
        sign and the value at ``min_b``.
        """
        if self.alpha < 0:
            return False
        return self.alpha * min_b + self.beta >= 0

    def always_negative(self, min_b: int = 1) -> bool:
        """``alpha*b + beta < 0`` for every ``b >= min_b``."""
        if self.alpha > 0:
            return False
        return self.alpha * min_b + self.beta < 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.alpha}*b{self.beta:+d}"


class TileStatus(Enum):
    """How a constraint relates to one tile's point set."""

    FULL = "full"  # every point of the tile satisfies it
    PARTIAL = "partial"  # some do, some don't (a boundary tile)
    EMPTY = "empty"  # no point satisfies it


@dataclass(frozen=True)
class LinearConstraint:
    """``sum_v coeffs[v] * v + const >= 0`` over the GEP variables.

    ``i > k`` is ``{"i": 1, "k": -1}, const=-1``.
    """

    coeffs: tuple[tuple[str, int], ...]
    const: int = 0

    @staticmethod
    def greater(a: str, b: str) -> "LinearConstraint":
        """The Σ_G building block ``a > b``."""
        return LinearConstraint(((a, 1), (b, -1)), -1)

    def tile_status(self, tile: dict[str, int]) -> TileStatus:
        """Classify the constraint over tile ``{var: block_index}``.

        Substituting ``v = tile[v] * b + vl`` with ``0 <= vl <= b - 1``,
        the min/max of the expression over the intra-tile box are affine
        in ``b``; their signs (for all ``b >= 1``) decide the status.
        """
        lo = AffB(0, self.const)
        hi = AffB(0, self.const)
        for var, coeff in self.coeffs:
            block = tile[var]
            term = AffB(coeff * block, 0)
            lo = lo + term
            hi = hi + term
            # coeff * vl over vl in [0, b-1]
            if coeff >= 0:
                hi = hi + AffB(coeff, -coeff)
            else:
                lo = lo + AffB(coeff, -coeff)
        if lo.always_nonneg():
            return TileStatus.FULL
        if hi.always_negative():
            return TileStatus.EMPTY
        return TileStatus.PARTIAL

    def holds(self, point: dict[str, int]) -> bool:
        """Evaluate the constraint on a concrete point."""
        total = self.const
        for var, coeff in self.coeffs:
            total += coeff * point[var]
        return total >= 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        terms = " + ".join(f"{c}*{v}" for v, c in self.coeffs)
        return f"{terms} {self.const:+d} >= 0"
