"""Tile-level dataflow analysis and schedule emission (§IV-B step 4).

The final step of the polyhedral methodology applies data-dependence
analysis among the (split) recursive calls and emits a parallel program
with ``doall`` stages inside a ``docross`` outer loop.  At tile
granularity the access functions of inter-tile point ``(kb, ib, jb)``
are::

    write:  (ib, jb)
    reads:  (ib, jb), (ib, kb), (kb, jb), (kb, kb)

Two calls depend on each other (Bernstein's conditions) iff one's write
intersects the other's accesses.  ASAP levels over the resulting graph
give the stage schedule; tests verify it matches the inline-and-optimize
schedule of methodology 1 call for call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gep import GepSpec
from .tiling import TileClass, TiledGep

__all__ = [
    "TileAccess",
    "VersionedAccess",
    "bernstein_dependent",
    "asap_levels",
    "iteration_read_versions",
    "cross_iteration_edges",
    "schedule_iteration",
    "poly_schedule",
]


@dataclass(frozen=True)
class TileAccess:
    """Write/read tile sets of one inter-tile iteration point."""

    point: tuple[int, int, int]  # (kb, ib, jb)
    write: tuple[int, int]
    reads: frozenset[tuple[int, int]]

    @staticmethod
    def of(kb: int, ib: int, jb: int) -> "TileAccess":
        return TileAccess(
            (kb, ib, jb),
            (ib, jb),
            frozenset({(ib, jb), (ib, kb), (kb, jb), (kb, kb)}),
        )


def bernstein_dependent(a: TileAccess, b: TileAccess) -> bool:
    """Bernstein's conditions: flow, anti or output dependence."""
    return (
        a.write in b.reads  # RAW
        or b.write in a.reads  # WAR
        or a.write == b.write  # WAW
    )


def _dependence_edges(
    tiles: list[TileClass], accesses: list[TileAccess]
) -> list[tuple[int, int]]:
    """Directed dependence edges (first, second) among one iteration's tiles.

    Direction: the call whose write feeds the other's read goes first;
    ties (mutual reads) keep case order A < B = C < D, and same-rank
    mutual readers (B ‖ C) stay unordered.
    """
    rank = {"A": 0, "B": 1, "C": 1, "D": 2}
    # Candidate pairs via a tile index instead of all-pairs testing:
    # Bernstein's conditions can only hold when one call's write tile
    # appears among the other's accesses, so only pairs sharing a tile
    # through a write need checking.  O(points x reads) instead of
    # O(points^2) — same pairs, same edges.
    writers: dict[tuple[int, int], list[int]] = {}
    for idx, acc in enumerate(accesses):
        writers.setdefault(acc.write, []).append(idx)
    candidates: set[tuple[int, int]] = set()
    for y, acc in enumerate(accesses):
        for t in acc.reads | {acc.write}:
            for x in writers.get(t, ()):
                if x != y:
                    candidates.add((x, y) if x < y else (y, x))
    edges: list[tuple[int, int]] = []
    for x, y in sorted(candidates):
        if not bernstein_dependent(accesses[x], accesses[y]):
            continue
        xw_in_yr = accesses[x].write in accesses[y].reads
        yw_in_xr = accesses[y].write in accesses[x].reads
        if xw_in_yr and not yw_in_xr:
            edges.append((x, y))
        elif yw_in_xr and not xw_in_yr:
            edges.append((y, x))
        else:
            if rank[tiles[x].case] == rank[tiles[y].case]:
                continue  # same rank, mutually reading: parallel (B ‖ C)
            edges.append(
                (x, y) if rank[tiles[x].case] < rank[tiles[y].case] else (y, x)
            )
    return edges


def asap_levels(spec: GepSpec, kb: int, nb: int) -> tuple[list[TileClass], list[int]]:
    """Updated tiles of iteration ``kb`` with their ASAP schedule levels.

    The dependence pairs are materialised once into an edge list, then a
    longest-path relaxation runs over the edges until a fixpoint —
    breaking as soon as a sweep makes no progress instead of always
    burning the worst-case number of sweeps.
    """
    tiled = TiledGep(spec)
    tiles = tiled.updated_tiles(kb, nb)
    accesses = [TileAccess.of(t.kb, t.ib, t.jb) for t in tiles]
    edges = _dependence_edges(tiles, accesses)
    n = len(tiles)
    level = [0] * n
    for _ in range(n + 1):
        changed = False
        for first, second in edges:
            if level[second] < level[first] + 1:
                level[second] = level[first] + 1
                changed = True
        if not changed:
            break
    else:
        raise ValueError("dependence relaxation did not converge")
    return tiles, level


@dataclass(frozen=True)
class VersionedAccess:
    """One iteration point's reads, split by the tile *version* consumed.

    ``pre_reads`` are tiles read at the value they carried entering
    iteration ``kb`` (version ``kb``); ``post_reads`` are tiles read
    after being rewritten within iteration ``kb`` by an earlier-stage
    call (version ``kb + 1``).  A read is post-update iff the same tile
    is written this iteration by a point with a strictly smaller ASAP
    level — derived from Bernstein dependences, not asserted by hand.
    """

    point: tuple[int, int, int]  # (kb, ib, jb)
    case: str
    write: tuple[int, int]
    pre_reads: frozenset[tuple[int, int]]
    post_reads: frozenset[tuple[int, int]]


def iteration_read_versions(spec: GepSpec, kb: int, nb: int) -> list[VersionedAccess]:
    """Version-resolved access sets for every updated tile of ``kb``."""
    tiles, level = asap_levels(spec, kb, nb)
    writer_level = {(t.ib, t.jb): lv for t, lv in zip(tiles, level)}
    out: list[VersionedAccess] = []
    for t, lv in zip(tiles, level):
        acc = TileAccess.of(t.kb, t.ib, t.jb)
        pre: set[tuple[int, int]] = set()
        post: set[tuple[int, int]] = set()
        for read in acc.reads:
            wl = writer_level.get(read)
            if wl is not None and wl < lv:
                post.add(read)
            else:
                pre.add(read)
        out.append(
            VersionedAccess(acc.point, t.case, acc.write, frozenset(pre), frozenset(post))
        )
    return out


def cross_iteration_edges(
    spec: GepSpec, kb: int, nb: int
) -> dict[tuple[int, int, int], frozenset[tuple[int, int, int]]]:
    """Tile-level edges from iteration ``kb``'s writes into ``kb + 1``.

    For each updated point of iteration ``kb + 1``, the set of iteration
    ``kb`` points whose writes it depends on (RAW through its reads, plus
    the WAW edge on its own output tile).  This is the legality relation
    the wavefront pipeline admits stages under: a ``kb + 1`` point may
    start as soon as these producers — not the whole of iteration ``kb``
    — have settled.
    """
    tiled = TiledGep(spec)
    writes = {
        (t.ib, t.jb): (t.kb, t.ib, t.jb) for t in tiled.updated_tiles(kb, nb)
    }
    out: dict[tuple[int, int, int], frozenset[tuple[int, int, int]]] = {}
    for t in tiled.updated_tiles(kb + 1, nb):
        acc = TileAccess.of(t.kb, t.ib, t.jb)
        deps = {writes[r] for r in acc.reads if r in writes}
        if acc.write in writes:
            deps.add(writes[acc.write])
        out[acc.point] = frozenset(deps)
    return out


def schedule_iteration(spec: GepSpec, kb: int, nb: int) -> list[list[TileClass]]:
    """Doall stages of one outer (docross) iteration ``kb``.

    Builds the dependence graph among that iteration's updated tiles and
    returns ASAP levels.  For every GEP spec this comes out as the
    A → (B ‖ C) → D pattern; the test suite pins that down rather than
    assuming it.
    """
    tiles, level = asap_levels(spec, kb, nb)
    num = max(level) + 1 if level else 0
    stages: list[list[TileClass]] = [[] for _ in range(num)]
    for idx, lv in enumerate(level):
        stages[lv].append(tiles[idx])
    return stages


def poly_schedule(spec: GepSpec, nb: int) -> list[list[TileClass]]:
    """Full docross-over-kb schedule: concatenated per-iteration stages.

    The outer ``kb`` loop is serial (loop-carried dependence through the
    pivot tile), each iteration contributing its doall stages.
    """
    out: list[list[TileClass]] = []
    for kb in range(nb):
        out.extend(schedule_iteration(spec, kb, nb))
    return out
