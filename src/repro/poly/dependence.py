"""Tile-level dataflow analysis and schedule emission (§IV-B step 4).

The final step of the polyhedral methodology applies data-dependence
analysis among the (split) recursive calls and emits a parallel program
with ``doall`` stages inside a ``docross`` outer loop.  At tile
granularity the access functions of inter-tile point ``(kb, ib, jb)``
are::

    write:  (ib, jb)
    reads:  (ib, jb), (ib, kb), (kb, jb), (kb, kb)

Two calls depend on each other (Bernstein's conditions) iff one's write
intersects the other's accesses.  ASAP levels over the resulting graph
give the stage schedule; tests verify it matches the inline-and-optimize
schedule of methodology 1 call for call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.gep import GepSpec
from .tiling import TileClass, TiledGep

__all__ = ["TileAccess", "bernstein_dependent", "schedule_iteration", "poly_schedule"]


@dataclass(frozen=True)
class TileAccess:
    """Write/read tile sets of one inter-tile iteration point."""

    point: tuple[int, int, int]  # (kb, ib, jb)
    write: tuple[int, int]
    reads: frozenset[tuple[int, int]]

    @staticmethod
    def of(kb: int, ib: int, jb: int) -> "TileAccess":
        return TileAccess(
            (kb, ib, jb),
            (ib, jb),
            frozenset({(ib, jb), (ib, kb), (kb, jb), (kb, kb)}),
        )


def bernstein_dependent(a: TileAccess, b: TileAccess) -> bool:
    """Bernstein's conditions: flow, anti or output dependence."""
    return (
        a.write in b.reads  # RAW
        or b.write in a.reads  # WAR
        or a.write == b.write  # WAW
    )


def schedule_iteration(spec: GepSpec, kb: int, nb: int) -> list[list[TileClass]]:
    """Doall stages of one outer (docross) iteration ``kb``.

    Builds the dependence graph among that iteration's updated tiles and
    returns ASAP levels.  For every GEP spec this comes out as the
    A → (B ‖ C) → D pattern; the test suite pins that down rather than
    assuming it.
    """
    tiled = TiledGep(spec)
    tiles = tiled.updated_tiles(kb, nb)
    accesses = [TileAccess.of(t.kb, t.ib, t.jb) for t in tiles]
    n = len(tiles)
    level = [0] * n
    # Program order: the enumeration order of updated_tiles is row-major;
    # dependencies are symmetric pairs resolved by "writer of read data
    # first", which for one GEP iteration is acyclic (A before B/C
    # before D).
    for _ in range(n + 1):
        changed = False
        for x in range(n):
            for y in range(n):
                if x == y or not bernstein_dependent(accesses[x], accesses[y]):
                    continue
                # Direction: the call whose write feeds the other's read
                # goes first; ties (mutual) keep case order A<B=C<D.
                xw_in_yr = accesses[x].write in accesses[y].reads
                yw_in_xr = accesses[y].write in accesses[x].reads
                rank = {"A": 0, "B": 1, "C": 1, "D": 2}
                if xw_in_yr and not yw_in_xr:
                    first, second = x, y
                elif yw_in_xr and not xw_in_yr:
                    first, second = y, x
                else:
                    if rank[tiles[x].case] == rank[tiles[y].case]:
                        continue  # same rank, mutually reading: parallel (B ‖ C)
                    first, second = (
                        (x, y) if rank[tiles[x].case] < rank[tiles[y].case] else (y, x)
                    )
                if level[second] < level[first] + 1:
                    level[second] = level[first] + 1
                    changed = True
        if not changed:
            break
    else:
        raise ValueError("dependence relaxation did not converge")
    num = max(level) + 1 if level else 0
    stages: list[list[TileClass]] = [[] for _ in range(num)]
    for idx, lv in enumerate(level):
        stages[lv].append(tiles[idx])
    return stages


def poly_schedule(spec: GepSpec, nb: int) -> list[list[TileClass]]:
    """Full docross-over-kb schedule: concatenated per-iteration stages.

    The outer ``kb`` loop is serial (loop-carried dependence through the
    pivot tile), each iteration contributing its doall stages.
    """
    out: list[list[TileClass]] = []
    for kb in range(nb):
        out.extend(schedule_iteration(spec, kb, nb))
    return out
