"""Polyhedral-lite derivation of r-way R-DP algorithms (paper §IV-B).

The pipeline mirrors the paper's four transformation steps at the
inter-tile granularity where its scheduling decisions actually happen:

1. **Mono-parametric tiling** (:mod:`repro.poly.tiling`): the GEP loop
   nest over ``(k, i, j)`` is tiled by one symbolic parameter ``b``;
   each Σ_G constraint classifies every inter-tile point FULL / PARTIAL
   / EMPTY, symbolically in ``b``.
2. **Recursion conversion**: each non-empty inter-tile point becomes a
   recursive call on its tile (the intra-tile loop nest is replaced by
   the kernels of :mod:`repro.kernels`).
3. **Index-set splitting** (:mod:`repro.poly.split`): splitting on the
   overlap between output and input tiles yields the A/B/C/D function
   family, ranked by how disjoint (and therefore how parallel) each
   case is.
4. **Dependence analysis** (:mod:`repro.poly.dependence`): Bernstein
   conditions over tile access sets give the doall/docross schedule.

The test suite checks this derivation agrees, stage by stage, with the
inline-and-optimize derivation of :mod:`repro.core.autogen` — the two
methodologies of §IV must (and do) produce the same algorithm.
"""

from .affine import AffB, LinearConstraint, TileStatus, VARS
from .dependence import (
    TileAccess,
    VersionedAccess,
    asap_levels,
    bernstein_dependent,
    cross_iteration_edges,
    iteration_read_versions,
    poly_schedule,
    schedule_iteration,
)
from .split import OVERLAP_SIGNATURES, SplitFunction, index_set_split
from .tiling import TileClass, TiledGep, gep_domain_constraints

__all__ = [
    "AffB",
    "LinearConstraint",
    "TileStatus",
    "VARS",
    "TiledGep",
    "TileClass",
    "gep_domain_constraints",
    "SplitFunction",
    "index_set_split",
    "OVERLAP_SIGNATURES",
    "TileAccess",
    "VersionedAccess",
    "asap_levels",
    "bernstein_dependent",
    "cross_iteration_edges",
    "iteration_read_versions",
    "schedule_iteration",
    "poly_schedule",
]
