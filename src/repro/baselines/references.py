"""Independent single-node reference implementations.

These never touch the GEP machinery — they exist so every solver result
can be cross-checked against an algorithmically unrelated computation
(scipy's C Floyd-Warshall / Dijkstra, LAPACK solves, boolean matrix
powers, networkx graph algorithms).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "numpy_floyd_warshall",
    "scipy_shortest_paths",
    "numpy_gaussian_solve",
    "boolean_closure_by_squaring",
    "networkx_apsp",
]


def numpy_floyd_warshall(weights: np.ndarray) -> np.ndarray:
    """Textbook per-k vectorized FW (independent of repro.core)."""
    d = np.array(weights, dtype=np.float64, copy=True)
    np.fill_diagonal(d, np.minimum(np.diag(d), 0.0))
    n = d.shape[0]
    for k in range(n):
        with np.errstate(invalid="ignore"):
            cand = d[:, k, None] + d[None, k, :]
        cand = np.where(np.isnan(cand), np.inf, cand)
        np.minimum(d, cand, out=d)
    return d


def scipy_shortest_paths(weights: np.ndarray, method: str = "FW") -> np.ndarray:
    """scipy.sparse.csgraph shortest paths on the same weight convention."""
    import scipy.sparse as sps
    import scipy.sparse.csgraph as csg

    w = np.asarray(weights, dtype=np.float64)
    dense = np.where(np.isfinite(w) & (w != 0), w, 0.0)
    return csg.shortest_path(sps.csr_matrix(dense), method=method, directed=True)


def numpy_gaussian_solve(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """LAPACK solve (the answer GE must match on well-conditioned input)."""
    return np.linalg.solve(np.asarray(a, dtype=np.float64), np.asarray(b))


def boolean_closure_by_squaring(adj: np.ndarray) -> np.ndarray:
    """Reflexive-transitive closure via O(log n) boolean squarings."""
    n = adj.shape[0]
    reach = np.asarray(adj, dtype=bool) | np.eye(n, dtype=bool)
    while True:
        nxt = ((reach.astype(np.uint8) @ reach.astype(np.uint8)) > 0) | reach
        if np.array_equal(nxt, reach):
            return reach
        reach = nxt


def networkx_apsp(weights: np.ndarray) -> np.ndarray:
    """networkx Dijkstra-based APSP (non-negative weights)."""
    import networkx as nx

    from ..workloads import weights_to_networkx

    w = np.asarray(weights)
    n = w.shape[0]
    g = weights_to_networkx(w)
    out = np.full((n, n), np.inf)
    np.fill_diagonal(out, 0.0)
    for src, lengths in nx.all_pairs_dijkstra_path_length(g):
        for dst, dist in lengths.items():
            out[src, dst] = dist
    return out
