"""Baselines: the paper's comparison point (Schoeneman & Zola's blocked
FW-APSP with iterative kernels) and independent reference solvers used
for cross-validation."""

from .references import (
    boolean_closure_by_squaring,
    networkx_apsp,
    numpy_floyd_warshall,
    numpy_gaussian_solve,
    scipy_shortest_paths,
)
from .schoeneman_zola import SchoenemanZolaAPSP

__all__ = [
    "SchoenemanZolaAPSP",
    "numpy_floyd_warshall",
    "scipy_shortest_paths",
    "numpy_gaussian_solve",
    "boolean_closure_by_squaring",
    "networkx_apsp",
]
