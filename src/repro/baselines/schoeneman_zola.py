"""The Schoeneman & Zola (ICPP'19) blocked FW-APSP baseline.

The paper's §V baseline: a Spark implementation of Venkataraman et
al.'s blocked all-pairs shortest-paths algorithm with *iterative*
kernels only (no recursion, no OpenMP offload) and the In-Memory
distribution.  The original handles undirected graphs; like the paper,
this port works on directed graphs — which contains the undirected case
(symmetric weight matrices stay symmetric under FW).

Implementation-wise the baseline is the IM + iterative corner of the
general GEP driver (the paper: "Our work improves over their FW-APSP
solver by using r-way R-DP algorithms as kernels instead of iterative
kernels, and extends their solution to a wider class of DP problems").
Exposing it as its own class keeps the benchmark comparisons honest and
the configuration (their published defaults) in one place.
"""

from __future__ import annotations

import numpy as np

from ..core.dpspark import GepSparkSolver, SolveReport, make_kernel
from ..core.gep import FloydWarshallGep
from ..sparkle import SparkleContext

__all__ = ["SchoenemanZolaAPSP"]


class SchoenemanZolaAPSP:
    """Blocked FW-APSP on Spark with iterative kernels (the baseline).

    Parameters
    ----------
    sc:
        Engine context.
    block_size:
        Tile edge length (their tunable "block decomposition parameter";
        ``r = ceil(n / block_size)``).
    num_partitions:
        RDD partitions; their guideline (adopted by the paper) is 2x the
        total core count, which is the context default.
    """

    def __init__(
        self,
        sc: SparkleContext,
        *,
        block_size: int = 64,
        num_partitions: int | None = None,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be positive")
        self.sc = sc
        self.block_size = block_size
        self.num_partitions = num_partitions

    def solve(
        self, weights: np.ndarray, *, directed: bool = True
    ) -> tuple[np.ndarray, SolveReport]:
        """All-pairs shortest path distances.

        ``directed=False`` asserts input symmetry (the original
        implementation's precondition) before running the directed
        solver.
        """
        w = np.array(weights, dtype=np.float64, copy=True)
        if w.ndim != 2 or w.shape[0] != w.shape[1]:
            raise ValueError("weight matrix must be square")
        if not directed and not np.allclose(w, w.T, equal_nan=True):
            raise ValueError("undirected mode requires a symmetric matrix")
        np.fill_diagonal(w, np.minimum(np.diag(w), 0.0))
        spec = FloydWarshallGep()
        r = max(1, -(-w.shape[0] // self.block_size))
        solver = GepSparkSolver(
            spec,
            self.sc,
            r=r,
            kernel=make_kernel(spec, "iterative"),
            strategy="im",
            num_partitions=self.num_partitions,
        )
        return solver.solve(w)
