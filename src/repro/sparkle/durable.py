"""Durable, checksummed block storage and the write-ahead solve journal.

Everything durable-*sounding* elsewhere in the engine —
``RDD.checkpoint()``, the CB strategy's "shared persistent storage"
(paper §IV-C) — historically lived in driver memory, so a driver crash
lost the whole multi-iteration solve.  This module is the real thing:

:class:`DurableBlockStore`
    A directory of pickled blocks with per-block BLAKE2b checksums and a
    versioned manifest.  Writes are crash-atomic (tmp file + fsync +
    ``os.replace``) and verified by read-back, so a torn write is
    detected and rewritten rather than committed; reads re-checksum and
    raise a typed :class:`~.errors.CorruptBlockError` on mismatch, so
    silent bitrot can never surface as wrong data.  Backs
    :class:`~.storage.SharedStorage` staging, durable RDD checkpoints,
    and the solver's iteration snapshots.

:class:`SolveJournal`
    An append-only, per-record-checksummed JSONL write-ahead log.  The
    GEP drivers append one record *after* completing each outer
    iteration ``k`` (snapshot committed first, journal record second, so
    the record is the commit point) and ``--resume`` replays the longest
    valid prefix — a torn tail line from a mid-append crash is truncated,
    not trusted.

Both are chaos-testable: an attached
:class:`~repro.sparkle.chaos.FaultPlan` can tear writes
(``torn_write``, auto-healed by read-back verify) and rot committed
blocks (``corrupt_block``, caught by the read path / ``fsck``) under the
same seeded determinism contract as every other fault kind.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from .errors import BlockNotFoundError, CorruptBlockError, JournalError

__all__ = ["DurableBlockStore", "FsckReport", "SolveJournal"]

MANIFEST_VERSION = 1
JOURNAL_VERSION = 1

_DIGEST_SIZE = 16  # BLAKE2b-128: collision-safe for integrity checking


def _checksum(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=_DIGEST_SIZE).hexdigest()


def _fsync_dir(path: Path) -> None:
    """Flush a directory entry (the rename itself) to stable storage."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes, sync: bool = True) -> None:
    """Crash-atomic file write: tmp in the same dir, fsync, rename.

    ``sync=False`` skips the fsyncs (the rename is still atomic): the
    relaxed mode spill stores use, where blocks are recomputable from
    lineage and durability across power loss buys nothing.
    """
    tmp = path.with_name(f".tmp.{path.name}")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if sync:
        _fsync_dir(path.parent)


@dataclass
class FsckReport:
    """Outcome of a :meth:`DurableBlockStore.fsck` integrity sweep."""

    root: str
    blocks_total: int = 0
    blocks_ok: int = 0
    bytes_verified: int = 0
    #: manifest entries whose block file has vanished
    missing: list[str] = field(default_factory=list)
    #: manifest entries whose block bytes fail their recorded checksum
    corrupt: list[str] = field(default_factory=list)
    #: block files on disk with no manifest entry (e.g. a write that
    #: crashed between the block rename and the manifest commit)
    orphans: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.missing and not self.corrupt

    def summary(self) -> dict[str, Any]:
        return {
            "root": self.root,
            "blocks_total": self.blocks_total,
            "blocks_ok": self.blocks_ok,
            "bytes_verified": self.bytes_verified,
            "missing": list(self.missing),
            "corrupt": list(self.corrupt),
            "orphans": list(self.orphans),
            "clean": self.clean,
        }


class DurableBlockStore:
    """Checksummed key/block store under one directory (see module doc).

    Keys are arbitrary picklable values; they are addressed by the hash
    of their ``repr`` and recorded verbatim (as that repr) in the
    manifest, so ``fsck`` can name what it verified.

    Parameters
    ----------
    root:
        Directory to own (created if needed); blocks land in
        ``root/blocks/``, the manifest at ``root/MANIFEST.json``.
    metrics:
        Optional :class:`~.metrics.EngineMetrics` for byte/event
        accounting (``durable_*``, ``torn_writes_detected``,
        ``corrupt_blocks_detected``).
    fault_plan:
        Optional :class:`~.chaos.FaultPlan` arming ``torn_write`` /
        ``corrupt_block`` injections.
    max_write_attempts:
        Read-back verification rewrites a torn block up to this many
        times before giving up with :class:`CorruptBlockError`.
    sync:
        ``False`` skips fsyncs on block/manifest writes (atomic renames
        and checksummed reads are kept).  Spill stores use this: spilled
        blocks are recomputable from lineage, so surviving power loss is
        not worth an fsync per eviction.  Leave ``True`` for checkpoint/
        journal stores, whose whole point is crash durability.
    """

    MANIFEST = "MANIFEST.json"

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        metrics=None,
        fault_plan=None,
        max_write_attempts: int = 3,
        sync: bool = True,
    ) -> None:
        if max_write_attempts < 1:
            raise ValueError("max_write_attempts must be >= 1")
        self.root = Path(root)
        self.blocks_dir = self.root / "blocks"
        self.blocks_dir.mkdir(parents=True, exist_ok=True)
        self._metrics = metrics
        self.fault_plan = fault_plan
        self.max_write_attempts = max_write_attempts
        self.sync = sync
        self._lock = threading.Lock()
        self._manifest: dict[str, dict[str, Any]] = {}
        self._load_manifest()

    # ------------------------------------------------------------------
    # manifest
    # ------------------------------------------------------------------
    def _manifest_path(self) -> Path:
        return self.root / self.MANIFEST

    def _load_manifest(self) -> None:
        path = self._manifest_path()
        if not path.exists():
            return
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CorruptBlockError(
                f"unreadable manifest {path}: {exc}", key=self.MANIFEST
            ) from exc
        if doc.get("version") != MANIFEST_VERSION:
            raise JournalError(
                f"manifest {path} has version {doc.get('version')!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        self._manifest = dict(doc.get("blocks", {}))

    def _commit_manifest_locked(self) -> None:
        doc = {"version": MANIFEST_VERSION, "blocks": self._manifest}
        _atomic_write(
            self._manifest_path(),
            json.dumps(doc, sort_keys=True).encode(),
            sync=self.sync,
        )

    # ------------------------------------------------------------------
    # block I/O
    # ------------------------------------------------------------------
    @staticmethod
    def _filename(key_repr: str) -> str:
        return hashlib.blake2b(key_repr.encode(), digest_size=12).hexdigest() + ".blk"

    def put(self, key: Any, value: Any) -> int:
        """Durably store ``value`` under ``key``; returns payload bytes.

        Protocol: write block (atomic rename) → read back and verify the
        checksum (catches torn writes, which are rewritten) → commit the
        manifest entry (atomic rename).  A crash at any point leaves
        either the old committed state or the new one, never a half
        state the read path would trust.
        """
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        digest = _checksum(payload)
        key_repr = repr(key)
        fname = self._filename(key_repr)
        path = self.blocks_dir / fname
        plan = self.fault_plan
        for attempt in range(1, self.max_write_attempts + 1):
            data = payload
            if plan is not None and plan.durable_fault("torn_write", key, attempt):
                # Crash-consistency lie: only a prefix reaches the disk.
                data = payload[: max(0, len(payload) // 2)]
            _atomic_write(path, data, sync=self.sync)
            if _checksum(path.read_bytes()) == digest:
                break
            if self._metrics is not None:
                self._metrics.torn_writes_detected += 1
        else:
            raise CorruptBlockError(
                f"block {key_repr} still fails read-back verification after "
                f"{self.max_write_attempts} write attempts",
                key=key,
            )
        with self._lock:
            self._manifest[key_repr] = {
                "file": fname,
                "nbytes": len(payload),
                "blake2b": digest,
            }
            self._commit_manifest_locked()
        if self._metrics is not None:
            self._metrics.durable_puts += 1
            self._metrics.durable_bytes_written += len(payload)
        if plan is not None and plan.durable_fault("corrupt_block", key, 1):
            # Post-commit silent bitrot: the manifest checksum is for the
            # good bytes, the disk now holds bad ones.  Only a verifying
            # read or fsck can tell.
            rotten = bytearray(payload)
            if rotten:
                rotten[len(rotten) // 2] ^= 0xFF
            _atomic_write(path, bytes(rotten), sync=self.sync)
        return len(payload)

    def _entry(self, key: Any) -> tuple[str, dict[str, Any]]:
        key_repr = repr(key)
        with self._lock:
            entry = self._manifest.get(key_repr)
        if entry is None:
            raise BlockNotFoundError(
                f"durable store has no block {key_repr}", key=key
            )
        return key_repr, entry

    def get(self, key: Any) -> Any:
        """Read and verify a block; raises typed errors on miss/corruption."""
        key_repr, entry = self._entry(key)
        path = self.blocks_dir / entry["file"]
        try:
            payload = path.read_bytes()
        except OSError as exc:
            if self._metrics is not None:
                self._metrics.corrupt_blocks_detected += 1
            raise CorruptBlockError(
                f"block {key_repr} is in the manifest but unreadable: {exc}",
                key=key,
            ) from exc
        if _checksum(payload) != entry["blake2b"]:
            if self._metrics is not None:
                self._metrics.corrupt_blocks_detected += 1
            raise CorruptBlockError(
                f"block {key_repr} failed its checksum "
                f"({len(payload)} B on disk, {entry['nbytes']} B recorded)",
                key=key,
            )
        if self._metrics is not None:
            self._metrics.durable_gets += 1
            self._metrics.durable_bytes_read += len(payload)
        return pickle.loads(payload)

    def contains(self, key: Any) -> bool:
        with self._lock:
            return repr(key) in self._manifest

    def delete(self, key: Any) -> bool:
        """Drop a block (no-op if absent); returns whether it existed."""
        key_repr = repr(key)
        with self._lock:
            entry = self._manifest.pop(key_repr, None)
            if entry is None:
                return False
            self._commit_manifest_locked()
        try:
            (self.blocks_dir / entry["file"]).unlink()
        except OSError:
            pass
        return True

    def keys(self) -> list[str]:
        """Reprs of every committed key (the manifest's view)."""
        with self._lock:
            return sorted(self._manifest)

    def __len__(self) -> int:
        with self._lock:
            return len(self._manifest)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(e["nbytes"] for e in self._manifest.values())

    # ------------------------------------------------------------------
    # integrity sweep
    # ------------------------------------------------------------------
    def fsck(self) -> FsckReport:
        """Verify every manifest entry against the bytes on disk."""
        with self._lock:
            manifest = {k: dict(v) for k, v in self._manifest.items()}
        report = FsckReport(root=str(self.root), blocks_total=len(manifest))
        referenced = set()
        for key_repr, entry in sorted(manifest.items()):
            referenced.add(entry["file"])
            path = self.blocks_dir / entry["file"]
            try:
                payload = path.read_bytes()
            except OSError:
                report.missing.append(key_repr)
                continue
            if _checksum(payload) != entry["blake2b"]:
                report.corrupt.append(key_repr)
                continue
            report.blocks_ok += 1
            report.bytes_verified += len(payload)
        for path in sorted(self.blocks_dir.glob("*.blk")):
            if path.name not in referenced:
                report.orphans.append(path.name)
        return report


class SolveJournal:
    """Checksummed append-only write-ahead log of solve progress.

    Records are JSON objects, one per line, each sealed with a BLAKE2b
    checksum of its canonical serialization and a contiguous sequence
    number.  :meth:`entries` returns the longest valid prefix: a torn
    tail (partial last line after SIGKILL mid-append) or any record that
    fails its checksum ends the replay there — the WAL contract.
    """

    FILENAME = "journal.wal"

    def __init__(self, root: str | os.PathLike, filename: str | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / (filename or self.FILENAME)
        self._cached_entries: int | None = None

    @property
    def exists(self) -> bool:
        return self.path.exists()

    # ------------------------------------------------------------------
    @staticmethod
    def _seal(record: dict) -> str:
        body = dict(record)
        body.pop("check", None)
        return _checksum(json.dumps(body, sort_keys=True).encode())

    def append(self, record: dict) -> dict:
        """Seal and durably append one record; returns it with seq/check."""
        entry = dict(record)
        entry["v"] = JOURNAL_VERSION
        entry["seq"] = self._next_seq()
        entry["check"] = self._seal(entry)
        line = json.dumps(entry, sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return entry

    def _next_seq(self) -> int:
        if self._cached_entries is None:
            self._cached_entries = len(self.entries())
        seq = self._cached_entries
        self._cached_entries += 1
        return seq

    def _iter_valid(self) -> Iterator[dict]:
        if not self.path.exists():
            return
        expected_seq = 0
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except ValueError:
                    return  # torn tail / garbage: stop trusting here
                if (
                    not isinstance(entry, dict)
                    or entry.get("v") != JOURNAL_VERSION
                    or entry.get("seq") != expected_seq
                    or entry.get("check") != self._seal(entry)
                ):
                    return
                expected_seq += 1
                yield entry

    def entries(self) -> list[dict]:
        """Longest valid prefix of records (see class docstring)."""
        return list(self._iter_valid())

    def truncate_to_valid(self) -> list[dict]:
        """Atomically rewrite the file to its valid prefix; returns it.

        Called on resume so subsequent appends extend committed history
        rather than a torn tail.
        """
        entries = self.entries()
        data = "".join(json.dumps(e, sort_keys=True) + "\n" for e in entries)
        _atomic_write(self.path, data.encode())
        self._cached_entries = len(entries)
        return entries

    def rewrite(self, records: list[dict]) -> list[dict]:
        """Atomically replace the journal with ``records`` (compaction).

        Each record is re-sealed with a fresh contiguous sequence number
        (any stale ``v``/``seq``/``check`` fields are stripped first),
        and the whole file lands via one crash-atomic rename — a crash
        mid-compaction leaves either the full old journal or the full
        new one, never a mix.  Returns the sealed entries as written.
        """
        sealed: list[dict] = []
        for seq, record in enumerate(records):
            entry = {
                k: v
                for k, v in dict(record).items()
                if k not in ("v", "seq", "check")
            }
            entry["v"] = JOURNAL_VERSION
            entry["seq"] = seq
            entry["check"] = self._seal(entry)
            sealed.append(entry)
        data = "".join(json.dumps(e, sort_keys=True) + "\n" for e in sealed)
        _atomic_write(self.path, data.encode())
        self._cached_entries = len(sealed)
        return sealed

    def reset(self) -> None:
        """Start a fresh journal (new solve in an old directory)."""
        _atomic_write(self.path, b"")
        self._cached_entries = 0

    def verify(self) -> dict[str, Any]:
        """Integrity view for ``repro fsck``."""
        raw_lines = 0
        if self.path.exists():
            with open(self.path, "r", encoding="utf-8") as fh:
                raw_lines = sum(1 for line in fh if line.strip())
        entries = self.entries()
        kinds = [e.get("kind") for e in entries]
        return {
            "path": str(self.path),
            "exists": self.path.exists(),
            "records_total": raw_lines,
            "records_valid": len(entries),
            "torn_tail": raw_lines > len(entries),
            "complete": "done" in kinds,
            "last_iteration": max(
                (e["k"] for e in entries if e.get("kind") == "iteration"),
                default=None,
            ),
        }
