"""Seeded fault injection: the chaos plane of the sparkle engine.

Real Spark clusters do not fail politely: tasks throw, executors die and
take their materialized shuffle outputs with them (forcing lineage
recomputation, §II), stragglers stall stages, storage reads flake, and
shuffle staging overflows local disks (the paper's §V failure reports
for large In-Memory configurations).  A :class:`FaultPlan` injects all
of these *deterministically* so chaos runs are reproducible and
assertable.

Determinism contract
--------------------
Every injection decision is a pure function of ``(seed, kind, site)``
hashed through BLAKE2b — no wall-clock, no shared RNG stream, no
ordering sensitivity.  A site identifies where the decision is made
(stage id, partition, attempt, storage key, …), so the same seed always
faults the same sites no matter how many times the plan is consulted.
While a plan is attached, the scheduler additionally runs each stage's
tasks in partition order (``serialize_tasks``) so recovery *traces* —
retry counts, recomputed partitions, blacklist events — are also
bit-reproducible; set ``serialize_tasks=False`` to chaos-test the fully
concurrent engine at the price of trace stability.

Faults only fire on attempts ``<= max_attempt`` (default: first attempt
only), which keeps any plan below the scheduler's abort threshold: the
retry loop always has a clean attempt left, so lineage recovery must
reproduce the fault-free answer — the invariant the property-based
chaos tests pin down.
"""

from __future__ import annotations

import hashlib
import threading
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "deterministic_fraction",
]

#: Per-task accounting handle of the attempt running in this thread (set
#: by the scheduler); fault decisions for storage/broadcast/shuffle I/O
#: read it to key their sites.  ``None`` means driver-side code, which
#: is never faulted.
CURRENT_TASK: ContextVar = ContextVar("sparkle_current_task", default=None)

#: The fault taxonomy (see DESIGN.md "Fault tolerance & chaos testing"):
#: ``kill``      task attempt dies with a retryable exception
#: ``lose``      the task's executor is lost; its materialized shuffle
#:               outputs are dropped so lineage recomputation is exercised
#: ``slow``      the attempt stalls (straggler); the scheduler may launch
#:               a speculative copy
#: ``storage``   transient shared-storage read failure (CB staging I/O)
#: ``bcast``     transient broadcast-variable read failure
#: ``overflow``  transient shuffle-staging overflow on a map output write
#: ``torn_write``    a durable-store write lands truncated (crash/fs lie
#:                   mid-write); detected by the store's read-back verify
#:                   and rewritten
#: ``corrupt_block`` silent bitrot of a durable block *after* commit;
#:                   undetected until a checksummed read or ``fsck``
#: ``mem_squeeze``   the memory governor's budget shrinks at an outer-
#:                   iteration boundary (the cluster losing headroom
#:                   mid-solve); drives spill/backpressure/degradation
#: ``worker_kill``   a *real* worker process SIGKILLs itself before
#:                   running an offloaded kernel — exercises the process
#:                   backend's crash protocol (respawn, orphan reclaim,
#:                   retry) at the OS boundary, not a simulation
#: ``worker_hang``   a worker SIGSTOPs itself (wedged, not dead); the
#:                   driver watchdog detects the missed heartbeats and
#:                   SIGKILLs it, converting the hang into a crash
#: ``worker_oom``    a worker dies as if OOM-killed (SIGKILL, tagged as
#:                   an out-of-memory loss in the crash ledger)
#: ``request_storm`` a service-plane client misbehaves: its request
#:                   arrives with an impossibly tight deadline, or as an
#:                   exact duplicate of another in-flight request (the
#:                   single-flight dedup path); decided per
#:                   ``(client, seq)`` so storms replay bit-identically
#: ``driver_kill``   the *driver/service process itself* dies mid-storm
#:                   (SIGKILL, no goodbye): the harshest service-plane
#:                   fault, exercising the request journal's replay and
#:                   the ``--resume`` recovery path; decided per
#:                   ``(client, seq)`` like the other request twists so
#:                   the kill point replays bit-identically
#: ``noisy_neighbor`` a hog tenant bursts: before its own request ``seq``
#:                   the hog client injects 1–4 extra *distinct* solves
#:                   (no single-flight coalescing), saturating the queue
#:                   and the governor — the tenant-isolation storm that
#:                   the fairness plane (weighted DRR, quotas, brownout
#:                   ladder) must absorb without starving victim
#:                   tenants; decided per ``(client, seq)`` so the burst
#:                   schedule replays bit-identically
FAULT_KINDS = (
    "kill", "lose", "slow", "storage", "bcast", "overflow",
    "torn_write", "corrupt_block", "mem_squeeze",
    "worker_kill", "worker_hang", "worker_oom",
    "request_storm", "driver_kill", "noisy_neighbor",
)

#: Modest everything-on mix used by ``FaultPlan.default`` / bare
#: ``--chaos seed=N``.
DEFAULT_RATES = {
    "kill": 0.05,
    "lose": 0.03,
    "slow": 0.05,
    "storage": 0.03,
    "bcast": 0.0,
    "overflow": 0.02,
    # Durable-store faults are inert unless a checkpoint dir is attached,
    # and arming them implicitly would perturb runs that opt into
    # durability with a bare ``seed=N`` — opt in explicitly instead.
    "torn_write": 0.0,
    "corrupt_block": 0.0,
    # Same reasoning: squeezes only bite when a memory budget is set.
    "mem_squeeze": 0.0,
    # Real process faults only bite under the process backend, and they
    # kill actual OS processes — strictly opt-in.
    "worker_kill": 0.0,
    "worker_hang": 0.0,
    "worker_oom": 0.0,
    # Request twists only mean anything to a SolverService driving a
    # storm; a bare solve has no request plane to twist.
    "request_storm": 0.0,
    # Killing the driver is the bluntest fault there is — only a soak
    # harness that also arranges the restart should ever arm it.
    "driver_kill": 0.0,
    # Hog bursts only mean anything to the noisy-neighbor storm harness,
    # which supplies the hog/victim tenant roles — strictly opt-in.
    "noisy_neighbor": 0.0,
}

DEFAULT_STRAGGLER_DELAY = 0.05


def deterministic_fraction(seed: int, kind: str, site: tuple) -> float:
    """Pure hash of ``(seed, kind, site)`` into ``[0, 1)``.

    Shared by the fault plan and the scheduler's backoff jitter so both
    are reproducible from the one chaos seed.
    """
    payload = repr((int(seed), str(kind), tuple(site))).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultSpec:
    """One fault kind armed at a given rate.

    Parameters
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    rate:
        Probability of firing per decision site, in ``[0, 1]``.
    max_attempt:
        Fire only on task attempts ``<= max_attempt``.  The default of 1
        guarantees recovery (retries run fault-free); raise it past the
        scheduler's retry budget to test :class:`~.errors.JobAborted`.
    delay:
        ``slow`` only — seconds the straggler stalls before computing.
    """

    kind: str
    rate: float
    max_attempt: int = 1
    delay: float = DEFAULT_STRAGGLER_DELAY

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.max_attempt < 1:
            raise ValueError("max_attempt must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")


class FaultPlan:
    """A seeded, composable set of armed faults.

    Attach one plan to one :class:`~repro.sparkle.SparkleContext`; the
    ledger (:meth:`fired`) accumulates over the plan's lifetime, so
    trace-determinism comparisons should build a fresh plan per run.
    """

    def __init__(
        self,
        seed: int,
        specs: Sequence[FaultSpec] = (),
        *,
        serialize_tasks: bool = True,
    ) -> None:
        self.seed = int(seed)
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self.specs:
                raise ValueError(f"duplicate FaultSpec for kind {spec.kind!r}")
            self.specs[spec.kind] = spec
        self.serialize_tasks = serialize_tasks
        self._ledger: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._ledger_lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def default(cls, seed: int, **overrides) -> "FaultPlan":
        """The :data:`DEFAULT_RATES` mix under ``seed``."""
        specs = [
            FaultSpec(kind, rate)
            for kind, rate in DEFAULT_RATES.items()
            if rate > 0
        ]
        return cls(seed, specs, **overrides)

    @classmethod
    def from_string(cls, text: str) -> "FaultPlan":
        """Parse the CLI grammar, e.g. ``"seed=42,kill=0.1,slow=0.1:0.02"``.

        ``seed=N`` is required.  Fault kinds take ``kind=rate``;
        ``slow`` optionally takes ``rate:delay_seconds``.  ``parallel=1``
        disables task serialization (concurrent chaos, unstable traces).
        A bare ``seed=N`` arms the default mix.
        """
        seed: int | None = None
        serialize = True
        specs: list[FaultSpec] = []
        for token in filter(None, (t.strip() for t in text.split(","))):
            if "=" not in token:
                raise ValueError(f"bad --chaos token {token!r}: expected key=value")
            key, _, value = token.partition("=")
            key = key.strip()
            if key == "seed":
                seed = int(value)
            elif key == "parallel":
                serialize = not bool(int(value))
            elif key == "slow":
                rate_text, _, delay_text = value.partition(":")
                specs.append(
                    FaultSpec(
                        "slow",
                        float(rate_text),
                        delay=float(delay_text) if delay_text else DEFAULT_STRAGGLER_DELAY,
                    )
                )
            elif key in FAULT_KINDS:
                specs.append(FaultSpec(key, float(value)))
            else:
                raise ValueError(
                    f"unknown --chaos key {key!r}; expected seed, parallel, or one of {FAULT_KINDS}"
                )
        if seed is None:
            raise ValueError("--chaos requires seed=N")
        if not specs:
            return cls.default(seed, serialize_tasks=serialize)
        return cls(seed, specs, serialize_tasks=serialize)

    # ------------------------------------------------------------------
    # decision sites (all pure given seed + site)
    # ------------------------------------------------------------------
    def _decide(self, kind: str, attempt: int, site: tuple) -> bool:
        spec = self.specs.get(kind)
        if spec is None or spec.rate <= 0.0 or attempt > spec.max_attempt:
            return False
        return deterministic_fraction(self.seed, kind, site) < spec.rate

    def task_fault(self, stage_id: int, partition: int, attempt: int) -> str | None:
        """Fault for a task attempt: ``"lose"``, ``"kill"`` or ``None``.

        Executor loss takes priority over a plain kill when both fire on
        the same site (loss subsumes the task's death).
        """
        site = (stage_id, partition, attempt)
        if self._decide("lose", attempt, site):
            self.note("lose")
            return "lose"
        if self._decide("kill", attempt, site):
            self.note("kill")
            return "kill"
        return None

    def straggler_delay(self, stage_id: int, partition: int, attempt: int) -> float:
        """Seconds this attempt should stall (0.0 = not a straggler)."""
        if self._decide("slow", attempt, (stage_id, partition, attempt)):
            self.note("slow")
            return self.specs["slow"].delay
        return 0.0

    def io_fault(self, kind: str, *key) -> bool:
        """Transient I/O fault (``storage``/``bcast``/``overflow``).

        Keyed by the current task attempt plus the resource key, so a
        retry of the same task reads clean — transient by construction.
        Driver-side reads (no current task) are never faulted.
        """
        task = CURRENT_TASK.get()
        if task is None:
            return False
        site = (task.stage_id, task.partition, task.attempt) + tuple(key)
        if self._decide(kind, task.attempt, site):
            self.note(kind)
            return True
        return False

    def worker_fault(
        self, case: str, gi0: int, gj0: int, gk0: int
    ) -> str | None:
        """Real process fault for one offloaded kernel call, or ``None``.

        Decided on the *driver* side, before submit, so the ledger stays
        driver-owned; the verdict ships to the worker as an argument and
        the worker executes it on itself (SIGKILL / SIGSTOP) before
        touching the kernel.  Keyed by the current task attempt plus the
        kernel-call coordinate, so a scheduler retry of the same tile
        runs clean under the default ``max_attempt=1`` contract.
        Driver-side calls (no current task) are never faulted.
        """
        task = CURRENT_TASK.get()
        if task is None:
            return None
        site = (task.stage_id, task.partition, task.attempt, case, gi0, gj0, gk0)
        for kind in ("worker_kill", "worker_oom", "worker_hang"):
            if self._decide(kind, task.attempt, site):
                self.note(kind)
                return kind
        return None

    def mem_squeeze(self, iteration: int) -> float:
        """Budget shrink factor at an outer-iteration boundary.

        Returns 1.0 (no squeeze) or a deterministic factor in
        ``[0.4, 0.75)`` — the governor multiplies its budget by it.
        Driver-side and keyed only by the iteration, so the squeeze
        schedule (and everything downstream: spills, pressure
        transitions, degradations) is a pure function of the seed.
        """
        if self._decide("mem_squeeze", 1, ("iter", iteration)):
            self.note("mem_squeeze")
            frac = deterministic_fraction(
                self.seed, "mem_squeeze", ("factor", iteration)
            )
            return 0.4 + 0.35 * frac
        return 1.0

    def request_fault(self, client: int, seq: int) -> str | None:
        """Service-plane twist for request ``seq`` of ``client``.

        Returns ``"tight_deadline"`` (the request arrives with a
        deadline it cannot possibly meet — exercising mid-flight
        cancellation and cleanup), ``"duplicate"`` (the request repeats
        the client's previous workload — exercising single-flight dedup
        and the result cache), or ``None``.  Driver-side and keyed only
        by ``(client, seq)``, so a seeded request storm replays the same
        twist schedule regardless of thread interleaving.
        """
        site = ("request", client, seq)
        if self._decide("request_storm", 1, site):
            self.note("request_storm")
            frac = deterministic_fraction(
                self.seed, "request_storm", ("twist", client, seq)
            )
            return "tight_deadline" if frac < 0.5 else "duplicate"
        return None

    def driver_kill(self, client: int, seq: int) -> bool:
        """Should the driver die before request ``seq`` of ``client``?

        The harshest service-plane fault: the storm harness SIGKILLs the
        serving process (or flips it into drain, for in-process storms)
        at this point, then the soak restarts it with ``--resume`` and
        asserts exactly-once-visible settlement.  Keyed by
        ``(client, seq)`` so the kill lands at the same logical point in
        every replay of the storm, regardless of thread interleaving.
        """
        site = ("driver", client, seq)
        if self._decide("driver_kill", 1, site):
            self.note("driver_kill")
            return True
        return False

    def noisy_neighbor(self, client: int, seq: int) -> int:
        """Extra hog-burst solves to inject before request ``seq``.

        Returns 0 (no burst) or 1–4: the storm harness has its *hog*
        tenant submit that many additional distinct requests before its
        scheduled one, pressuring the dispatcher queue, the governor,
        and the result cache all at once.  Victim tenants never burst —
        the harness only consults this for the hog — and the decision is
        keyed by ``(client, seq)`` so the burst schedule (and therefore
        the fairness outcome being asserted) replays bit-identically
        per seed.
        """
        site = ("hog", client, seq)
        if self._decide("noisy_neighbor", 1, site):
            self.note("noisy_neighbor")
            frac = deterministic_fraction(
                self.seed, "noisy_neighbor", ("burst", client, seq)
            )
            return 1 + int(frac * 4)
        return 0

    def durable_fault(self, kind: str, key, attempt: int) -> bool:
        """Durable-store fault (``torn_write``/``corrupt_block``).

        Unlike :meth:`io_fault` this fires for *driver-side* writes too —
        the journal and snapshot blocks are written by the driver, and a
        crash-consistency layer that only failed inside tasks would miss
        its main customer.  Keyed by the block key plus the store's
        per-key write attempt, so a detected torn write retries clean
        under the default ``max_attempt=1`` contract.
        """
        site = (repr(key), attempt)
        if self._decide(kind, attempt, site):
            self.note(kind)
            return True
        return False

    # ------------------------------------------------------------------
    # ledger & display
    # ------------------------------------------------------------------
    def note(self, kind: str) -> None:
        with self._ledger_lock:
            self._ledger[kind] += 1

    def fired(self) -> dict[str, int]:
        """Injection counts by kind (deterministic under the contract)."""
        with self._ledger_lock:
            return dict(self._ledger)

    def total_fired(self) -> int:
        with self._ledger_lock:
            return sum(self._ledger.values())

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for kind in FAULT_KINDS:
            spec = self.specs.get(kind)
            if spec is None or spec.rate <= 0:
                continue
            text = f"{kind}={spec.rate:g}"
            if kind == "slow":
                text += f":{spec.delay:g}s"
            if spec.max_attempt != 1:
                text += f"@<={spec.max_attempt}"
            parts.append(text)
        if not self.serialize_tasks:
            parts.append("parallel")
        return f"FaultPlan({', '.join(parts)})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
