"""Resilient distributed datasets: lazy, lineage-tracked collections.

This is the paper's §II in executable form:

* an :class:`RDD` is an immutable, partitioned collection defined by its
  *lineage* — a compute function plus dependencies on parent RDDs;
* transformations are lazy and classified by dependency kind: *narrow*
  (``map``, ``filter``, ``union`` — pipelined within one stage) vs *wide*
  (``combineByKey``, ``partitionBy``, ``join`` — requiring a shuffle and
  starting a new stage);
* actions (``collect``, ``count``, ``reduce``) hand the final RDD to the
  DAG scheduler.

Fault tolerance comes from recomputation: ``compute`` is pure given the
lineage, so a failed task is simply re-run (see the scheduler's retry
loop and the failure-injection tests).

Mutation warning: values are shared by reference within the process, so
user functions must treat inputs as immutable (copy before update) —
exactly the discipline PySpark imposes.
"""

from __future__ import annotations

import functools
import itertools
from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence, TypeVar

from .partitioner import HashPartitioner, Partitioner

T = TypeVar("T")

__all__ = [
    "RDD",
    "Aggregator",
    "Dependency",
    "NarrowDependency",
    "OneToOneDependency",
    "RangeDependency",
    "ShuffleDependency",
    "ParallelCollectionRDD",
    "MapPartitionsRDD",
    "UnionRDD",
    "ShuffledRDD",
    "CheckpointedRDD",
    "DurableCheckpointRDD",
]


# ----------------------------------------------------------------------
# Dependencies
# ----------------------------------------------------------------------
class Dependency:
    """Edge in the lineage graph."""

    def __init__(self, rdd: "RDD") -> None:
        self.rdd = rdd


class NarrowDependency(Dependency):
    """Each output partition depends on a bounded set of parent partitions."""

    def parents(self, split: int) -> Sequence[int]:
        raise NotImplementedError


class OneToOneDependency(NarrowDependency):
    def parents(self, split: int) -> Sequence[int]:
        return (split,)


class RangeDependency(NarrowDependency):
    """Union-style: parent partition range mapped into the child's space."""

    def __init__(self, rdd: "RDD", in_start: int, out_start: int, length: int) -> None:
        super().__init__(rdd)
        self.in_start = in_start
        self.out_start = out_start
        self.length = length

    def parents(self, split: int) -> Sequence[int]:
        if self.out_start <= split < self.out_start + self.length:
            return (split - self.out_start + self.in_start,)
        return ()


@dataclass
class Aggregator:
    """combineByKey's three functions (optionally applied map-side)."""

    create_combiner: Callable[[Any], Any]
    merge_value: Callable[[Any, Any], Any]
    merge_combiners: Callable[[Any, Any], Any]
    map_side_combine: bool = True


class ShuffleDependency(Dependency):
    """Wide dependency: repartitions the parent by key.

    The shuffle id is assigned eagerly so materialized map outputs can be
    reused across jobs (Spark's stage-skipping, which the iterative GEP
    drivers rely on to avoid re-running earlier iterations).
    """

    def __init__(
        self,
        rdd: "RDD",
        partitioner: Partitioner,
        aggregator: Aggregator | None = None,
    ) -> None:
        super().__init__(rdd)
        self.partitioner = partitioner
        self.aggregator = aggregator
        self.shuffle_id = rdd.ctx._shuffle_manager.new_shuffle_id()


# ----------------------------------------------------------------------
# RDD base
# ----------------------------------------------------------------------
class RDD:
    """Base class; see module docstring.  Construct via SparkleContext."""

    def __init__(self, ctx, deps: list[Dependency]) -> None:
        self.ctx = ctx
        self.deps = deps
        self.id = ctx._new_rdd_id()
        self.partitioner: Partitioner | None = None
        self._cached = False
        self._storage_level = "MEMORY_AND_DISK"

    # -- subclass surface ------------------------------------------------
    def num_partitions(self) -> int:
        raise NotImplementedError

    def compute(self, split: int, task) -> Iterator:
        raise NotImplementedError

    # -- iteration with cache --------------------------------------------
    def iterator(self, split: int, task) -> Iterator:
        if self._cached:
            blocks = self.ctx._block_manager
            cached = blocks.get(self.id, split)
            if cached is not None:
                return iter(cached)
            data = list(self.compute(split, task))
            blocks.put(self.id, split, data, level=self._storage_level)
            return iter(data)
        return self.compute(split, task)

    # -- caching ----------------------------------------------------------
    def persist(self, storage_level: str = "MEMORY_AND_DISK") -> "RDD":
        """Keep computed partitions across jobs at ``storage_level``.

        ``MEMORY_AND_DISK`` (the default, and Spark's recommended level
        for iterative workloads) lets a governed
        :class:`~repro.sparkle.storage.BlockManager` spill evicted
        partitions to disk instead of discarding them;
        ``MEMORY_ONLY`` opts out of the disk hop — eviction drops the
        block and it is recomputed from lineage.  Without a memory
        governor the level is recorded but both behave like the
        historical in-memory cache.
        """
        if storage_level not in ("MEMORY_ONLY", "MEMORY_AND_DISK"):
            raise ValueError(
                f"unsupported storage level {storage_level!r}; "
                "use MEMORY_ONLY or MEMORY_AND_DISK"
            )
        self._cached = True
        self._storage_level = storage_level
        return self

    def cache(self) -> "RDD":
        """Keep computed partitions across jobs (``persist()`` default)."""
        return self.persist()

    def unpersist(self) -> "RDD":
        self._cached = False
        self.ctx._block_manager.evict_rdd(self.id)
        return self

    def checkpoint(self) -> "RDD":
        """Materialize now and truncate the lineage.

        Returns a :class:`CheckpointedRDD` holding this RDD's computed
        partitions with no dependencies — jobs on it (or its
        descendants) no longer walk the history.  Long iterative
        programs (the GEP drivers at large ``r``) use this to bound
        driver DAG-walk costs, at the price of losing recompute-from-
        lineage for the truncated prefix (the checkpointed data itself
        is the recovery point, exactly as in Spark).

        On a context constructed with ``checkpoint_dir`` this is a
        *reliable* checkpoint (Spark's ``setCheckpointDir`` semantics):
        partitions are additionally written to the durable store with
        checksums, and the returned :class:`DurableCheckpointRDD` falls
        back to recomputing this RDD's lineage if a stored block is
        later found corrupt.
        """
        parts = self.ctx.run_job(self, list, action="checkpoint")
        store = getattr(self.ctx, "durable_store", None)
        if store is None:
            return CheckpointedRDD(self.ctx, parts, self.partitioner)
        for split, items in enumerate(parts):
            store.put(("rdd", self.id, split), items)
        return DurableCheckpointRDD(
            self.ctx, store, self.id, len(parts), self.partitioner, fallback=self
        )

    # -- narrow transformations -------------------------------------------
    def map_partitions(
        self,
        f: Callable[[Iterator, int], Iterable],
        preserves_partitioning: bool = False,
    ) -> "RDD":
        """Lowest-level narrow transformation: ``f(iterator, split)``."""
        return MapPartitionsRDD(self, f, preserves_partitioning)

    # camelCase alias mirroring the PySpark API used in the listings
    def mapPartitions(self, f: Callable[[Iterator], Iterable]) -> "RDD":
        return self.map_partitions(lambda it, _pid: f(it))

    def map(self, f: Callable[[T], Any]) -> "RDD":
        return self.map_partitions(lambda it, _pid: (f(x) for x in it))

    def flatMap(self, f: Callable[[T], Iterable]) -> "RDD":
        return self.map_partitions(
            lambda it, _pid: itertools.chain.from_iterable(f(x) for x in it)
        )

    def filter(self, pred: Callable[[T], bool]) -> "RDD":
        return self.map_partitions(
            lambda it, _pid: (x for x in it if pred(x)), preserves_partitioning=True
        )

    def mapValues(self, f: Callable[[Any], Any]) -> "RDD":
        return self.map_partitions(
            lambda it, _pid: ((k, f(v)) for k, v in it), preserves_partitioning=True
        )

    def flatMapValues(self, f: Callable[[Any], Iterable]) -> "RDD":
        return self.map_partitions(
            lambda it, _pid: ((k, out) for k, v in it for out in f(v)),
            preserves_partitioning=True,
        )

    def keys(self) -> "RDD":
        return self.map(lambda kv: kv[0])

    def values(self) -> "RDD":
        return self.map(lambda kv: kv[1])

    def keyBy(self, f: Callable[[T], Any]) -> "RDD":
        return self.map(lambda x: (f(x), x))

    def glom(self) -> "RDD":
        return self.map_partitions(lambda it, _pid: [list(it)])

    def union(self, other: "RDD") -> "RDD":
        return UnionRDD(self.ctx, [self, other])

    def distinct(self, num_partitions: int | None = None) -> "RDD":
        return (
            self.map(lambda x: (x, None))
            .reduceByKey(lambda a, _b: a, num_partitions)
            .keys()
        )

    # -- wide transformations ----------------------------------------------
    def _resolve_partitioner(
        self, partitioner: Partitioner | int | None
    ) -> Partitioner:
        if isinstance(partitioner, Partitioner):
            return partitioner
        if isinstance(partitioner, int):
            return HashPartitioner(partitioner)
        return HashPartitioner(self.ctx.default_parallelism)

    def partitionBy(
        self, num_partitions: int | None = None, partitioner: Partitioner | None = None
    ) -> "RDD":
        """Repartition by key.  A no-op if already partitioned the same way
        (the paper's footnote: Spark skips the shuffle when it knows the
        input partitioning)."""
        p = partitioner or self._resolve_partitioner(num_partitions)
        if self.partitioner is not None and self.partitioner == p:
            return self
        return ShuffledRDD(self, p, aggregator=None)

    def combineByKey(
        self,
        create_combiner: Callable[[Any], Any],
        merge_value: Callable[[Any, Any], Any],
        merge_combiners: Callable[[Any, Any], Any],
        num_partitions: int | Partitioner | None = None,
        map_side_combine: bool = True,
    ) -> "RDD":
        p = self._resolve_partitioner(num_partitions)
        agg = Aggregator(create_combiner, merge_value, merge_combiners, map_side_combine)
        return ShuffledRDD(self, p, agg)

    def reduceByKey(
        self, f: Callable[[Any, Any], Any], num_partitions: int | Partitioner | None = None
    ) -> "RDD":
        return self.combineByKey(lambda v: v, f, f, num_partitions)

    def groupByKey(self, num_partitions: int | Partitioner | None = None) -> "RDD":
        return self.combineByKey(
            lambda v: [v],
            lambda acc, v: (acc.append(v), acc)[1],
            lambda a, b: a + b,
            num_partitions,
            map_side_combine=False,
        )

    def foldByKey(
        self,
        zero: Any,
        f: Callable[[Any, Any], Any],
        num_partitions: int | Partitioner | None = None,
    ) -> "RDD":
        return self.combineByKey(lambda v: f(zero, v), f, f, num_partitions)

    def aggregateByKey(
        self,
        zero: Any,
        seq_func: Callable[[Any, Any], Any],
        comb_func: Callable[[Any, Any], Any],
        num_partitions: int | Partitioner | None = None,
    ) -> "RDD":
        """Per-key aggregation with a zero value (PySpark semantics)."""
        import copy

        return self.combineByKey(
            lambda v: seq_func(copy.deepcopy(zero), v),
            seq_func,
            comb_func,
            num_partitions,
        )

    def zipWithIndex(self) -> "RDD":
        """Pair each element with its global index (two-pass, like Spark)."""
        sizes = self.ctx.run_job(
            self, lambda it: sum(1 for _ in it), action="zipWithIndex-count"
        )
        offsets = [0]
        for size in sizes[:-1]:
            offsets.append(offsets[-1] + size)

        def with_index(it: Iterator, pid: int) -> Iterable:
            base = offsets[pid]
            return ((x, base + i) for i, x in enumerate(it))

        return self.map_partitions(with_index, preserves_partitioning=True)

    def sortByKey(
        self, ascending: bool = True, num_partitions: int | None = None
    ) -> "RDD":
        """Globally sorted key/value pairs.

        Range-partitions by a driver-side sample of the keys (Spark's
        approach), then sorts each partition locally; partition order
        concatenates to the global order.
        """
        p = (
            num_partitions
            if num_partitions is not None
            else self.ctx.default_parallelism
        )
        keys = sorted(self.keys().collect())
        if not keys:
            return self.ctx.empty_rdd()
        if not ascending:
            keys = keys[::-1]
        # Partition boundaries from evenly spaced sample quantiles.
        cut_points = [keys[(len(keys) * (t + 1)) // p] for t in range(p - 1)]

        class _RangeByBounds(Partitioner):
            def __init__(self, bounds, ascending):
                super().__init__(len(bounds) + 1)
                self.bounds = tuple(bounds)
                self.ascending = ascending

            def partition(self, key):
                import bisect

                if self.ascending:
                    return bisect.bisect_left(self.bounds, key)
                lo = 0
                for idx, b in enumerate(self.bounds):
                    if key > b:
                        return idx
                return len(self.bounds)

        shuffled = ShuffledRDD(self, _RangeByBounds(cut_points, ascending), None)
        return shuffled.map_partitions(
            lambda it, _pid: iter(
                sorted(it, key=lambda kv: kv[0], reverse=not ascending)
            ),
            preserves_partitioning=True,
        )

    def sample(self, fraction: float, seed: int = 0) -> "RDD":
        """Bernoulli sample (deterministic per partition and seed)."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")

        def sampler(it: Iterator, pid: int) -> Iterable:
            import random

            rng = random.Random(seed * 1_000_003 + pid)
            return (x for x in it if rng.random() < fraction)

        return self.map_partitions(sampler, preserves_partitioning=True)

    def coalesce(self, num_partitions: int) -> "RDD":
        """Reduce the partition count without a shuffle (narrow)."""
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        return CoalescedRDD(self, num_partitions)

    def cogroup(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        """Group both RDDs by key into ``(key, (list_left, list_right))``."""
        tagged = self.mapValues(lambda v: (0, v)).union(
            other.mapValues(lambda v: (1, v))
        )

        def create(tv):
            out: tuple[list, list] = ([], [])
            out[tv[0]].append(tv[1])
            return out

        def merge_value(acc, tv):
            acc[tv[0]].append(tv[1])
            return acc

        def merge_combiners(a, b):
            a[0].extend(b[0])
            a[1].extend(b[1])
            return a

        return tagged.combineByKey(create, merge_value, merge_combiners, num_partitions)

    def join(self, other: "RDD", num_partitions: int | None = None) -> "RDD":
        return self.cogroup(other, num_partitions).flatMapValues(
            lambda pair: [(l, r) for l in pair[0] for r in pair[1]]
        )

    # -- actions -------------------------------------------------------------
    def collect(self) -> list:
        parts = self.ctx.run_job(self, lambda it: list(it), action="collect")
        out: list = []
        for p in parts:
            out.extend(p)
        self.ctx._record_collect(out)
        return out

    def collectAsMap(self) -> dict:
        return dict(self.collect())

    def count(self) -> int:
        return sum(self.ctx.run_job(self, lambda it: sum(1 for _ in it), action="count"))

    def first(self) -> Any:
        got = self.take(1)
        if not got:
            raise ValueError("RDD is empty")
        return got[0]

    def take(self, n: int) -> list:
        """First ``n`` elements in partition order (computes all partitions —
        adequate for an in-process engine)."""
        out: list = []
        for part in self.ctx.run_job(self, lambda it: list(it), action="take"):
            for item in part:
                out.append(item)
                if len(out) == n:
                    return out
        return out

    def reduce(self, f: Callable[[Any, Any], Any]) -> Any:
        def part_reduce(it: Iterator) -> list:
            acc = None
            present = False
            for x in it:
                acc = x if not present else f(acc, x)
                present = True
            return [acc] if present else []

        pieces = [
            x for part in self.ctx.run_job(self, part_reduce, action="reduce") for x in part
        ]
        if not pieces:
            raise ValueError("reduce of empty RDD")
        acc = pieces[0]
        for x in pieces[1:]:
            acc = f(acc, x)
        return acc

    def fold(self, zero: Any, f: Callable[[Any, Any], Any]) -> Any:
        parts = self.ctx.run_job(
            self, lambda it: functools.reduce(f, it, zero), action="fold"
        )
        acc = zero
        for p in parts:
            acc = f(acc, p)
        return acc

    def countByKey(self) -> dict:
        out: defaultdict = defaultdict(int)
        for k, _v in self.collect():
            out[k] += 1
        return dict(out)

    def sum(self) -> Any:
        return self.fold(0, lambda a, b: a + b)

    def max(self) -> Any:
        return self.reduce(lambda a, b: a if a >= b else b)

    def min(self) -> Any:
        return self.reduce(lambda a, b: a if a <= b else b)

    def mean(self) -> float:
        total, count = self.map(lambda x: (x, 1)).reduce(
            lambda a, b: (a[0] + b[0], a[1] + b[1])
        )
        return total / count

    def isEmpty(self) -> bool:
        return not self.take(1)

    def takeOrdered(self, n: int, key: Callable[[Any], Any] | None = None) -> list:
        """Smallest ``n`` elements (per-partition heaps, then merge)."""
        import heapq

        parts = self.ctx.run_job(
            self, lambda it: heapq.nsmallest(n, it, key=key), action="takeOrdered"
        )
        return heapq.nsmallest(n, (x for p in parts for x in p), key=key)

    def foreach(self, f: Callable[[Any], None]) -> None:
        self.ctx.run_job(
            self, lambda it: [f(x) for x in it] and None, action="foreach"
        )

    def lookup(self, key: Any) -> list:
        return [v for k, v in self.collect() if k == key]

    def getNumPartitions(self) -> int:
        return self.num_partitions()

    # -- introspection ---------------------------------------------------------
    def to_debug_string(self, indent: str = "") -> str:
        """Lineage dump, Spark's ``toDebugString`` flavour."""
        kind = type(self).__name__
        line = f"{indent}({self.num_partitions()}) {kind}[{self.id}]"
        if self._cached:
            line += " [cached]"
        lines = [line]
        for dep in self.deps:
            marker = "+-" if isinstance(dep, NarrowDependency) else "*-"
            lines.append(dep.rdd.to_debug_string(indent + f" {marker} "))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(id={self.id}, partitions={self.num_partitions()})"


# ----------------------------------------------------------------------
# Concrete RDDs
# ----------------------------------------------------------------------
class ParallelCollectionRDD(RDD):
    """Driver-side collection sliced into partitions."""

    def __init__(self, ctx, data: Sequence, num_partitions: int) -> None:
        super().__init__(ctx, [])
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        items = list(data)
        n = num_partitions
        self._slices = [
            items[(len(items) * p) // n : (len(items) * (p + 1)) // n]
            for p in range(n)
        ]

    def num_partitions(self) -> int:
        return len(self._slices)

    def compute(self, split: int, task) -> Iterator:
        return iter(self._slices[split])


class MapPartitionsRDD(RDD):
    """Narrow, pipelined transformation."""

    def __init__(
        self, prev: RDD, f: Callable[[Iterator, int], Iterable], preserves: bool
    ) -> None:
        super().__init__(prev.ctx, [OneToOneDependency(prev)])
        self._prev = prev
        self._f = f
        if preserves:
            self.partitioner = prev.partitioner

    def num_partitions(self) -> int:
        return self._prev.num_partitions()

    def compute(self, split: int, task) -> Iterator:
        return iter(self._f(self._prev.iterator(split, task), split))


class UnionRDD(RDD):
    """Concatenation of parents' partitions (narrow, no data movement)."""

    def __init__(self, ctx, rdds: Sequence[RDD]) -> None:
        if not rdds:
            raise ValueError("union of no RDDs")
        deps: list[Dependency] = []
        out_start = 0
        self._offsets: list[tuple[RDD, int, int]] = []
        for rdd in rdds:
            length = rdd.num_partitions()
            deps.append(RangeDependency(rdd, 0, out_start, length))
            self._offsets.append((rdd, out_start, length))
            out_start += length
        self._total = out_start
        super().__init__(ctx, deps)

    def num_partitions(self) -> int:
        return self._total

    def compute(self, split: int, task) -> Iterator:
        for rdd, start, length in self._offsets:
            if start <= split < start + length:
                return rdd.iterator(split - start, task)
        raise IndexError(split)


class ShuffledRDD(RDD):
    """Reduce side of a shuffle; optionally aggregates by key.

    Without an aggregator it passes key/value pairs through repartitioned
    (``partitionBy``); with one it implements combineByKey semantics.
    """

    def __init__(
        self, prev: RDD, partitioner: Partitioner, aggregator: Aggregator | None
    ) -> None:
        self._shuffle_dep = ShuffleDependency(prev, partitioner, aggregator)
        super().__init__(prev.ctx, [self._shuffle_dep])
        self.partitioner = partitioner

    def num_partitions(self) -> int:
        return self.partitioner.num_partitions

    def compute(self, split: int, task) -> Iterator:
        dep = self._shuffle_dep
        pool = self.ctx._executors
        my_executor = pool.executor_for(split)
        items, nbytes, remote = self.ctx._shuffle_manager.fetch(
            dep.shuffle_id,
            split,
            dep.rdd.num_partitions(),
            remote_map_partition=lambda mp: pool.executor_for(mp) != my_executor,
        )
        if task is not None:
            task.shuffle_bytes_read += nbytes
            task.shuffle_bytes_remote += remote
        agg = dep.aggregator
        if agg is None:
            return iter(items)
        combined: dict[Any, Any] = {}
        if agg.map_side_combine:
            # Items are already combiners.
            for k, c in items:
                combined[k] = (
                    c if k not in combined else agg.merge_combiners(combined[k], c)
                )
        else:
            for k, v in items:
                combined[k] = (
                    agg.create_combiner(v)
                    if k not in combined
                    else agg.merge_value(combined[k], v)
                )
        return iter(combined.items())


class CoalescedRDD(RDD):
    """Merges parent partitions into fewer output partitions (narrow)."""

    def __init__(self, prev: RDD, num_partitions: int) -> None:
        parent_n = prev.num_partitions()
        out_n = max(1, min(num_partitions, parent_n))
        self._groups = [
            list(range((parent_n * p) // out_n,
                       (parent_n * (p + 1)) // out_n))
            for p in range(out_n)
        ]

        class _GroupDependency(NarrowDependency):
            def __init__(self, rdd, groups):
                super().__init__(rdd)
                self.groups = groups

            def parents(self, split):
                return self.groups[split]

        super().__init__(prev.ctx, [_GroupDependency(prev, self._groups)])
        self._prev = prev

    def num_partitions(self) -> int:
        return len(self._groups)

    def compute(self, split: int, task) -> Iterator:
        return itertools.chain.from_iterable(
            self._prev.iterator(p, task) for p in self._groups[split]
        )


class CheckpointedRDD(RDD):
    """Materialized partitions with an empty lineage (see ``checkpoint``)."""

    def __init__(self, ctx, partitions: list[list], partitioner) -> None:
        super().__init__(ctx, [])
        self._parts = partitions
        self.partitioner = partitioner

    def num_partitions(self) -> int:
        return len(self._parts)

    def compute(self, split: int, task) -> Iterator:
        return iter(self._parts[split])


class DurableCheckpointRDD(RDD):
    """Reliable checkpoint: partitions read from the durable store.

    Lineage is truncated for scheduling (no deps), but the checkpointed
    parent is retained as a recovery fallback: if a stored block fails
    its checksum (:class:`~repro.sparkle.errors.CorruptBlockError`) the
    partition is recomputed from the parent's lineage inline — corruption
    degrades to recomputation, never to wrong data.
    """

    def __init__(
        self, ctx, store, source_rdd_id: int, num_parts: int, partitioner, fallback=None
    ) -> None:
        super().__init__(ctx, [])
        self._store = store
        self._source_rdd_id = source_rdd_id
        self._num_parts = num_parts
        self._fallback = fallback
        self.partitioner = partitioner

    def num_partitions(self) -> int:
        return self._num_parts

    def block_key(self, split: int) -> tuple:
        return ("rdd", self._source_rdd_id, split)

    def compute(self, split: int, task) -> Iterator:
        from .errors import BlockNotFoundError, CorruptBlockError

        try:
            return iter(self._store.get(self.block_key(split)))
        except (CorruptBlockError, BlockNotFoundError):
            if self._fallback is None:
                raise
            self.ctx.metrics.checkpoint_recomputes += 1
            return self._fallback.iterator(split, task)
