"""Unified memory governor: byte-accounted execution/storage budgeting.

The paper's headline failure mode (§IV-C, §V) is memory exhaustion: the
In-Memory strategy materializes up to three copies of every tile through
its wide transformations and stops scaling once that working set
outgrows executor memory, while Collect-Broadcast survives by staging
pivot tiles in shared storage.  Before this module the engine reproduced
the *failure* faithfully — the block cache silently dropped blocks and
shuffle staging raised :class:`~repro.sparkle.errors.
StorageCapacityError`.  :class:`MemoryManager` is the third leg of the
robustness story: a Spark-style unified memory manager that lets a
budgeted run *complete*, via spill-to-disk and scheduler backpressure,
bit-identical to an unbudgeted one.

Design (mirroring Spark's ``UnifiedMemoryManager``):

* one byte budget is shared by two pools — **execution** (shuffle
  staging buffers) and **storage** (cached RDD partitions) — with
  per-owner ledgers (simulated executor id, or ``"driver"``) so reports
  can attribute pressure;
* :meth:`reserve` / :meth:`release` are the only accounting mutations;
  a failed reserve never blocks — the caller reacts by spilling
  (:class:`~.storage.BlockManager`, :class:`~.shuffle.ShuffleManager`)
  or queueing (the scheduler's admission control);
* **deadlock-free grants**: :meth:`admit_task` always grants a task's
  first reservation — when no other task holds admission memory the
  grant succeeds regardless of the budget, so at least one task is
  always runnable and every queued task eventually wakes;
* three **pressure levels** — ``ok`` / ``pressured`` / ``critical`` —
  derived from live/budget occupancy; every level change is appended to
  ``EngineMetrics.pressure_transitions`` (a deterministic trace under
  the chaos plane's serialized-task contract);
* the budget can shrink mid-run (:meth:`squeeze`) — the ``mem_squeeze``
  chaos kind uses this to model a cluster losing memory headroom under
  the seeded-determinism contract.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from .chaos import CURRENT_TASK

__all__ = [
    "MemoryManager",
    "PRESSURE_OK",
    "PRESSURE_PRESSURED",
    "PRESSURE_CRITICAL",
]

PRESSURE_OK = "ok"
PRESSURE_PRESSURED = "pressured"
PRESSURE_CRITICAL = "critical"

#: Pool names accepted by :meth:`MemoryManager.reserve` / ``release``.
POOLS = ("execution", "storage")

DRIVER_OWNER = "driver"


class MemoryManager:
    """Byte-accounted execution/storage budget for one simulated cluster.

    Parameters
    ----------
    budget_bytes:
        Total bytes shared by the execution and storage pools (the
        simulated cluster's aggregate usable memory).
    metrics:
        Optional :class:`~.metrics.EngineMetrics`; pressure transitions,
        admission waits, squeezes and forced grants are recorded there.
    task_quantum_bytes:
        Nominal execution reservation charged per admitted task (the
        scheduler's backpressure unit).  Defaults to ``budget // 8``.
    pressured_at / critical_at:
        Occupancy fractions at which pressure escalates.
    executor_resolver:
        ``f(partition) -> executor`` used to attribute task-side
        reservations to a simulated executor (the pool's
        ``executor_for``); without it task-side owners fall back to the
        partition id.
    """

    def __init__(
        self,
        budget_bytes: int,
        *,
        metrics=None,
        task_quantum_bytes: int | None = None,
        pressured_at: float = 0.70,
        critical_at: float = 0.90,
        executor_resolver: Callable[[int], int] | None = None,
    ) -> None:
        if budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1")
        if not 0.0 < pressured_at <= critical_at <= 1.0:
            raise ValueError("require 0 < pressured_at <= critical_at <= 1")
        self.initial_budget_bytes = int(budget_bytes)
        self.budget_bytes = int(budget_bytes)
        self.pressured_at = pressured_at
        self.critical_at = critical_at
        self.task_quantum_bytes = (
            int(task_quantum_bytes)
            if task_quantum_bytes is not None
            else max(1, budget_bytes // 8)
        )
        if self.task_quantum_bytes < 1:
            raise ValueError("task_quantum_bytes must be >= 1")
        self.executor_resolver = executor_resolver
        self._metrics = metrics
        self._cond = threading.Condition()
        # pool -> owner -> bytes
        self._ledger: dict[str, dict[Any, int]] = {p: {} for p in POOLS}
        self._pool_live: dict[str, int] = {p: 0 for p in POOLS}
        self._live = 0
        self._admitted_tasks = 0
        self._level = PRESSURE_OK
        self._critical_seen = False
        self._squeeze_listeners: list[Callable[[int], None]] = []
        # tenant quota overlay: attribution on top of the pool ledgers,
        # not a third pool — tenant bytes are already accounted in
        # execution/storage by their real owners
        self._tenant_quota: dict[str, int] = {}
        self._tenant_held: dict[str, int] = {}

    # ------------------------------------------------------------------
    # owner attribution
    # ------------------------------------------------------------------
    def current_owner(self) -> Any:
        """Executor owning the calling thread's task (driver otherwise)."""
        task = CURRENT_TASK.get()
        if task is None:
            return DRIVER_OWNER
        if self.executor_resolver is not None:
            return self.executor_resolver(task.partition)
        return task.partition

    # ------------------------------------------------------------------
    # reserve / release
    # ------------------------------------------------------------------
    def reserve(
        self, pool: str, owner: Any, nbytes: int, *, force: bool = False
    ) -> bool:
        """Try to account ``nbytes`` against the budget; never blocks.

        Returns False when the bytes do not fit (the caller's cue to
        spill or queue).  ``force=True`` grants unconditionally — the
        deadlock-freedom escape hatch for first reservations, metered as
        ``forced_grants`` when it actually oversubscribes.

        Byte exactness holds across execution backends: a tile re-homed
        into a shared-memory segment (process backend) reports the same
        ``ndarray.nbytes`` as its in-process original, and serialized
        shuffle staging reserves the *physical* (deduplicated) payload
        size — so the ledger always matches resident bytes, never a
        logical overcount.
        """
        if pool not in POOLS:
            raise ValueError(f"unknown memory pool {pool!r}")
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._cond:
            fits = self._live + nbytes <= self.budget_bytes
            if not fits and not force:
                return False
            if not fits and self._metrics is not None:
                self._metrics.forced_grants += 1
            self._account_locked(pool, owner, nbytes)
            return True

    def release(self, pool: str, owner: Any, nbytes: int) -> None:
        """Return ``nbytes`` to the budget; wakes queued admissions."""
        if pool not in POOLS:
            raise ValueError(f"unknown memory pool {pool!r}")
        with self._cond:
            self._account_locked(pool, owner, -nbytes)
            self._cond.notify_all()

    def _account_locked(self, pool: str, owner: Any, delta: int) -> None:
        ledger = self._ledger[pool]
        held = ledger.get(owner, 0) + delta
        if held < 0:
            # Over-release is an accounting bug; clamp rather than let a
            # negative ledger mask real pressure.
            delta -= held
            held = 0
        if held == 0:
            ledger.pop(owner, None)
        else:
            ledger[owner] = held
        self._pool_live[pool] += delta
        self._live += delta
        self._update_level_locked()

    # ------------------------------------------------------------------
    # pressure
    # ------------------------------------------------------------------
    def _update_level_locked(self) -> None:
        ratio = self._live / self.budget_bytes
        if ratio >= self.critical_at:
            level = PRESSURE_CRITICAL
        elif ratio >= self.pressured_at:
            level = PRESSURE_PRESSURED
        else:
            level = PRESSURE_OK
        if level != self._level:
            if self._metrics is not None:
                self._metrics.pressure_transitions.append(
                    f"{self._level}->{level}"
                )
            self._level = level
        if level == PRESSURE_CRITICAL:
            self._critical_seen = True

    def pressure(self) -> str:
        """Current level: ``ok`` / ``pressured`` / ``critical``."""
        with self._cond:
            return self._level

    def critical_since_last_check(self) -> bool:
        """True if pressure touched ``critical`` since the last call.

        Pressure is spiky: under a tight budget every reservation that
        triggers spilling rides the occupancy up to critical and back
        down, so a point-in-time :meth:`pressure` probe at an iteration
        boundary can miss the episode entirely.  This latch is what the
        solver's degradation check polls — it clears on read.
        """
        with self._cond:
            seen = self._critical_seen or self._level == PRESSURE_CRITICAL
            self._critical_seen = False
            return seen

    # ------------------------------------------------------------------
    # scheduler admission control
    # ------------------------------------------------------------------
    def admit_task(self, owner: Any = "tasks") -> int:
        """Block until a task-admission quantum fits; returns the grant.

        Deadlock-free by construction: when no other task is admitted
        the grant is forced (a task's first reservation always
        succeeds), so at least one task always runs, finishes, and
        releases — every waiter eventually wakes.  Wait time and count
        are metered (``admission_waits`` / ``admission_wait_seconds``).
        """
        quantum = self.task_quantum_bytes
        waited = False
        start = 0.0
        with self._cond:
            while True:
                first = self._admitted_tasks == 0
                if first or self._live + quantum <= self.budget_bytes:
                    break
                if not waited:
                    waited = True
                    start = time.perf_counter()
                    if self._metrics is not None:
                        self._metrics.admission_waits += 1
                # Event-driven, not a poll: every release()/
                # finish_task()/squeeze() notifies this condition, so a
                # waiter wakes as soon as capacity can have changed.
                # The long timeout is purely a safety net against a
                # lost-wakeup bug, not a spin interval (asserted by the
                # no-spin regression test).
                self._cond.wait(timeout=5.0)
            if waited and self._metrics is not None:
                self._metrics.admission_wait_seconds += (
                    time.perf_counter() - start
                )
            self._admitted_tasks += 1
            self._account_locked("execution", owner, quantum)
            return quantum

    def finish_task(self, grant: int, owner: Any = "tasks") -> None:
        """Release an admission grant from :meth:`admit_task`."""
        with self._cond:
            self._admitted_tasks -= 1
            self._account_locked("execution", owner, -grant)
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # tenant quota overlay
    # ------------------------------------------------------------------
    def set_tenant_quota(self, tenant: str, quota_bytes: int | None) -> None:
        """Cap a tenant's attributed bytes; ``None`` removes the cap.

        The overlay is attribution, not a pool: tenant-charged bytes are
        already accounted against execution/storage by their real owners
        (in-flight solve estimates, cached result payloads).  The quota
        only bounds how much of that attributed total one tenant may
        hold, so a breach refuses *that tenant's* next charge without
        touching anyone else's reservations.
        """
        with self._cond:
            if quota_bytes is None:
                self._tenant_quota.pop(tenant, None)
            else:
                if quota_bytes < 0:
                    raise ValueError("quota_bytes must be >= 0")
                self._tenant_quota[tenant] = int(quota_bytes)

    def charge_tenant(self, tenant: str, nbytes: int, *, force: bool = False) -> bool:
        """Attribute ``nbytes`` to a tenant; False if its quota is hit.

        Never blocks and never evicts: on a refused charge the caller
        raises a typed retryable error at the tenant that breached,
        leaving every other tenant's state alone.  ``force=True``
        bypasses the quota check (used when refusing would wedge an
        already-admitted operation).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._cond:
            held = self._tenant_held.get(tenant, 0)
            quota = self._tenant_quota.get(tenant)
            if not force and quota is not None and held + nbytes > quota:
                return False
            if nbytes:
                self._tenant_held[tenant] = held + nbytes
            return True

    def release_tenant(self, tenant: str, nbytes: int) -> None:
        """Return attributed bytes; clamps over-release like the ledgers."""
        with self._cond:
            held = self._tenant_held.get(tenant, 0) - nbytes
            if held <= 0:
                self._tenant_held.pop(tenant, None)
            else:
                self._tenant_held[tenant] = held

    def tenant_usage(self) -> dict[str, dict[str, int | None]]:
        """Per-tenant held/quota snapshot (union of both maps)."""
        with self._cond:
            tenants = set(self._tenant_held) | set(self._tenant_quota)
            return {
                t: {
                    "held_bytes": self._tenant_held.get(t, 0),
                    "quota_bytes": self._tenant_quota.get(t),
                }
                for t in sorted(tenants)
            }

    # ------------------------------------------------------------------
    # chaos: budget squeeze
    # ------------------------------------------------------------------
    def squeeze(self, factor: float) -> int:
        """Shrink the budget to ``factor`` of its current value.

        Used by the ``mem_squeeze`` chaos kind; the budget never drops
        below one task quantum so admission stays live.  Returns the new
        budget and re-derives the pressure level (which may transition).
        """
        if not 0.0 < factor <= 1.0:
            raise ValueError("squeeze factor must be in (0, 1]")
        with self._cond:
            floor = self.task_quantum_bytes
            self.budget_bytes = max(floor, int(self.budget_bytes * factor))
            if self._metrics is not None:
                self._metrics.mem_squeezes += 1
            self._update_level_locked()
            self._cond.notify_all()
            new_budget = self.budget_bytes
        # Listeners run OUTSIDE the condition: an evicting listener (the
        # service result cache) calls back into release(), which takes
        # the same lock — calling it under the lock would deadlock.
        for listener in list(self._squeeze_listeners):
            listener(new_budget)
        return new_budget

    def add_squeeze_listener(self, fn: Callable[[int], None]) -> None:
        """Register ``fn(new_budget_bytes)`` to run after every squeeze.

        Used by caches holding budget-charged bytes (the solver
        service's result cache) to shed entries when the budget shrinks
        under them, instead of serving from an oversubscribed pool.
        """
        with self._cond:
            self._squeeze_listeners.append(fn)

    def remove_squeeze_listener(self, fn: Callable[[int], None]) -> None:
        with self._cond:
            try:
                self._squeeze_listeners.remove(fn)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def live_bytes(self) -> int:
        with self._cond:
            return self._live

    def usage(self) -> dict[str, Any]:
        """Snapshot for reports: budget, pools, per-owner ledgers."""
        with self._cond:
            return {
                "budget_bytes": self.budget_bytes,
                "initial_budget_bytes": self.initial_budget_bytes,
                "live_bytes": self._live,
                "level": self._level,
                "execution_bytes": self._pool_live["execution"],
                "storage_bytes": self._pool_live["storage"],
                "by_owner": {
                    pool: dict(ledger)
                    for pool, ledger in self._ledger.items()
                },
                "admitted_tasks": self._admitted_tasks,
                "tenants": {
                    t: {
                        "held_bytes": self._tenant_held.get(t, 0),
                        "quota_bytes": self._tenant_quota.get(t),
                    }
                    for t in sorted(
                        set(self._tenant_held) | set(self._tenant_quota)
                    )
                },
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        u = self.usage()
        return (
            f"MemoryManager({u['live_bytes']}/{u['budget_bytes']} B, "
            f"{u['level']})"
        )
