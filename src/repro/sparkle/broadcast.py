"""Broadcast variables: driver-to-all-executors distribution."""

from __future__ import annotations

from typing import Any, Generic, TypeVar

from ..util import sizeof_block
from .errors import TransientIOError
from .serialize import share_nested

T = TypeVar("T")

__all__ = ["Broadcast"]


class Broadcast(Generic[T]):
    """Read-only value shipped once to every executor.

    In-process the value is shared by reference; the metrics charge
    ``nbytes * num_executors`` of network traffic, which is what the cost
    model prices.  With a shared-memory arena attached (process
    backend), ndarray payloads — bare tiles or dicts/lists of tiles —
    are re-homed into shared segments so offloaded kernels read them
    zero-copy by segment name; the views are read-only, enforcing the
    broadcast immutability contract that was previously convention.  An
    attached :class:`~repro.sparkle.chaos.FaultPlan` can flake
    executor-side reads transiently (the scheduler retries the reading
    task).
    """

    def __init__(
        self,
        bc_id: int,
        value: T,
        num_executors: int,
        metrics,
        fault_plan=None,
        arena=None,
    ) -> None:
        self.id = bc_id
        if arena is not None:
            value = share_nested(arena, value)
        self._value = value
        self.nbytes = sizeof_block(value)
        self._destroyed = False
        self.fault_plan = fault_plan
        if metrics is not None:
            metrics.broadcast_bytes += self.nbytes * num_executors
            metrics.broadcast_count += 1

    @property
    def value(self) -> T:
        if self._destroyed:
            raise RuntimeError(f"broadcast {self.id} already destroyed")
        if self.fault_plan is not None and self.fault_plan.io_fault("bcast", self.id):
            raise TransientIOError(f"injected broadcast read failure: id={self.id}")
        return self._value

    def destroy(self) -> None:
        """Release the broadcast (subsequent reads fail)."""
        self._destroyed = True
        self._value = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Broadcast(id={self.id}, nbytes={self.nbytes})"
