"""Engine error types."""

from __future__ import annotations

__all__ = [
    "SparkleError",
    "TaskError",
    "TaskKilled",
    "ExecutorLost",
    "TransientIOError",
    "ShuffleFetchFailed",
    "StorageCapacityError",
    "BlockNotFoundError",
    "CorruptBlockError",
    "JournalError",
    "ResumeMismatchError",
    "JobAborted",
    "LastExecutorProtectedWarning",
]


class SparkleError(RuntimeError):
    """Base class for engine failures."""


class TaskError(SparkleError):
    """A task raised; carries the stage/partition it came from."""

    def __init__(self, message: str, stage_id: int, partition: int) -> None:
        super().__init__(message)
        self.stage_id = stage_id
        self.partition = partition


class TaskKilled(SparkleError):
    """Raised by the failure injector to simulate an executor fault.

    The scheduler treats it as retryable: the task is recomputed from
    lineage, which is the RDD fault-tolerance story the paper's §II
    summarizes.
    """


class ExecutorLost(SparkleError):
    """An executor died mid-task, taking its shuffle outputs with it.

    Retryable: the task re-runs, and any consumer that later misses the
    dropped map outputs triggers lineage recomputation via
    :class:`ShuffleFetchFailed`.
    """

    def __init__(self, message: str, executor: int) -> None:
        super().__init__(message)
        self.executor = executor


class TransientIOError(SparkleError):
    """A storage/broadcast read or shuffle staging write flaked.

    Retryable: the fault plan keys transient faults by task attempt, so
    the retry reads/writes clean.
    """


class ShuffleFetchFailed(SparkleError):
    """A reducer found map outputs missing (dropped by executor loss).

    The scheduler reacts by recomputing exactly the missing parent map
    partitions from lineage, then retrying the fetching task — Spark's
    ``FetchFailed`` / map-stage resubmission path.
    """

    def __init__(self, shuffle_id: int, missing: tuple[int, ...]) -> None:
        super().__init__(
            f"shuffle {shuffle_id} missing map output(s) {list(missing)}"
        )
        self.shuffle_id = shuffle_id
        self.missing = tuple(missing)


class StorageCapacityError(SparkleError):
    """Shuffle spill or shared-storage staging exceeded local capacity.

    Models the paper's observation (§IV-C) that IM executions are
    "constrained by the size of the underlying SSDs": wide transformations
    stage intermediate data on local disk before shuffling, and large
    inputs (or small inputs with many replicates) can fail outright.
    """


class BlockNotFoundError(SparkleError, KeyError):
    """A block store has no entry for the requested key.

    Subclasses :class:`KeyError` for callers doing dict-style handling,
    but carries engine typing so the scheduler can tell "block missing —
    retry/recompute" apart from a programmer error inside a task.
    """

    def __init__(self, message: str, key=None) -> None:
        super().__init__(message)
        self.key = key

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


class CorruptBlockError(SparkleError):
    """A durable block failed its checksum (torn write, bitrot, tamper).

    Never silently surfaces wrong data: consumers either fall back to
    lineage recomputation (:class:`~repro.sparkle.rdd.
    DurableCheckpointRDD`), fall back to an earlier journaled snapshot
    (solver resume), or report it (``repro fsck``).
    """

    def __init__(self, message: str, key=None) -> None:
        super().__init__(message)
        self.key = key


class JournalError(SparkleError):
    """The write-ahead solve journal is unusable (unparseable, wrong
    version) beyond the torn-tail truncation recovery handles."""


class ResumeMismatchError(JournalError):
    """``--resume`` found a journal written by a different solve
    configuration (fingerprint mismatch); resuming would silently mix
    incompatible state, so the solve refuses instead."""


class JobAborted(SparkleError):
    """A job failed after exhausting task retries."""


class LastExecutorProtectedWarning(RuntimeWarning):
    """A blacklist request was refused to keep the last healthy executor.

    The simulated cluster must keep at least one node able to run tasks;
    refusing silently used to hide that a fault threshold was crossed on
    the final survivor.  The refusal is also metered as
    ``EngineMetrics.last_executor_protected``.
    """
