"""Engine error types.

Every typed error here must survive a pickle round-trip with its payload
intact: the process backend raises them inside worker processes, and
``concurrent.futures`` ships worker exceptions back to the driver by
pickling them.  ``BaseException.__reduce__`` only replays ``self.args``,
which silently breaks any exception whose ``__init__`` takes more (or
keyword-only) parameters — so each multi-argument error defines an
explicit ``__reduce__`` that reconstructs from its full constructor
signature.
"""

from __future__ import annotations

__all__ = [
    "SparkleError",
    "TaskError",
    "TaskKilled",
    "ExecutorLost",
    "TransientIOError",
    "ShuffleFetchFailed",
    "StorageCapacityError",
    "BlockNotFoundError",
    "CorruptBlockError",
    "JournalError",
    "ResumeMismatchError",
    "JobAborted",
    "LastExecutorProtectedWarning",
    "WorkerCrashed",
    "TaskDeadlineExceeded",
    "PoisonTaskError",
    "ServiceOverloadedError",
    "ServiceDrainingError",
    "TenantQuotaExceededError",
    "RequestDeadlineExceeded",
    "CircuitOpenError",
    "FrameTooLargeError",
]


class SparkleError(RuntimeError):
    """Base class for engine failures."""


class TaskError(SparkleError):
    """A task raised; carries the stage/partition it came from."""

    def __init__(self, message: str, stage_id: int, partition: int) -> None:
        super().__init__(message)
        self.stage_id = stage_id
        self.partition = partition

    def __reduce__(self):
        return (type(self), (self.args[0], self.stage_id, self.partition))


class TaskKilled(SparkleError):
    """Raised by the failure injector to simulate an executor fault.

    The scheduler treats it as retryable: the task is recomputed from
    lineage, which is the RDD fault-tolerance story the paper's §II
    summarizes.
    """


class ExecutorLost(SparkleError):
    """An executor died mid-task, taking its shuffle outputs with it.

    Retryable: the task re-runs, and any consumer that later misses the
    dropped map outputs triggers lineage recomputation via
    :class:`ShuffleFetchFailed`.
    """

    def __init__(self, message: str, executor: int) -> None:
        super().__init__(message)
        self.executor = executor

    def __reduce__(self):
        return (type(self), (self.args[0], self.executor))


class TransientIOError(SparkleError):
    """A storage/broadcast read or shuffle staging write flaked.

    Retryable: the fault plan keys transient faults by task attempt, so
    the retry reads/writes clean.
    """


class ShuffleFetchFailed(SparkleError):
    """A reducer found map outputs missing (dropped by executor loss).

    The scheduler reacts by recomputing exactly the missing parent map
    partitions from lineage, then retrying the fetching task — Spark's
    ``FetchFailed`` / map-stage resubmission path.
    """

    def __init__(self, shuffle_id: int, missing: tuple[int, ...]) -> None:
        super().__init__(
            f"shuffle {shuffle_id} missing map output(s) {list(missing)}"
        )
        self.shuffle_id = shuffle_id
        self.missing = tuple(missing)

    def __reduce__(self):
        return (type(self), (self.shuffle_id, self.missing))


class StorageCapacityError(SparkleError):
    """Shuffle spill or shared-storage staging exceeded local capacity.

    Models the paper's observation (§IV-C) that IM executions are
    "constrained by the size of the underlying SSDs": wide transformations
    stage intermediate data on local disk before shuffling, and large
    inputs (or small inputs with many replicates) can fail outright.
    """


class BlockNotFoundError(SparkleError, KeyError):
    """A block store has no entry for the requested key.

    Subclasses :class:`KeyError` for callers doing dict-style handling,
    but carries engine typing so the scheduler can tell "block missing —
    retry/recompute" apart from a programmer error inside a task.
    """

    def __init__(self, message: str, key=None) -> None:
        super().__init__(message)
        self.key = key

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""

    def __reduce__(self):
        return (type(self), (self.args[0], self.key))


class CorruptBlockError(SparkleError):
    """A durable block failed its checksum (torn write, bitrot, tamper).

    Never silently surfaces wrong data: consumers either fall back to
    lineage recomputation (:class:`~repro.sparkle.rdd.
    DurableCheckpointRDD`), fall back to an earlier journaled snapshot
    (solver resume), or report it (``repro fsck``).
    """

    def __init__(self, message: str, key=None) -> None:
        super().__init__(message)
        self.key = key

    def __reduce__(self):
        return (type(self), (self.args[0], self.key))


class JournalError(SparkleError):
    """The write-ahead solve journal is unusable (unparseable, wrong
    version) beyond the torn-tail truncation recovery handles."""


class ResumeMismatchError(JournalError):
    """``--resume`` found a journal written by a different solve
    configuration (fingerprint mismatch); resuming would silently mix
    incompatible state, so the solve refuses instead."""


class JobAborted(SparkleError):
    """A job failed after exhausting task retries."""


class WorkerCrashed(SparkleError):
    """A worker process died mid-kernel (SIGKILL, OOM kill, hard crash).

    Raised by the supervised process backend after it has already
    respawned the pool and reclaimed the dead worker's orphaned scratch
    segments.  Retryable: the scheduler re-runs the task attempt through
    the normal backoff machinery, and the retry lands on a fresh worker.
    """

    def __init__(
        self,
        message: str,
        pid: int | None = None,
        reason: str = "crash",
        slot: int | None = None,
    ) -> None:
        super().__init__(message)
        self.pid = pid
        self.reason = reason
        #: worker slot (== executor id) that died — under affinity
        #: routing this may differ from the partition's nominal
        #: executor, and fault accounting should charge the real victim
        self.slot = slot

    def __reduce__(self):
        return (type(self), (self.args[0], self.pid, self.reason, self.slot))


class TaskDeadlineExceeded(SparkleError):
    """A supervised task ran past its ``task_deadline``.

    If the task had not started yet it is cancelled in place; if it was
    already running, the supervisor SIGKILLs the worker executing it (a
    hung worker cannot be asked nicely) and the pool respawns.  Either
    way the attempt is retryable and counts toward the task's poison
    budget (``max_task_failures``).
    """

    def __init__(
        self, message: str, deadline: float | None = None, elapsed: float | None = None
    ) -> None:
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed

    def __reduce__(self):
        return (type(self), (self.args[0], self.deadline, self.elapsed))


class PoisonTaskError(SparkleError):
    """One task killed a fresh worker ``max_task_failures`` times.

    The task is quarantined — the supervisor refuses to offload it again
    — and the error carries enough to identify *what* is poisonous: the
    kernel id, the update case, and the tile coordinate (global offsets
    of the tile being updated).  Not retryable through the scheduler;
    under ``--degrade-on-crash`` the GEP solver instead recomputes the
    tile on the deterministic thread path and degrades the whole solve
    to the thread backend at the next outer-iteration boundary.
    """

    def __init__(
        self,
        message: str,
        coordinate: tuple[int, int, int] | None = None,
        case: str | None = None,
        kernel_id: str | None = None,
        failures: int = 0,
    ) -> None:
        super().__init__(message)
        self.coordinate = tuple(coordinate) if coordinate is not None else None
        self.case = case
        self.kernel_id = kernel_id
        self.failures = failures

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.coordinate, self.case, self.kernel_id, self.failures),
        )


class ServiceOverloadedError(SparkleError):
    """The solver service shed a request at admission (overload control).

    Raised *before* any engine work starts: the request queue is full for
    the current memory-pressure level, or pressure is critical and the
    service refuses new work outright.  Always retryable by the client —
    ``retry_after`` is the service's backoff hint in seconds.
    """

    def __init__(
        self,
        message: str,
        level: str | None = None,
        queue_depth: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.level = level
        self.queue_depth = queue_depth
        self.retry_after = retry_after

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.level, self.queue_depth, self.retry_after),
        )


class ServiceDrainingError(SparkleError):
    """The solver service is draining for shutdown and refuses new work.

    Raised at admission once SIGTERM/SIGINT (or an explicit
    :meth:`~repro.service.SolverService.drain`) has flipped the service
    into its drain phase: in-flight and queued requests run to
    settlement, but no new work is accepted.  Retryable — journaled
    in-flight requests are replayed by ``repro serve --resume``, so a
    client that retries (reusing its idempotency key) against the
    restarted instance gets the same result.  ``retry_after`` is the
    service's hint for when a successor is expected to be listening.
    """

    def __init__(self, message: str, retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after))


class TenantQuotaExceededError(SparkleError):
    """A tenant hit its own byte quota or admission rate limit.

    Isolation, not survival: the *tenant's* in-flight solves plus cached
    results would exceed the share carved out for it on the memory
    governor's ledgers (``quota_bytes``), or its token bucket is out of
    admission tokens (``used_bytes``/``quota_bytes`` are then ``None``).
    Only the offending tenant is refused — no other tenant's queued work
    or cached state is touched, evicted, or degraded on its behalf.
    Always retryable: ``retry_after`` is the service's hint for when the
    tenant's in-flight work (or token bucket) should have drained enough
    to admit the retry.
    """

    def __init__(
        self,
        message: str,
        tenant: str | None = None,
        used_bytes: int | None = None,
        quota_bytes: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.used_bytes = used_bytes
        self.quota_bytes = quota_bytes
        self.retry_after = retry_after

    def __reduce__(self):
        return (
            type(self),
            (
                self.args[0],
                self.tenant,
                self.used_bytes,
                self.quota_bytes,
                self.retry_after,
            ),
        )


class FrameTooLargeError(SparkleError):
    """A socket frame announced a length above the server's cap.

    The wire protocol is length-prefixed pickle; without a cap a single
    hostile (or corrupt) 8-byte header could make the server allocate
    petabytes.  The frame is refused *before* any payload is read, the
    error is shipped back typed, and the connection is closed — the
    accept loop is unaffected.  Not retryable: the same frame would be
    refused again.
    """

    def __init__(
        self,
        message: str,
        length: int | None = None,
        limit: int | None = None,
    ) -> None:
        super().__init__(message)
        self.length = length
        self.limit = limit

    def __reduce__(self):
        return (type(self), (self.args[0], self.length, self.limit))


class RequestDeadlineExceeded(SparkleError):
    """A service request ran past its per-request deadline.

    Distinct from :class:`TaskDeadlineExceeded` (one offloaded kernel
    call overran): this is the *request-plane* deadline covering queueing
    plus the whole engine pass.  The scheduler checks it at stage and
    attempt boundaries and aborts the solve mid-flight; the service then
    reclaims all per-solve engine state, so a cancelled request leaks
    nothing.  Retryable by the client (with a larger deadline).
    """

    def __init__(
        self,
        message: str,
        deadline: float | None = None,
        elapsed: float | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline = deadline
        self.elapsed = elapsed

    def __reduce__(self):
        return (type(self), (self.args[0], self.deadline, self.elapsed))


class CircuitOpenError(SparkleError):
    """The per-backend circuit breaker is open (repeated worker faults).

    Carried on responses so clients can tell "your request failed" apart
    from "the process backend is sick; requests are being served on the
    degraded thread path".  ``retry_after`` is the remaining cooldown
    before the breaker half-opens.
    """

    def __init__(
        self,
        message: str,
        backend: str | None = None,
        failures: int = 0,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.failures = failures
        self.retry_after = retry_after

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.backend, self.failures, self.retry_after),
        )


class LastExecutorProtectedWarning(RuntimeWarning):
    """A blacklist request was refused to keep the last healthy executor.

    The simulated cluster must keep at least one node able to run tasks;
    refusing silently used to hide that a fault threshold was crossed on
    the final survivor.  The refusal is also metered as
    ``EngineMetrics.last_executor_protected``.
    """
