"""Engine error types."""

from __future__ import annotations

__all__ = [
    "SparkleError",
    "TaskError",
    "TaskKilled",
    "StorageCapacityError",
    "JobAborted",
]


class SparkleError(RuntimeError):
    """Base class for engine failures."""


class TaskError(SparkleError):
    """A task raised; carries the stage/partition it came from."""

    def __init__(self, message: str, stage_id: int, partition: int) -> None:
        super().__init__(message)
        self.stage_id = stage_id
        self.partition = partition


class TaskKilled(SparkleError):
    """Raised by the failure injector to simulate an executor fault.

    The scheduler treats it as retryable: the task is recomputed from
    lineage, which is the RDD fault-tolerance story the paper's §II
    summarizes.
    """


class StorageCapacityError(SparkleError):
    """Shuffle spill or shared-storage staging exceeded local capacity.

    Models the paper's observation (§IV-C) that IM executions are
    "constrained by the size of the underlying SSDs": wide transformations
    stage intermediate data on local disk before shuffling, and large
    inputs (or small inputs with many replicates) can fail outright.
    """


class JobAborted(SparkleError):
    """A job failed after exhausting task retries."""
