"""Executor pool: the simulated cluster's compute slots.

One :class:`ExecutorPool` models ``num_executors`` executors with
``cores_per_executor`` task slots each (the Spark ``executor-cores``
knob).  Placement, health and blacklisting live here; *execution* is
delegated to a pluggable :class:`~repro.sparkle.backend.
ExecutionBackend` — the default deterministic thread pool, or the
multicore process backend (one worker process per simulated executor)
that offloads kernel math past the GIL.  Each task is *assigned* to an
executor deterministically by partition id so metrics and the cost
model can reason about per-executor load and locality exactly as the
paper does (one executor per compute node, §V-B).

Fault tolerance hooks: the scheduler can *blacklist* an executor after
repeated faults — placement then round-robins over the remaining healthy
executors (at least one always stays healthy) — and can request
``sequential`` stage execution, which the chaos determinism contract
uses to keep recovery traces reproducible.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, Callable

from .backend import ExecutionBackend, make_backend
from .errors import LastExecutorProtectedWarning

__all__ = ["ExecutorPool"]


class ExecutorPool:
    """Fixed pool of task slots spread over simulated executors."""

    def __init__(
        self,
        num_executors: int,
        cores_per_executor: int,
        *,
        metrics=None,
        backend: str | ExecutionBackend = "threads",
        supervision=None,
        fault_plan=None,
        dispatch: str = "tile",
        gang_stages: bool = False,
        affinity: bool = True,
    ) -> None:
        if num_executors < 1 or cores_per_executor < 1:
            raise ValueError("executors and cores must be >= 1")
        self.num_executors = num_executors
        self.cores_per_executor = cores_per_executor
        self.total_slots = num_executors * cores_per_executor
        self._metrics = metrics
        if isinstance(backend, ExecutionBackend):
            self.backend = backend
        else:
            self.backend = make_backend(
                backend,
                total_slots=self.total_slots,
                num_workers=num_executors,
                metrics=metrics,
                supervision=supervision,
                fault_plan=fault_plan,
                dispatch=dispatch,
                gang_stages=gang_stages,
                affinity=affinity,
            )
        self._lock = threading.Lock()
        self._blacklisted: set[int] = set()
        # Atomic snapshot read by executor_for without locking.
        self._healthy: tuple[int, ...] = tuple(range(num_executors))

    # ------------------------------------------------------------------
    # placement & health
    # ------------------------------------------------------------------
    def executor_for(self, partition: int) -> int:
        """Deterministic task placement (round-robin over healthy executors)."""
        healthy = self._healthy
        return healthy[partition % len(healthy)]

    @property
    def healthy_executors(self) -> tuple[int, ...]:
        return self._healthy

    def is_blacklisted(self, executor: int) -> bool:
        return executor in self._blacklisted

    def blacklist(self, executor: int) -> bool:
        """Exclude an executor from placement; True if newly blacklisted.

        Refuses to blacklist the last healthy executor — the simulated
        cluster must keep at least one node able to run tasks.  The
        refusal is no longer silent: it emits a typed
        :class:`~repro.sparkle.errors.LastExecutorProtectedWarning` and
        is metered as ``EngineMetrics.last_executor_protected``, because
        a fault threshold crossed on the last survivor is exactly the
        signal an operator needs to see.
        """
        with self._lock:
            if executor in self._blacklisted:
                return False
            if not 0 <= executor < self.num_executors:
                raise ValueError(f"no such executor {executor}")
            if len(self._healthy) <= 1:
                if self._metrics is not None:
                    self._metrics.last_executor_protected += 1
                warnings.warn(
                    f"refusing to blacklist executor {executor}: it is the "
                    f"last healthy executor of {self.num_executors}",
                    LastExecutorProtectedWarning,
                    stacklevel=2,
                )
                return False
            self._blacklisted.add(executor)
            self._healthy = tuple(
                e for e in range(self.num_executors) if e not in self._blacklisted
            )
        # Spill the dead executor's tile placements (outside the lock;
        # the registry has its own) so affinity re-homes them instead of
        # chasing a blacklisted worker.
        self.backend.invalidate_affinity(executor)
        return True

    # ------------------------------------------------------------------
    # execution (delegated to the backend)
    # ------------------------------------------------------------------
    def run_tasks(
        self, thunks: list[Callable[[], Any]], sequential: bool = False
    ) -> list[Any]:
        """Run a stage's tasks; returns results in task order.

        See :meth:`~repro.sparkle.backend.ThreadBackend.run_tasks` for
        the settle/cancel and ``sequential`` (chaos determinism)
        semantics, which every backend honours.
        """
        return self.backend.run_tasks(thunks, sequential=sequential)

    def _ensure_pool(self):
        """The backend's thread pool (test/diagnostic hook)."""
        return self.backend._ensure_pool()

    def run_task_timed(self, thunk: Callable[[], Any]) -> tuple[Any, float]:
        """Run one task inline, returning ``(result, wall_seconds)``."""
        start = time.perf_counter()
        out = thunk()
        return out, time.perf_counter() - start

    def shutdown(self) -> None:
        """Tear the backend down (threads joined, worker processes
        reaped, shared-memory segments unlinked)."""
        self.backend.shutdown()
