"""Executor pool: the simulated cluster's compute slots.

One :class:`ExecutorPool` models ``num_executors`` executors with
``cores_per_executor`` task slots each (the Spark ``executor-cores``
knob).  Tasks run on a shared thread pool sized to the total slot count;
each task is *assigned* to an executor deterministically by partition id
so metrics and the cost model can reason about per-executor load and
locality exactly as the paper does (one executor per compute node,
§V-B).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable

__all__ = ["ExecutorPool"]


class ExecutorPool:
    """Fixed pool of task slots spread over simulated executors."""

    def __init__(self, num_executors: int, cores_per_executor: int) -> None:
        if num_executors < 1 or cores_per_executor < 1:
            raise ValueError("executors and cores must be >= 1")
        self.num_executors = num_executors
        self.cores_per_executor = cores_per_executor
        self.total_slots = num_executors * cores_per_executor
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def executor_for(self, partition: int) -> int:
        """Deterministic task placement (round-robin over executors)."""
        return partition % self.num_executors

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.total_slots, thread_name_prefix="executor"
                )
            return self._pool

    def run_tasks(self, thunks: list[Callable[[], Any]]) -> list[Any]:
        """Run a stage's tasks; returns results in task order.

        Exceptions propagate after all submitted tasks settle, so a
        failing task cannot leave stragglers mutating shared state.
        """
        if not thunks:
            return []
        if self.total_slots == 1 or len(thunks) == 1:
            return [t() for t in thunks]
        pool = self._ensure_pool()
        futures = [pool.submit(t) for t in thunks]
        results: list[Any] = [None] * len(futures)
        first_error: BaseException | None = None
        for idx, fut in enumerate(futures):
            try:
                results[idx] = fut.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return results

    def run_task_timed(self, thunk: Callable[[], Any]) -> tuple[Any, float]:
        """Run one task inline, returning ``(result, wall_seconds)``."""
        start = time.perf_counter()
        out = thunk()
        return out, time.perf_counter() - start

    def shutdown(self) -> None:
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
