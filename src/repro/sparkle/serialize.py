"""Zero-copy tile transport: pickle-5 buffers, shared memory, CoW tiles.

Three building blocks for the multicore data plane (DESIGN.md §12):

* :class:`SerializedMapOutput` / :func:`pack_map_output` — shuffle map
  outputs serialized with pickle protocol 5, NumPy tile payloads carried
  *out-of-band* in a per-map-task buffer pool deduplicated by object
  identity.  The GEP pivot fan-out stages the same array object to
  ``2(r-k-1) + (r-k-1)^2`` consumers; with the pool, that is **one**
  physical buffer instead of one logical copy per consumer, which is
  where the shuffle ``total_bytes_written`` drop comes from.
  Deserialization reconstructs tiles as read-only zero-copy views over
  the staged buffers — consumers must copy before mutating (they already
  do: the retry-purity contract).

* :class:`SegmentArena` / :class:`ShmArray` — tracked
  ``multiprocessing.shared_memory`` segments holding tile payloads that
  worker processes attach by name (the process backend's zero-copy
  operand path for CB shared storage, broadcast values and cached
  partitions).  Long-lived payloads are packed into large **slab**
  segments at 64-byte-aligned offsets — one ``mmap`` (and one kernel
  file descriptor) per slab instead of per tile, so a solve caching
  thousands of tiles cannot exhaust the descriptor table.  Slabs are
  refcounted per allocation: :func:`release_nested` (called by the
  block cache / shared storage when a block retires) drops a slab as
  soon as its last allocation is released.  Every segment is registered
  at creation and freed either by refcount, explicitly, by the
  per-stage scratch sweep, or by :meth:`SegmentArena.
  cleanup` on context stop — segment cleanup is guaranteed even when
  chaos faults abort the task that allocated it.  ``unlink`` (removing
  the ``/dev/shm`` entry) is never skipped; the *unmap* is deferred to
  reference counting — every view the arena hands out pins its
  ``SharedMemory`` object, because a NumPy array over ``shm.buf`` does
  **not** hold a buffer export (``close()`` would happily unmap under a
  live view, and e.g. a cache-hit ``collect()`` result held past
  ``ctx.stop()`` would then read unmapped memory).

* :class:`CowTile` — a copy-on-write wrapper making tile ownership
  explicit: ``writable()`` returns the wrapped array directly when the
  producer handed over ownership (counted as a copy eliminated) and a
  private copy otherwise.  The kernel wrappers in ``core/dpspark.py``
  route their defensive copies through this policy.
"""

from __future__ import annotations

import itertools
import os
import pickle
import threading
import uuid
from typing import Any, Iterable

import numpy as np

try:  # pragma: no cover - stdlib on every supported platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SerializedMapOutput",
    "pack_map_output",
    "OperandPool",
    "SegmentArena",
    "ShmArray",
    "share_nested",
    "release_nested",
    "CowTile",
    "shm_supported",
    "purge_segments",
]

PICKLE_PROTOCOL = 5


def shm_supported() -> bool:
    """Whether POSIX shared memory is available on this platform."""
    return _shared_memory is not None


def purge_segments(prefix: str) -> int:
    """Unlink every ``/dev/shm`` entry under an arena prefix; last resort.

    The crash janitor: when the driver dies without running ``cleanup()``
    (SIGKILL, power loss) nobody holds the ``SharedMemory`` handles any
    more, so orphaned workers sweep the raw names straight off the
    filesystem before exiting.  Harmless when the tree is already clean;
    returns the number of entries removed.  Only meaningful on platforms
    that expose POSIX shm as files (Linux ``/dev/shm``).
    """
    if not prefix:
        raise ValueError("refusing to purge an empty shm prefix")
    root = "/dev/shm"
    removed = 0
    if not os.path.isdir(root):  # pragma: no cover - platform gate
        return 0
    for entry in os.listdir(root):
        if not entry.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(root, entry))
            removed += 1
        except OSError:  # pragma: no cover - raced with another reaper
            pass
    return removed


# ----------------------------------------------------------------------
# pickle-5 out-of-band shuffle serialization
# ----------------------------------------------------------------------
class SerializedMapOutput:
    """One map task's buckets, serialized with a shared buffer pool.

    ``streams[rp]`` is the pickle stream for reduce partition ``rp``;
    ``buffer_index[rp]`` lists, in consumption order, which pool entries
    that stream's out-of-band buffers are.  A tile referenced by many
    buckets (the pivot fan-out) appears once in ``pool`` — ``nbytes``
    (physical staged bytes) is therefore at most, and usually far below,
    ``logical_nbytes`` (per-destination accounting).
    """

    __slots__ = ("streams", "buffer_index", "pool", "nbytes", "logical_nbytes")

    def __init__(
        self,
        streams: dict[int, bytes],
        buffer_index: dict[int, tuple[int, ...]],
        pool: list,
        nbytes: int,
        logical_nbytes: int,
    ) -> None:
        self.streams = streams
        self.buffer_index = buffer_index
        self.pool = pool
        self.nbytes = nbytes
        self.logical_nbytes = logical_nbytes

    def bucket(self, reduce_partition: int) -> list:
        """Deserialize one bucket (zero-copy, read-only tile views)."""
        stream = self.streams.get(reduce_partition)
        if stream is None:
            return []
        buffers = [self.pool[i] for i in self.buffer_index[reduce_partition]]
        return pickle.loads(stream, buffers=buffers)

    def reduce_partitions(self) -> Iterable[int]:
        return self.streams.keys()

    # Spilling a staged output pickles it (DurableBlockStore); the pool
    # may hold memoryviews of live producer arrays, so materialize them.
    def __reduce__(self):
        return (
            SerializedMapOutput,
            (
                self.streams,
                self.buffer_index,
                [bytes(b) for b in self.pool],
                self.nbytes,
                self.logical_nbytes,
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SerializedMapOutput(buckets={len(self.streams)}, "
            f"pool={len(self.pool)}, nbytes={self.nbytes}, "
            f"logical={self.logical_nbytes})"
        )


def pack_map_output(
    buckets: dict[int, list], logical_nbytes: int
) -> SerializedMapOutput:
    """Serialize one map task's buckets with identity-deduped buffers.

    Buffers are deduplicated across *all* buckets of the map output by
    the identity of their exporting object, so an array fanned out to
    every reducer is staged physically once.  Pool entries are read-only
    views of the producer arrays (zero-copy staging) — they pin the
    producer alive exactly as the previous by-reference staging did.
    """
    pool: list = []
    pool_ids: dict[int, int] = {}
    streams: dict[int, bytes] = {}
    buffer_index: dict[int, tuple[int, ...]] = {}
    for rp, items in buckets.items():
        idxs: list[int] = []

        def _stash(pb: pickle.PickleBuffer, idxs=idxs) -> None:
            view = pb.raw()
            owner = view.obj
            key = id(owner) if owner is not None else id(view)
            idx = pool_ids.get(key)
            if idx is None:
                idx = len(pool)
                pool.append(view.toreadonly())
                pool_ids[key] = idx
            idxs.append(idx)
            return None  # falsy: keep the buffer out-of-band

        streams[rp] = pickle.dumps(
            items, protocol=PICKLE_PROTOCOL, buffer_callback=_stash
        )
        buffer_index[rp] = tuple(idxs)
    nbytes = sum(len(s) for s in streams.values()) + sum(
        b.nbytes for b in pool
    )
    return SerializedMapOutput(streams, buffer_index, pool, nbytes, logical_nbytes)


class OperandPool:
    """Identity-deduplicated inline-operand pool for one batch envelope.

    A batched kernel dispatch fuses many tile updates into one
    round-trip; their operands overlap heavily (every D update in an
    iteration reads the same pivot row/column tiles).  Instead of
    inlining each operand per call, the batch ships one flat list of
    arrays and each call's descriptor names its operands by pool index
    — the pivot crosses the IPC boundary once per batch, not once per
    tile (the per-batch broadcast dedup of DESIGN.md §14).

    Dedup is by the identity of the array object, mirroring
    :func:`pack_map_output`; arrays are made contiguous on first add so
    the worker can wrap them without a copy.
    """

    __slots__ = ("_arrays", "_ids")

    def __init__(self) -> None:
        self._arrays: list[np.ndarray] = []
        self._ids: dict[int, int] = {}

    def add(self, arr: np.ndarray) -> int:
        """Intern ``arr`` and return its pool index."""
        idx = self._ids.get(id(arr))
        if idx is None:
            idx = len(self._arrays)
            self._arrays.append(np.ascontiguousarray(arr))
            self._ids[id(arr)] = idx
        return idx

    def payload(self) -> list[np.ndarray]:
        """The flat array list to ship with the batch envelope."""
        return self._arrays

    def __len__(self) -> int:
        return len(self._arrays)


# ----------------------------------------------------------------------
# shared-memory segments
# ----------------------------------------------------------------------
class ShmArray(np.ndarray):
    """NumPy view over one allocation in a :class:`SegmentArena` slab.

    ``shm_name``/``shm_offset`` are set only on the exact view the
    arena hands out (derived views and arithmetic results fall back to
    the class defaults), so the process backend can trust a non-``None``
    name as "this whole array lives at ``shm_offset`` of that segment"
    and ship ``(name, offset, shape, dtype)`` instead of bytes.

    ``shm_obj`` pins the backing ``SharedMemory``: NumPy does not keep
    a buffer export on ``shm.buf``, so without this reference the
    mapping could be unmapped (by ``close()`` during cleanup, or by the
    ``SharedMemory`` destructor) while the view is still readable —
    a use-after-free.  With it, the unmap happens exactly when the last
    view dies, no matter how long a consumer keeps a ``collect()``
    result past ``ctx.stop()``.
    """

    shm_name: str | None = None
    shm_offset: int = 0
    shm_obj = None


#: default slab capacity — large enough that even a tile-heavy solve
#: needs only a handful of mappings, small enough not to oversubscribe
#: /dev/shm for toy runs (slabs grow to fit oversized single arrays)
DEFAULT_SLAB_BYTES = 4 << 20

_ALIGN = 64  # cache-line alignment for packed tile payloads


def _align_up(n: int) -> int:
    return (n + _ALIGN - 1) & ~(_ALIGN - 1)


class SegmentArena:
    """Registry of shared-memory segments with guaranteed cleanup.

    Two classes of segments:

    * **slabs** (:meth:`share_array`) — long-lived tile payloads
      (CB storage, broadcast values, cached partitions) packed at
      aligned offsets into large segments that worker processes attach
      read-only by ``(name, offset)``.  One ``mmap`` — and one kernel
      file descriptor — per *slab*, not per tile: a solve caching
      thousands of partitions stays within any sane descriptor limit.
      Slabs are refcounted per allocation; :meth:`release_view` (via
      :func:`release_nested`, called when a cached block or storage
      value retires) frees a slab as soon as its last allocation is
      released, so shm pages track the engine's real working set
      instead of accumulating until stop.
    * **scratch** (:meth:`stage_scratch`) — per-kernel-call staging of
      the tile being updated, one dedicated segment each (their count
      is bounded by kernel concurrency); freed by the caller's
      ``finally``, with :meth:`sweep_scratch` (the scheduler's
      end-of-stage hook) as the safety net for attempts that chaos
      faults tore down in between.

    ``unlink`` always runs, so no ``/dev/shm`` entry outlives the arena
    even when live NumPy views keep mappings alive (the unmap itself is
    refcounted through ``ShmArray.shm_obj``).
    """

    def __init__(
        self,
        metrics=None,
        prefix: str | None = None,
        slab_bytes: int = DEFAULT_SLAB_BYTES,
    ) -> None:
        if _shared_memory is None:  # pragma: no cover - platform gate
            raise RuntimeError("multiprocessing.shared_memory unavailable")
        if slab_bytes < 1:
            raise ValueError("slab_bytes must be >= 1")
        self._metrics = metrics
        self._prefix = prefix or f"sparkle-{os.getpid()}-{uuid.uuid4().hex[:6]}"
        self.slab_bytes = int(slab_bytes)
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._segments: dict[str, Any] = {}
        #: slab name -> {capacity, cursor, live} (scratch is not here)
        self._slabs: dict[str, dict[str, int]] = {}
        self._open: str | None = None  # slab currently accepting allocs
        self._scratch: set[str] = set()

    # -- allocation ----------------------------------------------------
    def _new_segment_locked(self, nbytes: int):
        name = f"{self._prefix}-{next(self._counter)}"
        shm = _shared_memory.SharedMemory(
            create=True, size=max(1, int(nbytes)), name=name
        )
        # The fd only serves creation and mapping, both done (the mmap
        # keeps its own dup); close ours now — shm_unlink works by name.
        try:
            if shm._fd >= 0:
                os.close(shm._fd)
                shm._fd = -1
        except AttributeError:  # pragma: no cover - CPython private API
            pass
        self._segments[name] = shm
        if self._metrics is not None:
            self._metrics.shm_segments_created += 1
        return name, shm

    def _alloc_locked(self, nbytes: int):
        """Reserve ``nbytes`` in the open slab (or a new one)."""
        need = max(1, int(nbytes))
        name = self._open
        if name is not None:
            slab = self._slabs[name]
            if slab["cursor"] + need <= slab["capacity"]:
                offset = slab["cursor"]
                slab["cursor"] = _align_up(offset + need)
                slab["live"] += 1
                return name, self._segments[name], offset
            # Slab exhausted: stop allocating from it.  If nothing it
            # holds is live anymore it can go at once.
            self._open = None
            if slab["live"] == 0:
                self._release_slab_locked(name)
        capacity = max(self.slab_bytes, need)
        name, shm = self._new_segment_locked(capacity)
        self._slabs[name] = {
            "capacity": capacity,
            "cursor": _align_up(need),
            "live": 1,
        }
        self._open = name
        return name, shm, 0

    def share_array(self, arr: np.ndarray) -> ShmArray:
        """Pack ``arr`` into a shared slab; returns a read-only view.

        Arrays the arena already shared (recognized by ``shm_name``)
        pass through untouched.  Fan-out dedup across a batch of values
        is the caller's job (:func:`share_nested` takes a per-call seen
        map) — the arena itself keeps no producer-identity state, which
        would go stale as producers are garbage collected.
        """
        if isinstance(arr, ShmArray) and arr.shm_name is not None:
            with self._lock:
                # Only live slab allocations pass through — scratch is
                # transient and must never masquerade as shared storage.
                if arr.shm_name in self._slabs:
                    return arr
        with self._lock:
            name, shm, offset = self._alloc_locked(arr.nbytes)
            if self._metrics is not None:
                self._metrics.shm_bytes_shared += int(arr.nbytes)
        dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf, offset=offset)
        dst[...] = arr
        out = dst.view(ShmArray)
        out.shm_name = name
        out.shm_offset = offset
        out.shm_obj = shm  # pin the mapping to the view's lifetime
        out.flags.writeable = False
        return out

    def stage_scratch(self, arr: np.ndarray) -> tuple[str, np.ndarray]:
        """Copy ``arr`` into a fresh scratch segment; returns its name
        and a *writable* view for the worker's in-place update."""
        with self._lock:
            name, shm = self._new_segment_locked(arr.nbytes)
            self._scratch.add(name)
            if self._metrics is not None:
                self._metrics.shm_bytes_shared += int(arr.nbytes)
        view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf).view(
            ShmArray
        )
        view.shm_name = name
        view.shm_obj = shm  # pin the mapping to the view's lifetime
        view[...] = arr
        return name, view

    # -- release -------------------------------------------------------
    @staticmethod
    def _destroy(shm) -> None:
        # Unlink only.  close() would unmap immediately — NumPy views
        # over shm.buf hold no buffer export, so a still-referenced
        # view (say a cache-hit collect() result kept past ctx.stop())
        # would read unmapped memory.  Views pin the SharedMemory
        # object (ShmArray.shm_obj), so dropping our reference defers
        # the unmap to the death of the last view.
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def _release_slab_locked(self, name: str) -> Any:
        """Forget a slab's registry state; caller destroys outside lock
        (or we do, when called internally)."""
        shm = self._segments.pop(name, None)
        self._slabs.pop(name, None)
        if self._open == name:
            self._open = None
        if shm is not None:
            self._destroy(shm)
            if self._metrics is not None:
                self._metrics.shm_segments_freed += 1
        return shm

    def release_view(self, arr: Any) -> bool:
        """Release one :meth:`share_array` allocation (block retired).

        Decrements the owning slab's refcount; the slab is unlinked as
        soon as it is both full (no longer the open slab) and empty of
        live allocations.  Consumers still holding the view keep a
        valid mapping (``shm_obj``) — only future attach-by-name stops
        working, and the offload path falls back to inline transport
        for unregistered operands.
        """
        name = getattr(arr, "shm_name", None)
        if name is None:
            return False
        with self._lock:
            slab = self._slabs.get(name)
            if slab is None:
                return False
            slab["live"] = max(0, slab["live"] - 1)
            if slab["live"] == 0 and name != self._open:
                self._release_slab_locked(name)
        return True

    def is_live(self, name: str) -> bool:
        """Whether workers can still attach this slab by name."""
        with self._lock:
            return name in self._slabs

    def free(self, name: str) -> bool:
        """Unlink and forget one segment; True if it was registered."""
        with self._lock:
            shm = self._segments.pop(name, None)
            self._slabs.pop(name, None)
            if self._open == name:
                self._open = None
            self._scratch.discard(name)
        if shm is None:
            return False
        self._destroy(shm)
        if self._metrics is not None:
            self._metrics.shm_segments_freed += 1
        return True

    def sweep_scratch(self) -> int:
        """Free scratch segments an aborted attempt left behind."""
        with self._lock:
            orphans = list(self._scratch)
        freed = 0
        for name in orphans:
            freed += bool(self.free(name))
        return freed

    def cleanup(self) -> int:
        """Unlink every registered segment (context-stop guarantee)."""
        with self._lock:
            names = list(self._segments)
        freed = 0
        for name in names:
            freed += bool(self.free(name))
        return freed

    # -- introspection -------------------------------------------------
    @property
    def num_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def prefix(self) -> str:
        return self._prefix

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentArena(prefix={self._prefix!r}, live={self.num_segments})"


def share_nested(
    arena: "SegmentArena", value: Any, _seen: dict[int, Any] | None = None
) -> Any:
    """Recursively replace ndarray leaves with arena-shared views.

    Handles the shapes the engine stores: bare arrays, ``(key, array)``
    pairs, role tuples ``(key, (role, array))``, dicts of arrays, and
    lists thereof.  A per-call ``seen`` map dedups by producer identity,
    so a pivot tile fanned out across many items of one cached partition
    lands in a single segment.  Non-array values pass through untouched.
    """
    if _seen is None:
        _seen = {}
    if isinstance(value, np.ndarray):
        if value.dtype == object:  # not a flat tile payload
            return value
        got = _seen.get(id(value))
        if got is None:
            got = arena.share_array(value)
            _seen[id(value)] = got
        return got
    if isinstance(value, tuple):
        return tuple(share_nested(arena, v, _seen) for v in value)
    if isinstance(value, list):
        return [share_nested(arena, v, _seen) for v in value]
    if isinstance(value, dict):
        return {k: share_nested(arena, v, _seen) for k, v in value.items()}
    return value


def release_nested(
    arena: "SegmentArena", value: Any, _seen: set[int] | None = None
) -> int:
    """Release every arena allocation reachable from ``value``.

    The inverse of :func:`share_nested`, called when the engine retires
    a block (cache eviction / overwrite, shared-storage replacement):
    each distinct :class:`ShmArray` leaf gives back its slab refcount,
    so shm pages are reclaimed as the working set turns over rather
    than accumulating until context stop.  Returns the number of
    allocations released.  Identity-deduped per call, mirroring the
    fan-out dedup on the way in.
    """
    if _seen is None:
        _seen = set()
    if isinstance(value, ShmArray):
        if id(value) in _seen:
            return 0
        _seen.add(id(value))
        return int(arena.release_view(value))
    if isinstance(value, np.ndarray):
        return 0
    if isinstance(value, (tuple, list)):
        return sum(release_nested(arena, v, _seen) for v in value)
    if isinstance(value, dict):
        return sum(release_nested(arena, v, _seen) for v in value.values())
    return 0


# ----------------------------------------------------------------------
# copy-on-write tiles
# ----------------------------------------------------------------------
class CowTile:
    """Explicit tile ownership: copy on write unless the array is owned.

    ``owned=True`` asserts the producer handed the array over (nothing
    else aliases it — e.g. a tile freshly materialized out of a shared-
    memory scratch segment); ``writable()`` then returns it in place and
    meters the avoided defensive copy.  ``owned=False`` (the default —
    correct for every array reachable from RDD lineage, caches, shuffle
    staging or broadcast values) copies, preserving the retry-purity
    contract.
    """

    __slots__ = ("array", "owned")

    def __init__(self, array: np.ndarray, *, owned: bool = False) -> None:
        self.array = array
        self.owned = bool(owned) and array.flags.writeable

    def writable(self, metrics=None) -> np.ndarray:
        """The array itself when owned, else a private copy."""
        if self.owned:
            self.owned = False  # ownership is consumed, not shared
            if metrics is not None:
                metrics.copies_eliminated += 1
            return self.array
        return self.array.copy()

    def readonly(self) -> np.ndarray:
        return self.array

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CowTile(shape={self.array.shape}, owned={self.owned})"
