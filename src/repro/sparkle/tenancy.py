"""Tenant isolation primitives: policy, rate limiting, fair share, brownout.

The request plane (DESIGN.md §15–16) survives crashes and overload, but
survival is not isolation: one hog tenant could monopolize the dispatch
queue, the result cache, and the memory governor's budget.  This module
holds the four small, individually testable pieces the service composes
into its isolation plane (DESIGN.md §18):

- :class:`TenantPolicy` — the per-tenant knob set (weight, byte quota,
  admission rate).
- :class:`TokenBucket` — deterministic-under-fake-clock admission rate
  limiter.
- :class:`DeficitRoundRobin` — the weighted fair queue that replaces the
  dispatcher's single FIFO; a hog can saturate only its own weight.
- :class:`BrownoutLadder` — the graceful-degradation state machine
  driven by governor pressure and queue depth.

None of these know about the service, sockets, or the journal: they are
pure data structures so the fairness/degradation logic can be pinned by
unit tests without spinning up an engine context.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "TenantPolicy",
    "TokenBucket",
    "DeficitRoundRobin",
    "BrownoutLadder",
    "BROWNOUT_LEVELS",
]


@dataclass(frozen=True)
class TenantPolicy:
    """Isolation knobs for one tenant.

    ``weight`` feeds the deficit-round-robin dispatcher (relative share
    of engine passes under contention) and the brownout shed order
    (lowest weight goes first).  ``quota_bytes`` caps the tenant's
    in-flight solve charges plus cached-result bytes on the memory
    governor's tenant ledger; ``None`` means unmetered.  ``rate`` is a
    token-bucket admission rate in requests/second (``None`` = no rate
    limit) with ``burst`` tokens of headroom.
    """

    weight: int = 1
    quota_bytes: int | None = None
    rate: float | None = None
    burst: int = 4

    def __post_init__(self) -> None:
        if not isinstance(self.weight, int) or self.weight < 1:
            raise ValueError(f"weight must be an int >= 1, got {self.weight!r}")
        if self.quota_bytes is not None and self.quota_bytes < 0:
            raise ValueError(f"quota_bytes must be >= 0, got {self.quota_bytes!r}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be > 0 req/s, got {self.rate!r}")
        if self.burst < 1:
            raise ValueError(f"burst must be >= 1, got {self.burst!r}")


class TokenBucket:
    """Classic token bucket with an injectable clock.

    Refills lazily on read (no timer thread), so with a fake clock the
    grant/deny sequence is a pure function of the call times — tests pin
    the schedule exactly.  Not thread-safe on its own; the service calls
    it under its admission lock.
    """

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate!r}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst!r}")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate)

    def try_take(self) -> bool:
        """Take one token if available; never blocks."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until one token will be available (0 if one is now)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate


class DeficitRoundRobin:
    """Weighted deficit-round-robin over per-tenant FIFO queues.

    Every item costs one unit (one engine pass) and a tenant's quantum
    is its weight, so under saturation tenants are served in proportion
    to their weights — weight {a: 2, b: 1} yields the service order
    ``a a b a a b …``.  Within a tenant, strict FIFO (the single-queue
    ordering guarantee the WAL/resume protocol relies on is preserved
    per tenant).  Tenants with empty queues are retired from the
    rotation and their deficit dropped, so an idle tenant earns no
    credit it could later use to burst past its share.

    Not thread-safe; the service mutates it under its dispatch lock.
    """

    def __init__(self, weight_of: Callable[[str | None], int]) -> None:
        self._weight_of = weight_of
        self._queues: dict[str | None, deque[Any]] = {}
        self._rotation: deque[str | None] = deque()
        self._deficit: dict[str | None, float] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, tenant: str | None, item: Any) -> None:
        queue = self._queues.get(tenant)
        if queue is None:
            queue = self._queues[tenant] = deque()
        if not queue:
            # (re)activation: join the back of the rotation with a clean
            # deficit — no credit accrues while idle.
            if tenant not in self._deficit:
                self._rotation.append(tenant)
                self._deficit[tenant] = 0.0
        queue.append(item)
        self._size += 1

    def _retire(self, tenant: str | None) -> None:
        self._rotation.popleft()
        del self._deficit[tenant]
        del self._queues[tenant]

    def pop(self) -> Any:
        """Serve the next item under the weighted schedule.

        Raises :class:`IndexError` when empty, matching ``deque.popleft``.
        """
        if not self._size:
            raise IndexError("pop from an empty DeficitRoundRobin")
        while True:
            tenant = self._rotation[0]
            queue = self._queues[tenant]
            if self._deficit[tenant] >= 1.0:
                self._deficit[tenant] -= 1.0
                item = queue.popleft()
                self._size -= 1
                if not queue:
                    self._retire(tenant)
                return item
            # Recharge by the tenant's quantum and move to the back of
            # the rotation.  weight >= 1 guarantees one recharge is
            # enough to serve, so the loop always terminates.
            self._deficit[tenant] += max(1, int(self._weight_of(tenant)))
            self._rotation.rotate(-1)

    def drain(self) -> list[Any]:
        """Remove and return everything, rotation order then FIFO."""
        items: list[Any] = []
        for tenant in list(self._rotation):
            items.extend(self._queues[tenant])
        self._queues.clear()
        self._rotation.clear()
        self._deficit.clear()
        self._size = 0
        return items

    def tenants(self) -> Iterable[str | None]:
        """Tenants with queued work, rotation order."""
        return tuple(self._rotation)

    def depth(self, tenant: str | None) -> int:
        queue = self._queues.get(tenant)
        return len(queue) if queue else 0


#: brownout ladder rungs, in escalation order
BROWNOUT_LEVELS = ("normal", "clamp", "degrade", "shed")


class BrownoutLadder:
    """Deterministic graceful-degradation state machine.

    Maps (governor pressure level, dispatcher queue depth) to one of
    four rungs — ``normal`` → ``clamp`` (pipeline depth forced to 1) →
    ``degrade`` (IM requests served on the CB strategy, the PR 3 latch)
    → ``shed`` (lowest-weight tenants refused with ``retry_after``).
    Escalation jumps straight to the computed target; de-escalation
    steps down one rung per evaluation, so a single quiet sample between
    two pressure spikes cannot flap the service all the way back to
    normal.  Given the same sequence of (pressure, depth) inputs the
    transition list is identical — that is what makes seeded-chaos
    brownout assertions possible.

    Not thread-safe; the service evaluates it under its lock.
    """

    _PRESSURE_SCORE = {"ok": 0, "pressured": 1, "critical": 2}

    def __init__(self, max_queue_depth: int) -> None:
        self.max_queue_depth = max(1, int(max_queue_depth))
        self.level = 0

    @property
    def name(self) -> str:
        return BROWNOUT_LEVELS[self.level]

    def target(self, pressure: str, queue_depth: int) -> int:
        """Pure severity score → target rung for one observation."""
        score = self._PRESSURE_SCORE.get(pressure, 0)
        if queue_depth > self.max_queue_depth // 2:
            score += 1
        if queue_depth >= self.max_queue_depth:
            score += 1
        return min(score, len(BROWNOUT_LEVELS) - 1)

    def evaluate(self, pressure: str, queue_depth: int) -> str | None:
        """Advance the ladder; return ``"old->new"`` on a transition."""
        target = self.target(pressure, queue_depth)
        if target > self.level:
            new = target
        elif target < self.level:
            new = self.level - 1  # de-escalate one rung at a time
        else:
            return None
        old_name = BROWNOUT_LEVELS[self.level]
        self.level = new
        return f"{old_name}->{BROWNOUT_LEVELS[new]}"
