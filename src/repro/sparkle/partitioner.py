"""Partitioners: how pair-RDD keys map to partitions.

The paper's drivers key the DP table by tile coordinate ``(i, j)`` and
use Spark's default (hash) partitioner, noting its "probabilistic
nature" gives no block/partition affinity guarantee — which is why they
over-provision partitions (2x cores).  §VI's future work proposes
custom partitioners derived from the kernel dependency structure;
:class:`GridPartitioner` implements that proposal (and the ablation
benchmark measures the shuffle-volume difference).
"""

from __future__ import annotations

import zlib
from typing import Any

__all__ = ["Partitioner", "HashPartitioner", "GridPartitioner", "RangePartitioner"]


def _stable_hash(key: Any) -> int:
    """Deterministic across processes/runs (unlike ``hash`` with PYTHONHASHSEED)."""
    return zlib.crc32(repr(key).encode())


class Partitioner:
    """Maps keys to partition ids ``[0, num_partitions)``."""

    def __init__(self, num_partitions: int) -> None:
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        self.num_partitions = num_partitions

    def partition(self, key: Any) -> int:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.__dict__ == other.__dict__

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((type(self).__name__, self.num_partitions))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.num_partitions})"


class HashPartitioner(Partitioner):
    """Spark's default partitioner: stable hash modulo partition count."""

    def partition(self, key: Any) -> int:
        return _stable_hash(key) % self.num_partitions


class RangePartitioner(Partitioner):
    """Contiguous ranges over integer keys (for ordered workloads)."""

    def __init__(self, num_partitions: int, max_key: int) -> None:
        super().__init__(num_partitions)
        if max_key < 1:
            raise ValueError("max_key must be >= 1")
        self.max_key = max_key

    def partition(self, key: Any) -> int:
        k = int(key)
        k = min(max(k, 0), self.max_key - 1)
        return (k * self.num_partitions) // self.max_key


class GridPartitioner(Partitioner):
    """Tile-aware partitioner for ``(i, j)`` keys over an ``r x r`` grid.

    Assigns contiguous grid rows to the same partition so a kernel-B
    consumer stage finds its pivot-row tiles co-located, cutting shuffle
    volume versus hash placement — the paper's §VI proposal.  Falls back
    to hashing for non-tile keys.
    """

    def __init__(self, num_partitions: int, grid_r: int) -> None:
        super().__init__(num_partitions)
        if grid_r < 1:
            raise ValueError("grid_r must be >= 1")
        self.grid_r = grid_r

    def partition(self, key: Any) -> int:
        if (
            isinstance(key, tuple)
            and len(key) == 2
            and all(isinstance(c, (int,)) for c in key)
        ):
            i, j = key
            linear = (i % self.grid_r) * self.grid_r + (j % self.grid_r)
            return (linear * self.num_partitions) // (self.grid_r * self.grid_r)
        return _stable_hash(key) % self.num_partitions
