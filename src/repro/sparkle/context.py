"""The driver context: entry point to the sparkle engine.

:class:`SparkleContext` plays the role of ``pyspark.SparkContext`` for
the subset of the API the paper's programs use (plus a few conveniences):
``parallelize``, ``union``, ``broadcast``, shared persistent storage for
the Collect-Broadcast strategy, and the metrics/trace surface the cost
model consumes.

Example
-------
>>> from repro.sparkle import SparkleContext
>>> with SparkleContext(num_executors=2, cores_per_executor=2) as sc:
...     sc.parallelize(range(10)).map(lambda x: x * x).collect()[:3]
[0, 1, 4]
"""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Sequence

from ..util import sizeof_block
from .backend import BACKENDS
from .broadcast import Broadcast
from .supervisor import SupervisionConfig
from .chaos import FaultPlan
from .durable import DurableBlockStore
from .executors import ExecutorPool
from .memory import MemoryManager
from .metrics import EngineMetrics
from .rdd import RDD, ParallelCollectionRDD, UnionRDD
from .scheduler import DAGScheduler
from .shuffle import ShuffleManager
from .storage import BlockManager, SharedStorage

__all__ = ["SparkleContext"]


class SparkleContext:
    """Driver for an in-process simulated Spark cluster.

    Parameters
    ----------
    num_executors:
        Simulated executors (the paper runs one per compute node).
    cores_per_executor:
        Task slots per executor (``executor-cores``).
    default_parallelism:
        Default partition count for wide transformations; the paper's
        guideline is 2x the total core count, which is also our default.
    shuffle_capacity_bytes:
        Optional cap on live shuffle staging (models local SSD size; see
        :class:`~repro.sparkle.errors.StorageCapacityError`).
    storage_capacity_bytes:
        Optional cap on the CB shared storage.
    cache_capacity_bytes:
        Optional LRU bound on ``RDD.cache()`` storage (evicted blocks
        recompute from lineage, Spark's MEMORY_ONLY semantics).
    failure_injector:
        ``f(stage_id, partition, attempt) -> bool``; returning True kills
        that attempt (testing lineage recovery).  Legacy hook — prefer
        ``fault_plan``.
    fault_plan:
        A :class:`~repro.sparkle.chaos.FaultPlan` arming seeded task
        exceptions, executor loss, stragglers, transient storage /
        broadcast / staging faults.  While attached (and
        ``plan.serialize_tasks``), stage tasks run in partition order so
        recovery traces are deterministic.
    speculation:
        Race straggling task attempts against a speculative copy (first
        result wins, loser cancelled).
    blacklist_threshold:
        Faults an executor may accumulate before being excluded from
        placement (0 disables blacklisting).
    backoff_base / backoff_cap / backoff_jitter:
        Retry backoff: ``base * 2^(attempt-2)`` seconds, capped, then
        stretched by up to ``jitter`` of itself (deterministic per site).
    checkpoint_dir:
        Directory for the durable layer (:class:`~repro.sparkle.durable.
        DurableBlockStore`).  When set, ``RDD.checkpoint()`` becomes a
        reliable (on-disk, checksummed) checkpoint, CB shared-storage
        puts are written through to disk, and the GEP drivers journal
        iteration snapshots here for ``--resume``.  ``None`` keeps the
        historical all-in-memory behavior.
    memory_budget_bytes:
        Attach the unified memory governor (:class:`~repro.sparkle.
        memory.MemoryManager`): RDD-cache puts and shuffle staging share
        one byte budget, overflow spills to disk instead of raising
        :class:`~repro.sparkle.errors.StorageCapacityError`, and task
        launches queue when a working-set quantum does not fit
        (scheduler backpressure).  ``None`` (the default) keeps the
        ungoverned legacy engine, including its capacity failure modes.
    spill_dir:
        Directory for the spill store backing MEMORY_AND_DISK eviction
        and shuffle spill.  Defaults to ``<checkpoint_dir>/spill`` when
        a checkpoint dir is set, else a temporary directory removed in
        :meth:`stop`.  Ignored without ``memory_budget_bytes``.
    backend:
        Execution backend: ``"threads"`` (default — the historical
        deterministic in-process pool) or ``"processes"`` (one worker
        process per simulated executor; kernel tile updates run past the
        GIL, tiles move through shared-memory segments and pickle-5
        out-of-band buffers).  Results are bit-identical across
        backends; ``"threads"`` remains the reference data plane for
        the chaos / durability / memory determinism contracts.
    heartbeat_interval:
        Process-backend supervision (DESIGN.md §13): seconds between
        expected worker heartbeats; a worker silent for twice this is
        SIGKILLed by the driver watchdog.  ``0`` disables heartbeats and
        the watchdog.  Ignored by the thread backend (no process
        boundary to supervise).
    task_deadline:
        Optional per-offloaded-kernel-call wall-clock ceiling (seconds);
        overruns cancel or kill and retry under the scheduler's backoff.
    max_task_failures:
        Worker deaths one kernel call may cause before it is
        quarantined as poison
        (:class:`~repro.sparkle.errors.PoisonTaskError`).
    dispatch:
        Kernel-offload dispatch mode of the process backend (DESIGN.md
        §14): ``"tile"`` (historical; one driver↔worker round-trip per
        tile update) or ``"batch"`` (a stage's tile updates fuse into
        per-worker batches — one round-trip per worker per wave).
        Results are bit-identical across modes.  Ignored by the thread
        backend (no round-trip to batch).
    gang_stages:
        Barrier stage mode (JAMPI-style): dispatch an entire kernel
        wave as one gang spread across all workers, with all-or-nothing
        retry through the scheduler's attempt machinery.  Requires
        ``dispatch="batch"``.
    affinity:
        Tile-affinity scheduling: keep each tile landing on the worker
        whose arena slab already holds it (Spark preferred locations in
        miniature), with graceful rebalance on quarantine/respawn.
        Metered as ``affinity_hits``/``affinity_misses``.
    pipeline_depth:
        Wavefront pipelining lookahead (DESIGN.md §17): how many outer
        GEP iterations may be in flight at once.  ``1`` (default) keeps
        today's strict per-iteration barriers; ``>= 2`` lets the solver
        admit iteration ``k+1``'s stages as soon as their tile-level
        dependence gates settle, overlapping them with iteration ``k``'s
        trailing D wave.  Results stay bit-identical.
    """

    def __init__(
        self,
        num_executors: int = 4,
        cores_per_executor: int = 2,
        default_parallelism: int | None = None,
        shuffle_capacity_bytes: int | None = None,
        storage_capacity_bytes: int | None = None,
        cache_capacity_bytes: int | None = None,
        failure_injector: Callable[[int, int, int], bool] | None = None,
        max_task_retries: int = 3,
        fault_plan: FaultPlan | None = None,
        speculation: bool = True,
        blacklist_threshold: int = 4,
        backoff_base: float = 0.001,
        backoff_cap: float = 0.05,
        backoff_jitter: float = 0.5,
        checkpoint_dir: str | None = None,
        memory_budget_bytes: int | None = None,
        spill_dir: str | None = None,
        backend: str = "threads",
        heartbeat_interval: float = 0.25,
        task_deadline: float | None = None,
        max_task_failures: int = 3,
        dispatch: str = "tile",
        gang_stages: bool = False,
        affinity: bool = True,
        pipeline_depth: int = 1,
    ) -> None:
        self.num_executors = num_executors
        self.cores_per_executor = cores_per_executor
        self.default_parallelism = (
            default_parallelism
            if default_parallelism is not None
            else 2 * num_executors * cores_per_executor
        )
        if self.default_parallelism < 1:
            raise ValueError("default_parallelism must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        if dispatch not in ("tile", "batch"):
            raise ValueError(
                f"unknown dispatch mode {dispatch!r}; expected 'tile' or 'batch'"
            )
        if gang_stages and dispatch != "batch":
            raise ValueError("gang_stages requires dispatch='batch'")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        self.pipeline_depth = pipeline_depth
        self.backend = backend
        self.dispatch = dispatch
        self.gang_stages = gang_stages
        self.affinity = affinity
        self.metrics = EngineMetrics()
        self.metrics.backend = backend
        self.metrics.pipeline_depth = pipeline_depth
        self.failure_injector = failure_injector
        self.fault_plan = fault_plan
        self.supervision = SupervisionConfig(
            heartbeat_interval=heartbeat_interval or 0.0,
            task_deadline=task_deadline,
            max_task_failures=max_task_failures,
        )
        self._executors = ExecutorPool(
            num_executors,
            cores_per_executor,
            metrics=self.metrics,
            backend=backend,
            supervision=self.supervision,
            fault_plan=fault_plan,
            dispatch=dispatch,
            gang_stages=gang_stages,
            affinity=affinity,
        )
        #: shared-memory arena of the process backend (None for threads)
        self.arena = getattr(self._executors.backend, "arena", None)
        #: worker supervisor of the process backend (None for threads)
        self.supervisor = getattr(self._executors.backend, "supervisor", None)
        self.memory_manager: MemoryManager | None = None
        self.spill_store: DurableBlockStore | None = None
        self._spill_tmpdir: str | None = None
        if memory_budget_bytes is not None:
            if memory_budget_bytes < 1:
                raise ValueError("memory_budget_bytes must be >= 1")
            self.memory_manager = MemoryManager(
                memory_budget_bytes,
                metrics=self.metrics,
                task_quantum_bytes=max(
                    1, memory_budget_bytes // (4 * self._executors.total_slots)
                ),
                executor_resolver=self._executors.executor_for,
            )
            if spill_dir is None:
                if checkpoint_dir is not None:
                    spill_dir = str(Path(checkpoint_dir) / "spill")
                else:
                    self._spill_tmpdir = tempfile.mkdtemp(prefix="sparkle-spill-")
                    spill_dir = self._spill_tmpdir
            # Spill blocks are recomputable from lineage, so the spill
            # store skips fsyncs (sync=False) but keeps atomic renames
            # and checksummed read-back verification.
            self.spill_store = DurableBlockStore(
                spill_dir, metrics=self.metrics, fault_plan=fault_plan, sync=False
            )
        self._shuffle_manager = ShuffleManager(
            shuffle_capacity_bytes,
            fault_plan=fault_plan,
            memory=self.memory_manager,
            spill=self.spill_store,
            metrics=self.metrics,
            # Process backend: stage map outputs as pickle-5 streams with
            # identity-deduplicated out-of-band buffers (physical bytes).
            serialize=(backend == "processes"),
        )
        self._block_manager = BlockManager(
            cache_capacity_bytes,
            memory=self.memory_manager,
            spill=self.spill_store,
            metrics=self.metrics,
            arena=self.arena,
        )
        self.durable_store: DurableBlockStore | None = None
        self.shared_storage = SharedStorage(
            self.metrics,
            storage_capacity_bytes,
            fault_plan=fault_plan,
            arena=self.arena,
        )
        self._scheduler = DAGScheduler(
            self,
            max_task_retries,
            speculation=speculation,
            blacklist_threshold=blacklist_threshold,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            backoff_jitter=backoff_jitter,
        )
        self._next_rdd_id = 0
        self._next_broadcast_id = 0
        self._stopped = False
        if checkpoint_dir is not None:
            self.setCheckpointDir(checkpoint_dir)

    # ------------------------------------------------------------------
    # RDD creation
    # ------------------------------------------------------------------
    def parallelize(self, data: Iterable, num_partitions: int | None = None) -> RDD:
        """Distribute a driver-side collection."""
        self._check_active()
        n = num_partitions if num_partitions is not None else self.default_parallelism
        return ParallelCollectionRDD(self, list(data), n)

    def union(self, rdds: Sequence[RDD]) -> RDD:
        """Union of several RDDs (``sc.union`` in the paper's listings)."""
        self._check_active()
        rdds = list(rdds)
        if len(rdds) == 1:
            return rdds[0]
        return UnionRDD(self, rdds)

    def empty_rdd(self) -> RDD:
        return ParallelCollectionRDD(self, [], 1)

    # ------------------------------------------------------------------
    # driver services
    # ------------------------------------------------------------------
    def broadcast(self, value: Any) -> Broadcast:
        self._check_active()
        bc = Broadcast(
            self._next_broadcast_id,
            value,
            self.num_executors,
            self.metrics,
            fault_plan=self.fault_plan,
            arena=self.arena,
        )
        self._next_broadcast_id += 1
        return bc

    def run_job(self, rdd: RDD, func: Callable[[Iterator], Any], action: str) -> list:
        self._check_active()
        return self._scheduler.run_job(rdd, func, action)

    def setCheckpointDir(self, path: str) -> DurableBlockStore:
        """Attach the durable layer (PySpark's ``setCheckpointDir``).

        Idempotent for the same directory; rewires shared storage to
        write through to disk and upgrades ``RDD.checkpoint()`` to
        reliable checkpointing.
        """
        self._check_active()
        if self.durable_store is not None:
            if str(self.durable_store.root) != str(path):
                raise ValueError(
                    f"checkpoint dir already set to {self.durable_store.root}"
                )
            return self.durable_store
        self.durable_store = DurableBlockStore(
            path, metrics=self.metrics, fault_plan=self.fault_plan
        )
        self.shared_storage.backing = self.durable_store
        return self.durable_store

    def reclaim_solve_state(self, keep_job_traces: int = 64) -> None:
        """Release per-solve engine state between requests (service use).

        A context that lives across many solves would otherwise accrete
        staged shuffle outputs, cached blocks, CB shared-storage keys
        (``("pivot", k)`` / ``("bc", k, key)``), scheduler stage/attempt
        maps, and unbounded job traces.  Everything here releases through
        the same paths normal retirement uses (governor bytes, arena
        refcounts, spill files), so a swept context is byte-identical to
        a fresh one as far as the accounting ledgers can tell.

        ``keep_job_traces`` bounds the metrics trace ring; aggregate
        counters on :class:`~repro.sparkle.metrics.EngineMetrics` are
        untouched (they are cheap and context-lifetime by design).
        """
        self._check_active()
        self._shuffle_manager.clear()
        self._block_manager.clear()
        self.shared_storage.clear()
        self._scheduler.reclaim()
        if keep_job_traces >= 0 and len(self.metrics.jobs) > keep_job_traces:
            del self.metrics.jobs[: len(self.metrics.jobs) - keep_job_traces]

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        if not self._stopped:
            self._scheduler.close()
            self._executors.shutdown()
            if self._spill_tmpdir is not None:
                shutil.rmtree(self._spill_tmpdir, ignore_errors=True)
                self._spill_tmpdir = None
            self._stopped = True

    def __enter__(self) -> "SparkleContext":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def _check_active(self) -> None:
        if self._stopped:
            raise RuntimeError("SparkleContext is stopped")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _new_rdd_id(self) -> int:
        rid = self._next_rdd_id
        self._next_rdd_id += 1
        return rid

    def _record_collect(self, items: list) -> None:
        """Charge a collect's driver traffic to the current job trace."""
        if self.metrics.jobs:
            nbytes = sum(sizeof_block(x) for x in items)
            self.metrics.jobs[-1].collect_bytes += nbytes

    @property
    def total_cores(self) -> int:
        return self.num_executors * self.cores_per_executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparkleContext(executors={self.num_executors}, "
            f"cores={self.cores_per_executor}, "
            f"parallelism={self.default_parallelism})"
        )
