"""DAG scheduler: jobs → stages → tasks (paper §II).

An action submits the final RDD here.  The scheduler walks the lineage,
cutting it at every :class:`~repro.sparkle.rdd.ShuffleDependency` into
*stages* (maximal narrow-dependency pipelines), executes parent
shuffle-map stages first, then the result stage.  Stages whose shuffle
outputs are already materialized are skipped — Spark's stage reuse, which
makes the iterative GEP drivers' per-iteration actions incremental
instead of quadratic.

Tasks (one per partition) run on the executor pool.  The retry loop is
hardened against the chaos plane (:mod:`repro.sparkle.chaos`):

* retryable faults (:class:`~.errors.TaskKilled`,
  :class:`~.errors.ExecutorLost`, :class:`~.errors.TransientIOError`)
  recompute the task from lineage after exponential backoff with
  deterministic jitter;
* a :class:`~.errors.ShuffleFetchFailed` (map outputs dropped by an
  executor loss) first recomputes exactly the missing parent map
  partitions, then retries the fetching task — Spark's map-stage
  resubmission;
* straggling attempts race a speculative copy (first result wins, the
  loser is cancelled);
* executors accumulating faults past ``blacklist_threshold`` are
  excluded from placement.

Every recovery event is recorded on
:class:`~repro.sparkle.metrics.EngineMetrics` so reports can price the
overhead.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .chaos import CURRENT_TASK, deterministic_fraction
from .errors import (
    BlockNotFoundError,
    ExecutorLost,
    JobAborted,
    PoisonTaskError,
    RequestDeadlineExceeded,
    ShuffleFetchFailed,
    TaskDeadlineExceeded,
    TaskError,
    TaskKilled,
    TransientIOError,
    WorkerCrashed,
)
from .metrics import StageRecord, TaskRecord
from .rdd import NarrowDependency, RDD, ShuffleDependency

__all__ = ["DAGScheduler", "TaskContext", "Stage"]

#: Failures the retry loop recovers from (vs user errors → TaskError).
#: BlockNotFoundError is typed precisely so it lands here: a missing
#: storage block is a recomputation trigger, not a programmer error.
#: WorkerCrashed/TaskDeadlineExceeded arrive from the supervised process
#: backend *after* it already respawned the pool — the retry runs on
#: fresh workers.  PoisonTaskError is deliberately absent: a quarantined
#: task would kill every worker it is retried on.
#: RequestDeadlineExceeded is also deliberately absent: a request-plane
#: deadline is a *cancellation*, and retrying a cancelled job would keep
#: burning engine time past the point anyone wants the answer.
RETRYABLE = (
    TaskKilled,
    ExecutorLost,
    TransientIOError,
    BlockNotFoundError,
    WorkerCrashed,
    TaskDeadlineExceeded,
)


class TaskContext:
    """Per-task accounting handle threaded through ``RDD.compute``."""

    def __init__(self, stage_id: int, partition: int, attempt: int) -> None:
        self.stage_id = stage_id
        self.partition = partition
        self.attempt = attempt
        self.shuffle_bytes_read = 0
        self.shuffle_bytes_remote = 0
        self.records_out = 0
        self.kernel_updates = 0
        self.kernel_invocations = 0


@dataclass
class Stage:
    """A pipeline of narrow transformations ending at ``rdd``.

    ``shuffle_dep`` set ⇒ shuffle-map stage materializing that dependency;
    unset ⇒ the job's result stage.
    """

    id: int
    rdd: RDD
    shuffle_dep: ShuffleDependency | None
    parents: list["Stage"] = field(default_factory=list)

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions()

    @property
    def kind(self) -> str:
        return "shuffle-map" if self.shuffle_dep is not None else "result"


class _WaveStage:
    """Stage stand-in for dependence-admitted pipeline waves.

    Pipeline waves have no RDD or shuffle dependency — only an id, which
    is all the retry/chaos/backoff machinery keys on.
    """

    __slots__ = ("id",)

    def __init__(self, stage_id: int) -> None:
        self.id = stage_id


class DAGScheduler:
    """Builds and runs the stage graph for one context."""

    def __init__(
        self,
        ctx,
        max_task_retries: int = 3,
        *,
        speculation: bool = True,
        blacklist_threshold: int = 4,
        backoff_base: float = 0.001,
        backoff_cap: float = 0.05,
        backoff_jitter: float = 0.5,
    ) -> None:
        self.ctx = ctx
        self.max_task_retries = max_task_retries
        self.speculation = speculation
        self.blacklist_threshold = blacklist_threshold
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.backoff_jitter = backoff_jitter
        self._next_stage_id = 0
        # ShuffleDependency -> Stage, so shared parents build once (also
        # the lookup for fetch-failure recomputation).
        self._shuffle_stages: dict[int, Stage] = {}
        self._executor_faults: dict[int, int] = {}
        self._fault_lock = threading.Lock()
        # Task attempt ids are cumulative per (stage, partition), like
        # Spark's monotonically increasing TaskAttemptId: a partition
        # re-executed later (partial stage re-run, fetch-failure
        # recomputation) continues numbering instead of restarting at 1.
        # Attempt-keyed fault decisions therefore cannot re-fire on
        # recovery work, which is what makes ``max_attempt=1`` plans
        # recoverable by construction (see :mod:`repro.sparkle.chaos`).
        self._attempt_counts: dict[tuple[int, int], int] = {}
        self._attempt_lock = threading.Lock()
        # Reentrant: recomputing a map partition can itself hit a missing
        # grandparent shuffle and recurse into recovery.
        self._recompute_lock = threading.RLock()
        # Request-plane deadline (monotonic clock, None = no deadline):
        # checked at stage and attempt boundaries so a cancelled request
        # stops burning engine time without interrupting a kernel
        # mid-update (which would forfeit bit-identity guarantees).
        self._job_deadline: float | None = None
        # Wavefront pipeline state (DESIGN.md §17).  Pipelined tasks are
        # admitted per-tile, so there is no stage barrier at which the
        # backend could safely sweep scratch; instead an in-flight count
        # gates the sweep to quiescent instants, under this lock.
        self._pipeline_lock = threading.Lock()
        self._pipeline_cond = threading.Condition(self._pipeline_lock)
        self._pipeline_inflight = 0
        self._pipeline_queued = 0
        self._pipeline_lane = None  # FIFO lane for serialized (chaos) runs

    # ------------------------------------------------------------------
    # request-plane deadline
    # ------------------------------------------------------------------
    def set_job_deadline(self, deadline: float | None) -> None:
        """Arm (or clear) a driver-side deadline for subsequent jobs.

        ``deadline`` is an absolute ``time.monotonic()`` instant.  The
        solver service arms this with each request's remaining budget;
        overruns raise :class:`~.errors.RequestDeadlineExceeded`, which
        is *not* retryable — it propagates straight out of ``run_job``.
        """
        self._job_deadline = deadline

    def _check_deadline(self) -> None:
        deadline = self._job_deadline
        if deadline is not None:
            overrun = time.monotonic() - deadline
            if overrun > 0:
                raise RequestDeadlineExceeded(
                    f"request deadline passed {overrun:.3f}s ago; "
                    "cancelling the solve at a stage/attempt boundary",
                    deadline=deadline,
                    elapsed=overrun,
                )

    # ------------------------------------------------------------------
    # stage graph construction
    # ------------------------------------------------------------------
    def _parent_stages(self, rdd: RDD) -> list[Stage]:
        """Shuffle-map stages directly feeding ``rdd``'s pipeline."""
        parents: list[Stage] = []
        seen: set[int] = set()
        stack = [rdd]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            for dep in node.deps:
                if isinstance(dep, ShuffleDependency):
                    parents.append(self._shuffle_map_stage(dep))
                elif isinstance(dep, NarrowDependency):
                    stack.append(dep.rdd)
        return parents

    def _shuffle_map_stage(self, dep: ShuffleDependency) -> Stage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = Stage(self._new_stage_id(), dep.rdd, dep)
            stage.parents = self._parent_stages(dep.rdd)
            self._shuffle_stages[dep.shuffle_id] = stage
        return stage

    def _new_stage_id(self) -> int:
        sid = self._next_stage_id
        self._next_stage_id += 1
        return sid

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def run_job(
        self, rdd: RDD, func: Callable[[Iterator], Any], action: str
    ) -> list[Any]:
        """Execute ``func`` over every partition of ``rdd``; ordered results."""
        result_stage = Stage(self._new_stage_id(), rdd, None)
        result_stage.parents = self._parent_stages(rdd)
        trace = self.ctx.metrics.new_job(action)

        executed: set[int] = set()

        def run_parents(stage: Stage) -> None:
            for parent in stage.parents:
                if parent.id in executed:
                    continue
                executed.add(parent.id)
                run_parents(parent)
                if self._shuffle_materialized(parent):
                    continue  # stage reuse (skip)
                self._check_deadline()
                self._run_shuffle_map_stage(parent, trace)

        run_parents(result_stage)
        self._check_deadline()
        return self._run_result_stage(result_stage, func, trace)

    # ------------------------------------------------------------------
    def _run_tasks(self, thunks: list[Callable[[], Any]]) -> list[Any]:
        plan = self.ctx.fault_plan
        sequential = plan is not None and plan.serialize_tasks
        mm = getattr(self.ctx, "memory_manager", None)
        if mm is not None:
            thunks = [self._admitted(t, mm) for t in thunks]
        try:
            return self.ctx._executors.run_tasks(thunks, sequential=sequential)
        finally:
            # Stage boundary: the backend reclaims transient data-plane
            # state (e.g. shared-memory scratch abandoned by a task a
            # chaos fault killed mid-kernel).  Runs on abort too so
            # injected failures cannot leak segments.
            self.ctx._executors.backend.stage_complete()

    @staticmethod
    def _admitted(thunk: Callable[[], Any], mm) -> Callable[[], Any]:
        """Gate a task launch behind the memory governor (backpressure).

        A task slot blocks in :meth:`~repro.sparkle.memory.MemoryManager.
        admit_task` until a working-set quantum fits in the budget — except
        that the *first* task is always admitted, which guarantees forward
        progress (it runs, releases its bytes, and wakes the queue).
        """

        def gated() -> Any:
            grant = mm.admit_task()
            try:
                return thunk()
            finally:
                mm.finish_task(grant)

        return gated

    def _shuffle_materialized(self, stage: Stage) -> bool:
        dep = stage.shuffle_dep
        assert dep is not None
        sm = self.ctx._shuffle_manager
        return all(
            sm.has_output(dep.shuffle_id, mp) for mp in range(stage.num_tasks)
        )

    def _run_shuffle_map_stage(self, stage: Stage, trace) -> None:
        dep = stage.shuffle_dep
        assert dep is not None
        record = StageRecord(stage.id, stage.kind, stage.rdd.id, stage.num_tasks)
        sm = self.ctx._shuffle_manager

        # Partial re-execution: a partially materialized stage means an
        # executor loss dropped some of its outputs — recompute only those.
        pending = [
            p for p in range(stage.num_tasks) if not sm.has_output(dep.shuffle_id, p)
        ]
        if 0 < len(pending) < stage.num_tasks:
            self.ctx.metrics.partitions_recomputed += len(pending)

        def make_task(partition: int) -> Callable[[], TaskRecord]:
            def task() -> TaskRecord:
                return self._attempt_with_retries(
                    stage, partition, lambda tc: self._shuffle_map_task(dep, partition, tc)
                )

            return task

        try:
            record.tasks = self._run_tasks([make_task(p) for p in pending])
        except BaseException:
            # Stage abort: tasks that already staged map output for this
            # shuffle would otherwise leak staged bytes (and hold governor
            # reservations) forever — nobody will ever fetch a partially
            # materialized shuffle.  Drop everything this shuffle staged.
            sm.release(dep.shuffle_id)
            self.ctx.metrics.shuffle_partial_cleanups += 1
            raise
        trace.stages.append(record)

    def _shuffle_map_task(
        self, dep: ShuffleDependency, partition: int, tc: TaskContext
    ) -> int:
        """Compute the parent partition, bucket by reducer, write shuffle."""
        agg = dep.aggregator
        part = dep.partitioner
        buckets: dict[int, list] = {}
        if agg is not None and agg.map_side_combine:
            per_bucket: dict[int, dict] = {}
            for k, v in dep.rdd.iterator(partition, tc):
                b = part.partition(k)
                combiners = per_bucket.setdefault(b, {})
                if k in combiners:
                    combiners[k] = agg.merge_value(combiners[k], v)
                else:
                    combiners[k] = agg.create_combiner(v)
                tc.records_out += 1
            buckets = {b: list(c.items()) for b, c in per_bucket.items()}
        else:
            for item in dep.rdd.iterator(partition, tc):
                k = item[0]
                buckets.setdefault(part.partition(k), []).append(item)
                tc.records_out += 1
        return self.ctx._shuffle_manager.write(dep.shuffle_id, partition, buckets)

    def _run_result_stage(self, stage: Stage, func, trace) -> list[Any]:
        record = StageRecord(stage.id, stage.kind, stage.rdd.id, stage.num_tasks)
        results: list[Any] = [None] * stage.num_tasks

        def make_task(partition: int) -> Callable[[], TaskRecord]:
            def task() -> TaskRecord:
                def body(tc: TaskContext) -> int:
                    results[partition] = func(stage.rdd.iterator(partition, tc))
                    return 0

                return self._attempt_with_retries(stage, partition, body)

            return task

        record.tasks = self._run_tasks([make_task(p) for p in range(stage.num_tasks)])
        trace.stages.append(record)
        return results

    # ------------------------------------------------------------------
    # wavefront pipeline: dependence-driven stage admission (§17)
    # ------------------------------------------------------------------
    def submit_wave(self, trace, kind: str, tasks, tracker) -> StageRecord:
        """Admit a wave of tasks as their tile-level gates settle.

        ``tasks`` is a list of ``(partition, gates, body, on_result)``:
        each task registers with ``tracker`` and launches the moment its
        gates (``(level, i, j)`` keys) are all settled — possibly
        immediately — instead of at a global stage barrier.  ``body``
        runs inside the full existing task machinery (chaos injection,
        retries, speculation, backoff, blacklisting, deadline checks,
        memory admission); ``on_result`` runs after success to settle the
        wave's outputs.  Failures abort the tracker, surfacing the typed
        exception on the driver's next ``wait_all``.

        Returns the wave's :class:`StageRecord` (already on ``trace``);
        task records append to it as tasks finish.
        """
        stage = _WaveStage(self._new_stage_id())
        record = StageRecord(stage.id, f"pipeline:{kind}", -1, len(tasks))
        trace.stages.append(record)
        self.ctx.metrics.pipeline_waves += 1
        mm = getattr(self.ctx, "memory_manager", None)
        plan = self.ctx.fault_plan
        serial = plan is not None and plan.serialize_tasks
        for partition, gates, body, on_result in tasks:

            def launch(partition=partition, body=body, on_result=on_result):
                self._pipeline_submit(
                    lambda: self._run_pipeline_task(
                        stage, record, partition, body, on_result, tracker, mm
                    ),
                    serial,
                )

            tracker.when(gates, launch)
        return record

    def _pipeline_submit(self, thunk, serial: bool) -> None:
        with self._pipeline_lock:
            self._pipeline_queued += 1
        if serial:
            # Serialized chaos runs need a deterministic task order; a
            # single FIFO lane preserves admission order the way barrier
            # mode's in-order loop does.
            lane = self._ensure_pipeline_lane()
            lane.submit(thunk)
        else:
            self.ctx._executors.backend._ensure_pool().submit(thunk)

    def _ensure_pipeline_lane(self):
        if self._pipeline_lane is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pipeline_lane = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="pipeline-lane"
            )
        return self._pipeline_lane

    def _run_pipeline_task(
        self, stage, record, partition: int, body, on_result, tracker, mm
    ) -> None:
        try:
            if tracker.error is None:
                with self._pipeline_lock:
                    self._pipeline_inflight += 1
                try:
                    result_cell: dict[str, Any] = {}

                    def wrapped(tc: TaskContext) -> int:
                        result_cell["out"] = body(tc)
                        return 0

                    def attempt() -> TaskRecord:
                        return self._attempt_with_retries(stage, partition, wrapped)

                    runner = attempt if mm is None else self._admitted(attempt, mm)
                    task_record = runner()
                    record.tasks.append(task_record)
                    on_result(result_cell["out"])
                except BaseException as exc:  # noqa: BLE001 - typed abort
                    tracker.abort(exc)
                finally:
                    with self._pipeline_lock:
                        self._pipeline_inflight -= 1
                        if self._pipeline_inflight == 0:
                            # Quiescent instant: no pipelined kernel can
                            # be holding backend scratch, so the sweep
                            # that barrier mode runs per stage is safe
                            # here.  Held under the lock so no new task
                            # can stage scratch mid-sweep.
                            self.ctx._executors.backend.stage_complete()
        finally:
            with self._pipeline_cond:
                self._pipeline_queued -= 1
                if self._pipeline_queued == 0:
                    self._pipeline_cond.notify_all()

    def pipeline_drain(self, timeout: float | None = 60.0) -> None:
        """Block until no pipelined task is queued or running.

        The driver calls this on both success and failure before handing
        the context to anyone else (next request, teardown): a zombie
        task finishing after an abort must not race the service's
        between-requests state sweep.
        """
        with self._pipeline_cond:
            while self._pipeline_queued > 0:
                if not self._pipeline_cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"pipeline drain stalled with "
                        f"{self._pipeline_queued} tasks outstanding"
                    )

    def close(self) -> None:
        """Release pipeline resources (context stop)."""
        lane = self._pipeline_lane
        self._pipeline_lane = None
        if lane is not None:
            lane.shutdown(wait=True)

    # ------------------------------------------------------------------
    # retry loop & recovery
    # ------------------------------------------------------------------
    def backoff_delay(self, stage_id: int, partition: int, attempt: int) -> float:
        """Pause before retry ``attempt`` (>= 2): capped exponential with
        deterministic jitter derived from the chaos seed.

        ``base * 2^(attempt-2)``, capped at ``backoff_cap``, stretched by
        up to ``backoff_jitter`` of itself — same site, same seed, same
        delay, which the recovery tests pin down.
        """
        if self.backoff_base <= 0:
            return 0.0
        raw = self.backoff_base * (2 ** (attempt - 2))
        capped = min(raw, self.backoff_cap)
        plan = self.ctx.fault_plan
        seed = plan.seed if plan is not None else 0
        frac = deterministic_fraction(seed, "backoff", (stage_id, partition, attempt))
        return capped * (1.0 + self.backoff_jitter * frac)

    def _next_attempt(self, stage_id: int, partition: int) -> int:
        with self._attempt_lock:
            n = self._attempt_counts.get((stage_id, partition), 0) + 1
            self._attempt_counts[(stage_id, partition)] = n
            return n

    def _attempt_with_retries(
        self, stage: Stage, partition: int, body: Callable[[TaskContext], int]
    ) -> TaskRecord:
        """Run one task, retrying injected/transient failures from lineage."""
        ctx = self.ctx
        metrics = ctx.metrics
        injector = ctx.failure_injector
        last_exc: BaseException | None = None
        backoff_total = 0.0
        for local_attempt in range(1, self.max_task_retries + 2):
            # Raised outside the try below, so it bypasses the RETRYABLE
            # classification entirely: a deadline overrun mid-retry-storm
            # cuts the storm instead of riding it to JobAborted.
            self._check_deadline()
            attempt = self._next_attempt(stage.id, partition)
            if local_attempt > 1:
                pause = self.backoff_delay(stage.id, partition, attempt)
                if pause > 0:
                    metrics.backoff_waits += 1
                    metrics.backoff_seconds_total += pause
                    backoff_total += pause
                    time.sleep(pause)
            tc = TaskContext(stage.id, partition, attempt)
            start = time.perf_counter()
            token = CURRENT_TASK.set(tc)
            try:
                if injector is not None and injector(stage.id, partition, attempt):
                    raise TaskKilled(
                        f"injected failure: stage {stage.id} partition {partition} "
                        f"attempt {attempt}"
                    )
                shuffle_written, speculative_win = self._run_attempt(
                    stage, partition, attempt, tc, body
                )
            except ShuffleFetchFailed as exc:
                last_exc = exc
                metrics.tasks_retried += 1
                self._recompute_missing(exc)
                continue
            except RETRYABLE as exc:
                last_exc = exc
                metrics.tasks_retried += 1
                if isinstance(exc, TransientIOError):
                    metrics.transient_io_failures += 1
                if isinstance(exc, ExecutorLost):
                    faulty = exc.executor
                elif isinstance(exc, WorkerCrashed) and exc.slot is not None:
                    # Affinity routing may have run this task's kernels
                    # on a worker other than the partition's nominal
                    # executor; charge the fault to the slot that died.
                    faulty = exc.slot % ctx._executors.num_executors
                else:
                    faulty = ctx._executors.executor_for(partition)
                self._count_executor_fault(faulty)
                continue
            except PoisonTaskError:
                # Quarantined by the supervision layer: retrying would
                # only kill more workers.  Propagate typed so the GEP
                # solver's --degrade-on-crash fallback can catch it.
                raise
            except Exception as exc:
                raise TaskError(
                    f"task failed in stage {stage.id}, partition {partition}: {exc}",
                    stage.id,
                    partition,
                ) from exc
            finally:
                CURRENT_TASK.reset(token)
            return TaskRecord(
                partition=partition,
                executor=ctx._executors.executor_for(partition),
                attempts=attempt,
                records_out=tc.records_out,
                shuffle_bytes_written=shuffle_written,
                shuffle_bytes_read=tc.shuffle_bytes_read,
                shuffle_bytes_remote=tc.shuffle_bytes_remote,
                kernel_updates=tc.kernel_updates,
                kernel_invocations=tc.kernel_invocations,
                wall_seconds=time.perf_counter() - start,
                start_ts=start,
                end_ts=time.perf_counter(),
                backoff_seconds=backoff_total,
                speculative_win=speculative_win,
            )
        raise JobAborted(
            f"stage {stage.id} partition {partition} failed after "
            f"{self.max_task_retries + 1} attempts"
        ) from last_exc

    def _run_attempt(
        self,
        stage: Stage,
        partition: int,
        attempt: int,
        tc: TaskContext,
        body: Callable[[TaskContext], int],
    ) -> tuple[int, bool]:
        """One attempt, with plan-injected task faults and speculation."""
        plan = self.ctx.fault_plan
        if plan is not None:
            fault = plan.task_fault(stage.id, partition, attempt)
            if fault == "lose":
                executor = self._lose_executor(partition)
                raise ExecutorLost(
                    f"injected executor loss: executor {executor} died running "
                    f"stage {stage.id} partition {partition} attempt {attempt}",
                    executor,
                )
            if fault == "kill":
                raise TaskKilled(
                    f"injected task exception: stage {stage.id} "
                    f"partition {partition} attempt {attempt}"
                )
            delay = plan.straggler_delay(stage.id, partition, attempt)
            if delay > 0.0:
                if self.speculation:
                    return self._run_speculative(stage, partition, attempt, tc, body, delay)
                time.sleep(delay)
        return body(tc), False

    def _run_speculative(
        self,
        stage: Stage,
        partition: int,
        attempt: int,
        tc: TaskContext,
        body: Callable[[TaskContext], int],
        delay: float,
    ) -> tuple[int, bool]:
        """Race a straggling attempt against a speculative copy.

        The original stalls for ``delay`` seconds (the injected
        straggle); the speculative copy starts immediately.  First result
        wins and the loser is cancelled — a straggler still inside its
        stall never computes, so it cannot mutate shared state after
        losing.  Both copies are pure recomputations from lineage, so if
        both do finish the results are identical and either is safe.
        """
        metrics = self.ctx.metrics
        cancel = threading.Event()
        original: dict[str, int] = {}

        def straggler() -> None:
            if cancel.wait(delay):
                return  # cancelled while stalled: the speculative copy won
            straggler_tc = TaskContext(stage.id, partition, attempt)
            token = CURRENT_TASK.set(straggler_tc)
            try:
                original["written"] = body(straggler_tc)
            except BaseException:  # noqa: BLE001 - loser's failure is moot
                pass
            finally:
                CURRENT_TASK.reset(token)

        thread = threading.Thread(
            target=straggler,
            name=f"straggler-s{stage.id}p{partition}",
            daemon=True,
        )
        metrics.speculative_launched += 1
        thread.start()
        try:
            written = body(tc)  # the speculative copy, at full speed
        finally:
            cancel.set()
            thread.join()
        if "written" in original:
            # The straggler finished despite the stall — it wins the race.
            return original["written"], False
        metrics.speculative_wins += 1
        metrics.stragglers_cancelled += 1
        return written, True

    def _lose_executor(self, partition: int) -> int:
        """Kill the executor owning ``partition``; drop its shuffle outputs."""
        pool = self.ctx._executors
        executor = pool.executor_for(partition)
        self.ctx._shuffle_manager.drop_executor_outputs(
            lambda mp: pool.executor_for(mp) == executor
        )
        self.ctx.metrics.executor_loss_events += 1
        return executor

    def _recompute_missing(self, exc: ShuffleFetchFailed) -> None:
        """Recompute dropped map outputs from lineage, then let the
        fetching task retry (Spark's map-stage resubmission)."""
        sm = self.ctx._shuffle_manager
        stage = self._shuffle_stages.get(exc.shuffle_id)
        if stage is None or stage.shuffle_dep is None:
            raise exc  # unknown shuffle: a genuine scheduler bug
        dep = stage.shuffle_dep
        with self._recompute_lock:
            missing = [
                mp for mp in exc.missing if not sm.has_output(exc.shuffle_id, mp)
            ]
            for mp in missing:
                self._attempt_with_retries(
                    stage, mp, lambda tc, _mp=mp: self._shuffle_map_task(dep, _mp, tc)
                )
                self.ctx.metrics.partitions_recomputed += 1

    def reclaim(self) -> None:
        """Forget per-solve stage state (the service's between-requests
        sweep).

        A long-lived context accretes one :class:`Stage` per shuffle
        dependency and one attempt counter per (stage, partition) for
        every solve it runs; after the solve's RDDs are dead this is
        pure leak.  Executor fault counts survive on purpose — backend
        health is context-lifetime knowledge, not per-solve.
        """
        self._shuffle_stages.clear()
        with self._attempt_lock:
            self._attempt_counts.clear()

    def _count_executor_fault(self, executor: int) -> None:
        """Per-executor failure accounting; blacklist past the threshold."""
        with self._fault_lock:
            count = self._executor_faults.get(executor, 0) + 1
            self._executor_faults[executor] = count
        if (
            self.blacklist_threshold > 0
            and count >= self.blacklist_threshold
            and self.ctx._executors.blacklist(executor)
        ):
            self.ctx.metrics.blacklisted_executors.append(executor)
