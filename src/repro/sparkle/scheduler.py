"""DAG scheduler: jobs → stages → tasks (paper §II).

An action submits the final RDD here.  The scheduler walks the lineage,
cutting it at every :class:`~repro.sparkle.rdd.ShuffleDependency` into
*stages* (maximal narrow-dependency pipelines), executes parent
shuffle-map stages first, then the result stage.  Stages whose shuffle
outputs are already materialized are skipped — Spark's stage reuse, which
makes the iterative GEP drivers' per-iteration actions incremental
instead of quadratic.

Tasks (one per partition) run on the executor pool.  A task killed by
the failure injector is retried up to ``max_task_retries``, recomputing
from lineage — the RDD fault-tolerance model, exercised by the
failure-injection tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .errors import JobAborted, TaskError, TaskKilled
from .metrics import StageRecord, TaskRecord
from .rdd import NarrowDependency, RDD, ShuffleDependency

__all__ = ["DAGScheduler", "TaskContext", "Stage"]


class TaskContext:
    """Per-task accounting handle threaded through ``RDD.compute``."""

    def __init__(self, stage_id: int, partition: int, attempt: int) -> None:
        self.stage_id = stage_id
        self.partition = partition
        self.attempt = attempt
        self.shuffle_bytes_read = 0
        self.shuffle_bytes_remote = 0
        self.records_out = 0
        self.kernel_updates = 0
        self.kernel_invocations = 0


@dataclass
class Stage:
    """A pipeline of narrow transformations ending at ``rdd``.

    ``shuffle_dep`` set ⇒ shuffle-map stage materializing that dependency;
    unset ⇒ the job's result stage.
    """

    id: int
    rdd: RDD
    shuffle_dep: ShuffleDependency | None
    parents: list["Stage"] = field(default_factory=list)

    @property
    def num_tasks(self) -> int:
        return self.rdd.num_partitions()

    @property
    def kind(self) -> str:
        return "shuffle-map" if self.shuffle_dep is not None else "result"


class DAGScheduler:
    """Builds and runs the stage graph for one context."""

    def __init__(self, ctx, max_task_retries: int = 3) -> None:
        self.ctx = ctx
        self.max_task_retries = max_task_retries
        self._next_stage_id = 0
        # ShuffleDependency -> Stage, so shared parents build once.
        self._shuffle_stages: dict[int, Stage] = {}

    # ------------------------------------------------------------------
    # stage graph construction
    # ------------------------------------------------------------------
    def _parent_stages(self, rdd: RDD) -> list[Stage]:
        """Shuffle-map stages directly feeding ``rdd``'s pipeline."""
        parents: list[Stage] = []
        seen: set[int] = set()
        stack = [rdd]
        while stack:
            node = stack.pop()
            if node.id in seen:
                continue
            seen.add(node.id)
            for dep in node.deps:
                if isinstance(dep, ShuffleDependency):
                    parents.append(self._shuffle_map_stage(dep))
                elif isinstance(dep, NarrowDependency):
                    stack.append(dep.rdd)
        return parents

    def _shuffle_map_stage(self, dep: ShuffleDependency) -> Stage:
        stage = self._shuffle_stages.get(dep.shuffle_id)
        if stage is None:
            stage = Stage(self._new_stage_id(), dep.rdd, dep)
            stage.parents = self._parent_stages(dep.rdd)
            self._shuffle_stages[dep.shuffle_id] = stage
        return stage

    def _new_stage_id(self) -> int:
        sid = self._next_stage_id
        self._next_stage_id += 1
        return sid

    # ------------------------------------------------------------------
    # job execution
    # ------------------------------------------------------------------
    def run_job(
        self, rdd: RDD, func: Callable[[Iterator], Any], action: str
    ) -> list[Any]:
        """Execute ``func`` over every partition of ``rdd``; ordered results."""
        result_stage = Stage(self._new_stage_id(), rdd, None)
        result_stage.parents = self._parent_stages(rdd)
        trace = self.ctx.metrics.new_job(action)

        executed: set[int] = set()

        def run_parents(stage: Stage) -> None:
            for parent in stage.parents:
                if parent.id in executed:
                    continue
                executed.add(parent.id)
                run_parents(parent)
                if self._shuffle_materialized(parent):
                    continue  # stage reuse (skip)
                self._run_shuffle_map_stage(parent, trace)

        run_parents(result_stage)
        return self._run_result_stage(result_stage, func, trace)

    # ------------------------------------------------------------------
    def _shuffle_materialized(self, stage: Stage) -> bool:
        dep = stage.shuffle_dep
        assert dep is not None
        sm = self.ctx._shuffle_manager
        return all(
            sm.has_output(dep.shuffle_id, mp) for mp in range(stage.num_tasks)
        )

    def _run_shuffle_map_stage(self, stage: Stage, trace) -> None:
        dep = stage.shuffle_dep
        assert dep is not None
        record = StageRecord(stage.id, stage.kind, stage.rdd.id, stage.num_tasks)

        def make_task(partition: int) -> Callable[[], TaskRecord]:
            def task() -> TaskRecord:
                return self._attempt_with_retries(
                    stage, partition, lambda tc: self._shuffle_map_task(dep, partition, tc)
                )

            return task

        record.tasks = self.ctx._executors.run_tasks(
            [make_task(p) for p in range(stage.num_tasks)]
        )
        trace.stages.append(record)

    def _shuffle_map_task(
        self, dep: ShuffleDependency, partition: int, tc: TaskContext
    ) -> int:
        """Compute the parent partition, bucket by reducer, write shuffle."""
        agg = dep.aggregator
        part = dep.partitioner
        buckets: dict[int, list] = {}
        if agg is not None and agg.map_side_combine:
            per_bucket: dict[int, dict] = {}
            for k, v in dep.rdd.iterator(partition, tc):
                b = part.partition(k)
                combiners = per_bucket.setdefault(b, {})
                if k in combiners:
                    combiners[k] = agg.merge_value(combiners[k], v)
                else:
                    combiners[k] = agg.create_combiner(v)
                tc.records_out += 1
            buckets = {b: list(c.items()) for b, c in per_bucket.items()}
        else:
            for item in dep.rdd.iterator(partition, tc):
                k = item[0]
                buckets.setdefault(part.partition(k), []).append(item)
                tc.records_out += 1
        return self.ctx._shuffle_manager.write(dep.shuffle_id, partition, buckets)

    def _run_result_stage(self, stage: Stage, func, trace) -> list[Any]:
        record = StageRecord(stage.id, stage.kind, stage.rdd.id, stage.num_tasks)
        results: list[Any] = [None] * stage.num_tasks

        def make_task(partition: int) -> Callable[[], TaskRecord]:
            def task() -> TaskRecord:
                def body(tc: TaskContext) -> int:
                    results[partition] = func(stage.rdd.iterator(partition, tc))
                    return 0

                return self._attempt_with_retries(stage, partition, body)

            return task

        record.tasks = self.ctx._executors.run_tasks(
            [make_task(p) for p in range(stage.num_tasks)]
        )
        trace.stages.append(record)
        return results

    # ------------------------------------------------------------------
    def _attempt_with_retries(
        self, stage: Stage, partition: int, body: Callable[[TaskContext], int]
    ) -> TaskRecord:
        """Run one task, retrying injected failures from lineage."""
        injector = self.ctx.failure_injector
        last_exc: BaseException | None = None
        for attempt in range(1, self.max_task_retries + 2):
            tc = TaskContext(stage.id, partition, attempt)
            start = time.perf_counter()
            try:
                if injector is not None and injector(stage.id, partition, attempt):
                    raise TaskKilled(
                        f"injected failure: stage {stage.id} partition {partition} "
                        f"attempt {attempt}"
                    )
                shuffle_written = body(tc)
            except TaskKilled as exc:
                last_exc = exc
                self.ctx.metrics.tasks_retried += 1
                continue
            except Exception as exc:
                raise TaskError(
                    f"task failed in stage {stage.id}, partition {partition}: {exc}",
                    stage.id,
                    partition,
                ) from exc
            return TaskRecord(
                partition=partition,
                executor=self.ctx._executors.executor_for(partition),
                attempts=attempt,
                records_out=tc.records_out,
                shuffle_bytes_written=shuffle_written,
                shuffle_bytes_read=tc.shuffle_bytes_read,
                shuffle_bytes_remote=tc.shuffle_bytes_remote,
                kernel_updates=tc.kernel_updates,
                kernel_invocations=tc.kernel_invocations,
                wall_seconds=time.perf_counter() - start,
            )
        raise JobAborted(
            f"stage {stage.id} partition {partition} failed after "
            f"{self.max_task_retries + 1} attempts"
        ) from last_exc
