"""Tile-affinity scheduling: Spark-style preferred locations for tiles.

On a real cluster Spark's DAGScheduler asks each RDD for *preferred
locations* and tries to land a task where its data already lives.  The
process backend has the same locality structure in miniature: a worker
that has already attached the shared-memory slabs holding a tile's
operands (and whose page cache is warm with them) services that tile
cheaper than a cold worker.  :class:`AffinityRegistry` is the driver's
memory of that placement — tile coordinate → worker slot — consulted on
every kernel dispatch (DESIGN.md §14).

Semantics:

* **route** — a tile already homed on a worker keeps landing there
  (``affinity_hits``); a first-touch tile is homed on the caller's
  default slot (``affinity_misses``).  Hit rate on a steady grid (every
  iteration touches the same tiles) converges to ``1 - 1/iterations``.
* **rebalance** — when a worker is quarantined, respawned, or
  blacklisted, every tile homed on it is evicted
  (``affinity_rebalances``); those tiles re-home gracefully on their
  next dispatch instead of chasing a dead slot.
* **reset** — the registry is scoped to one solve; the GEP solver
  resets it at solve start so placements never leak across solves.

Placement is a scheduling hint only: it can never change results (every
worker computes bit-identical tiles), so races between concurrent tasks
homing the same tile are benign and the registry just takes the last
write.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import Hashable, Iterable, Sequence

__all__ = ["AffinityRegistry"]


class AffinityRegistry:
    """Driver-side tile → worker-slot placement memory."""

    def __init__(self, num_workers: int, *, metrics=None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self._metrics = metrics
        self._lock = threading.Lock()
        self._home: dict[Hashable, int] = {}

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def route(self, key: Hashable, default: int) -> int:
        """Slot for one tile: its home if known, else home it on
        ``default``.  Meters a hit or a miss either way."""
        with self._lock:
            slot = self._home.get(key)
            if slot is not None:
                self._meter(hits=1)
                return slot
            self._home[key] = default % self.num_workers
            self._meter(misses=1)
            return default % self.num_workers

    def route_batch(self, keys: Sequence[Hashable], default: int) -> int:
        """One slot for a whole batch (the non-gang fused dispatch).

        Majority vote over the homed tiles picks the slot (ties break to
        the lowest slot id, deterministically); with no homed tile the
        caller's default wins.  Every tile is then (re-)homed on the
        chosen slot — tiles that voted for it are hits, the rest are
        misses.
        """
        if not keys:
            return default % self.num_workers
        with self._lock:
            votes = Counter()
            for key in keys:
                slot = self._home.get(key)
                if slot is not None:
                    votes[slot] += 1
            if votes:
                top = max(votes.values())
                chosen = min(s for s, c in votes.items() if c == top)
            else:
                chosen = default % self.num_workers
            hits = votes.get(chosen, 0)
            self._meter(hits=hits, misses=len(keys) - hits)
            for key in keys:
                self._home[key] = chosen
            return chosen

    def route_many(
        self, keys: Sequence[Hashable], defaults: Sequence[int]
    ) -> list[int]:
        """Per-tile routing for a gang wave: each tile goes to its home
        (hit) or is homed on its own default (miss)."""
        out = []
        hits = misses = 0
        with self._lock:
            for key, default in zip(keys, defaults):
                slot = self._home.get(key)
                if slot is None:
                    slot = default % self.num_workers
                    self._home[key] = slot
                    misses += 1
                else:
                    hits += 1
                out.append(slot)
            self._meter(hits=hits, misses=misses)
        return out

    # ------------------------------------------------------------------
    # rebalance & lifecycle
    # ------------------------------------------------------------------
    def invalidate_worker(self, slot: int) -> int:
        """Evict every tile homed on ``slot`` (quarantine / respawn /
        blacklist); returns how many were spilled."""
        slot = slot % self.num_workers
        with self._lock:
            evicted = [k for k, s in self._home.items() if s == slot]
            for key in evicted:
                del self._home[key]
            self._meter(rebalances=len(evicted))
            return len(evicted)

    def reset(self) -> None:
        """Forget every placement (solve boundary — no cross-solve leaks)."""
        with self._lock:
            self._home.clear()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[Hashable, int]:
        with self._lock:
            return dict(self._home)

    def slots_of(self, keys: Iterable[Hashable]) -> set[int]:
        with self._lock:
            return {self._home[k] for k in keys if k in self._home}

    def __len__(self) -> int:
        with self._lock:
            return len(self._home)

    def _meter(self, hits: int = 0, misses: int = 0, rebalances: int = 0):
        m = self._metrics
        if m is None:
            return
        if hits:
            m.affinity_hits += hits
        if misses:
            m.affinity_misses += misses
        if rebalances:
            m.affinity_rebalances += rebalances
