"""Block caching and the shared persistent storage used by CB drivers.

:class:`BlockManager` backs ``RDD.cache()``: computed partitions are kept
in (driver-process) memory keyed by ``(rdd_id, partition)``.

:class:`SharedStorage` models the "shared persistent storage" of the
Collect-Broadcast strategy (paper §IV-C): the driver collects blocks and
writes them here; executors read them back in the next stage.  Reads and
writes are byte-accounted so the cost model can price the staging I/O
(SSD on cluster 1, spinning disk on cluster 2 — the Fig. 8 axis).  With
a :class:`~repro.sparkle.durable.DurableBlockStore` attached as
``backing`` (a context constructed with ``checkpoint_dir``), every put
also lands on disk — making the §IV-C storage *actually* persistent —
and a memory miss falls back to a checksummed durable read.
"""

from __future__ import annotations

import threading
from typing import Any

from ..util import sizeof_block
from .errors import (
    BlockNotFoundError,
    CorruptBlockError,
    StorageCapacityError,
    TransientIOError,
)
from .serialize import release_nested, share_nested

__all__ = ["BlockManager", "SharedStorage"]


class BlockManager:
    """In-memory cache of computed RDD partitions.

    Without a :class:`~repro.sparkle.memory.MemoryManager` this is the
    historical LRU cache (Spark's MEMORY_ONLY): an optional byte
    capacity drops the least-recently-used partition when full, which is
    safe — a dropped block is simply recomputed from lineage on next
    access.

    With a governor (``memory``) and a spill store (``spill``, a
    :class:`~repro.sparkle.durable.DurableBlockStore`), puts reserve
    storage bytes against the unified budget and eviction becomes
    MEMORY_AND_DISK: victims are written to the spill store (crash-
    atomic, checksummed) instead of discarded, and a memory miss falls
    back to a verifying disk read.  A spilled block that fails its
    checksum is *never* served — it is dropped and the caller recomputes
    from lineage, metered as ``corrupt_blocks_detected``.  Blocks
    persisted MEMORY_ONLY opt out of the disk hop and evict by dropping.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        *,
        memory=None,
        spill=None,
        metrics=None,
        arena=None,
    ) -> None:
        from collections import OrderedDict

        self._blocks: "OrderedDict[tuple[int, int], list]" = OrderedDict()
        self._bytes: dict[tuple[int, int], int] = {}
        self._levels: dict[tuple[int, int], str] = {}
        self._owners: dict[tuple[int, int], Any] = {}
        self._spilled: set[tuple[int, int]] = set()
        self._live_bytes = 0
        self._lock = threading.Lock()
        self.capacity_bytes = capacity_bytes
        self.memory = memory
        self.spill = spill
        self.arena = arena
        self._metrics = metrics
        self.evictions = 0

    @staticmethod
    def _spill_key(key: tuple[int, int]) -> tuple:
        return ("cache", key[0], key[1])

    def put(
        self,
        rdd_id: int,
        partition: int,
        items: list,
        level: str = "MEMORY_AND_DISK",
    ) -> None:
        key = (rdd_id, partition)
        if self.arena is not None:
            # Process backend: park cached tile payloads in shared
            # memory so later kernel offloads pass them as segment
            # descriptors (zero-copy) instead of re-serializing.  The
            # shared views are read-only — consumers copy before
            # mutating, which is the engine-wide retry-purity rule.
            items = share_nested(self.arena, items)
        nbytes = sum(sizeof_block(x) for x in items)
        if self.memory is not None:
            self._put_governed(key, items, nbytes, level)
            return
        with self._lock:
            if (
                self.capacity_bytes is not None
                and nbytes > self.capacity_bytes
            ):
                return  # single block larger than the cache: skip caching
            old = self._blocks.get(key)
            self._live_bytes += nbytes - self._bytes.get(key, 0)
            self._blocks[key] = items
            self._blocks.move_to_end(key)
            self._bytes[key] = nbytes
            if old is not None and self.arena is not None and old is not items:
                release_nested(self.arena, old)
            if self.capacity_bytes is not None:
                while self._live_bytes > self.capacity_bytes and len(self._blocks) > 1:
                    victim, victim_items = self._blocks.popitem(last=False)
                    self._live_bytes -= self._bytes.pop(victim)
                    self.evictions += 1
                    if self.arena is not None:
                        release_nested(self.arena, victim_items)

    def _put_governed(
        self, key: tuple[int, int], items: list, nbytes: int, level: str
    ) -> None:
        """Reserve-then-cache; evict-to-disk until the reservation fits."""
        mm = self.memory
        owner = mm.current_owner()
        with self._lock:
            if key in self._blocks:  # idempotent re-put: refresh in place
                self._drop_locked(key)
            self._spilled.discard(key)
            reserved = mm.reserve("storage", owner, nbytes)
            while not reserved and self._blocks:
                self._evict_one_locked()
                reserved = mm.reserve("storage", owner, nbytes)
            if reserved:
                self._blocks[key] = items
                self._bytes[key] = nbytes
                self._levels[key] = level
                self._owners[key] = owner
                self._live_bytes += nbytes
                return
        # No memory even with an empty cache: disk-only residency.
        if self.spill is not None and level == "MEMORY_AND_DISK":
            self._spill_items(key, items, nbytes)

    def _evict_one_locked(self) -> None:
        """Evict the LRU block — to the spill store when its level allows."""
        victim, items = self._blocks.popitem(last=False)
        nbytes = self._bytes.pop(victim)
        level = self._levels.pop(victim, "MEMORY_AND_DISK")
        owner = self._owners.pop(victim, None)
        self._live_bytes -= nbytes
        self.evictions += 1
        self.memory.release("storage", owner, nbytes)
        if self.spill is not None and level == "MEMORY_AND_DISK":
            self._spill_items(victim, items, nbytes)
        # Spill pickles (copies) the payload, so the shm allocation is
        # releasable either way — the ledger and the resident shm pages
        # shrink together.
        if self.arena is not None:
            release_nested(self.arena, items)

    def _spill_items(self, key: tuple[int, int], items: list, nbytes: int) -> None:
        self.spill.put(self._spill_key(key), items)
        self._spilled.add(key)
        if self._metrics is not None:
            self._metrics.blocks_spilled += 1
            self._metrics.spill_bytes_written += nbytes

    def _drop_locked(self, key: tuple[int, int]) -> None:
        items = self._blocks.pop(key, None)
        nbytes = self._bytes.pop(key, 0)
        self._levels.pop(key, None)
        owner = self._owners.pop(key, None)
        self._live_bytes -= nbytes
        if self.memory is not None and nbytes:
            self.memory.release("storage", owner, nbytes)
        if self.arena is not None and items is not None:
            release_nested(self.arena, items)

    def get(self, rdd_id: int, partition: int) -> list | None:
        key = (rdd_id, partition)
        with self._lock:
            got = self._blocks.get(key)
            if got is not None:
                self._blocks.move_to_end(key)
                return got
            spilled = key in self._spilled
        if not spilled or self.spill is None:
            return None
        try:
            items = self.spill.get(self._spill_key(key))
        except (CorruptBlockError, BlockNotFoundError):
            # Checksum failure or vanished file: never serve bad data —
            # forget the block and let the caller recompute from lineage.
            with self._lock:
                self._spilled.discard(key)
            self.spill.delete(self._spill_key(key))
            return None
        if self._metrics is not None:
            self._metrics.spill_reads += 1
            self._metrics.spill_bytes_read += sum(sizeof_block(x) for x in items)
        return items

    def contains(self, rdd_id: int, partition: int) -> bool:
        with self._lock:
            key = (rdd_id, partition)
            return key in self._blocks or key in self._spilled

    def evict_rdd(self, rdd_id: int) -> None:
        with self._lock:
            for key in [k for k in self._blocks if k[0] == rdd_id]:
                self._drop_locked(key)
            dead = [k for k in self._spilled if k[0] == rdd_id]
            self._spilled.difference_update(dead)
        if self.spill is not None:
            for key in dead:
                self.spill.delete(self._spill_key(key))

    def clear(self) -> int:
        """Drop every cached block and spill file; returns bytes freed.

        The solver service's between-requests sweep: cached partitions
        belong to the previous solve's (now dead) RDDs, so on a
        long-lived context they are a leak, not a cache.  Governor
        reservations and arena refcounts release through the same
        :meth:`_drop_locked` path as normal eviction.
        """
        with self._lock:
            freed = self._live_bytes
            for key in list(self._blocks):
                self._drop_locked(key)
            dead = list(self._spilled)
            self._spilled.clear()
        if self.spill is not None:
            for key in dead:
                self.spill.delete(self._spill_key(key))
        return freed

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return self._live_bytes

    @property
    def num_blocks(self) -> int:
        with self._lock:
            return len(self._blocks)

    @property
    def num_spilled(self) -> int:
        with self._lock:
            return len(self._spilled)


class SharedStorage:
    """Driver-mediated key/value store with byte accounting.

    ``capacity_bytes`` bounds the live staged volume (the auxiliary
    storage CB trades for shuffle efficiency).  An attached
    :class:`~repro.sparkle.chaos.FaultPlan` can flake executor-side reads
    transiently (:class:`~repro.sparkle.errors.TransientIOError`, retried
    by the scheduler); driver-side reads are never faulted.  A missing
    block raises the typed :class:`~repro.sparkle.errors.
    BlockNotFoundError` (a ``KeyError`` subclass), which the scheduler
    retries as a recomputation trigger rather than treating as a task
    bug.
    """

    def __init__(
        self,
        metrics,
        capacity_bytes: int | None = None,
        fault_plan=None,
        backing=None,
        arena=None,
    ) -> None:
        self._data: dict[Any, Any] = {}
        self._bytes: dict[Any, int] = {}
        self._live_bytes = 0
        self._lock = threading.Lock()
        self._metrics = metrics
        self.capacity_bytes = capacity_bytes
        self.fault_plan = fault_plan
        self.backing = backing
        self.arena = arena

    def put(self, key: Any, value: Any) -> int:
        """Store a block; returns its byte size.

        With a shared-memory arena attached (process backend), ndarray
        payloads are placed in shared segments: the CB pivot/band tiles
        every consumer task reads become zero-copy operands for
        offloaded kernels.  Byte accounting is unchanged — a shared
        view reports the same exact ``nbytes``.
        """
        if self.arena is not None:
            value = share_nested(self.arena, value)
        nbytes = sizeof_block(value)
        with self._lock:
            live = self._live_bytes - self._bytes.get(key, 0)
            if self.capacity_bytes is not None and live + nbytes > self.capacity_bytes:
                raise StorageCapacityError(
                    f"shared storage put of {nbytes} B exceeds capacity "
                    f"({live} B live of {self.capacity_bytes} B)"
                )
            old = self._data.get(key)
            self._data[key] = value
            self._bytes[key] = nbytes
            self._live_bytes = live + nbytes
            if old is not None and self.arena is not None and old is not value:
                release_nested(self.arena, old)
            if self._metrics is not None:
                self._metrics.storage_bytes_written += nbytes
                self._metrics.storage_puts += 1
        if self.backing is not None:
            self.backing.put(("shared", key), value)
        return nbytes

    def get(self, key: Any) -> Any:
        if self.fault_plan is not None and self.fault_plan.io_fault("storage", key):
            raise TransientIOError(f"injected shared-storage read failure: {key!r}")
        with self._lock:
            if key in self._data:
                if self._metrics is not None:
                    self._metrics.storage_bytes_read += self._bytes[key]
                    self._metrics.storage_gets += 1
                return self._data[key]
        if self.backing is not None and self.backing.contains(("shared", key)):
            # Memory lost the block (e.g. a restarted driver) but the
            # durable layer still has it — checksummed read, re-warmed.
            value = self.backing.get(("shared", key))
            with self._lock:
                nbytes = sizeof_block(value)
                self._data[key] = value
                self._live_bytes += nbytes - self._bytes.get(key, 0)
                self._bytes[key] = nbytes
                if self._metrics is not None:
                    self._metrics.storage_backing_reads += 1
                    self._metrics.storage_bytes_read += nbytes
                    self._metrics.storage_gets += 1
            return value
        raise BlockNotFoundError(f"shared storage has no block {key!r}", key=key)

    def contains(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        """Drop the in-memory view (durable backing blocks are kept)."""
        with self._lock:
            if self.arena is not None:
                for value in self._data.values():
                    release_nested(self.arena, value)
            self._data.clear()
            self._bytes.clear()
            self._live_bytes = 0

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return self._live_bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
