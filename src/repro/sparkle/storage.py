"""Block caching and the shared persistent storage used by CB drivers.

:class:`BlockManager` backs ``RDD.cache()``: computed partitions are kept
in (driver-process) memory keyed by ``(rdd_id, partition)``.

:class:`SharedStorage` models the "shared persistent storage" of the
Collect-Broadcast strategy (paper §IV-C): the driver collects blocks and
writes them here; executors read them back in the next stage.  Reads and
writes are byte-accounted so the cost model can price the staging I/O
(SSD on cluster 1, spinning disk on cluster 2 — the Fig. 8 axis).
"""

from __future__ import annotations

import threading
from typing import Any

from ..util import sizeof_block
from .errors import StorageCapacityError, TransientIOError

__all__ = ["BlockManager", "SharedStorage"]


class BlockManager:
    """In-memory cache of computed RDD partitions (Spark's MEMORY_ONLY).

    An optional byte capacity turns it into an LRU cache: when full, the
    least-recently-used cached partition is dropped.  That is safe — a
    dropped block is simply recomputed from lineage on next access,
    Spark's eviction semantics — and is exercised by the engine tests.
    """

    def __init__(self, capacity_bytes: int | None = None) -> None:
        from collections import OrderedDict

        self._blocks: "OrderedDict[tuple[int, int], list]" = OrderedDict()
        self._bytes: dict[tuple[int, int], int] = {}
        self._lock = threading.Lock()
        self.capacity_bytes = capacity_bytes
        self.evictions = 0

    def put(self, rdd_id: int, partition: int, items: list) -> None:
        key = (rdd_id, partition)
        nbytes = sum(sizeof_block(x) for x in items)
        with self._lock:
            if (
                self.capacity_bytes is not None
                and nbytes > self.capacity_bytes
            ):
                return  # single block larger than the cache: skip caching
            self._blocks[key] = items
            self._blocks.move_to_end(key)
            self._bytes[key] = nbytes
            if self.capacity_bytes is not None:
                live = sum(self._bytes.values())
                while live > self.capacity_bytes and len(self._blocks) > 1:
                    victim, _ = self._blocks.popitem(last=False)
                    live -= self._bytes.pop(victim)
                    self.evictions += 1

    def get(self, rdd_id: int, partition: int) -> list | None:
        key = (rdd_id, partition)
        with self._lock:
            got = self._blocks.get(key)
            if got is not None:
                self._blocks.move_to_end(key)
            return got

    def contains(self, rdd_id: int, partition: int) -> bool:
        with self._lock:
            return (rdd_id, partition) in self._blocks

    def evict_rdd(self, rdd_id: int) -> None:
        with self._lock:
            for key in [k for k in self._blocks if k[0] == rdd_id]:
                del self._blocks[key]
                self._bytes.pop(key, None)

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes.values())

    @property
    def num_blocks(self) -> int:
        with self._lock:
            return len(self._blocks)


class SharedStorage:
    """Driver-mediated key/value store with byte accounting.

    ``capacity_bytes`` bounds the live staged volume (the auxiliary
    storage CB trades for shuffle efficiency).  An attached
    :class:`~repro.sparkle.chaos.FaultPlan` can flake executor-side reads
    transiently (:class:`~repro.sparkle.errors.TransientIOError`, retried
    by the scheduler); driver-side reads are never faulted.
    """

    def __init__(
        self, metrics, capacity_bytes: int | None = None, fault_plan=None
    ) -> None:
        self._data: dict[Any, Any] = {}
        self._bytes: dict[Any, int] = {}
        self._lock = threading.Lock()
        self._metrics = metrics
        self.capacity_bytes = capacity_bytes
        self.fault_plan = fault_plan

    def put(self, key: Any, value: Any) -> int:
        """Store a block; returns its byte size."""
        nbytes = sizeof_block(value)
        with self._lock:
            live = sum(self._bytes.values()) - self._bytes.get(key, 0)
            if self.capacity_bytes is not None and live + nbytes > self.capacity_bytes:
                raise StorageCapacityError(
                    f"shared storage put of {nbytes} B exceeds capacity "
                    f"({live} B live of {self.capacity_bytes} B)"
                )
            self._data[key] = value
            self._bytes[key] = nbytes
            if self._metrics is not None:
                self._metrics.storage_bytes_written += nbytes
                self._metrics.storage_puts += 1
        return nbytes

    def get(self, key: Any) -> Any:
        if self.fault_plan is not None and self.fault_plan.io_fault("storage", key):
            raise TransientIOError(f"injected shared-storage read failure: {key!r}")
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                raise KeyError(f"shared storage has no block {key!r}") from None
            if self._metrics is not None:
                self._metrics.storage_bytes_read += self._bytes[key]
                self._metrics.storage_gets += 1
            return value

    def contains(self, key: Any) -> bool:
        with self._lock:
            return key in self._data

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._bytes.clear()

    @property
    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
