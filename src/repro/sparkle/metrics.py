"""Execution metrics and the trace consumed by the cluster cost model.

Everything the paper reasons about quantitatively — stage counts, tasks
per stage, shuffle volume of wide transformations, collect/broadcast
volume of the CB strategy, storage staging — is recorded here as the
engine runs.  The cost model (:mod:`repro.cluster.costmodel`) replays a
:class:`JobTrace` against a :class:`~repro.cluster.config.ClusterConfig`
to produce simulated wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["TaskRecord", "StageRecord", "JobTrace", "EngineMetrics"]


@dataclass
class TaskRecord:
    """One task attempt (final, successful one per partition)."""

    partition: int
    executor: int
    attempts: int = 1
    records_out: int = 0
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    #: portion of shuffle_bytes_read fetched from a different executor
    #: (crosses the simulated network; the partitioner-locality metric)
    shuffle_bytes_remote: int = 0
    kernel_updates: int = 0
    kernel_invocations: int = 0
    wall_seconds: float = 0.0
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass
class StageRecord:
    """One executed stage (shuffle-map or result)."""

    stage_id: int
    kind: str  # "shuffle-map" | "result"
    rdd_id: int
    num_tasks: int
    tasks: list[TaskRecord] = field(default_factory=list)

    @property
    def shuffle_bytes_written(self) -> int:
        return sum(t.shuffle_bytes_written for t in self.tasks)

    @property
    def shuffle_bytes_read(self) -> int:
        return sum(t.shuffle_bytes_read for t in self.tasks)

    @property
    def shuffle_bytes_remote(self) -> int:
        return sum(t.shuffle_bytes_remote for t in self.tasks)

    @property
    def total_attempts(self) -> int:
        return sum(t.attempts for t in self.tasks)


@dataclass
class JobTrace:
    """All stages of one action, in execution order."""

    job_id: int
    action: str
    stages: list[StageRecord] = field(default_factory=list)
    collect_bytes: int = 0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def shuffle_bytes(self) -> int:
        return sum(s.shuffle_bytes_written for s in self.stages)

    @property
    def shuffle_bytes_remote(self) -> int:
        return sum(s.shuffle_bytes_remote for s in self.stages)


@dataclass
class EngineMetrics:
    """Context-lifetime counters plus the per-job traces."""

    jobs: list[JobTrace] = field(default_factory=list)
    broadcast_bytes: int = 0
    broadcast_count: int = 0
    storage_bytes_written: int = 0
    storage_bytes_read: int = 0
    storage_puts: int = 0
    storage_gets: int = 0
    tasks_retried: int = 0

    def new_job(self, action: str) -> JobTrace:
        trace = JobTrace(job_id=len(self.jobs), action=action)
        self.jobs.append(trace)
        return trace

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(j.shuffle_bytes for j in self.jobs)

    @property
    def total_remote_shuffle_bytes(self) -> int:
        return sum(j.shuffle_bytes_remote for j in self.jobs)

    @property
    def total_stages(self) -> int:
        return sum(j.num_stages for j in self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(j.num_tasks for j in self.jobs)

    @property
    def total_collect_bytes(self) -> int:
        return sum(j.collect_bytes for j in self.jobs)

    def summary(self) -> dict[str, int]:
        """Flat counter view used by tests and reports."""
        return {
            "jobs": len(self.jobs),
            "stages": self.total_stages,
            "tasks": self.total_tasks,
            "shuffle_bytes": self.total_shuffle_bytes,
            "remote_shuffle_bytes": self.total_remote_shuffle_bytes,
            "collect_bytes": self.total_collect_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "storage_bytes_written": self.storage_bytes_written,
            "storage_bytes_read": self.storage_bytes_read,
            "tasks_retried": self.tasks_retried,
        }
