"""Execution metrics and the trace consumed by the cluster cost model.

Everything the paper reasons about quantitatively — stage counts, tasks
per stage, shuffle volume of wide transformations, collect/broadcast
volume of the CB strategy, storage staging — is recorded here as the
engine runs.  The cost model (:mod:`repro.cluster.costmodel`) replays a
:class:`JobTrace` against a :class:`~repro.cluster.config.ClusterConfig`
to produce simulated wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "TaskRecord",
    "StageRecord",
    "JobTrace",
    "EngineMetrics",
    "ServiceMetrics",
]


@dataclass
class TaskRecord:
    """One task attempt (final, successful one per partition)."""

    partition: int
    executor: int
    attempts: int = 1
    records_out: int = 0
    shuffle_bytes_written: int = 0
    shuffle_bytes_read: int = 0
    #: portion of shuffle_bytes_read fetched from a different executor
    #: (crosses the simulated network; the partitioner-locality metric)
    shuffle_bytes_remote: int = 0
    kernel_updates: int = 0
    kernel_invocations: int = 0
    wall_seconds: float = 0.0
    #: perf_counter timestamps of the winning attempt's span — the raw
    #: material for barrier-wait / overlap accounting (pipeline_summary)
    start_ts: float = 0.0
    end_ts: float = 0.0
    #: total scheduler backoff slept before the winning attempt
    backoff_seconds: float = 0.0
    #: True when a speculative copy beat a straggling original attempt
    speculative_win: bool = False
    payload: dict[str, Any] = field(default_factory=dict)


@dataclass
class StageRecord:
    """One executed stage (shuffle-map or result)."""

    stage_id: int
    kind: str  # "shuffle-map" | "result"
    rdd_id: int
    num_tasks: int
    tasks: list[TaskRecord] = field(default_factory=list)

    @property
    def shuffle_bytes_written(self) -> int:
        return sum(t.shuffle_bytes_written for t in self.tasks)

    @property
    def shuffle_bytes_read(self) -> int:
        return sum(t.shuffle_bytes_read for t in self.tasks)

    @property
    def shuffle_bytes_remote(self) -> int:
        return sum(t.shuffle_bytes_remote for t in self.tasks)

    @property
    def total_attempts(self) -> int:
        return sum(t.attempts for t in self.tasks)

    @property
    def speculative_wins(self) -> int:
        return sum(1 for t in self.tasks if t.speculative_win)


@dataclass
class JobTrace:
    """All stages of one action, in execution order."""

    job_id: int
    action: str
    stages: list[StageRecord] = field(default_factory=list)
    collect_bytes: int = 0

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    @property
    def num_tasks(self) -> int:
        return sum(s.num_tasks for s in self.stages)

    @property
    def shuffle_bytes(self) -> int:
        return sum(s.shuffle_bytes_written for s in self.stages)

    @property
    def shuffle_bytes_remote(self) -> int:
        return sum(s.shuffle_bytes_remote for s in self.stages)


@dataclass
class EngineMetrics:
    """Context-lifetime counters plus the per-job traces."""

    jobs: list[JobTrace] = field(default_factory=list)
    broadcast_bytes: int = 0
    broadcast_count: int = 0
    storage_bytes_written: int = 0
    storage_bytes_read: int = 0
    storage_puts: int = 0
    storage_gets: int = 0
    # ---- recovery counters (chaos / fault tolerance) ------------------
    tasks_retried: int = 0
    #: map partitions recomputed from lineage after their shuffle outputs
    #: were dropped by an executor loss (the §II recovery story, measured)
    partitions_recomputed: int = 0
    speculative_launched: int = 0
    speculative_wins: int = 0
    stragglers_cancelled: int = 0
    executor_loss_events: int = 0
    transient_io_failures: int = 0
    backoff_waits: int = 0
    backoff_seconds_total: float = 0.0
    blacklisted_executors: list[int] = field(default_factory=list)
    # ---- durability counters (checkpoint store / solve journal) -------
    durable_puts: int = 0
    durable_gets: int = 0
    durable_bytes_written: int = 0
    durable_bytes_read: int = 0
    #: writes that landed truncated and were caught by read-back verify
    torn_writes_detected: int = 0
    #: checksummed reads that caught silent corruption (bitrot/tamper)
    corrupt_blocks_detected: int = 0
    #: durable checkpoint blocks found corrupt and recomputed from lineage
    checkpoint_recomputes: int = 0
    #: SharedStorage memory misses served from the durable backing store
    storage_backing_reads: int = 0
    journal_appends: int = 0
    #: journal records replayed by a ``--resume`` recovery
    journal_entries_replayed: int = 0
    #: outer iteration a resumed solve restarted *after* (None = fresh)
    resumed_from_iteration: int | None = None
    # ---- memory governor counters (unified budget / spill) ------------
    #: bytes written to the spill store (cache blocks + shuffle buckets)
    spill_bytes_written: int = 0
    #: bytes read back from the spill store
    spill_bytes_read: int = 0
    #: cached RDD partitions evicted to disk instead of dropped
    blocks_spilled: int = 0
    #: staged shuffle map outputs moved to disk under memory pressure
    shuffle_blocks_spilled: int = 0
    #: successful reads served from spilled blocks
    spill_reads: int = 0
    #: task launches the scheduler queued because a reservation failed
    admission_waits: int = 0
    admission_wait_seconds: float = 0.0
    #: pressure-level changes in order, e.g. ``["ok->pressured", ...]``
    #: (deterministic per chaos seed under serialized tasks)
    pressure_transitions: list[str] = field(default_factory=list)
    #: ``mem_squeeze`` chaos injections applied to the budget
    mem_squeezes: int = 0
    #: IM→CB strategy switches taken under critical pressure
    strategy_degradations: int = 0
    #: reservations granted past the budget (deadlock-freedom escape)
    forced_grants: int = 0
    #: blacklist refusals that protected the last healthy executor
    last_executor_protected: int = 0
    #: aborted shuffle-map stages whose partial outputs were reclaimed
    shuffle_partial_cleanups: int = 0
    # ---- data plane counters (execution backend / zero-copy) ----------
    #: which execution backend the context ran (``threads``/``processes``)
    backend: str = "threads"
    #: kernel tile updates offloaded to worker processes
    kernel_offloads: int = 0
    #: defensive ``tile.copy()`` calls the data plane made redundant
    copies_eliminated: int = 0
    #: shared-memory segments created by the arena
    shm_segments_created: int = 0
    #: shared-memory segments unlinked (must equal created at stop)
    shm_segments_freed: int = 0
    #: payload bytes placed into shared-memory segments
    shm_bytes_shared: int = 0
    #: map outputs staged via pickle-5 out-of-band serialization
    serialized_shuffle_writes: int = 0
    #: logical-minus-physical staged bytes saved by buffer identity dedup
    shuffle_bytes_deduplicated: int = 0
    # ---- supervision counters (worker liveness / crash protocol) -------
    #: workers whose heartbeat went silent past the watchdog threshold
    heartbeats_missed: int = 0
    #: worker processes started by pool respawns (crash recovery)
    workers_respawned: int = 0
    #: worker-process deaths observed mid-kernel (BrokenProcessPool)
    worker_crashes: int = 0
    #: supervised kernel calls that ran past their task deadline
    deadlines_exceeded: int = 0
    #: tasks quarantined after killing ``max_task_failures`` fresh workers
    poison_tasks: int = 0
    #: orphaned scratch segments reclaimed after a worker death
    orphan_segments_reclaimed: int = 0
    #: processes→threads backend degradations taken under --degrade-on-crash
    backend_degradations: int = 0
    # ---- dispatch counters (batching / affinity / gang stages) ---------
    #: driver↔worker IPC round-trips made by kernel dispatch (one per
    #: offloaded tile under ``--dispatch tile``, one per member batch
    #: under ``--dispatch batch`` — THE multicore-gap metric)
    dispatch_round_trips: int = 0
    #: member batches shipped by the fused dispatch path
    batch_dispatches: int = 0
    #: kernel calls that travelled inside a member batch
    batched_kernel_calls: int = 0
    #: kernel dispatches routed to the worker already holding the tile
    affinity_hits: int = 0
    #: first-touch (or re-homed) tile placements
    affinity_misses: int = 0
    #: tile placements spilled by worker quarantine/respawn/blacklist
    affinity_rebalances: int = 0
    #: barrier waves dispatched as one gang (``--gang-stages``)
    gang_dispatches: int = 0
    #: gang waves that failed retryably and were re-run all-or-nothing
    gang_retries: int = 0
    # ---- pipeline counters (wavefront iteration overlap) ----------------
    #: the context's configured lookahead (1 = barrier mode)
    pipeline_depth: int = 1
    #: maximum outer iterations simultaneously in flight (unsealed)
    pipeline_depth_achieved: int = 0
    #: outer iterations executed through the pipelined admission path
    pipeline_iterations: int = 0
    #: dependence-admitted waves (stages launched per-tile, not barriered)
    pipeline_waves: int = 0

    def new_job(self, action: str) -> JobTrace:
        trace = JobTrace(job_id=len(self.jobs), action=action)
        self.jobs.append(trace)
        return trace

    @property
    def total_shuffle_bytes(self) -> int:
        return sum(j.shuffle_bytes for j in self.jobs)

    @property
    def total_remote_shuffle_bytes(self) -> int:
        return sum(j.shuffle_bytes_remote for j in self.jobs)

    @property
    def total_stages(self) -> int:
        return sum(j.num_stages for j in self.jobs)

    @property
    def total_tasks(self) -> int:
        return sum(j.num_tasks for j in self.jobs)

    @property
    def total_collect_bytes(self) -> int:
        return sum(j.collect_bytes for j in self.jobs)

    def recovery_summary(self) -> dict[str, Any]:
        """Fault-recovery counters only (the chaos-test/report surface).

        Quantifies recovery overhead the way the paper's §V reports
        execution failures: how much extra work (retries, recomputed
        lineage, speculative copies, backoff stalls) faults cost a run.
        """
        return {
            "tasks_retried": self.tasks_retried,
            "partitions_recomputed": self.partitions_recomputed,
            "speculative_launched": self.speculative_launched,
            "speculative_wins": self.speculative_wins,
            "stragglers_cancelled": self.stragglers_cancelled,
            "executor_loss_events": self.executor_loss_events,
            "transient_io_failures": self.transient_io_failures,
            "backoff_waits": self.backoff_waits,
            "backoff_seconds_total": round(self.backoff_seconds_total, 6),
            "executors_blacklisted": len(self.blacklisted_executors),
            "torn_writes_detected": self.torn_writes_detected,
            "corrupt_blocks_detected": self.corrupt_blocks_detected,
            "checkpoint_recomputes": self.checkpoint_recomputes,
            "storage_backing_reads": self.storage_backing_reads,
            "last_executor_protected": self.last_executor_protected,
        }

    def memory_summary(self) -> dict[str, Any]:
        """Memory-governor accounting for one run (spill/pressure view)."""
        return {
            "spill_bytes_written": self.spill_bytes_written,
            "spill_bytes_read": self.spill_bytes_read,
            "blocks_spilled": self.blocks_spilled,
            "shuffle_blocks_spilled": self.shuffle_blocks_spilled,
            "spill_reads": self.spill_reads,
            "admission_waits": self.admission_waits,
            "admission_wait_seconds": round(self.admission_wait_seconds, 6),
            "pressure_transitions": list(self.pressure_transitions),
            "mem_squeezes": self.mem_squeezes,
            "strategy_degradations": self.strategy_degradations,
            "forced_grants": self.forced_grants,
            "shuffle_partial_cleanups": self.shuffle_partial_cleanups,
        }

    def data_plane_summary(self) -> dict[str, Any]:
        """Backend / zero-copy transport accounting for one run."""
        return {
            "backend": self.backend,
            "kernel_offloads": self.kernel_offloads,
            "copies_eliminated": self.copies_eliminated,
            "shm_segments_created": self.shm_segments_created,
            "shm_segments_freed": self.shm_segments_freed,
            "shm_bytes_shared": self.shm_bytes_shared,
            "serialized_shuffle_writes": self.serialized_shuffle_writes,
            "shuffle_bytes_deduplicated": self.shuffle_bytes_deduplicated,
        }

    def supervision_summary(self) -> dict[str, Any]:
        """Worker-liveness / crash-protocol accounting for one run."""
        return {
            "heartbeats_missed": self.heartbeats_missed,
            "workers_respawned": self.workers_respawned,
            "worker_crashes": self.worker_crashes,
            "deadlines_exceeded": self.deadlines_exceeded,
            "poison_tasks": self.poison_tasks,
            "orphan_segments_reclaimed": self.orphan_segments_reclaimed,
            "backend_degradations": self.backend_degradations,
        }

    def dispatch_summary(self) -> dict[str, Any]:
        """Kernel-dispatch accounting (batching / affinity / gang)."""
        routed = self.affinity_hits + self.affinity_misses
        return {
            "dispatch_round_trips": self.dispatch_round_trips,
            "batch_dispatches": self.batch_dispatches,
            "batched_kernel_calls": self.batched_kernel_calls,
            "affinity_hits": self.affinity_hits,
            "affinity_misses": self.affinity_misses,
            "affinity_rebalances": self.affinity_rebalances,
            "affinity_hit_rate": (
                round(self.affinity_hits / routed, 6) if routed else None
            ),
            "gang_dispatches": self.gang_dispatches,
            "gang_retries": self.gang_retries,
        }

    def pipeline_summary(self) -> dict[str, Any]:
        """Barrier-wait / overlap accounting (wavefront pipeline view).

        ``barrier_wait_seconds`` is the idle executor-time trapped inside
        stage windows: for every executed stage, each participating
        executor is charged the stage's span minus the time it actually
        spent busy (on *any* task, any stage) inside that window.  In
        barrier mode nothing foreign overlaps a stage, so this is the
        exact tail-wait behind the slowest task; in pipelined mode
        cross-stage work fills the holes and the same formula credits it.
        """
        busy: dict[int, list[tuple[float, float]]] = {}
        windows: list[tuple[float, float, frozenset[int]]] = []
        for job in self.jobs:
            for stage in job.stages:
                spans = [
                    (t.start_ts, t.end_ts, t.executor)
                    for t in stage.tasks
                    if t.end_ts > t.start_ts
                ]
                if not spans:
                    continue
                lo = min(s for s, _, _ in spans)
                hi = max(e for _, e, _ in spans)
                windows.append((lo, hi, frozenset(ex for _, _, ex in spans)))
                for s, e, ex in spans:
                    busy.setdefault(ex, []).append((s, e))
        merged: dict[int, list[tuple[float, float]]] = {}
        for ex, spans in busy.items():
            spans.sort()
            out: list[tuple[float, float]] = []
            for s, e in spans:
                if out and s <= out[-1][1]:
                    if e > out[-1][1]:
                        out[-1] = (out[-1][0], e)
                else:
                    out.append((s, e))
            merged[ex] = out
        wait = 0.0
        for lo, hi, executors in windows:
            for ex in executors:
                covered = 0.0
                for s, e in merged[ex]:
                    if e <= lo:
                        continue
                    if s >= hi:
                        break
                    covered += min(e, hi) - max(s, lo)
                wait += max(0.0, (hi - lo) - covered)
        overlapped = 0
        ordered = sorted(range(len(windows)), key=lambda i: windows[i][0])
        prev_hi = float("-inf")
        flagged = [False] * len(windows)
        prev_idx: int | None = None
        for i in ordered:
            lo, hi, _ = windows[i]
            if lo < prev_hi:
                flagged[i] = True
                if prev_idx is not None:
                    flagged[prev_idx] = True
            if hi > prev_hi:
                prev_hi = hi
                prev_idx = i
        overlapped = sum(flagged)
        return {
            "pipeline_depth": self.pipeline_depth,
            "pipeline_depth_achieved": self.pipeline_depth_achieved,
            "pipeline_iterations": self.pipeline_iterations,
            "pipeline_waves": self.pipeline_waves,
            "stage_windows": len(windows),
            "overlapped_stages": overlapped,
            "barrier_wait_seconds": round(wait, 6),
        }

    def durability_summary(self) -> dict[str, Any]:
        """Journal/checkpoint-store accounting for one run."""
        return {
            "durable_puts": self.durable_puts,
            "durable_gets": self.durable_gets,
            "durable_bytes_written": self.durable_bytes_written,
            "durable_bytes_read": self.durable_bytes_read,
            "journal_appends": self.journal_appends,
            "journal_entries_replayed": self.journal_entries_replayed,
            "resumed_from_iteration": self.resumed_from_iteration,
        }

    def summary(self) -> dict[str, Any]:
        """Flat counter view used by tests and reports."""
        out = {
            "jobs": len(self.jobs),
            "stages": self.total_stages,
            "tasks": self.total_tasks,
            "shuffle_bytes": self.total_shuffle_bytes,
            "remote_shuffle_bytes": self.total_remote_shuffle_bytes,
            "collect_bytes": self.total_collect_bytes,
            "broadcast_bytes": self.broadcast_bytes,
            "storage_bytes_written": self.storage_bytes_written,
            "storage_bytes_read": self.storage_bytes_read,
        }
        out.update(self.recovery_summary())
        out.update(self.durability_summary())
        out.update(self.memory_summary())
        out.update(self.data_plane_summary())
        out.update(self.supervision_summary())
        out.update(self.dispatch_summary())
        # The flat summary is a determinism contract: identical-seed runs
        # must produce identical summaries (test_chaos pins this), so the
        # wall-clock-derived pipeline fields stay in pipeline_summary()
        # only and the rollup carries just the counters.
        pipe = self.pipeline_summary()
        del pipe["barrier_wait_seconds"]
        del pipe["overlapped_stages"]
        out.update(pipe)
        return out


@dataclass
class ServiceMetrics:
    """Request-plane counters for one :class:`~repro.service.SolverService`.

    Kept separate from :class:`EngineMetrics` deliberately: one engine
    context serves many requests, so engine counters are
    context-lifetime while these are service-lifetime — and the request
    state machine (DESIGN.md §15) is the thing being metered, not the
    engine underneath it.
    """

    # ---- admission -----------------------------------------------------
    requests_received: int = 0
    requests_admitted: int = 0
    #: admitted requests that waited in the bounded queue (depth > 0)
    requests_queued: int = 0
    #: requests refused at admission (queue full / critical pressure)
    requests_shed: int = 0
    #: requests refused because the service was draining for shutdown
    draining_sheds: int = 0
    # ---- completion ----------------------------------------------------
    requests_completed: int = 0
    #: requests that returned a typed error (excluding sheds)
    requests_failed: int = 0
    #: requests cancelled by their per-request deadline
    deadline_cancelled: int = 0
    # ---- single-flight / cache -----------------------------------------
    #: duplicate concurrent requests coalesced onto an in-flight solve
    single_flight_coalesced: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: entries dropped by LRU capacity pressure
    cache_evictions: int = 0
    #: entries dropped because a memory squeeze reclaimed their bytes
    cache_invalidations: int = 0
    #: cached payloads that failed their checksum on read (never served)
    cache_integrity_failures: int = 0
    # ---- engine passes / retry / breaker --------------------------------
    #: actual ``GepSparkSolver.solve`` invocations (one per coalesced
    #: flight attempt; THE single-flight assertion counter)
    engine_passes: int = 0
    #: service-level retries of a failed engine pass (with backoff)
    retries: int = 0
    circuit_trips: int = 0
    #: engine passes run with kernel offload forced off by an open breaker
    circuit_failovers: int = 0
    circuit_half_opens: int = 0
    circuit_closes: int = 0
    # ---- request journal / hot restart (DESIGN.md §16) -------------------
    #: admissions fsync-appended to the durable request WAL
    journal_admits: int = 0
    #: settlement records appended (completed / failed / deadline)
    journal_settles: int = 0
    #: torn/garbage WAL tail records truncated when the journal opened
    journal_torn_records: int = 0
    #: incomplete WAL entries re-submitted through admission by resume()
    journal_replayed: int = 0
    #: WAL checkpoint/compaction passes (drain or stop)
    journal_compactions: int = 0
    #: records dropped by compaction (settled + superseded history)
    journal_records_compacted: int = 0
    #: cache entries rebuilt from the durable result spool on resume
    results_rehydrated: int = 0
    #: reconnecting clients served a prior settlement by idempotency key
    #: (no admission, no engine pass)
    idempotent_replays: int = 0
    #: submissions whose idempotency key the WAL already named in-flight
    #: (a client retrying across a restart) — coalesced, not re-admitted
    resume_coalesced: int = 0
    # ---- socket plane -----------------------------------------------------
    #: frames refused before payload read (length above the cap)
    frames_rejected: int = 0
    #: per-connection client failures (vanished mid-frame / mid-reply)
    client_disconnects: int = 0
    #: stale socket files (dead server, no listener) reclaimed on bind
    stale_sockets_reclaimed: int = 0
    # ---- tenant isolation / brownout (DESIGN.md §18) ----------------------
    #: admissions refused because the tenant's byte quota was hit
    quota_rejections: int = 0
    #: admissions refused by a tenant's token-bucket rate limit
    rate_limited: int = 0
    #: requests shed at the ladder's ``shed`` rung (lowest-weight tenants)
    brownout_sheds: int = 0
    #: engine passes run with ``pipeline_depth`` clamped to 1 (rung >= clamp)
    brownout_clamps: int = 0
    #: engine passes degraded IM→CB by the ladder (rung >= degrade)
    brownout_degrades: int = 0
    #: total ladder transitions (monotone; the summary surface)
    brownout_transition_count: int = 0
    #: current ladder rung name (``normal``/``clamp``/``degrade``/``shed``)
    brownout_level: str = "normal"
    #: transition strings (``"normal->clamp"``, …) since the last drain —
    #: clear-on-read like ``MemoryManager.critical_since_last_check``, so
    #: spiky episodes between two probes are never missed
    brownout_transitions: list[str] = field(default_factory=list)

    def drain_brownout_transitions(self) -> list[str]:
        """Return and clear the transition trace (clear-on-read latch).

        Callers hold the service's metrics lock, like every other
        mutation on this class.
        """
        out = list(self.brownout_transitions)
        self.brownout_transitions.clear()
        return out

    # ---- per-tenant accounting --------------------------------------------
    #: ``tenant -> {"requests", "sheds", "cache_hits", "completed",
    #: "engine_passes", "quota_rejections", "rate_limited"}``; only
    #: requests that carry a tenant are metered here (totals above cover
    #: everyone)
    per_tenant: dict[str, dict[str, int]] = field(default_factory=dict)

    _TENANT_EVENTS = (
        "requests",
        "sheds",
        "cache_hits",
        "completed",
        "engine_passes",
        "quota_rejections",
        "rate_limited",
    )

    def tenant_event(self, tenant: str | None, event: str) -> None:
        """Count one per-tenant event; no-op for anonymous requests.

        Callers hold the service's metrics lock, like every other
        counter mutation on this class.
        """
        if not tenant:
            return
        counters = self.per_tenant.setdefault(
            tenant, {e: 0 for e in self._TENANT_EVENTS}
        )
        counters[event] += 1

    def summary(self) -> dict[str, Any]:
        """Flat counter view (the ``repro serve`` / bench surface)."""
        looked_up = self.cache_hits + self.cache_misses
        return {
            "requests_received": self.requests_received,
            "requests_admitted": self.requests_admitted,
            "requests_queued": self.requests_queued,
            "requests_shed": self.requests_shed,
            "draining_sheds": self.draining_sheds,
            "requests_completed": self.requests_completed,
            "requests_failed": self.requests_failed,
            "deadline_cancelled": self.deadline_cancelled,
            "single_flight_coalesced": self.single_flight_coalesced,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": (
                round(self.cache_hits / looked_up, 6) if looked_up else None
            ),
            "cache_evictions": self.cache_evictions,
            "cache_invalidations": self.cache_invalidations,
            "cache_integrity_failures": self.cache_integrity_failures,
            "engine_passes": self.engine_passes,
            "retries": self.retries,
            "circuit_trips": self.circuit_trips,
            "circuit_failovers": self.circuit_failovers,
            "circuit_half_opens": self.circuit_half_opens,
            "circuit_closes": self.circuit_closes,
            "journal_admits": self.journal_admits,
            "journal_settles": self.journal_settles,
            "journal_torn_records": self.journal_torn_records,
            "journal_replayed": self.journal_replayed,
            "journal_compactions": self.journal_compactions,
            "journal_records_compacted": self.journal_records_compacted,
            "results_rehydrated": self.results_rehydrated,
            "idempotent_replays": self.idempotent_replays,
            "resume_coalesced": self.resume_coalesced,
            "frames_rejected": self.frames_rejected,
            "client_disconnects": self.client_disconnects,
            "stale_sockets_reclaimed": self.stale_sockets_reclaimed,
            "quota_rejections": self.quota_rejections,
            "rate_limited": self.rate_limited,
            "brownout_sheds": self.brownout_sheds,
            "brownout_clamps": self.brownout_clamps,
            "brownout_degrades": self.brownout_degrades,
            "brownout_transition_count": self.brownout_transition_count,
            "brownout_level": self.brownout_level,
            "per_tenant": {t: dict(c) for t, c in sorted(self.per_tenant.items())},
        }
