"""Shuffle manager: the wide-dependency data plane.

Map-side tasks bucket their output by reducer partition and "stage" the
buckets locally (the paper's §IV-C point: wide transformations write
intermediate data to local SSD before it is shuffled); reduce-side tasks
fetch and concatenate buckets in map-partition order, which keeps results
deterministic regardless of task execution order.

Byte accounting is exact (NumPy payloads report ``nbytes``), and an
optional per-context capacity models the SSD-size failure mode: exceeding
it raises :class:`~repro.sparkle.errors.StorageCapacityError`, mirroring
the execution failures the paper reports for large IM configurations.

Fault tolerance: a reducer that finds map outputs missing raises
:class:`~repro.sparkle.errors.ShuffleFetchFailed` naming exactly the
missing partitions, and the scheduler recomputes them from lineage —
outputs go missing when the chaos plane kills an executor and
:meth:`ShuffleManager.drop_executor_outputs` discards everything that
executor had staged.  An attached
:class:`~repro.sparkle.chaos.FaultPlan` can also flake individual map
writes (transient staging overflow, retried with backoff).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..util import sizeof_block
from .errors import ShuffleFetchFailed, StorageCapacityError, TransientIOError

__all__ = ["ShuffleManager"]


def _pair_size(item: tuple[Any, Any]) -> int:
    key, value = item
    return 16 + sizeof_block(value)  # key assumed small/fixed


class ShuffleManager:
    """In-memory shuffle store with byte accounting and spill capacity."""

    def __init__(self, capacity_bytes: int | None = None, fault_plan=None) -> None:
        self.capacity_bytes = capacity_bytes
        self.fault_plan = fault_plan
        self._lock = threading.Lock()
        # (shuffle_id, map_partition) -> {reduce_partition: [items]}
        self._outputs: dict[tuple[int, int], dict[int, list]] = {}
        self._output_bytes: dict[tuple[int, int], int] = {}
        self._bytes_by_shuffle: dict[int, int] = {}
        self._next_shuffle_id = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    # ------------------------------------------------------------------
    def new_shuffle_id(self) -> int:
        with self._lock:
            sid = self._next_shuffle_id
            self._next_shuffle_id += 1
            self._bytes_by_shuffle[sid] = 0
            return sid

    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes_by_shuffle.values())

    # ------------------------------------------------------------------
    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        buckets: dict[int, list],
    ) -> int:
        """Store one map task's buckets; returns bytes written."""
        if self.fault_plan is not None and self.fault_plan.io_fault(
            "overflow", shuffle_id, map_partition
        ):
            raise TransientIOError(
                f"injected staging overflow: shuffle {shuffle_id} "
                f"map partition {map_partition}"
            )
        nbytes = sum(_pair_size(item) for items in buckets.values() for item in items)
        key = (shuffle_id, map_partition)
        with self._lock:
            if self.capacity_bytes is not None:
                live = sum(self._bytes_by_shuffle.values()) - self._output_bytes.get(key, 0)
                if live + nbytes > self.capacity_bytes:
                    raise StorageCapacityError(
                        f"shuffle spill of {nbytes} B exceeds local staging "
                        f"capacity ({live} B live of {self.capacity_bytes} B)"
                    )
            # Idempotent overwrite: retried/speculative map tasks re-stage
            # the same output.
            stale = self._output_bytes.pop(key, 0)
            self._outputs[key] = buckets
            self._output_bytes[key] = nbytes
            self._bytes_by_shuffle[shuffle_id] = (
                self._bytes_by_shuffle.get(shuffle_id, 0) - stale + nbytes
            )
            self.total_bytes_written += nbytes
        return nbytes

    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        num_map_partitions: int,
        remote_map_partition=None,
    ) -> tuple[list, int, int]:
        """All items destined for one reducer, in map-partition order.

        Returns ``(items, bytes_read, remote_bytes_read)`` where the
        remote portion counts map outputs whose producing partition the
        ``remote_map_partition(map_pid)`` predicate marks as living on a
        different executor than the requester (``None`` = count nothing
        as remote).  Missing map outputs raise
        :class:`~repro.sparkle.errors.ShuffleFetchFailed` so the
        scheduler can recompute them from lineage.
        """
        items: list = []
        remote = 0
        with self._lock:
            missing = tuple(
                mp
                for mp in range(num_map_partitions)
                if (shuffle_id, mp) not in self._outputs
            )
            if missing:
                raise ShuffleFetchFailed(shuffle_id, missing)
            for mp in range(num_map_partitions):
                buckets = self._outputs[(shuffle_id, mp)]
                chunk = buckets.get(reduce_partition, ())
                items.extend(chunk)
                if remote_map_partition is not None and remote_map_partition(mp):
                    remote += sum(_pair_size(item) for item in chunk)
        nbytes = sum(_pair_size(item) for item in items)
        with self._lock:
            self.total_bytes_read += nbytes
        return items, nbytes, remote

    def release(self, shuffle_id: int) -> None:
        """Drop a shuffle's staged data (job finished)."""
        with self._lock:
            for key in [k for k in self._outputs if k[0] == shuffle_id]:
                del self._outputs[key]
                self._output_bytes.pop(key, None)
            self._bytes_by_shuffle.pop(shuffle_id, None)

    def drop_executor_outputs(
        self, owns_map_partition: Callable[[int], bool]
    ) -> list[tuple[int, int]]:
        """Discard every staged output owned by a lost executor.

        ``owns_map_partition(map_pid)`` is the placement predicate (the
        pool's ``executor_for``).  Returns the dropped
        ``(shuffle_id, map_partition)`` keys; consumers of those outputs
        will hit :class:`~repro.sparkle.errors.ShuffleFetchFailed` and
        force lineage recomputation.
        """
        with self._lock:
            victims = [k for k in self._outputs if owns_map_partition(k[1])]
            for key in victims:
                del self._outputs[key]
                nbytes = self._output_bytes.pop(key, 0)
                if key[0] in self._bytes_by_shuffle:
                    self._bytes_by_shuffle[key[0]] -= nbytes
            return victims

    def has_output(self, shuffle_id: int, map_partition: int) -> bool:
        with self._lock:
            return (shuffle_id, map_partition) in self._outputs
