"""Shuffle manager: the wide-dependency data plane.

Map-side tasks bucket their output by reducer partition and "stage" the
buckets locally (the paper's §IV-C point: wide transformations write
intermediate data to local SSD before it is shuffled); reduce-side tasks
fetch and concatenate buckets in map-partition order, which keeps results
deterministic regardless of task execution order.

Byte accounting is exact (NumPy payloads report ``nbytes``), and an
optional per-context capacity models the SSD-size failure mode: exceeding
it raises :class:`~repro.sparkle.errors.StorageCapacityError`, mirroring
the execution failures the paper reports for large IM configurations.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

from ..util import sizeof_block
from .errors import StorageCapacityError

__all__ = ["ShuffleManager"]


def _pair_size(item: tuple[Any, Any]) -> int:
    key, value = item
    return 16 + sizeof_block(value)  # key assumed small/fixed


class ShuffleManager:
    """In-memory shuffle store with byte accounting and spill capacity."""

    def __init__(self, capacity_bytes: int | None = None) -> None:
        self.capacity_bytes = capacity_bytes
        self._lock = threading.Lock()
        # (shuffle_id, map_partition) -> {reduce_partition: [items]}
        self._outputs: dict[tuple[int, int], dict[int, list]] = {}
        self._bytes_by_shuffle: dict[int, int] = {}
        self._next_shuffle_id = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    # ------------------------------------------------------------------
    def new_shuffle_id(self) -> int:
        with self._lock:
            sid = self._next_shuffle_id
            self._next_shuffle_id += 1
            self._bytes_by_shuffle[sid] = 0
            return sid

    def live_bytes(self) -> int:
        with self._lock:
            return sum(self._bytes_by_shuffle.values())

    # ------------------------------------------------------------------
    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        buckets: dict[int, list],
    ) -> int:
        """Store one map task's buckets; returns bytes written."""
        nbytes = sum(_pair_size(item) for items in buckets.values() for item in items)
        with self._lock:
            if self.capacity_bytes is not None:
                live = sum(self._bytes_by_shuffle.values())
                if live + nbytes > self.capacity_bytes:
                    raise StorageCapacityError(
                        f"shuffle spill of {nbytes} B exceeds local staging "
                        f"capacity ({live} B live of {self.capacity_bytes} B)"
                    )
            self._outputs[(shuffle_id, map_partition)] = buckets
            self._bytes_by_shuffle[shuffle_id] = (
                self._bytes_by_shuffle.get(shuffle_id, 0) + nbytes
            )
            self.total_bytes_written += nbytes
        return nbytes

    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        num_map_partitions: int,
        remote_map_partition=None,
    ) -> tuple[list, int, int]:
        """All items destined for one reducer, in map-partition order.

        Returns ``(items, bytes_read, remote_bytes_read)`` where the
        remote portion counts map outputs whose producing partition the
        ``remote_map_partition(map_pid)`` predicate marks as living on a
        different executor than the requester (``None`` = count nothing
        as remote).  Missing map outputs indicate a scheduler bug and
        raise.
        """
        items: list = []
        remote = 0
        with self._lock:
            for mp in range(num_map_partitions):
                try:
                    buckets = self._outputs[(shuffle_id, mp)]
                except KeyError:
                    raise StorageCapacityError(
                        f"shuffle {shuffle_id} missing map output {mp}"
                    ) from None
                chunk = buckets.get(reduce_partition, ())
                items.extend(chunk)
                if remote_map_partition is not None and remote_map_partition(mp):
                    remote += sum(_pair_size(item) for item in chunk)
        nbytes = sum(_pair_size(item) for item in items)
        with self._lock:
            self.total_bytes_read += nbytes
        return items, nbytes, remote

    def release(self, shuffle_id: int) -> None:
        """Drop a shuffle's staged data (job finished)."""
        with self._lock:
            for key in [k for k in self._outputs if k[0] == shuffle_id]:
                del self._outputs[key]
            self._bytes_by_shuffle.pop(shuffle_id, None)

    def has_output(self, shuffle_id: int, map_partition: int) -> bool:
        with self._lock:
            return (shuffle_id, map_partition) in self._outputs
