"""Shuffle manager: the wide-dependency data plane.

Map-side tasks bucket their output by reducer partition and "stage" the
buckets locally (the paper's §IV-C point: wide transformations write
intermediate data to local SSD before it is shuffled); reduce-side tasks
fetch and concatenate buckets in map-partition order, which keeps results
deterministic regardless of task execution order.

Byte accounting is exact (NumPy payloads report ``nbytes``), and an
optional per-context capacity models the SSD-size failure mode: exceeding
it raises :class:`~repro.sparkle.errors.StorageCapacityError`, mirroring
the execution failures the paper reports for large IM configurations.

With a :class:`~repro.sparkle.memory.MemoryManager` and a spill store
attached (a context constructed with ``memory_budget_bytes``), that
failure mode disappears: staged buckets reserve execution bytes against
the unified budget, and when a reservation fails the *oldest* staged
outputs are spilled to disk (checksummed, crash-atomic — the
:class:`~repro.sparkle.durable.DurableBlockStore` machinery) instead of
the write erroring out.  Reducers transparently read spilled outputs
back; a spilled block that fails its checksum is treated as a missing
map output (:class:`~repro.sparkle.errors.ShuffleFetchFailed`) and
recomputed from lineage — corruption degrades to recomputation, never to
wrong data.

Fault tolerance: a reducer that finds map outputs missing raises
:class:`~repro.sparkle.errors.ShuffleFetchFailed` naming exactly the
missing partitions, and the scheduler recomputes them from lineage —
outputs go missing when the chaos plane kills an executor and
:meth:`ShuffleManager.drop_executor_outputs` discards everything that
executor had staged.  An attached
:class:`~repro.sparkle.chaos.FaultPlan` can also flake individual map
writes (transient staging overflow, retried with backoff).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..util import sizeof_block
from .errors import (
    CorruptBlockError,
    BlockNotFoundError,
    ShuffleFetchFailed,
    StorageCapacityError,
    TransientIOError,
)
from .serialize import SerializedMapOutput, pack_map_output

__all__ = ["ShuffleManager"]


def _pair_size(item: tuple[Any, Any]) -> int:
    key, value = item
    return 16 + sizeof_block(value)  # key assumed small/fixed


def _bucket_items(payload, reduce_partition: int) -> list:
    """One reducer's chunk from either staging representation."""
    if isinstance(payload, SerializedMapOutput):
        return payload.bucket(reduce_partition)
    return payload.get(reduce_partition, [])


class ShuffleManager:
    """In-memory shuffle store with byte accounting and spill-to-disk.

    With ``serialize=True`` (the process backend's default), map outputs
    are staged as :class:`~repro.sparkle.serialize.SerializedMapOutput`
    blocks — pickle-5 streams whose NumPy tiles live out-of-band in an
    identity-deduplicated buffer pool.  Staged (and ``total_bytes_
    written``) accounting then reflects *physical* bytes: a pivot tile
    fanned out to every consumer is staged once, not once per consumer.
    Task-level trace accounting (`TaskRecord.shuffle_bytes_written`)
    follows the same physical numbers, which is exactly the
    communication-volume reduction the data plane is for; the default
    by-reference mode keeps the historical logical accounting the
    analytical counts model is validated against.  Reducers deserialize
    their bucket into fresh items whose tiles are read-only zero-copy
    views over the staged buffers.
    """

    def __init__(
        self,
        capacity_bytes: int | None = None,
        fault_plan=None,
        *,
        memory=None,
        spill=None,
        metrics=None,
        serialize: bool = False,
    ) -> None:
        self.capacity_bytes = capacity_bytes
        self.fault_plan = fault_plan
        self.memory = memory
        self.spill = spill
        self.serialize = serialize
        self._metrics = metrics
        self._lock = threading.Lock()
        # (shuffle_id, map_partition) -> {reduce_partition: [items]}
        self._outputs: dict[tuple[int, int], dict[int, list]] = {}
        self._output_bytes: dict[tuple[int, int], int] = {}
        # keys whose buckets live in the spill store, not memory
        self._spilled: set[tuple[int, int]] = set()
        self._spilled_bytes: dict[tuple[int, int], int] = {}
        self._owners: dict[tuple[int, int], Any] = {}
        self._bytes_by_shuffle: dict[int, int] = {}
        self._next_shuffle_id = 0
        self.total_bytes_written = 0
        self.total_bytes_read = 0

    # ------------------------------------------------------------------
    def new_shuffle_id(self) -> int:
        with self._lock:
            sid = self._next_shuffle_id
            self._next_shuffle_id += 1
            self._bytes_by_shuffle[sid] = 0
            return sid

    def live_bytes(self) -> int:
        """In-memory staged bytes (spilled outputs live on disk)."""
        with self._lock:
            return sum(self._bytes_by_shuffle.values())

    @staticmethod
    def _spill_block_key(key: tuple[int, int]) -> tuple:
        return ("shuffle", key[0], key[1])

    # ------------------------------------------------------------------
    def write(
        self,
        shuffle_id: int,
        map_partition: int,
        buckets: dict[int, list],
    ) -> int:
        """Store one map task's buckets; returns bytes written."""
        if self.fault_plan is not None and self.fault_plan.io_fault(
            "overflow", shuffle_id, map_partition
        ):
            raise TransientIOError(
                f"injected staging overflow: shuffle {shuffle_id} "
                f"map partition {map_partition}"
            )
        nbytes = sum(_pair_size(item) for items in buckets.values() for item in items)
        payload: Any = buckets
        if self.serialize:
            payload = pack_map_output(buckets, nbytes)
            if self._metrics is not None:
                self._metrics.serialized_shuffle_writes += 1
                saved = nbytes - payload.nbytes
                if saved > 0:
                    self._metrics.shuffle_bytes_deduplicated += saved
            nbytes = payload.nbytes
        key = (shuffle_id, map_partition)
        with self._lock:
            if self.memory is not None:
                self._write_governed_locked(key, payload, nbytes)
                self.total_bytes_written += nbytes
                return nbytes
            if self.capacity_bytes is not None:
                live = sum(self._bytes_by_shuffle.values()) - self._output_bytes.get(key, 0)
                if live + nbytes > self.capacity_bytes:
                    raise StorageCapacityError(
                        f"shuffle spill of {nbytes} B exceeds local staging "
                        f"capacity ({live} B live of {self.capacity_bytes} B)"
                    )
            # Idempotent overwrite: retried/speculative map tasks re-stage
            # the same output.
            stale = self._output_bytes.pop(key, 0)
            self._outputs[key] = payload
            self._output_bytes[key] = nbytes
            self._bytes_by_shuffle[shuffle_id] = (
                self._bytes_by_shuffle.get(shuffle_id, 0) - stale + nbytes
            )
            self.total_bytes_written += nbytes
        return nbytes

    def _write_governed_locked(
        self, key: tuple[int, int], buckets: dict[int, list], nbytes: int
    ) -> None:
        """Reserve-then-stage; spill oldest staged outputs until it fits."""
        mm = self.memory
        owner = mm.current_owner()
        self._discard_locked(key)  # idempotent overwrite of retried stages
        reserved = mm.reserve("execution", owner, nbytes)
        while not reserved and self._outputs:
            self._spill_oldest_locked()
            reserved = mm.reserve("execution", owner, nbytes)
        if not reserved:
            # Nothing left to spill and still no room for this one output.
            if self.spill is not None:
                # Disk-only staging: the write itself goes straight to disk.
                self._spill_buckets_locked(key, buckets, nbytes)
                return
            # No spill store: first-reservation rule — grant past the
            # budget rather than deadlock or fail the stage.
            mm.reserve("execution", owner, nbytes, force=True)
        self._outputs[key] = buckets
        self._output_bytes[key] = nbytes
        self._owners[key] = owner
        self._bytes_by_shuffle[key[0]] = (
            self._bytes_by_shuffle.get(key[0], 0) + nbytes
        )

    def _spill_oldest_locked(self) -> None:
        """Move the oldest in-memory staged output to the spill store."""
        victim = next(iter(self._outputs))
        buckets = self._outputs.pop(victim)
        nbytes = self._output_bytes.pop(victim)
        owner = self._owners.pop(victim, None)
        self._bytes_by_shuffle[victim[0]] = (
            self._bytes_by_shuffle.get(victim[0], 0) - nbytes
        )
        self.memory.release("execution", owner, nbytes)
        if self.spill is not None:
            self._spill_buckets_locked(victim, buckets, nbytes)
        # Without a spill store the output is simply dropped: consumers
        # hit ShuffleFetchFailed and recompute it from lineage.

    def _spill_buckets_locked(
        self, key: tuple[int, int], buckets: dict[int, list], nbytes: int
    ) -> None:
        self.spill.put(self._spill_block_key(key), buckets)
        self._spilled.add(key)
        self._spilled_bytes[key] = nbytes
        if self._metrics is not None:
            self._metrics.shuffle_blocks_spilled += 1
            self._metrics.spill_bytes_written += nbytes

    def _discard_locked(self, key: tuple[int, int], drop_spill_file: bool = True) -> None:
        """Forget a staged output (memory accounting + spill bookkeeping)."""
        if key in self._outputs:
            stale = self._output_bytes.pop(key, 0)
            del self._outputs[key]
            self._bytes_by_shuffle[key[0]] = (
                self._bytes_by_shuffle.get(key[0], 0) - stale
            )
            owner = self._owners.pop(key, None)
            if self.memory is not None and stale:
                self.memory.release("execution", owner, stale)
        if key in self._spilled:
            self._spilled.discard(key)
            self._spilled_bytes.pop(key, None)
            if drop_spill_file and self.spill is not None:
                self.spill.delete(self._spill_block_key(key))

    def _fetch_one_locked(self, key: tuple[int, int]) -> dict[int, list]:
        """One map output's buckets, reading back from spill if needed."""
        got = self._outputs.get(key)
        if got is not None:
            return got
        try:
            buckets = self.spill.get(self._spill_block_key(key))
        except (CorruptBlockError, BlockNotFoundError):
            # A corrupted spill block is never served: treat it as a
            # missing map output so the scheduler recomputes from lineage.
            self._discard_locked(key)
            raise ShuffleFetchFailed(key[0], (key[1],)) from None
        if self._metrics is not None:
            self._metrics.spill_reads += 1
            self._metrics.spill_bytes_read += self._spilled_bytes.get(key, 0)
        return buckets

    def fetch(
        self,
        shuffle_id: int,
        reduce_partition: int,
        num_map_partitions: int,
        remote_map_partition=None,
    ) -> tuple[list, int, int]:
        """All items destined for one reducer, in map-partition order.

        Returns ``(items, bytes_read, remote_bytes_read)`` where the
        remote portion counts map outputs whose producing partition the
        ``remote_map_partition(map_pid)`` predicate marks as living on a
        different executor than the requester (``None`` = count nothing
        as remote).  Missing map outputs raise
        :class:`~repro.sparkle.errors.ShuffleFetchFailed` so the
        scheduler can recompute them from lineage.
        """
        items: list = []
        remote = 0
        with self._lock:
            missing = tuple(
                mp
                for mp in range(num_map_partitions)
                if (shuffle_id, mp) not in self._outputs
                and (shuffle_id, mp) not in self._spilled
            )
            if missing:
                raise ShuffleFetchFailed(shuffle_id, missing)
            for mp in range(num_map_partitions):
                payload = self._fetch_one_locked((shuffle_id, mp))
                chunk = _bucket_items(payload, reduce_partition)
                items.extend(chunk)
                if remote_map_partition is not None and remote_map_partition(mp):
                    remote += sum(_pair_size(item) for item in chunk)
        nbytes = sum(_pair_size(item) for item in items)
        with self._lock:
            self.total_bytes_read += nbytes
        return items, nbytes, remote

    def release(self, shuffle_id: int) -> int:
        """Drop a shuffle's staged data (job finished or stage aborted).

        Returns the in-memory bytes reclaimed; spilled blocks for the
        shuffle are deleted from the spill store as well.
        """
        with self._lock:
            freed = 0
            keys = [
                k
                for k in set(self._outputs) | self._spilled
                if k[0] == shuffle_id
            ]
            for key in keys:
                freed += self._output_bytes.get(key, 0)
                self._discard_locked(key)
            self._bytes_by_shuffle.pop(shuffle_id, None)
            return freed

    def clear(self) -> int:
        """Drop every staged output of every shuffle; returns bytes freed.

        Between-requests sweep for a long-lived context: once a solve's
        final collect has run, its staged map outputs can never be
        fetched again (the consuming RDDs are dead), but stage-reuse
        bookkeeping would hold their bytes — and their governor
        reservations — forever.
        """
        with self._lock:
            freed = 0
            for key in list(set(self._outputs) | self._spilled):
                freed += self._output_bytes.get(key, 0)
                self._discard_locked(key)
            self._bytes_by_shuffle.clear()
            return freed

    def drop_executor_outputs(
        self, owns_map_partition: Callable[[int], bool]
    ) -> list[tuple[int, int]]:
        """Discard every staged output owned by a lost executor.

        ``owns_map_partition(map_pid)`` is the placement predicate (the
        pool's ``executor_for``).  Returns the dropped
        ``(shuffle_id, map_partition)`` keys; consumers of those outputs
        will hit :class:`~repro.sparkle.errors.ShuffleFetchFailed` and
        force lineage recomputation.  Spilled outputs die with their
        executor too — the paper's local-SSD staging is per-node.
        """
        with self._lock:
            victims = [
                k
                for k in set(self._outputs) | self._spilled
                if owns_map_partition(k[1])
            ]
            for key in victims:
                self._discard_locked(key)
            return victims

    def has_output(self, shuffle_id: int, map_partition: int) -> bool:
        with self._lock:
            key = (shuffle_id, map_partition)
            return key in self._outputs or key in self._spilled

    @property
    def num_spilled(self) -> int:
        with self._lock:
            return len(self._spilled)
