"""sparkle — a from-scratch, in-process reimplementation of the Apache
Spark execution model (the paper's execution substrate).

Implements the §II concepts the GEP drivers rely on: lazily evaluated
RDDs with lineage, narrow vs wide dependencies, DAG scheduling into
stages split at shuffles, tasks on a pool of simulated executors,
hash/custom partitioners, shuffle with byte accounting and staging
capacity, broadcast variables, driver ``collect()``, shared persistent
storage for the Collect-Broadcast strategy, lineage-based task retry,
and an execution trace for the cluster cost model.

Fault tolerance is chaos-tested: :mod:`repro.sparkle.chaos` injects
seeded task exceptions, executor loss (dropping staged shuffle outputs
to exercise lineage recomputation), stragglers (raced by speculative
copies), and transient storage/broadcast/staging faults; the scheduler
recovers with deterministic backoff, map-output recomputation, and
executor blacklisting, and every recovery event is metered.

Driver crashes are covered too: :mod:`repro.sparkle.durable` adds a
checksummed on-disk block store (atomic tmp+rename writes, BLAKE2b
manifests) behind ``RDD.checkpoint()`` and the CB shared storage, plus
a write-ahead solve journal that the GEP drivers use for
``--resume``-able, bit-identical crash recovery; ``torn_write`` and
``corrupt_block`` chaos kinds exercise the layer under the same seeded
determinism contract.

Memory exhaustion — the paper's headline IM failure mode — is governed
by :mod:`repro.sparkle.memory`: a context constructed with
``memory_budget_bytes`` shares one byte budget between shuffle staging
(execution) and the RDD cache (storage), spills overflow to a
checksummed disk store instead of failing, queues task launches under
pressure (admission control), and exposes ``ok``/``pressured``/
``critical`` pressure levels that the GEP drivers can react to by
degrading IM→CB mid-solve; the ``mem_squeeze`` chaos kind shrinks the
budget mid-run under the seeded determinism contract.

Worker liveness is supervised (:mod:`repro.sparkle.supervisor`): under
the process backend, workers heartbeat into a shared-memory board
watched by a driver-side watchdog (silent workers are SIGKILLed),
offloaded kernel calls can carry wall-clock deadlines
(``TaskDeadlineExceeded``), and a worker death runs a full crash
protocol — orphaned scratch segments are reclaimed, the pool respawns
under deterministic bounded backoff, and the in-flight call retries
through the scheduler's attempt machinery (``WorkerCrashed``).  A call
that kills ``max_task_failures`` fresh workers is quarantined
(``PoisonTaskError``); the GEP solver's ``--degrade-on-crash`` then
falls back to the thread backend at the next outer-iteration boundary,
bit-identical.  The ``worker_kill``/``worker_hang``/``worker_oom``
chaos kinds SIGKILL/SIGSTOP *real* worker processes under the same
seeded determinism contract.

The data plane is pluggable (:mod:`repro.sparkle.backend`): the default
``threads`` backend is the historical deterministic in-process pool,
while ``SparkleContext(backend="processes")`` runs one worker process
per simulated executor and offloads kernel tile updates past the GIL —
tiles travel through ``multiprocessing.shared_memory`` segments
(:class:`~repro.sparkle.serialize.SegmentArena`) and shuffle map
outputs are staged as pickle-protocol-5 streams whose out-of-band tile
buffers are deduplicated by identity
(:class:`~repro.sparkle.serialize.SerializedMapOutput`).  Both backends
produce bit-identical results.
"""

from .affinity import AffinityRegistry
from .backend import (
    ALIAS_X,
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    ThreadBackend,
    make_backend,
)
from .broadcast import Broadcast
from .chaos import FAULT_KINDS, FaultPlan, FaultSpec
from .context import SparkleContext
from .durable import DurableBlockStore, FsckReport, SolveJournal
from .errors import (
    BlockNotFoundError,
    CircuitOpenError,
    CorruptBlockError,
    ExecutorLost,
    FrameTooLargeError,
    JobAborted,
    JournalError,
    LastExecutorProtectedWarning,
    PoisonTaskError,
    RequestDeadlineExceeded,
    ResumeMismatchError,
    ServiceDrainingError,
    ServiceOverloadedError,
    ShuffleFetchFailed,
    TenantQuotaExceededError,
    SparkleError,
    StorageCapacityError,
    TaskDeadlineExceeded,
    TaskError,
    TaskKilled,
    TransientIOError,
    WorkerCrashed,
)
from .memory import (
    MemoryManager,
    PRESSURE_CRITICAL,
    PRESSURE_OK,
    PRESSURE_PRESSURED,
)
from .metrics import (
    EngineMetrics,
    JobTrace,
    ServiceMetrics,
    StageRecord,
    TaskRecord,
)
from .requests import SolveRequest, SolveResponse, solve_fingerprint
from .partitioner import GridPartitioner, HashPartitioner, Partitioner, RangePartitioner
from .rdd import RDD, Aggregator
from .scheduler import TaskContext
from .serialize import (
    CowTile,
    SegmentArena,
    SerializedMapOutput,
    ShmArray,
    purge_segments,
    release_nested,
    share_nested,
    shm_supported,
)
from .supervisor import HeartbeatBoard, SupervisionConfig, WorkerSupervisor

__all__ = [
    "SparkleContext",
    "AffinityRegistry",
    "ALIAS_X",
    "BACKENDS",
    "ExecutionBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
    "CowTile",
    "SegmentArena",
    "SerializedMapOutput",
    "ShmArray",
    "release_nested",
    "share_nested",
    "shm_supported",
    "RDD",
    "Aggregator",
    "Broadcast",
    "Partitioner",
    "HashPartitioner",
    "GridPartitioner",
    "RangePartitioner",
    "EngineMetrics",
    "JobTrace",
    "StageRecord",
    "TaskRecord",
    "TaskContext",
    "SparkleError",
    "TaskError",
    "TaskKilled",
    "ExecutorLost",
    "TransientIOError",
    "ShuffleFetchFailed",
    "JobAborted",
    "StorageCapacityError",
    "BlockNotFoundError",
    "CorruptBlockError",
    "JournalError",
    "ResumeMismatchError",
    "DurableBlockStore",
    "FsckReport",
    "SolveJournal",
    "FaultPlan",
    "FaultSpec",
    "FAULT_KINDS",
    "MemoryManager",
    "PRESSURE_OK",
    "PRESSURE_PRESSURED",
    "PRESSURE_CRITICAL",
    "LastExecutorProtectedWarning",
    "WorkerCrashed",
    "TaskDeadlineExceeded",
    "PoisonTaskError",
    "ServiceOverloadedError",
    "ServiceDrainingError",
    "TenantQuotaExceededError",
    "RequestDeadlineExceeded",
    "CircuitOpenError",
    "FrameTooLargeError",
    "ServiceMetrics",
    "SolveRequest",
    "SolveResponse",
    "solve_fingerprint",
    "SupervisionConfig",
    "WorkerSupervisor",
    "HeartbeatBoard",
    "purge_segments",
]
