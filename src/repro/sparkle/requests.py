"""Typed request/response plane for the solver service (DESIGN.md §15).

This module is the wire-and-memory contract between clients and
:class:`~repro.service.SolverService`: a :class:`SolveRequest` names one
solve (problem spec + kernel + input table + strategy + tiling), a
:class:`SolveResponse` carries the result plus request-plane provenance
(cache hit?  coalesced onto another flight?), and the service errors
re-exported here are the complete set a client must handle.

It also owns :func:`solve_fingerprint` — the config/input identity that
keys the write-ahead journal (PR 2 resume), the single-flight dedup
table, and the result cache.  All three MUST agree byte-for-byte, which
is why the GEP solver's ``_fingerprint`` delegates here instead of
keeping a private copy: a drift between "same solve for resume" and
"same solve for caching" would let the cache serve a result the journal
would refuse to resume.

Import direction: ``repro.core`` imports ``repro.sparkle``, never the
reverse — so this module holds spec/kernel objects opaquely and never
touches ``repro.core``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from .errors import (
    CircuitOpenError,
    RequestDeadlineExceeded,
    ServiceOverloadedError,
)

__all__ = [
    "SolveRequest",
    "SolveResponse",
    "solve_fingerprint",
    "ServiceOverloadedError",
    "RequestDeadlineExceeded",
    "CircuitOpenError",
]


def solve_fingerprint(
    spec_name: str,
    dtype: Any,
    n: int,
    r: int,
    nt: int,
    strategy: str,
    kernel_describe: Mapping[str, Any],
    table: np.ndarray,
) -> str:
    """Config/input identity of one solve (BLAKE2b-128 hex digest).

    Covers everything that influences the numeric result: problem spec
    and dtype, grid shape, strategy, kernel configuration, and the exact
    input bytes (which also captures any generator seed).  Scheduling
    knobs (partitioner, executor counts, backend, chaos plans)
    deliberately stay out — they alter traces, never results, so a
    cached result is valid across all of them.

    The digest layout is frozen: journals written by earlier releases
    key resume eligibility on it (see ``GepSparkSolver._fingerprint``).
    """
    h = hashlib.blake2b(digest_size=16)
    config = (
        spec_name,
        str(np.dtype(dtype)),
        n,
        r,
        nt,
        strategy,
        sorted(kernel_describe.items()),
    )
    h.update(repr(config).encode())
    h.update(np.ascontiguousarray(table).tobytes())
    return h.hexdigest()


@dataclass
class SolveRequest:
    """One client request to the solver service.

    ``spec`` and ``kernel`` are held opaquely (any objects providing the
    ``GepSpec`` / kernel protocol — ``.name``/``.dtype`` and
    ``.describe()`` respectively); the service passes them straight to
    :class:`~repro.core.dpspark.GepSparkSolver`.
    """

    spec: Any
    table: np.ndarray
    r: int
    kernel: Any
    strategy: str = "im"
    #: wall-clock budget in seconds covering queueing + the engine pass
    #: (None = no deadline); overruns cancel mid-flight with
    #: :class:`RequestDeadlineExceeded`
    deadline: float | None = None
    #: client identity for accounting/tracing (free-form)
    client: str = "anonymous"
    request_id: str | None = None
    #: isolation principal (DESIGN.md §18): keys the service's weighted
    #: deficit-round-robin dispatch queue, byte quota on the memory
    #: governor's tenant ledger, token-bucket rate limit, and brownout
    #: shed order (via :class:`~repro.sparkle.tenancy.TenantPolicy`),
    #: plus per-tenant metering in :class:`~repro.sparkle.metrics.
    #: ServiceMetrics`.  Deliberately excluded from the fingerprint —
    #: two tenants asking for the same solve share one engine pass and
    #: one cache entry (only the *admitting* tenant's quota carries the
    #: flight).  ``None`` requests all share the anonymous queue at the
    #: default weight, unmetered and unquota'd.
    tenant: str | None = None
    #: client-supplied stable identity for *this submission* (not the
    #: solve): the request journal keys admission/settlement on it, so a
    #: client that reconnects after a driver crash and resends the same
    #: key is served the original settlement instead of a re-execution.
    #: Also excluded from the fingerprint — it names the attempt, not
    #: the work.
    idempotency_key: str | None = None

    def __post_init__(self) -> None:
        if self.strategy not in ("im", "cb", "bcast"):
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.r < 1:
            raise ValueError("r must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0 seconds (or None)")
        if self.table.ndim != 2 or self.table.shape[0] != self.table.shape[1]:
            raise ValueError("GEP requires a square table")

    def fingerprint(self) -> str:
        """The dedup/cache/journal identity of this request's solve."""
        n = self.table.shape[0]
        # Mirrors core.blocked.grid_bounds (an r-way near-equal split):
        # nt tiles per side, capped by the extent.
        nt = min(self.r, n) if n else 1
        return solve_fingerprint(
            self.spec.name,
            self.spec.dtype,
            n,
            self.r,
            nt,
            self.strategy,
            self.kernel.describe(),
            self.table,
        )


@dataclass
class SolveResponse:
    """A completed request: the result plus request-plane provenance."""

    result: np.ndarray
    fingerprint: str
    request_id: str | None = None
    #: served from the LRU result cache (no engine pass for this request)
    from_cache: bool = False
    #: coalesced onto another request's in-flight engine pass
    coalesced: bool = False
    #: request-plane wall-clock (admission to response), seconds
    wall_seconds: float = 0.0
    #: terminal state machine label (DESIGN.md §15): ``completed`` here;
    #: failures travel as typed exceptions, not responses
    state: str = "completed"
    extras: dict[str, Any] = field(default_factory=dict)
