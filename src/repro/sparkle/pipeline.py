"""Per-tile readiness tracking for the wavefront pipeline (DESIGN.md §17).

The pipelined solve path keys every tile by ``(level, i, j)`` where
``level`` is its *version*: the value the tile carries after all outer
iterations ``< level`` have been applied.  A :class:`TileTracker` holds
the settled versions and fires registered callbacks the moment the last
gate of a pending stage settles — so admission is dependence-driven
(callbacks launch tasks) rather than barrier-driven, and nothing ever
blocks inside an executor slot waiting for a tile.

Thread-safety contract:

- ``settle`` / ``when`` / ``forward`` may be called from any thread;
  callbacks run *outside* the tracker lock, on the thread that settled
  the final gate (or on the registering thread if already satisfied),
  in registration order when one settle releases several waiters.
- ``abort`` latches the first error; subsequent ``settle`` calls become
  no-ops, pending callbacks are dropped, and every ``wait_all`` raises
  the original exception — so typed errors (deadlines, poison tasks)
  surface unchanged on the driver.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Iterable

__all__ = ["TileTracker"]


class _Waiter:
    __slots__ = ("seq", "remaining", "callback")

    def __init__(self, seq: int, remaining: set, callback: Callable[[], None]) -> None:
        self.seq = seq
        self.remaining = remaining
        self.callback = callback


class TileTracker:
    """Settle-able per-tile readiness map with callback admission.

    When constructed with a :class:`~.memory.MemoryManager`, every
    settled tile version is charged to the governor's execution pool
    (owner ``"pipeline-tracker"``) and released when :meth:`prune_below`
    drops it or :meth:`close` tears the tracker down — so a deep
    pipeline's working set shows up as real pressure instead of
    silently exceeding the budget.  Charges are forced (settling must
    never fail mid-wavefront or the pipeline wedges); oversubscription
    surfaces as ``forced_grants`` and pressure transitions, which is
    exactly what drives the degrade/brownout machinery.
    """

    def __init__(self, memory=None, owner: str = "pipeline-tracker") -> None:
        self._cond = threading.Condition()
        self._values: dict[Hashable, Any] = {}
        self._waiters: dict[Hashable, list[_Waiter]] = {}
        self._error: BaseException | None = None
        self._seq = 0
        self._memory = memory
        self._owner = owner
        self._charged: dict[Hashable, int] = {}

    @property
    def error(self) -> BaseException | None:
        return self._error

    def settle(self, key: Hashable, value: Any) -> None:
        """Publish ``value`` for ``key`` and fire any now-ready waiters."""
        fire: list[_Waiter] = []
        with self._cond:
            if self._error is not None:
                return
            if key in self._values:
                raise RuntimeError(f"tile {key!r} settled twice")
            self._values[key] = value
            if self._memory is not None:
                nbytes = int(getattr(value, "nbytes", 0))
                if nbytes:
                    self._memory.reserve(
                        "execution", self._owner, nbytes, force=True
                    )
                    self._charged[key] = nbytes
            for waiter in self._waiters.pop(key, ()):
                waiter.remaining.discard(key)
                if not waiter.remaining:
                    fire.append(waiter)
            self._cond.notify_all()
        for waiter in sorted(fire, key=lambda w: w.seq):
            waiter.callback()

    def get(self, key: Hashable) -> Any:
        with self._cond:
            try:
                return self._values[key]
            except KeyError:
                if self._error is not None:
                    raise self._error from None
                raise

    def when(self, keys: Iterable[Hashable], callback: Callable[[], None]) -> None:
        """Run ``callback`` once every key has settled (maybe immediately)."""
        with self._cond:
            if self._error is not None:
                return
            remaining = {k for k in keys if k not in self._values}
            if remaining:
                waiter = _Waiter(self._seq, remaining, callback)
                self._seq += 1
                for key in remaining:
                    self._waiters.setdefault(key, []).append(waiter)
                return
        callback()

    def forward(self, src: Hashable, dst: Hashable) -> None:
        """Propagate an untouched tile to the next version unchanged."""
        self.when([src], lambda: self.settle(dst, self.get(src)))

    def wait_all(self, keys: Iterable[Hashable], timeout: float | None = None) -> None:
        """Block until every key settles; re-raise any latched abort."""
        keys = list(keys)
        with self._cond:
            while True:
                if self._error is not None:
                    raise self._error
                if all(k in self._values for k in keys):
                    return
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"tiles never settled: "
                        f"{[k for k in keys if k not in self._values][:4]!r}"
                    )

    def abort(self, exc: BaseException) -> None:
        """Latch the first failure, drop pending waiters, wake sleepers."""
        with self._cond:
            if self._error is None:
                self._error = exc
            self._waiters.clear()
            self._cond.notify_all()

    def prune_below(self, level: int) -> None:
        """Drop settled versions older than ``level`` to bound memory."""
        freed = 0
        with self._cond:
            stale = [k for k in self._values if isinstance(k, tuple) and k[0] < level]
            for key in stale:
                del self._values[key]
                freed += self._charged.pop(key, 0)
        if freed and self._memory is not None:
            self._memory.release("execution", self._owner, freed)

    def close(self) -> None:
        """Release every remaining governor charge (end of the solve).

        The final level's tiles are never pruned — the solver reads them
        out as the result — so without this the tracker would leak its
        last window of charges into the service's next request.
        """
        with self._cond:
            freed = sum(self._charged.values())
            self._charged.clear()
        if freed and self._memory is not None:
            self._memory.release("execution", self._owner, freed)
