"""Pluggable execution backends: deterministic threads or real processes.

The engine historically ran every task on one GIL-bound
``ThreadPoolExecutor``.  :class:`ExecutionBackend` makes that choice
pluggable (DESIGN.md §12):

* :class:`ThreadBackend` (default) — the original thread pool, verbatim.
  Orchestration thunks close over driver state (shuffle maps, locks,
  fault plans), so they can only run in-process; this backend keeps
  every determinism contract (chaos serialization, trace byte
  accounting) exactly as before.
* :class:`ProcessBackend` — orchestration still runs on threads (the
  thunks are not picklable, by design), but the *kernel math* — the
  A/B‖C/D tile updates that dominate wall-clock — is offloaded to a
  ``ProcessPoolExecutor`` with one worker per simulated executor.  The
  tile being updated is staged into a shared-memory scratch segment;
  operands already resident in shared memory (CB storage, broadcast
  values, cached partitions — see :class:`~.serialize.SegmentArena`)
  are passed as segment descriptors, i.e. zero-copy; everything else
  ships inline.  Workers attach, update in place, and return only
  kernel stats — the result comes back through the segment.

Determinism: kernel offload is synchronous per call and numerically
identical (the worker runs the same NumPy ops on the same bits), so a
process-backend solve is bit-identical to a thread-backend one; task
*scheduling* still honours the chaos plane's ``serialize_tasks``
contract because the offload happens inside the task body.  Caveats are
documented in DESIGN.md §12 (worker wall-clock attribution, physical
vs logical shuffle bytes).

Worker lifecycle: the pool is created eagerly in the driver's
constructor thread (forking later, mid-solve, from a many-threaded
driver is the classic fork-safety trap) and torn down with
``shutdown(wait=True)`` so no worker outlives the context.  Workers
disable ``resource_tracker`` registration for shared memory — the
driver's arena is the single owner responsible for unlinking, and a
worker exiting must never reap segments the driver still serves.
"""

from __future__ import annotations

import pickle
import threading
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Any, Callable

import numpy as np

from .serialize import SegmentArena, ShmArray, shm_supported

__all__ = [
    "ALIAS_X",
    "BACKENDS",
    "ExecutionBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

#: Kernel-operand sentinel: "this operand aliases the tile being
#: updated" (cases A/B/C).  The kernel contract encodes the case in the
#: aliasing pattern, so the alias must be re-established against
#: whichever materialization of X the backend updates.
ALIAS_X = object()

BACKENDS = ("threads", "processes")


class ExecutionBackend:
    """Contract the executor pool and the GEP drivers program against."""

    name: str = "abstract"
    #: whether :meth:`run_kernel` is available (drivers fall back to the
    #: copy-then-update-in-place thread path when it is not)
    supports_kernel_offload: bool = False

    def run_tasks(
        self, thunks: list[Callable[[], Any]], sequential: bool = False
    ) -> list[Any]:
        raise NotImplementedError

    def run_kernel(
        self,
        kernel_blob: bytes,
        case: str,
        x: np.ndarray,
        u: Any,
        v: Any,
        w: Any,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        want_stats: bool = False,
    ):
        """Offloaded tile update; returns ``(fresh_updated_tile, stats)``."""
        raise NotImplementedError(f"{self.name} backend has no kernel offload")

    def stage_complete(self) -> None:
        """End-of-stage hook (scratch sweeps); default no-op."""

    def shutdown(self) -> None:
        raise NotImplementedError


class ThreadBackend(ExecutionBackend):
    """The historical deterministic thread pool."""

    name = "threads"
    supports_kernel_offload = False

    def __init__(self, total_slots: int, *, metrics=None) -> None:
        if total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        self.total_slots = total_slots
        self._metrics = metrics
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.total_slots, thread_name_prefix="executor"
                )
            return self._pool

    def run_tasks(
        self, thunks: list[Callable[[], Any]], sequential: bool = False
    ) -> list[Any]:
        """Run a stage's tasks; returns results in task order.

        Exceptions propagate only after every submitted task settles
        (finished, failed, or cancelled before starting), so a failing
        task cannot leave stragglers mutating shared shuffle state.  On
        the first failure, tasks that have not started yet are cancelled
        rather than run to completion.

        ``sequential`` forces in-order, one-at-a-time execution in the
        calling thread — the chaos determinism contract (see
        :mod:`repro.sparkle.chaos`).
        """
        if not thunks:
            return []
        if sequential or self.total_slots == 1 or len(thunks) == 1:
            return [t() for t in thunks]
        pool = self._ensure_pool()
        futures = [pool.submit(t) for t in thunks]
        first_error: BaseException | None = None
        # as_completed drains every future (cancelled ones included), so
        # by the time we raise, nothing is still running.
        for fut in as_completed(futures):
            if fut.cancelled():
                continue
            exc = fut.exception()
            if exc is not None and first_error is None:
                first_error = exc
                for other in futures:
                    other.cancel()
        if first_error is not None:
            raise first_error
        return [fut.result() for fut in futures]

    def shutdown(self) -> None:
        """Tear the pool down without waiting on queued stragglers.

        ``cancel_futures=True`` cancels every task that has not started
        yet, so a hung or slow straggler deep in the queue cannot block
        engine teardown forever; tasks already running are still joined
        (they may be mutating shared shuffle state).
        """
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None


# ----------------------------------------------------------------------
# process backend: worker-side machinery (must be module-level for fork
# AND spawn start methods)
# ----------------------------------------------------------------------
_WORKER_KERNEL_CACHE: dict[bytes, Any] = {}


def _worker_init() -> None:  # pragma: no cover - runs in worker processes
    """Keep worker resource trackers away from driver-owned segments.

    Attaching a ``SharedMemory`` registers it with the *worker's*
    resource tracker, which would unlink still-live segments (with a
    leak warning) when the worker exits.  The driver's arena is the
    sole owner; workers only ever attach and close.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


def _resolve_operand(desc, x, attached, opened):
    """Materialize one of u/v/w from its transport descriptor."""
    if desc is None:
        return None
    kind = desc[0]
    if kind == "alias-x":
        return x
    if kind == "alias":
        return attached[desc[1]]
    if kind == "inline":
        return desc[1]
    if kind == "shm":
        from multiprocessing import shared_memory

        _, name, offset, shape, dtype = desc
        shm = shared_memory.SharedMemory(name=name)
        opened.append(shm)
        arr = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        arr.flags.writeable = False
        return arr
    raise ValueError(f"unknown operand descriptor {kind!r}")


def _kernel_task(
    kernel_blob: bytes,
    case: str,
    xdesc: tuple[str, tuple[int, ...], str],
    udesc,
    vdesc,
    wdesc,
    gi0: int,
    gj0: int,
    gk0: int,
    n_global: int,
    want_stats: bool,
):  # pragma: no cover - exercised in worker processes
    """Worker body: attach the scratch tile, update it in place.

    The updated tile travels back through shared memory — the return
    value is only the kernel's work accounting (or ``None``).
    """
    from multiprocessing import shared_memory

    from ..kernels.stats import KernelStats

    kernel = _WORKER_KERNEL_CACHE.get(kernel_blob)
    if kernel is None:
        kernel = pickle.loads(kernel_blob)
        if len(_WORKER_KERNEL_CACHE) > 32:
            _WORKER_KERNEL_CACHE.clear()
        _WORKER_KERNEL_CACHE[kernel_blob] = kernel
    name, shape, dtype = xdesc
    xshm = shared_memory.SharedMemory(name=name)
    opened = [xshm]
    try:

        def _run():
            x = np.ndarray(shape, dtype=np.dtype(dtype), buffer=xshm.buf)
            attached = {"x": x}
            operands = {}
            for role, desc in (("u", udesc), ("v", vdesc), ("w", wdesc)):
                arr = _resolve_operand(desc, x, attached, opened)
                attached[role] = arr
                operands[role] = arr
            stats = KernelStats() if want_stats else None
            kernel.run(
                case,
                x,
                operands["u"],
                operands["v"],
                operands["w"],
                gi0,
                gj0,
                gk0,
                n_global,
                stats=stats,
            )
            return stats

        # Views live only inside _run's frame, so the close() below is
        # not blocked by exported buffers.
        return _run()
    finally:
        for shm in opened:
            try:
                shm.close()
            except BufferError:
                pass


class ProcessBackend(ThreadBackend):
    """Thread orchestration plus a process pool for the kernel math."""

    name = "processes"

    def __init__(
        self,
        total_slots: int,
        *,
        num_workers: int,
        metrics=None,
        start_method: str | None = None,
    ) -> None:
        super().__init__(total_slots, metrics=metrics)
        if not shm_supported():  # pragma: no cover - platform gate
            raise RuntimeError(
                "the process backend needs multiprocessing.shared_memory"
            )
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        self.arena = SegmentArena(metrics=metrics)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        ctx = multiprocessing.get_context(start_method)
        # Eager creation: fork from the constructor's (driver) thread,
        # before executor threads and their locks exist.
        self._workers = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=ctx, initializer=_worker_init
        )

    @property
    def supports_kernel_offload(self) -> bool:  # type: ignore[override]
        return self._workers is not None

    # -- offload -------------------------------------------------------
    def _operand_desc(self, arr, x, seen: dict[int, str], role: str):
        """Transport descriptor for one of u/v/w (cheapest available)."""
        if arr is None:
            return None
        if arr is ALIAS_X or arr is x:
            return ("alias-x",)
        known = seen.get(id(arr))
        if known is not None:
            return ("alias", known)
        seen[id(arr)] = role
        shm_name = getattr(arr, "shm_name", None)
        # Attach-by-name only while the slab is still registered: a
        # block retired between fetch and offload (release_nested) keeps
        # this view readable but unlinks the name — ship inline then.
        if (
            shm_name is not None
            and isinstance(arr, ShmArray)
            and self.arena.is_live(shm_name)
        ):
            return ("shm", shm_name, int(arr.shm_offset), arr.shape, arr.dtype.str)
        return ("inline", np.ascontiguousarray(arr))

    def run_kernel(
        self,
        kernel_blob: bytes,
        case: str,
        x: np.ndarray,
        u: Any,
        v: Any,
        w: Any,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        want_stats: bool = False,
    ):
        """Stage X to scratch shm, update it in a worker, copy it out.

        The scratch staging *is* the defensive copy the thread path
        takes (`tile.copy()`), so each offloaded call counts one copy
        eliminated.  The scratch segment is freed in ``finally`` —
        chaos-injected task deaths cannot leak it (and the scheduler's
        end-of-stage :meth:`stage_complete` sweep backstops even that).
        """
        if self._workers is None:
            raise RuntimeError("process backend is shut down")
        name, staged = self.arena.stage_scratch(x)
        try:
            xdesc = (name, staged.shape, staged.dtype.str)
            seen: dict[int, str] = {}
            udesc = self._operand_desc(u, x, seen, "u")
            vdesc = self._operand_desc(v, x, seen, "v")
            wdesc = self._operand_desc(w, x, seen, "w")
            stats = self._workers.submit(
                _kernel_task,
                kernel_blob,
                case,
                xdesc,
                udesc,
                vdesc,
                wdesc,
                gi0,
                gj0,
                gk0,
                n_global,
                want_stats,
            ).result()
            out = np.array(staged)  # fresh, caller-owned result tile
            if self._metrics is not None:
                self._metrics.kernel_offloads += 1
                self._metrics.copies_eliminated += 1
            return out, stats
        finally:
            del staged
            self.arena.free(name)

    # -- lifecycle -----------------------------------------------------
    def stage_complete(self) -> None:
        self.arena.sweep_scratch()

    def shutdown(self) -> None:
        workers, self._workers = self._workers, None
        if workers is not None:
            workers.shutdown(wait=True, cancel_futures=True)
        self.arena.cleanup()
        super().shutdown()


def make_backend(
    name: str, *, total_slots: int, num_workers: int, metrics=None
) -> ExecutionBackend:
    """Build a backend by CLI name (``threads`` | ``processes``)."""
    if name == "threads":
        return ThreadBackend(total_slots, metrics=metrics)
    if name == "processes":
        return ProcessBackend(
            total_slots, num_workers=num_workers, metrics=metrics
        )
    raise ValueError(f"unknown backend {name!r} (expected one of {BACKENDS})")
