"""Pluggable execution backends: deterministic threads or real processes.

The engine historically ran every task on one GIL-bound
``ThreadPoolExecutor``.  :class:`ExecutionBackend` makes that choice
pluggable (DESIGN.md §12):

* :class:`ThreadBackend` (default) — the original thread pool, verbatim.
  Orchestration thunks close over driver state (shuffle maps, locks,
  fault plans), so they can only run in-process; this backend keeps
  every determinism contract (chaos serialization, trace byte
  accounting) exactly as before.
* :class:`ProcessBackend` — orchestration still runs on threads (the
  thunks are not picklable, by design), but the *kernel math* — the
  A/B‖C/D tile updates that dominate wall-clock — is offloaded to a
  ``ProcessPoolExecutor`` with one worker per simulated executor.  The
  tile being updated is staged into a shared-memory scratch segment;
  operands already resident in shared memory (CB storage, broadcast
  values, cached partitions — see :class:`~.serialize.SegmentArena`)
  are passed as segment descriptors, i.e. zero-copy; everything else
  ships inline.  Workers attach, update in place, and return only
  kernel stats — the result comes back through the segment.

Determinism: kernel offload is synchronous per call and numerically
identical (the worker runs the same NumPy ops on the same bits), so a
process-backend solve is bit-identical to a thread-backend one; task
*scheduling* still honours the chaos plane's ``serialize_tasks``
contract because the offload happens inside the task body.  Caveats are
documented in DESIGN.md §12 (worker wall-clock attribution, physical
vs logical shuffle bytes).

Worker lifecycle: the pool is created eagerly in the driver's
constructor thread (forking later, mid-solve, from a many-threaded
driver is the classic fork-safety trap) and torn down with
``shutdown(wait=True)`` so no worker outlives the context.  Workers
disable ``resource_tracker`` registration for shared memory — the
driver's arena is the single owner responsible for unlinking, and a
worker exiting must never reap segments the driver still serves.

Supervision (DESIGN.md §13): every offloaded kernel call runs under the
:mod:`~repro.sparkle.supervisor` layer — workers heartbeat into a
shared-memory board watched by a driver watchdog, calls carry optional
wall-clock deadlines, and a worker death (``BrokenProcessPool``) runs
the crash protocol: reclaim the dead call's orphaned scratch segment,
respawn the pool under deterministic bounded backoff, count the failure
against the call's poison budget, and surface a *retryable*
:class:`~.errors.WorkerCrashed` / :class:`~.errors.TaskDeadlineExceeded`
so the DAGScheduler's attempt machinery re-runs the task.  A call that
kills ``max_task_failures`` fresh workers is quarantined with
:class:`~.errors.PoisonTaskError`.  Respawned pools use the ``spawn``
start method: after a crash the safest worker is one that shares no
heritage with the wreckage.
"""

from __future__ import annotations

import atexit
import hashlib
import itertools
import os
import pickle
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Any, Callable

import numpy as np

from .affinity import AffinityRegistry
from .chaos import CURRENT_TASK
from .errors import PoisonTaskError, TaskDeadlineExceeded, WorkerCrashed
from .serialize import OperandPool, SegmentArena, ShmArray, shm_supported
from .supervisor import SupervisionConfig, WorkerSupervisor, _attach_worker

__all__ = [
    "ALIAS_X",
    "BACKENDS",
    "ExecutionBackend",
    "ThreadBackend",
    "ProcessBackend",
    "make_backend",
]

#: Kernel-operand sentinel: "this operand aliases the tile being
#: updated" (cases A/B/C).  The kernel contract encodes the case in the
#: aliasing pattern, so the alias must be re-established against
#: whichever materialization of X the backend updates.
ALIAS_X = object()

BACKENDS = ("threads", "processes")


class ExecutionBackend:
    """Contract the executor pool and the GEP drivers program against."""

    name: str = "abstract"
    #: whether :meth:`run_kernel` is available (drivers fall back to the
    #: copy-then-update-in-place thread path when it is not)
    supports_kernel_offload: bool = False
    #: dispatch mode the drivers key their fusion decision on:
    #: ``"tile"`` = one offload round-trip per tile update (historical),
    #: ``"batch"`` = fused per-worker batches via :meth:`run_kernel_batch`
    dispatch: str = "tile"
    #: gang (barrier) stage mode — only meaningful with ``dispatch="batch"``
    gang_stages: bool = False
    #: tile → worker placement registry (process backend only)
    affinity: Any = None
    #: supervision layer (process backend only; ``None`` means no real
    #: process boundary, so there is nothing to supervise)
    supervisor: Any = None
    supervision: Any = None

    def run_tasks(
        self, thunks: list[Callable[[], Any]], sequential: bool = False
    ) -> list[Any]:
        raise NotImplementedError

    def run_kernel(
        self,
        kernel_blob: bytes,
        case: str,
        x: np.ndarray,
        u: Any,
        v: Any,
        w: Any,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        want_stats: bool = False,
    ):
        """Offloaded tile update; returns ``(fresh_updated_tile, stats)``."""
        raise NotImplementedError(f"{self.name} backend has no kernel offload")

    def run_kernel_batch(
        self, kernel_blob: bytes, calls: list, want_stats: bool = False
    ) -> list:
        """Fused offload of many tile updates (one round-trip per worker).

        ``calls`` is a list of ``(case, x, u, v, w, gi0, gj0, gk0,
        n_global)`` tuples; returns ``[(fresh_tile, stats), ...]`` in
        call order.
        """
        raise NotImplementedError(f"{self.name} backend has no kernel offload")

    def reset_affinity(self) -> None:
        """Solve-boundary hook: forget tile placements; default no-op."""

    def invalidate_affinity(self, executor: int) -> None:
        """Executor blacklisted: spill its tile placements; default no-op."""

    def stage_complete(self) -> None:
        """End-of-stage hook (scratch sweeps); default no-op."""

    def shutdown(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class ThreadBackend(ExecutionBackend):
    """The historical deterministic thread pool."""

    name = "threads"
    supports_kernel_offload = False

    def __init__(self, total_slots: int, *, metrics=None) -> None:
        if total_slots < 1:
            raise ValueError("total_slots must be >= 1")
        self.total_slots = total_slots
        self._metrics = metrics
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.total_slots, thread_name_prefix="executor"
                )
            return self._pool

    def run_tasks(
        self, thunks: list[Callable[[], Any]], sequential: bool = False
    ) -> list[Any]:
        """Run a stage's tasks; returns results in task order.

        Exceptions propagate only after every submitted task settles
        (finished, failed, or cancelled before starting), so a failing
        task cannot leave stragglers mutating shared shuffle state.  On
        the first failure, tasks that have not started yet are cancelled
        rather than run to completion.

        ``sequential`` forces in-order, one-at-a-time execution in the
        calling thread — the chaos determinism contract (see
        :mod:`repro.sparkle.chaos`).
        """
        if not thunks:
            return []
        if sequential or self.total_slots == 1 or len(thunks) == 1:
            return [t() for t in thunks]
        pool = self._ensure_pool()
        futures = [pool.submit(t) for t in thunks]
        first_error: BaseException | None = None
        # as_completed drains every future (cancelled ones included), so
        # by the time we raise, nothing is still running.
        for fut in as_completed(futures):
            if fut.cancelled():
                continue
            exc = fut.exception()
            if exc is not None and first_error is None:
                first_error = exc
                for other in futures:
                    other.cancel()
        if first_error is not None:
            raise first_error
        return [fut.result() for fut in futures]

    def shutdown(self) -> None:
        """Tear the pool down without waiting on queued stragglers.

        ``cancel_futures=True`` cancels every task that has not started
        yet, so a hung or slow straggler deep in the queue cannot block
        engine teardown forever; tasks already running are still joined
        (they may be mutating shared shuffle state).
        """
        with self._lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
                self._pool = None


# ----------------------------------------------------------------------
# process backend: worker-side machinery (must be module-level for fork
# AND spawn start methods)
# ----------------------------------------------------------------------
_WORKER_KERNEL_CACHE: dict[bytes, Any] = {}


def _worker_init(supervision_args=None) -> None:  # pragma: no cover - worker side
    """Keep worker resource trackers away from driver-owned segments,
    then join the supervision layer.

    Attaching a ``SharedMemory`` registers it with the *worker's*
    resource tracker, which would unlink still-live segments (with a
    leak warning) when the worker exits.  The driver's arena is the
    sole owner; workers only ever attach and close.  The tracker patch
    must land before the heartbeat board attach for the same reason.
    """
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register
    if supervision_args is not None:
        _attach_worker(*supervision_args)


def _resolve_operand(desc, x, attached, opened, pool=None, attach=None):
    """Materialize one of u/v/w from its transport descriptor.

    ``pool`` is the batch's identity-deduped inline-operand list (the
    ``"pool"`` kind only appears in batch envelopes); ``attach``, when
    given, is a name → ``SharedMemory`` cache so a segment referenced by
    several envelopes of one batch is attached once.
    """
    if desc is None:
        return None
    kind = desc[0]
    if kind == "alias-x":
        return x
    if kind == "alias":
        return attached[desc[1]]
    if kind == "inline":
        return desc[1]
    if kind == "pool":
        return pool[desc[1]]
    if kind == "shm":
        from multiprocessing import shared_memory

        _, name, offset, shape, dtype = desc
        if attach is not None:
            shm = attach(name)
        else:
            shm = shared_memory.SharedMemory(name=name)
            opened.append(shm)
        arr = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
        )
        arr.flags.writeable = False
        return arr
    raise ValueError(f"unknown operand descriptor {kind!r}")


def _kernel_task(
    token: int,
    inject: str | None,
    kernel_blob: bytes,
    case: str,
    xdesc: tuple[str, tuple[int, ...], str],
    udesc,
    vdesc,
    wdesc,
    gi0: int,
    gj0: int,
    gk0: int,
    n_global: int,
    want_stats: bool,
):  # pragma: no cover - exercised in worker processes
    """Worker body: attach the scratch tile, update it in place.

    The updated tile travels back through shared memory — the return
    value is only the kernel's work accounting (or ``None``).

    ``token`` publishes this call on the heartbeat board so the driver
    can map a deadline overrun back to this pid; ``inject`` is a
    driver-decided real process fault (``worker_kill``/``worker_hang``/
    ``worker_oom``) the worker executes on itself before touching the
    kernel — the fault fires at the OS boundary, not as a simulation.
    """
    from multiprocessing import shared_memory

    from ..kernels.stats import KernelStats
    from .supervisor import worker_begin_task, worker_end_task, worker_self_fault

    worker_begin_task(token)
    if inject is not None:
        worker_self_fault(inject)
    kernel = _WORKER_KERNEL_CACHE.get(kernel_blob)
    if kernel is None:
        kernel = pickle.loads(kernel_blob)
        if len(_WORKER_KERNEL_CACHE) > 32:
            _WORKER_KERNEL_CACHE.clear()
        _WORKER_KERNEL_CACHE[kernel_blob] = kernel
    name, shape, dtype = xdesc
    xshm = shared_memory.SharedMemory(name=name)
    opened = [xshm]
    try:

        def _run():
            x = np.ndarray(shape, dtype=np.dtype(dtype), buffer=xshm.buf)
            attached = {"x": x}
            operands = {}
            for role, desc in (("u", udesc), ("v", vdesc), ("w", wdesc)):
                arr = _resolve_operand(desc, x, attached, opened)
                attached[role] = arr
                operands[role] = arr
            stats = KernelStats() if want_stats else None
            kernel.run(
                case,
                x,
                operands["u"],
                operands["v"],
                operands["w"],
                gi0,
                gj0,
                gk0,
                n_global,
                stats=stats,
            )
            return stats

        # Views live only inside _run's frame, so the close() below is
        # not blocked by exported buffers.
        return _run()
    finally:
        worker_end_task()
        for shm in opened:
            try:
                shm.close()
            except BufferError:
                pass


def _kernel_batch_task(
    kernel_blob: bytes,
    pool: list,
    envs: list,
    want_stats: bool,
):  # pragma: no cover - exercised in worker processes
    """Worker body for one fused batch: many tile updates, one round-trip.

    ``pool`` is the batch's identity-deduped inline-operand list (the
    pivot fan-out crosses the IPC boundary once per batch, not once per
    tile); each envelope is ``(token, inject, case, xdesc, udesc, vdesc,
    wdesc, gi0, gj0, gk0, n_global)``.  Segments named by several
    envelopes are attached once through a batch-local cache and closed
    at the end.

    Error attribution: the worker publishes each envelope's ``token`` on
    its heartbeat-board row *before* running the call, and the row keeps
    that token until the driver resets the slot — so a crash mid-batch
    leaves the culprit call's token behind for the driver to map back to
    the exact tile (DESIGN.md §14).
    """
    from multiprocessing import shared_memory

    from ..kernels.stats import KernelStats
    from .supervisor import worker_begin_task, worker_end_task, worker_self_fault

    kernel = _WORKER_KERNEL_CACHE.get(kernel_blob)
    if kernel is None:
        kernel = pickle.loads(kernel_blob)
        if len(_WORKER_KERNEL_CACHE) > 32:
            _WORKER_KERNEL_CACHE.clear()
        _WORKER_KERNEL_CACHE[kernel_blob] = kernel
    segments: dict[str, Any] = {}

    def _attach(name: str):
        shm = segments.get(name)
        if shm is None:
            shm = shared_memory.SharedMemory(name=name)
            segments[name] = shm
        return shm

    out_stats: list | None = [] if want_stats else None
    try:
        for token, inject, case, xdesc, udesc, vdesc, wdesc, gi0, gj0, gk0, n_global in envs:
            worker_begin_task(token)
            if inject is not None:
                worker_self_fault(inject)
            name, shape, dtype = xdesc
            xshm = _attach(name)

            def _run(
                xshm=xshm,
                shape=shape,
                dtype=dtype,
                case=case,
                udesc=udesc,
                vdesc=vdesc,
                wdesc=wdesc,
                gi0=gi0,
                gj0=gj0,
                gk0=gk0,
                n_global=n_global,
            ):
                x = np.ndarray(shape, dtype=np.dtype(dtype), buffer=xshm.buf)
                operands = {}
                for role, desc in (("u", udesc), ("v", vdesc), ("w", wdesc)):
                    operands[role] = _resolve_operand(
                        desc, x, {}, None, pool=pool, attach=_attach
                    )
                stats = KernelStats() if want_stats else None
                kernel.run(
                    case,
                    x,
                    operands["u"],
                    operands["v"],
                    operands["w"],
                    gi0,
                    gj0,
                    gk0,
                    n_global,
                    stats=stats,
                )
                return stats

            # Views live only inside _run's frame, so the close() below
            # is not blocked by exported buffers.
            stats = _run()
            if out_stats is not None:
                out_stats.append(stats)
            worker_end_task()
        return out_stats
    finally:
        worker_end_task()
        for shm in segments.values():
            try:
                shm.close()
            except BufferError:
                pass


class _MemberDeadline(RuntimeError):
    """Internal: a member batch was SIGKILLed for deadline overrun.

    Wraps the resulting pool breakage so the elapsed time survives to
    the crash handler (the batch analogue of ``deadline_note``).
    """

    def __init__(self, elapsed: float, cause: BaseException) -> None:
        super().__init__(f"member batch SIGKILLed after {elapsed:.3f}s")
        self.elapsed = elapsed
        self.cause = cause


class ProcessBackend(ThreadBackend):
    """Thread orchestration plus per-worker process pools for the kernel
    math (one single-worker pool per slot — see ``__init__``)."""

    name = "processes"

    def __init__(
        self,
        total_slots: int,
        *,
        num_workers: int,
        metrics=None,
        start_method: str | None = None,
        supervision: SupervisionConfig | None = None,
        fault_plan=None,
        dispatch: str = "tile",
        gang_stages: bool = False,
        affinity: bool = True,
    ) -> None:
        super().__init__(total_slots, metrics=metrics)
        if not shm_supported():  # pragma: no cover - platform gate
            raise RuntimeError(
                "the process backend needs multiprocessing.shared_memory"
            )
        import multiprocessing

        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if dispatch not in ("tile", "batch"):
            raise ValueError(f"unknown dispatch mode {dispatch!r}")
        if gang_stages and dispatch != "batch":
            raise ValueError("gang_stages requires dispatch='batch'")
        self.num_workers = num_workers
        self.dispatch = dispatch
        self.gang_stages = gang_stages
        self.affinity = (
            AffinityRegistry(num_workers, metrics=metrics) if affinity else None
        )
        self.arena = SegmentArena(metrics=metrics)
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        self.start_method = start_method
        # Respawned pools always use spawn when the platform has it: a
        # crash may have left the driver's fork-inherited state suspect,
        # and a from-scratch interpreter shares nothing with the wreck.
        self._respawn_method = "spawn" if "spawn" in methods else start_method
        self.supervision = supervision or SupervisionConfig()
        self.fault_plan = fault_plan
        self.supervisor = WorkerSupervisor(
            self.supervision,
            slots=num_workers,
            prefix=self.arena.prefix,
            metrics=metrics,
            seed=fault_plan.seed if fault_plan is not None else 0,
        )
        self._pool_lock = threading.Lock()
        self._respawns = 0
        self._rr = itertools.count()
        # One single-worker pool per slot, created eagerly: fork from
        # the constructor's (driver) thread, before executor threads and
        # their locks exist.  A targeted submit queue per worker is what
        # lets affinity routing and batch fusion address a *specific*
        # worker — a shared ProcessPoolExecutor queue cannot.  Slot i is
        # also heartbeat-board row i (fixed-slot claim in worker init).
        self._pools: list | None = [
            self._make_pool(start_method, slot) for slot in range(num_workers)
        ]
        self._generations = [0] * num_workers
        # Reap on unclean-but-orderly exits (sys.exit, uncaught error):
        # kill registered workers, unlink arena + board.  A SIGKILLed
        # driver never reaches atexit — that case is covered by the
        # worker-side janitor thread (supervisor._start_janitor).
        atexit.register(self._emergency_cleanup)
        self.supervisor.start_watchdog()

    def _make_pool(self, method: str, slot: int):
        """One worker-slot pool generation, joined to the supervision
        layer on its fixed heartbeat-board row."""
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        ctx = multiprocessing.get_context(method)
        return ProcessPoolExecutor(
            max_workers=1,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(self.supervisor.worker_initargs(ctx, slot=slot),),
        )

    @property
    def supports_kernel_offload(self) -> bool:  # type: ignore[override]
        return self._pools is not None

    # -- placement -----------------------------------------------------
    def _default_slot(self) -> int:
        """First-touch placement: the running task's partition (the same
        modulo the executor pool uses for task placement), else
        round-robin for calls outside any task."""
        task = CURRENT_TASK.get()
        if task is not None:
            return task.partition % self.num_workers
        return next(self._rr) % self.num_workers

    def _slot_pool(self, slot: int):
        """Current ``(pool, generation)`` for one worker slot."""
        with self._pool_lock:
            if self._pools is None:
                raise RuntimeError("process backend is shut down")
            return self._pools[slot], self._generations[slot]

    def reset_affinity(self) -> None:
        if self.affinity is not None:
            self.affinity.reset()

    def invalidate_affinity(self, executor: int) -> None:
        if self.affinity is not None:
            self.affinity.invalidate_worker(executor % self.num_workers)

    # -- offload -------------------------------------------------------
    def _operand_desc(self, arr, x, seen: dict[int, str], role: str):
        """Transport descriptor for one of u/v/w (cheapest available)."""
        if arr is None:
            return None
        if arr is ALIAS_X or arr is x:
            return ("alias-x",)
        known = seen.get(id(arr))
        if known is not None:
            return ("alias", known)
        seen[id(arr)] = role
        shm_name = getattr(arr, "shm_name", None)
        # Attach-by-name only while the slab is still registered: a
        # block retired between fetch and offload (release_nested) keeps
        # this view readable but unlinks the name — ship inline then.
        if (
            shm_name is not None
            and isinstance(arr, ShmArray)
            and self.arena.is_live(shm_name)
        ):
            return ("shm", shm_name, int(arr.shm_offset), arr.shape, arr.dtype.str)
        return ("inline", np.ascontiguousarray(arr))

    def run_kernel(
        self,
        kernel_blob: bytes,
        case: str,
        x: np.ndarray,
        u: Any,
        v: Any,
        w: Any,
        gi0: int,
        gj0: int,
        gk0: int,
        n_global: int,
        want_stats: bool = False,
    ):
        """Stage X to scratch shm, update it in a worker, copy it out.

        The scratch staging *is* the defensive copy the thread path
        takes (`tile.copy()`), so each offloaded call counts one copy
        eliminated.  The scratch segment is freed in ``finally`` —
        chaos-injected task deaths cannot leak it (and the scheduler's
        end-of-stage :meth:`stage_complete` sweep backstops even that).

        Supervised: the wait honours ``task_deadline``, a worker death
        runs the crash protocol (:meth:`_handle_worker_death`), and a
        seeded real process fault may be shipped along with the call.
        """
        from concurrent.futures.process import BrokenProcessPool

        sup = self.supervisor
        coordinate = (gi0, gj0, gk0)
        kernel_id = hashlib.blake2b(kernel_blob, digest_size=4).hexdigest()
        task_sig = (kernel_id, case, gi0, gj0, gk0)
        if sup.is_quarantined(task_sig):
            raise PoisonTaskError(
                f"kernel call case={case} tile@{coordinate} is quarantined "
                f"(killed {sup.failures(task_sig)} workers)",
                coordinate=coordinate,
                case=case,
                kernel_id=kernel_id,
                failures=sup.failures(task_sig),
            )
        inject = (
            self.fault_plan.worker_fault(case, gi0, gj0, gk0)
            if self.fault_plan is not None
            else None
        )
        default = self._default_slot()
        if self.affinity is not None:
            slot = self.affinity.route((gi0, gj0), default)
        else:
            slot = default % self.num_workers
        pool, generation = self._slot_pool(slot)
        name, staged = self.arena.stage_scratch(x)
        try:
            xdesc = (name, staged.shape, staged.dtype.str)
            seen: dict[int, str] = {}
            udesc = self._operand_desc(u, x, seen, "u")
            vdesc = self._operand_desc(v, x, seen, "v")
            wdesc = self._operand_desc(w, x, seen, "w")
            token = sup.next_token()
            deadline_note: dict[str, float] = {}
            try:
                fut = pool.submit(
                    _kernel_task,
                    token,
                    inject,
                    kernel_blob,
                    case,
                    xdesc,
                    udesc,
                    vdesc,
                    wdesc,
                    gi0,
                    gj0,
                    gk0,
                    n_global,
                    want_stats,
                )
                stats = self._await_result(fut, token, slot, deadline_note)
            except RuntimeError as exc:
                # BrokenProcessPool, or a plain RuntimeError from
                # submitting against a pool a concurrent crash handler
                # already swapped out ("cannot schedule new futures
                # after shutdown") — only the latter with an *unchanged*
                # generation is a real programming error.
                if not isinstance(exc, BrokenProcessPool):
                    with self._pool_lock:
                        stale = (
                            self._pools is not None
                            and self._generations[slot] != generation
                        )
                    if not stale:
                        raise
                self._handle_worker_death(
                    slot,
                    generation,
                    name,
                    task_sig,
                    coordinate,
                    case,
                    kernel_id,
                    inject=inject,
                    cause=exc,
                    deadline_elapsed=deadline_note.get("elapsed"),
                )
            out = np.array(staged)  # fresh, caller-owned result tile
            if self._metrics is not None:
                self._metrics.kernel_offloads += 1
                self._metrics.copies_eliminated += 1
                self._metrics.dispatch_round_trips += 1
            return out, stats
        finally:
            del staged
            self.arena.free(name)

    # -- batched offload -----------------------------------------------
    def _batch_operand_desc(self, arr, x, pool: OperandPool):
        """Transport descriptor for one batched operand.

        Identity dedup happens at the pool level — an operand shared by
        many calls of the batch (the pivot fan-out) ships once per
        batch, the per-batch broadcast dedup.  Shared-memory residents
        still go by name, zero-copy, exactly as in tile dispatch.
        """
        if arr is None:
            return None
        if arr is ALIAS_X or arr is x:
            return ("alias-x",)
        shm_name = getattr(arr, "shm_name", None)
        if (
            shm_name is not None
            and isinstance(arr, ShmArray)
            and self.arena.is_live(shm_name)
        ):
            return ("shm", shm_name, int(arr.shm_offset), arr.shape, arr.dtype.str)
        return ("pool", pool.add(arr))

    def _route_calls(self, calls: list) -> list[int]:
        """Worker slot per call (DESIGN.md §14 placement policy).

        Non-gang: the whole batch lands on ONE worker — majority vote of
        the tiles' homes (affinity), else the calling task's partition —
        so a stage costs one round-trip per worker.  Gang: each call
        routes to its tile's home so the wave spreads across all
        workers; first-touch tiles spread deterministically by tile
        index (``gi0``/``gj0`` are multiples of the tile size, so a
        plain coordinate modulo would collapse every tile onto slot 0).
        """
        W = self.num_workers
        keys = [(c[5], c[6]) for c in calls]
        if self.gang_stages:
            defaults = []
            for c in calls:
                th, tw = c[1].shape[0] or 1, c[1].shape[1] or 1
                ti, tj = c[5] // th, c[6] // tw
                defaults.append((ti * 31 + tj * 17) % W)
            if self.affinity is not None:
                return self.affinity.route_many(keys, defaults)
            return defaults
        default = self._default_slot()
        if self.affinity is not None:
            slot = self.affinity.route_batch(keys, default)
        else:
            slot = default % W
        return [slot] * len(calls)

    def run_kernel_batch(
        self, kernel_blob: bytes, calls: list, want_stats: bool = False
    ) -> list:
        """Fused offload: one IPC round-trip per worker, not per tile.

        Each member batch (one worker's share of ``calls``) ships a
        single envelope list plus an identity-deduped operand pool; the
        worker updates every scratch tile in place and returns only the
        stats list.  All members settle before any error propagates, so
        a crashed member cannot leave another member racing the arena
        sweep.  A member death runs the same crash protocol as tile
        dispatch, with the culprit *call* attributed via the
        driver-shipped fault or the token left on the dead worker's
        heartbeat-board row — quarantine still names the exact tile.
        Under gang mode the raised error fails the whole task attempt,
        and the scheduler's retry re-runs the entire wave: all-or-
        nothing semantics through the existing attempt machinery.
        """
        from concurrent.futures.process import BrokenProcessPool

        if not calls:
            return []
        sup = self.supervisor
        kernel_id = hashlib.blake2b(kernel_blob, digest_size=4).hexdigest()
        sigs = []
        for case, _x, _u, _v, _w, gi0, gj0, gk0, _n in calls:
            sig = (kernel_id, case, gi0, gj0, gk0)
            sigs.append(sig)
            if sup.is_quarantined(sig):
                coordinate = (gi0, gj0, gk0)
                raise PoisonTaskError(
                    f"kernel call case={case} tile@{coordinate} is quarantined "
                    f"(killed {sup.failures(sig)} workers)",
                    coordinate=coordinate,
                    case=case,
                    kernel_id=kernel_id,
                    failures=sup.failures(sig),
                )
        injects = [
            self.fault_plan.worker_fault(c[0], c[5], c[6], c[7])
            if self.fault_plan is not None
            else None
            for c in calls
        ]
        slots = self._route_calls(calls)
        members: dict[int, list[int]] = {}
        for idx, slot in enumerate(slots):
            members.setdefault(slot, []).append(idx)
        if self.gang_stages and self._metrics is not None:
            self._metrics.gang_dispatches += 1
        results: list = [None] * len(calls)
        views: dict[int, Any] = {}
        all_names: list[str] = []
        first_error: BaseException | None = None
        try:
            pending = []
            for slot, idxs in sorted(members.items()):
                pool, generation = self._slot_pool(slot)
                opool = OperandPool()
                envs = []
                tokens = []
                names = []
                for idx in idxs:
                    case, x, u, v, w, gi0, gj0, gk0, n_global = calls[idx]
                    name, staged = self.arena.stage_scratch(x)
                    all_names.append(name)
                    names.append(name)
                    views[idx] = staged
                    token = sup.next_token()
                    tokens.append(token)
                    envs.append(
                        (
                            token,
                            injects[idx],
                            case,
                            (name, staged.shape, staged.dtype.str),
                            self._batch_operand_desc(u, x, opool),
                            self._batch_operand_desc(v, x, opool),
                            self._batch_operand_desc(w, x, opool),
                            gi0,
                            gj0,
                            gk0,
                            n_global,
                        )
                    )
                fut = pool.submit(
                    _kernel_batch_task,
                    kernel_blob,
                    opool.payload(),
                    envs,
                    want_stats,
                )
                if self._metrics is not None:
                    self._metrics.dispatch_round_trips += 1
                    self._metrics.batch_dispatches += 1
                pending.append((slot, idxs, fut, tokens, names, generation))
            for slot, idxs, fut, tokens, names, generation in pending:
                try:
                    stats_list = self._await_member(fut, slot, len(idxs))
                except TaskDeadlineExceeded as exc:
                    # Still-queued member cancelled outright: retryable,
                    # no worker was harmed, keep settling the rest.
                    if first_error is None:
                        first_error = exc
                    continue
                except RuntimeError as exc:
                    deadline_elapsed = None
                    if isinstance(exc, _MemberDeadline):
                        deadline_elapsed = exc.elapsed
                        exc = exc.cause
                    if not isinstance(exc, BrokenProcessPool):
                        with self._pool_lock:
                            stale = (
                                self._pools is not None
                                and self._generations[slot] != generation
                            )
                        if not stale:
                            raise
                    err = self._handle_member_death(
                        slot,
                        generation,
                        idxs,
                        tokens,
                        names,
                        sigs,
                        calls,
                        injects,
                        kernel_id,
                        cause=exc,
                        deadline_elapsed=deadline_elapsed,
                    )
                    if first_error is None:
                        first_error = err
                    continue
                for pos, idx in enumerate(idxs):
                    stats = stats_list[pos] if stats_list is not None else None
                    results[idx] = (np.array(views[idx]), stats)
                if self._metrics is not None:
                    n = len(idxs)
                    self._metrics.kernel_offloads += n
                    self._metrics.copies_eliminated += n
                    self._metrics.batched_kernel_calls += n
            if first_error is not None:
                if (
                    self.gang_stages
                    and self._metrics is not None
                    and isinstance(
                        first_error, (WorkerCrashed, TaskDeadlineExceeded)
                    )
                ):
                    # Retryable gang failure: the scheduler re-runs the
                    # whole wave (all-or-nothing).
                    self._metrics.gang_retries += 1
                raise first_error
            return results
        finally:
            views.clear()
            for name in all_names:
                self.arena.free(name)

    def _await_member(self, fut, slot: int, ncalls: int):
        """Wait for one member batch under a scaled deadline.

        The per-call ``task_deadline`` budget multiplies by the member's
        call count — a batch of 20 legitimately runs 20 kernels.  On
        overrun: cancel a still-queued member outright (retryable,
        typed), else SIGKILL the slot's worker and let the resulting
        pool breakage carry the elapsed time to the crash handler via
        :class:`_MemberDeadline`.
        """
        deadline = self.supervision.task_deadline
        if deadline is None:
            return fut.result()
        budget = deadline * max(ncalls, 1)
        sup = self.supervisor
        start = time.monotonic()
        killed = False
        kill_elapsed = None
        while True:
            try:
                return fut.result(timeout=0.05)
            except FuturesTimeoutError:
                elapsed = time.monotonic() - start
                if elapsed <= budget or killed:
                    continue
                if self._metrics is not None:
                    self._metrics.deadlines_exceeded += 1
                if fut.cancel():
                    raise TaskDeadlineExceeded(
                        f"batch of {ncalls} still queued after "
                        f"{elapsed:.3f}s (budget {budget}s)",
                        deadline=budget,
                        elapsed=elapsed,
                    ) from None
                kill_elapsed = elapsed
                pid = sup.pid_for_slot(slot)
                if pid is not None:
                    sup._signal(pid, signal.SIGKILL)
                else:
                    sup.kill_workers()
                killed = True
            except RuntimeError as exc:
                if killed and kill_elapsed is not None:
                    raise _MemberDeadline(kill_elapsed, exc) from exc
                raise

    def _handle_member_death(
        self,
        slot: int,
        generation: int,
        idxs: list[int],
        tokens: list[int],
        names: list[str],
        sigs: list,
        calls: list,
        injects: list,
        kernel_id: str,
        *,
        cause: BaseException,
        deadline_elapsed: float | None,
    ) -> BaseException:
        """Crash protocol for one dead member batch; returns the typed
        error (the caller settles the remaining members before raising).

        Culprit attribution, in priority order: the call carrying a
        driver-shipped fault; the call whose token the dead worker last
        published on its board row (read *before* the respawn resets the
        row); the member's first call.  The failure is counted against
        that one call's poison budget, so quarantine names the exact
        tile even though the whole batch died with the worker.
        """
        sup = self.supervisor
        culprit = next((idx for idx in idxs if injects[idx] is not None), None)
        if culprit is None:
            tok = sup.token_for_slot(slot)
            if tok:
                for pos, idx in enumerate(idxs):
                    if tokens[pos] == tok:
                        culprit = idx
                        break
        if culprit is None:
            culprit = idxs[0]
        if self._metrics is not None:
            self._metrics.worker_crashes += 1
        # The dead worker can no longer write its scratch tiles: reclaim
        # the member's orphans now (the outer ``finally`` free is
        # idempotent and becomes a no-op).
        for name in names:
            if self.arena.free(name) and self._metrics is not None:
                self._metrics.orphan_segments_reclaimed += 1
        self._respawn_slot(slot, generation)
        task_sig = sigs[culprit]
        case = calls[culprit][0]
        coordinate = (calls[culprit][5], calls[culprit][6], calls[culprit][7])
        failures = sup.record_failure(task_sig)
        inject = injects[culprit]
        reason = inject or (
            "deadline" if deadline_elapsed is not None else "crash"
        )
        err: BaseException
        if failures >= self.supervision.max_task_failures:
            sup.quarantine(task_sig)
            err = PoisonTaskError(
                f"batched kernel call case={case} tile@{coordinate} killed "
                f"{failures} fresh workers ({reason}); quarantined as poison",
                coordinate=coordinate,
                case=case,
                kernel_id=kernel_id,
                failures=failures,
            )
        elif deadline_elapsed is not None:
            err = TaskDeadlineExceeded(
                f"batch of {len(idxs)} (culprit case={case} "
                f"tile@{coordinate}) SIGKILLed after {deadline_elapsed:.3f}s",
                deadline=self.supervision.task_deadline,
                elapsed=deadline_elapsed,
            )
        else:
            err = WorkerCrashed(
                f"worker died mid-batch ({reason}) on case={case} "
                f"tile@{coordinate} (batch of {len(idxs)}); slot {slot} "
                f"respawned (failure {failures}/"
                f"{self.supervision.max_task_failures})",
                reason=reason,
                slot=slot,
            )
        err.__cause__ = cause
        return err

    # -- supervision ---------------------------------------------------
    def _await_result(self, fut, token: int, slot: int, deadline_note: dict):
        """Wait for a worker result under the per-call deadline.

        No deadline: a plain blocking wait (a hang is still covered by
        the watchdog, whose SIGKILL breaks the pool and wakes us with
        ``BrokenProcessPool``).  With a deadline: poll-wait; on overrun,
        cancel a still-queued call outright, else SIGKILL the worker
        executing it — ``deadline_note`` tells the crash handler this
        breakage was a deadline enforcement, not a spontaneous death.
        """
        deadline = self.supervision.task_deadline
        if deadline is None:
            return fut.result()
        sup = self.supervisor
        start = time.monotonic()
        killed = False
        while True:
            try:
                return fut.result(timeout=0.05)
            except FuturesTimeoutError:
                elapsed = time.monotonic() - start
                if elapsed <= deadline or killed:
                    continue
                if self._metrics is not None:
                    self._metrics.deadlines_exceeded += 1
                if fut.cancel():
                    # Never started — queue latency, not the task's
                    # fault; retryable without touching any worker.
                    raise TaskDeadlineExceeded(
                        f"kernel call still queued after {elapsed:.3f}s "
                        f"(deadline {deadline}s)",
                        deadline=deadline,
                        elapsed=elapsed,
                    ) from None
                deadline_note["elapsed"] = elapsed
                pid = sup.pid_for_token(token)
                if pid is None:
                    # Call between submit and begin — the slot's own
                    # board row still names the worker executing it.
                    pid = sup.pid_for_slot(slot)
                if pid is not None:
                    sup._signal(pid, signal.SIGKILL)
                else:
                    # No shm board at all: no way to target the one
                    # worker — reap them all rather than hang.
                    sup.kill_workers()
                killed = True  # pool break delivers BrokenProcessPool

    def _handle_worker_death(
        self,
        slot: int,
        generation: int,
        scratch_name: str,
        task_sig: tuple,
        coordinate: tuple,
        case: str,
        kernel_id: str,
        *,
        inject: str | None,
        cause: BaseException,
        deadline_elapsed: float | None,
    ):
        """The crash protocol: reclaim, respawn, count, raise typed.

        Always raises — :class:`PoisonTaskError` once the call has spent
        its ``max_task_failures`` budget, else the retryable
        :class:`TaskDeadlineExceeded` / :class:`WorkerCrashed` that the
        scheduler's attempt machinery backs off and re-runs.
        """
        if self._metrics is not None:
            self._metrics.worker_crashes += 1
        # The dead worker can no longer write its scratch tile: reclaim
        # the orphan immediately (run_kernel's ``finally`` free is
        # idempotent and becomes a no-op).
        if self.arena.free(scratch_name) and self._metrics is not None:
            self._metrics.orphan_segments_reclaimed += 1
        self._respawn_slot(slot, generation)
        sup = self.supervisor
        failures = sup.record_failure(task_sig)
        reason = inject or ("deadline" if deadline_elapsed is not None else "crash")
        if failures >= self.supervision.max_task_failures:
            sup.quarantine(task_sig)
            raise PoisonTaskError(
                f"kernel call case={case} tile@{coordinate} killed "
                f"{failures} fresh workers ({reason}); quarantined as poison",
                coordinate=coordinate,
                case=case,
                kernel_id=kernel_id,
                failures=failures,
            ) from cause
        if deadline_elapsed is not None:
            raise TaskDeadlineExceeded(
                f"kernel call case={case} tile@{coordinate} SIGKILLed after "
                f"{deadline_elapsed:.3f}s (deadline "
                f"{self.supervision.task_deadline}s)",
                deadline=self.supervision.task_deadline,
                elapsed=deadline_elapsed,
            ) from cause
        raise WorkerCrashed(
            f"worker died mid-kernel ({reason}) on case={case} "
            f"tile@{coordinate}; slot {slot} respawned (failure {failures}/"
            f"{self.supervision.max_task_failures})",
            reason=reason,
            slot=slot,
        ) from cause

    def _respawn_slot(self, slot: int, observed_generation: int) -> None:
        """Reap one slot's broken pool and start a fresh generation.

        Single-flight per slot: concurrent crashed calls race here, the
        first one (by ``observed_generation``) does the work, the rest
        return and retry against the new pool.  Sleeps the deterministic
        bounded backoff *inside* the lock so stampeding threads queue
        behind one respawn instead of interleaving kill/create cycles.
        Other slots' workers keep running — a crash costs one worker's
        warm state, not the whole plane's.  The dead slot's tile
        placements are spilled afterwards so affinity re-homes them
        instead of chasing a cold respawn.
        """
        sup = self.supervisor
        with self._pool_lock:
            if self._pools is None or self._generations[slot] != observed_generation:
                return
            self._respawns += 1
            delay = sup.respawn_delay(self._respawns)
            if delay > 0:
                time.sleep(delay)
            # SIGKILL the straggler first: a SIGSTOPped (hung) worker
            # never drains its queue, and executor shutdown alone would
            # leave it frozen forever.
            sup.kill_slot(slot)
            old = self._pools[slot]
            try:
                old.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - broken-pool teardown
                pass
            sup.reset_slot(slot)
            self._pools[slot] = self._make_pool(self._respawn_method, slot)
            self._generations[slot] += 1
            if self._metrics is not None:
                self._metrics.workers_respawned += 1
        if self.affinity is not None:
            self.affinity.invalidate_worker(slot)

    # -- lifecycle -----------------------------------------------------
    def stage_complete(self) -> None:
        self.arena.sweep_scratch()

    def _emergency_cleanup(self) -> None:  # pragma: no cover - atexit path
        """Last-resort reaper for drivers exiting without ``shutdown()``.

        Idempotent and exception-proof: kill every registered worker,
        drop the pool, unlink the board and the arena's segments.  The
        healthy-exit path unregisters this before it can run.
        """
        try:
            sup = self.supervisor
            with self._pool_lock:
                pools, self._pools = self._pools, None
            if pools is not None:
                sup.kill_workers()
                for pool in pools:
                    try:
                        pool.shutdown(wait=False, cancel_futures=True)
                    except Exception:
                        pass
            sup.destroy()
            self.arena.cleanup()
        except Exception:
            pass

    def shutdown(self) -> None:
        self.supervisor.stop_watchdog()
        with self._pool_lock:
            pools, self._pools = self._pools, None
        if pools is not None:
            for pool in pools:
                pool.shutdown(wait=True, cancel_futures=True)
        self.supervisor.destroy()
        self.arena.cleanup()
        atexit.unregister(self._emergency_cleanup)
        super().shutdown()


def make_backend(
    name: str,
    *,
    total_slots: int,
    num_workers: int,
    metrics=None,
    supervision: SupervisionConfig | None = None,
    fault_plan=None,
    dispatch: str = "tile",
    gang_stages: bool = False,
    affinity: bool = True,
) -> ExecutionBackend:
    """Build a backend by CLI name (``threads`` | ``processes``).

    ``supervision``/``fault_plan`` only bite under ``processes`` — the
    thread backend has no process boundary, so there is nothing to
    heartbeat, kill, or respawn (its tasks run under the scheduler's
    own simulated-fault machinery instead).  ``dispatch``/
    ``gang_stages``/``affinity`` likewise: without kernel offload there
    is no round-trip to batch and no worker to prefer, so the thread
    backend records the requested mode and ignores it.
    """
    if name == "threads":
        backend = ThreadBackend(total_slots, metrics=metrics)
        backend.supervision = supervision
        backend.dispatch = dispatch
        backend.gang_stages = gang_stages
        return backend
    if name == "processes":
        return ProcessBackend(
            total_slots,
            num_workers=num_workers,
            metrics=metrics,
            supervision=supervision,
            fault_plan=fault_plan,
            dispatch=dispatch,
            gang_stages=gang_stages,
            affinity=affinity,
        )
    raise ValueError(f"unknown backend {name!r} (expected one of {BACKENDS})")
