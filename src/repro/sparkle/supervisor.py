"""Worker supervision: heartbeats, deadlines, and the crash protocol.

The process backend (DESIGN.md §12) put real OS processes on the hot
path; this module (§13) gives them the liveness layer Spark's executor
supervision provides on a real cluster.  Three cooperating pieces:

* :class:`HeartbeatBoard` — a raw shared-memory table, one row per
  worker slot: ``[pid, beat, token, epoch]``.  Workers claim a row at
  init (under a lock shipped through the pool initializer) and a
  daemon thread bumps ``beat`` a few times per heartbeat interval;
  ``token`` is the supervised kernel call the worker is currently
  executing, which is how the driver maps a deadline overrun back to a
  killable pid.
* the **watchdog** — a driver-side daemon thread that scans the board
  every ``heartbeat_interval / 2``.  A claimed row whose ``beat`` has
  not advanced for ``2 × heartbeat_interval`` is declared hung: the
  miss is metered and the worker is SIGKILLed, deliberately converting
  an undetectable hang (SIGSTOP, C-loop livelock) into the crash the
  protocol below already handles.
* :class:`WorkerSupervisor` — the driver-side brain the backend calls
  into: issues call tokens, keeps the per-task crash ledger, decides
  poison quarantine after ``max_task_failures`` worker deaths, owns the
  deterministic respawn backoff schedule, and latches the
  degrade-on-crash signal the GEP solver polls at outer-iteration
  boundaries (clear-on-read, mirroring the memory governor's critical
  latch).

Worker lifecycle (see DESIGN.md §13 for the full diagram)::

    SPAWNED -> REGISTERED -(beats)-> LIVE -(silence)-> HUNG -(SIGKILL)-+
                                      |                                |
                                      +--(exit/SIGKILL)--> DEAD <------+
                                                             |
                         pool respawn (backoff + jitter) <---+

Workers also run a *janitor* thread: if the driver pid they were
spawned by disappears (SIGKILLed driver — ``atexit`` never runs), they
purge every ``/dev/shm`` entry under the arena prefix and exit, so an
uncleanly-killed driver leaks neither processes nor segments.

Everything here is deterministic under the chaos contract: respawn
jitter hashes ``(seed, "respawn", n)`` through the same
:func:`~repro.sparkle.chaos.deterministic_fraction` the scheduler's
task backoff uses, and the real worker faults (``worker_kill`` /
``worker_hang`` / ``worker_oom``) are decided driver-side from the
seeded plan before the doomed call is even submitted.
"""

from __future__ import annotations

import itertools
import os
import signal
import threading
import time
from dataclasses import dataclass

from .chaos import deterministic_fraction
from .serialize import purge_segments, shm_supported

__all__ = [
    "SupervisionConfig",
    "HeartbeatBoard",
    "WorkerSupervisor",
]

# Board columns (int64 each).
COL_PID = 0
COL_BEAT = 1
COL_TOKEN = 2
COL_EPOCH = 3
BOARD_COLS = 4

#: How often the worker janitor re-checks that its driver is alive.
JANITOR_POLL_SECONDS = 0.25


@dataclass(frozen=True)
class SupervisionConfig:
    """Tunables for the worker supervision layer.

    Parameters
    ----------
    heartbeat_interval:
        Seconds between expected worker heartbeats; the watchdog declares
        a worker hung after ``2 ×`` this much silence.  ``0``/``None``
        disables heartbeats and the watchdog (crash detection via
        ``BrokenProcessPool`` still works; hangs go undetected unless a
        task deadline is set).
    task_deadline:
        Per-kernel-call wall-clock ceiling in seconds; ``None`` disables.
        An overrun cancels the call if still queued, else SIGKILLs the
        worker running it.
    max_task_failures:
        Worker deaths one task may cause before it is quarantined as
        poison (:class:`~repro.sparkle.errors.PoisonTaskError`).
    respawn_backoff_base / respawn_backoff_cap / respawn_backoff_jitter:
        Bounded exponential backoff slept before re-forking the pool
        after the n-th crash: ``min(base·2^(n-1), cap) · (1 + jitter·h)``
        with ``h`` a deterministic hash fraction.
    """

    heartbeat_interval: float | None = 0.25
    task_deadline: float | None = None
    max_task_failures: int = 3
    respawn_backoff_base: float = 0.05
    respawn_backoff_cap: float = 1.0
    respawn_backoff_jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.heartbeat_interval is not None and self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0 (0 disables)")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError("task_deadline must be > 0 (None disables)")
        if self.max_task_failures < 1:
            raise ValueError("max_task_failures must be >= 1")
        if self.respawn_backoff_base < 0 or self.respawn_backoff_cap < 0:
            raise ValueError("respawn backoff must be >= 0")
        if self.respawn_backoff_jitter < 0:
            raise ValueError("respawn_backoff_jitter must be >= 0")

    @property
    def heartbeats_enabled(self) -> bool:
        return bool(self.heartbeat_interval)

    def override_task_deadline(self, deadline: float | None) -> None:
        """Driver-side escape hatch through the frozen config.

        The process backend reads ``task_deadline`` at dispatch/await
        time, so re-pointing it here retargets every kernel call issued
        afterwards.  Used by the solver service to clamp each serialized
        engine pass to its request's remaining wall-clock budget (and to
        restore the configured value after) — callers must serialize
        passes themselves; this is a plain unsynchronized write.
        """
        if deadline is not None and deadline <= 0:
            raise ValueError("task_deadline must be > 0 (None disables)")
        object.__setattr__(self, "task_deadline", deadline)

    @property
    def miss_after(self) -> float:
        """Silence that flags a worker as hung (the ISSUE's 2× bound)."""
        return 2.0 * (self.heartbeat_interval or 0.0)


class HeartbeatBoard:
    """Driver-owned shared-memory liveness table, one row per slot."""

    def __init__(self, slots: int, name: str) -> None:
        import numpy as np
        from multiprocessing import shared_memory

        if slots < 1:
            raise ValueError("slots must be >= 1")
        self.slots = slots
        self.name = name
        self._shm = shared_memory.SharedMemory(
            create=True, size=slots * BOARD_COLS * 8, name=name
        )
        self.cells = np.ndarray(
            (slots, BOARD_COLS), dtype=np.int64, buffer=self._shm.buf
        )
        self.cells[:] = 0

    # -- driver-side reads --------------------------------------------
    def pids(self) -> list[int]:
        """Pids of every claimed slot (racy by nature; reap tolerates)."""
        if self.cells is None:
            return []
        return [int(p) for p in self.cells[:, COL_PID] if int(p) > 0]

    def pid_for_token(self, token: int) -> int | None:
        """Which live worker is executing supervised call ``token``."""
        if self.cells is None or token <= 0:
            return None
        for slot in range(self.slots):
            if int(self.cells[slot, COL_TOKEN]) == token:
                pid = int(self.cells[slot, COL_PID])
                return pid or None
        return None

    def snapshot(self) -> list[dict]:
        """Row view for reporting (``repro workers``)."""
        out = []
        if self.cells is None:
            return out
        for slot in range(self.slots):
            pid = int(self.cells[slot, COL_PID])
            if pid <= 0:
                continue
            out.append(
                {
                    "slot": slot,
                    "pid": pid,
                    "beat": int(self.cells[slot, COL_BEAT]),
                    "token": int(self.cells[slot, COL_TOKEN]),
                }
            )
        return out

    def reset(self) -> None:
        """Blank every row (pool respawn: dead pids must not linger)."""
        if self.cells is not None:
            self.cells[:] = 0

    def reset_row(self, slot: int) -> None:
        """Blank one row (single-slot pool respawn)."""
        if self.cells is not None and 0 <= slot < self.slots:
            self.cells[slot, :] = 0

    def destroy(self) -> None:
        if self._shm is None:
            return
        # Drop the ndarray's buffer export before closing the mapping.
        self.cells = None
        shm, self._shm = self._shm, None
        try:
            shm.close()
        except BufferError:  # pragma: no cover - a view still pins it
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - janitor raced us
            pass


class WorkerSupervisor:
    """Driver-side supervision brain for one process-backend pool."""

    def __init__(
        self,
        config: SupervisionConfig,
        *,
        slots: int,
        prefix: str,
        metrics=None,
        seed: int = 0,
        kill=os.kill,
    ) -> None:
        self.config = config
        self.slots = slots
        self.prefix = prefix
        self.metrics = metrics
        self.seed = int(seed)
        self._kill = kill
        self.board: HeartbeatBoard | None = None
        if shm_supported():
            self.board = HeartbeatBoard(slots, f"{prefix}-hb")
        self._board_lock = threading.Lock()
        self._tokens = itertools.count(1)
        self._ledger_lock = threading.Lock()
        self._failures: dict[tuple, int] = {}
        self._quarantined: set[tuple] = set()
        self._degrade_latch = False
        self._watchdog: threading.Thread | None = None
        self._watchdog_stop = threading.Event()

    # -- pool wiring ---------------------------------------------------
    def worker_initargs(self, ctx, slot: int | None = None) -> tuple:
        """Arguments for :func:`_attach_worker` via the pool initializer.

        Called once per pool generation with that pool's multiprocessing
        context, so the slot-claim lock is always transferable to its
        workers (fork inherits it; spawn pickles it).  ``slot`` pins the
        worker to a fixed board row — the per-worker single-slot pools
        of the batched data plane claim row ``i`` for pool ``i`` instead
        of scanning for the first free row, so the driver can map a slot
        to a pid (and the in-flight call token) without races between
        pools holding different claim locks.
        """
        board = self.board
        return (
            board.name if board is not None else None,
            self.slots,
            ctx.Lock(),
            self.config.heartbeat_interval or 0.0,
            self.prefix,
            os.getpid(),
            slot,
        )

    def next_token(self) -> int:
        return next(self._tokens)

    def pid_for_token(self, token: int) -> int | None:
        with self._board_lock:
            return self.board.pid_for_token(token) if self.board else None

    def pid_for_slot(self, slot: int) -> int | None:
        """The pid claimed on board row ``slot`` (fixed-slot pools)."""
        with self._board_lock:
            board = self.board
            if board is None or board.cells is None:
                return None
            if not 0 <= slot < board.slots:
                return None
            pid = int(board.cells[slot, COL_PID])
            return pid or None

    def token_for_slot(self, slot: int) -> int:
        """The in-flight call token on row ``slot`` (0 = idle).

        A crashed worker's row keeps its last published token until the
        driver resets the slot, which is how a batch member's failure is
        attributed back to the exact tile that was executing.
        """
        with self._board_lock:
            board = self.board
            if board is None or board.cells is None:
                return 0
            if not 0 <= slot < board.slots:
                return 0
            return int(board.cells[slot, COL_TOKEN])

    def kill_slot(self, slot: int) -> bool:
        """SIGKILL the one worker claimed on ``slot`` (if any)."""
        pid = self.pid_for_slot(slot)
        return self._signal(pid, signal.SIGKILL) if pid is not None else False

    def worker_pids(self) -> list[int]:
        with self._board_lock:
            return self.board.pids() if self.board else []

    def kill_workers(self) -> int:
        """SIGKILL every registered worker (reap before respawn)."""
        killed = 0
        for pid in self.worker_pids():
            if self._signal(pid, signal.SIGKILL):
                killed += 1
        return killed

    def reset_board(self) -> None:
        with self._board_lock:
            if self.board is not None:
                self.board.reset()

    def reset_slot(self, slot: int) -> None:
        """Blank one row before respawning that slot's pool — the dead
        pid (and its stale token) must not linger for the watchdog or
        the batch attribution path to trip over."""
        with self._board_lock:
            if self.board is not None:
                self.board.reset_row(slot)

    def _signal(self, pid: int, sig: int) -> bool:
        if pid <= 0 or pid == os.getpid():
            return False
        try:
            self._kill(pid, sig)
            return True
        except (ProcessLookupError, PermissionError):
            return False

    # -- watchdog ------------------------------------------------------
    def start_watchdog(self) -> None:
        if (
            self._watchdog is not None
            or self.board is None
            or not self.config.heartbeats_enabled
        ):
            return
        self._watchdog_stop.clear()
        self._watchdog = threading.Thread(
            target=self._watch, name="sparkle-watchdog", daemon=True
        )
        self._watchdog.start()

    def stop_watchdog(self) -> None:
        thread, self._watchdog = self._watchdog, None
        if thread is not None:
            self._watchdog_stop.set()
            thread.join(timeout=5.0)

    def _watch(self) -> None:
        """Scan the board; SIGKILL workers silent past ``miss_after``.

        Tracking is keyed ``slot -> [beat, last_change, killed, pid]``;
        a slot whose pid changed (board reset + fresh claim) restarts its
        window.  ``last_change`` is watchdog-observed, so detection lands
        within one scan period past the 2× threshold.
        """
        interval = self.config.heartbeat_interval or 0.25
        period = max(interval / 2.0, 0.01)
        miss_after = self.config.miss_after
        seen: dict[int, list] = {}
        while not self._watchdog_stop.wait(period):
            now = time.monotonic()
            with self._board_lock:
                board = self.board
                if board is None or board.cells is None:
                    continue
                for slot in range(board.slots):
                    pid = int(board.cells[slot, COL_PID])
                    if pid <= 0:
                        seen.pop(slot, None)
                        continue
                    beat = int(board.cells[slot, COL_BEAT])
                    entry = seen.get(slot)
                    if entry is None or entry[3] != pid:
                        seen[slot] = [beat, now, False, pid]
                        continue
                    if beat != entry[0]:
                        entry[0] = beat
                        entry[1] = now
                        continue
                    if not entry[2] and now - entry[1] > miss_after:
                        entry[2] = True
                        if self.metrics is not None:
                            self.metrics.heartbeats_missed += 1
                        # Hang -> crash: the pool machinery takes over.
                        self._signal(pid, signal.SIGKILL)

    # -- crash ledger & poison quarantine ------------------------------
    def record_failure(self, task_sig: tuple) -> int:
        """Count one worker death against a task; returns its total."""
        with self._ledger_lock:
            count = self._failures.get(task_sig, 0) + 1
            self._failures[task_sig] = count
            return count

    def failures(self, task_sig: tuple) -> int:
        with self._ledger_lock:
            return self._failures.get(task_sig, 0)

    def quarantine(self, task_sig: tuple) -> None:
        """Mark a task as poison and latch the degrade signal."""
        with self._ledger_lock:
            if task_sig in self._quarantined:
                return
            self._quarantined.add(task_sig)
            self._degrade_latch = True
        if self.metrics is not None:
            self.metrics.poison_tasks += 1

    def is_quarantined(self, task_sig: tuple) -> bool:
        with self._ledger_lock:
            return task_sig in self._quarantined

    def quarantined(self) -> list[tuple]:
        with self._ledger_lock:
            return sorted(self._quarantined)

    def degrade_pending(self) -> bool:
        """Clear-on-read poison latch the solver polls at iteration
        boundaries (same pattern as the memory governor's critical
        latch): True at most once per quarantine burst."""
        with self._ledger_lock:
            pending, self._degrade_latch = self._degrade_latch, False
            return pending

    def force_degrade(self) -> None:
        """Arm the degrade latch from outside the crash protocol.

        The solver service's circuit breaker calls this when repeated
        worker faults trip it: any in-flight ``--degrade-on-crash``
        solve then falls off the process backend at its next
        outer-iteration boundary, exactly as if a poison quarantine had
        fired — one latch, one degrade path.
        """
        with self._ledger_lock:
            self._degrade_latch = True

    # -- respawn backoff ----------------------------------------------
    def respawn_delay(self, respawn_index: int) -> float:
        """Deterministic bounded-exponential backoff before respawn n.

        Same hash stream discipline as the scheduler's task backoff:
        reproducible from the chaos seed, capped so a crash storm cannot
        stall the solve unboundedly.
        """
        if respawn_index < 1:
            raise ValueError("respawn_index counts from 1")
        cfg = self.config
        base = cfg.respawn_backoff_base * (2.0 ** (respawn_index - 1))
        delay = min(base, cfg.respawn_backoff_cap)
        jitter = deterministic_fraction(self.seed, "respawn", (respawn_index,))
        return delay * (1.0 + cfg.respawn_backoff_jitter * jitter)

    # -- lifecycle -----------------------------------------------------
    def destroy(self) -> None:
        self.stop_watchdog()
        with self._board_lock:
            board, self.board = self.board, None
        if board is not None:
            board.destroy()


# ----------------------------------------------------------------------
# worker-side machinery (module-level: importable under fork AND spawn)
# ----------------------------------------------------------------------
_WORKER_BOARD = {"cells": None, "slot": None, "shm": None}


def _attach_worker(
    board_name: str | None,
    slots: int,
    claim_lock,
    beat_interval: float,
    prefix: str,
    driver_pid: int,
    fixed_slot: int | None = None,
) -> None:  # pragma: no cover - runs in worker processes
    """Pool initializer tail: join the board, start beats + janitor.

    Best-effort by design — supervision must never be the thing that
    breaks a worker (an initializer exception marks the whole pool
    broken), so any failure here degrades to an unsupervised-but-working
    worker.

    ``fixed_slot`` claims exactly that board row (the per-worker
    single-slot pools of the batched data plane); the legacy shared-pool
    path (``None``) scans for the first free row under the claim lock.
    A fixed-slot claim overwrites whatever pid is on the row — by the
    respawn protocol the previous occupant is dead and the driver has
    reset the row, so the overwrite is only a belt-and-braces guard
    against a raced reset.
    """
    try:
        _start_janitor(prefix, driver_pid)
    except Exception:
        pass
    if board_name is None:
        return
    try:
        import numpy as np
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=board_name)
        cells = np.ndarray((slots, BOARD_COLS), dtype=np.int64, buffer=shm.buf)
        slot = None
        with claim_lock:
            if fixed_slot is not None:
                if 0 <= fixed_slot < slots:
                    cells[fixed_slot, COL_TOKEN] = 0
                    cells[fixed_slot, COL_PID] = os.getpid()
                    slot = fixed_slot
            else:
                for row in range(slots):
                    if int(cells[row, COL_PID]) == 0:
                        cells[row, COL_PID] = os.getpid()
                        slot = row
                        break
        if slot is None:
            shm.close()
            return
        _WORKER_BOARD["cells"] = cells
        _WORKER_BOARD["slot"] = slot
        _WORKER_BOARD["shm"] = shm  # pin the mapping for process lifetime
        if beat_interval and beat_interval > 0:
            _start_beater(beat_interval)
    except Exception:
        pass


def _start_beater(interval: float) -> None:  # pragma: no cover - worker side
    """Bump this worker's beat word a few times per interval."""
    period = max(interval / 4.0, 0.005)

    def _beat() -> None:
        while True:
            cells, slot = _WORKER_BOARD["cells"], _WORKER_BOARD["slot"]
            if cells is None or slot is None:
                return
            cells[slot, COL_BEAT] += 1
            time.sleep(period)

    threading.Thread(target=_beat, name="sparkle-heartbeat", daemon=True).start()


def _start_janitor(prefix: str, driver_pid: int) -> None:  # pragma: no cover
    """Exit (and sweep shm) if our driver disappears out from under us."""

    def _janitor() -> None:
        while True:
            time.sleep(JANITOR_POLL_SECONDS)
            try:
                orphaned = os.getppid() != driver_pid
            except OSError:
                orphaned = True
            if orphaned:
                try:
                    purge_segments(prefix)
                finally:
                    os._exit(3)

    threading.Thread(target=_janitor, name="sparkle-janitor", daemon=True).start()


def worker_begin_task(token: int) -> None:  # pragma: no cover - worker side
    """Publish the supervised call this worker is now executing."""
    cells, slot = _WORKER_BOARD["cells"], _WORKER_BOARD["slot"]
    if cells is not None and slot is not None:
        cells[slot, COL_TOKEN] = token
        cells[slot, COL_BEAT] += 1


def worker_end_task() -> None:  # pragma: no cover - worker side
    cells, slot = _WORKER_BOARD["cells"], _WORKER_BOARD["slot"]
    if cells is not None and slot is not None:
        cells[slot, COL_TOKEN] = 0
        cells[slot, COL_BEAT] += 1


def worker_self_fault(kind: str) -> None:  # pragma: no cover - worker side
    """Execute a driver-decided real process fault on ourselves."""
    if kind in ("worker_kill", "worker_oom"):
        os.kill(os.getpid(), signal.SIGKILL)
    elif kind == "worker_hang":
        # Freezes every thread, heartbeats included — exactly the
        # silence the watchdog exists to detect.
        os.kill(os.getpid(), signal.SIGSTOP)
    elif kind is not None:
        raise ValueError(f"unknown worker fault kind {kind!r}")
