"""Reproduction of the paper's evaluation section (§V).

One module per table/figure, a calibration module documenting how the
cluster cost model was fitted, and a CLI harness:
``python -m repro.experiments [table1 table2 fig6 fig7 fig8 fig9 headline]``.
"""

from .harness import EXPERIMENTS, run_all, run_experiment
from .report import ExperimentResult, Table

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "ExperimentResult", "Table"]
