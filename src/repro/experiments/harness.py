"""Experiment registry and CLI.

``python -m repro.experiments [name ...]`` runs the requested
reproductions (default: all) and prints their reports.  Each experiment
regenerates one table or figure of the paper's §V; benchmarks/ wraps the
same entry points under pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable

from .fig6 import run_fig6
from .fig7 import run_fig7
from .fig8 import run_fig8
from .fig9 import run_fig9
from .headline import run_headline
from .report import ExperimentResult
from .tables import run_table1, run_table2

__all__ = ["EXPERIMENTS", "run_experiment", "run_all", "main"]

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "table1": run_table1,
    "table2": run_table2,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "headline": run_headline,
}


def run_experiment(name: str, fast: bool = False) -> ExperimentResult:
    """Run one registered experiment by name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; available: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(fast=fast)


def run_all(fast: bool = False) -> list[ExperimentResult]:
    return [run_experiment(name, fast=fast) for name in EXPERIMENTS]


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names", nargs="*", default=list(EXPERIMENTS), metavar="EXPERIMENT",
        help=f"which to run (default all): {', '.join(EXPERIMENTS)}",
    )
    parser.add_argument("--fast", action="store_true", help="smaller real-engine runs")
    args = parser.parse_args(argv)
    failed = 0
    for name in args.names:
        result = run_experiment(name, fast=args.fast)
        print(result.render())
        print()
        if not result.all_claims_hold:
            failed += 1
    return 1 if failed else 0
