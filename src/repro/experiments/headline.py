"""The headline claim: 2–5x from recursive kernels offloaded to OpenMP.

Abstract/§I: "offloading the computation to an OpenMP environment (by
running parallel recursive r-way R-DP kernels) within Spark is at least
partially responsible for a 2–5x speedup of the DP benchmarks" — 2.1x
for FW-APSP, 5x for GE at the best configurations.

Besides the cluster-model reproduction, this experiment runs the *real*
engine at laptop scale to confirm the correctness side of the claim:
all four implementation quadrants (IM/CB x iterative/recursive) return
bit-identical results, validated against scipy/NumPy references.
"""

from __future__ import annotations

import numpy as np

from ..cluster import CostModel, ExecutionPlan, skylake16
from ..core.fwapsp import floyd_warshall
from ..core.gaussian import gaussian_solve
from ..core.gep import FloydWarshallGep, GaussianEliminationGep
from ..sparkle import SparkleContext
from ..workloads import diagonally_dominant, random_digraph_weights
from .calibration import N
from .report import ExperimentResult, Table, fmt_seconds

__all__ = ["run_headline"]


def run_headline(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "headline",
        "Best iterative vs best recursive configuration per benchmark "
        "(cluster 1, n=32K) plus real-engine correctness cross-check",
    )
    model = CostModel(skylake16())
    rows = []
    speedups = {}
    for key, spec, strat in (
        ("FW", FloydWarshallGep(), "im"),
        ("GE", GaussianEliminationGep(), "cb"),
    ):
        best_iter = min(
            (
                model.estimate(spec, N, N // b, ExecutionPlan(s, "iterative")).total,
                s,
                b,
            )
            for b in (256, 512, 1024)
            for s in ("im", "cb")
        )
        best_rec = min(
            (
                model.estimate(
                    spec, N, N // b,
                    ExecutionPlan(s, "recursive", rs, 64, omp, executor_cores=ec),
                ).total,
                s,
                b,
                rs,
                omp,
            )
            for b in (1024, 2048)
            for s in ("im", "cb")
            for rs in (4, 16)
            for omp in (8, 16, 32)
            for ec in (2, 4, 8)
        )
        speedup = best_iter[0] / best_rec[0]
        speedups[key] = speedup
        rows.append(
            [
                f"{best_iter[1]} b={best_iter[2]}: {fmt_seconds(best_iter[0])}s",
                f"{best_rec[1]} {best_rec[3]}-way b={best_rec[2]} omp={best_rec[4]}: "
                f"{fmt_seconds(best_rec[0])}s",
                f"x{speedup:.1f}",
            ]
        )
    result.tables.append(
        Table(
            "Best configurations (model)",
            ["best iterative", "best recursive", "speedup"],
            ["FW", "GE"],
            rows,
        )
    )
    result.add_claim(
        "FW-APSP: recursive kernels ~2x faster",
        "x2.1 (651s → 302s)",
        f"x{speedups['FW']:.1f}",
        1.5 <= speedups["FW"] <= 3.5,
    )
    result.add_claim(
        "GE: recursive kernels ~5x faster",
        "x5.1 (1032s → 204s)",
        f"x{speedups['GE']:.1f}",
        2.5 <= speedups["GE"] <= 8.0,
    )
    result.add_claim(
        "speedup band",
        "2–5x across the DP benchmarks",
        f"{min(speedups.values()):.1f}–{max(speedups.values()):.1f}x",
        min(speedups.values()) >= 1.5,
    )

    # ---- real-engine correctness quadrants (laptop scale) ---------------
    n = 48 if fast else 96
    w = random_digraph_weights(n, 0.3, seed=42)
    d_ref = floyd_warshall(w, engine="reference")
    a = diagonally_dominant(n, seed=42)
    x_true = np.linspace(-1, 1, n)
    b_rhs = a @ x_true
    quadrant_ok = True
    for strategy in ("im", "cb"):
        for kernel in ("iterative", "recursive"):
            with SparkleContext(4, 2) as sc:
                d = floyd_warshall(
                    w, engine="spark", sc=sc, r=4, kernel=kernel,
                    strategy=strategy, r_shared=2, base_size=16,
                )
                x = gaussian_solve(
                    a, b_rhs, engine="spark", sc=sc, r=4, kernel=kernel,
                    strategy=strategy, r_shared=2, base_size=16,
                )
            quadrant_ok &= bool(np.allclose(d, d_ref))
            quadrant_ok &= bool(np.allclose(x, x_true, rtol=1e-7, atol=1e-9))
    result.add_claim(
        "all four implementation quadrants compute identical, correct results "
        "(real engine, both benchmarks)",
        "implied",
        str(quadrant_ok).lower(),
        quadrant_ok,
    )
    return result
