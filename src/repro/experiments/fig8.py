"""Figure 8: performance portability — FW-APSP on two clusters.

The paper repeats the FW-APSP sweep on cluster 2 (16 Haswell nodes,
64 GB RAM, spinning disks, 640 partitions) and draws two conclusions:

* the config that is (near-)optimal on cluster 1 — IM, 4-way recursive,
  block 1024 — is ~3.3x slower than cluster 2's own best (3144 s vs
  951 s), so r / r_shared must be retuned per cluster;
* iterative kernels with block 4096 time out (> 8 h) on cluster 2.
"""

from __future__ import annotations

from ..cluster import CostModel, ExecutionPlan, haswell16, skylake16
from ..core.gep import FloydWarshallGep
from .calibration import N
from .fig6 import BLOCK_SIZES, RSHARED_VALUES
from .report import ExperimentResult, Table, fmt_seconds

__all__ = ["run_fig8"]

_TIMEOUT_S = 8 * 3600.0


def _sweep(model: CostModel, spec, n: int) -> dict:
    """Fig. 8 bars: IM iterative + IM recursive configs per block size.

    Cluster-2 partitions (640 = 2 x 320 cores) follow from the config's
    core count automatically (the model defaults to 2x total cores).
    """
    out = {}
    for block in BLOCK_SIZES:
        r = n // block
        out[("iterative", block)] = model.estimate(
            spec, n, r, ExecutionPlan("im", "iterative")
        ).total
        for rs in RSHARED_VALUES:
            out[(f"rec{rs}", block)] = min(
                model.estimate(
                    spec, n, r,
                    ExecutionPlan("im", "recursive", rs, 64, omp, executor_cores=ec),
                ).total
                for omp in (4, 8, 16)
                for ec in (2, 4, 8, 16)
            )
    return out


def run_fig8(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig8",
        "FW-APSP on cluster 1 (Skylake/SSD) vs cluster 2 (Haswell/HDD); "
        "IM executions, seconds ('>8h' = the paper's timeout)",
    )
    spec = FloydWarshallGep()
    sky = _sweep(CostModel(skylake16()), spec, N)
    has = _sweep(CostModel(haswell16()), spec, N)
    configs = ["iterative"] + [f"rec{rs}" for rs in RSHARED_VALUES]
    for name, sweep in (("cluster 1 (skylake16)", sky), ("cluster 2 (haswell16)", has)):
        result.tables.append(
            Table(
                f"Fig 8 — {name}",
                [f"b={b}" for b in BLOCK_SIZES],
                configs,
                [[sweep[(c, b)] for b in BLOCK_SIZES] for c in configs],
            )
        )

    # The cluster-1-optimal configuration evaluated verbatim on cluster 2.
    c1_best_cfg = min(((v, k) for k, v in sky.items()))[1]
    mistuned_plan = ExecutionPlan("im", "recursive", 4, 64, 8)
    mistuned = CostModel(haswell16()).estimate(spec, N, 32, mistuned_plan).total
    c2_best = min(has.values())
    penalty = mistuned / c2_best
    result.add_claim(
        "cluster-1-optimal config (IM 4-way b=1024, untuned ec/omp) is "
        "slow on cluster 2",
        "3144s vs best 951s (x3.3)",
        f"{fmt_seconds(mistuned)} vs best {fmt_seconds(c2_best)} (x{penalty:.1f})",
        penalty >= 2.0,
    )
    result.add_claim(
        "cluster 2 best time",
        "951s",
        fmt_seconds(c2_best),
        0.5 <= c2_best / 951.0 <= 2.0,
    )
    result.add_claim(
        "iterative b=4096 times out (>8h) on cluster 2",
        "true",
        fmt_seconds(has[("iterative", 4096)]),
        has[("iterative", 4096)] > _TIMEOUT_S,
    )
    result.add_claim(
        "every config is slower on cluster 2 than cluster 1",
        "true",
        "true" if all(has[k] > sky[k] for k in sky) else "false",
        all(has[k] > sky[k] for k in sky),
    )
    result.notes.append(
        f"cluster-1 best config: {c1_best_cfg[0]} at block {c1_best_cfg[1]}"
    )
    return result
