"""Figure 7: the kernel dependency structure (qualitative).

The paper's Fig. 7 is a diagram of which kernels feed which within one
outer iteration (A → B, A → C, B/C → D, and — only for GE — A → D).
Here the arrows are *derived*, not drawn: the stage scheduler's
dependency rules over the actual read/write tile sets of one iteration,
rendered as text.  The claims check the exact difference the paper
builds its IM-vs-CB explanation on: FW's D kernels do not consume the
pivot tile, GE's do.
"""

from __future__ import annotations

from ..core.blocked import updated_tiles
from ..core.calls import Call, Region
from ..core.gep import FloydWarshallGep, GaussianEliminationGep
from ..core.scheduling import Relation, classify_pair
from .report import ExperimentResult, Table

__all__ = ["run_fig7", "kernel_dependency_edges"]


def _iteration_calls(spec, k: int, r: int) -> list[Call]:
    """Symbolic calls of one outer iteration on a unit grid."""
    tiles = updated_tiles(spec, k, r)
    calls = []
    for case, coords in tiles.items():
        for (i, j) in coords:
            # Operand regions by the blocked-GEP access pattern.
            x = Region(i, j, 1)
            u = Region(i, k, 1)
            v = Region(k, j, 1)
            w = Region(k, k, 1)
            calls.append(Call(case, x, u, v, w))
    order = {"A": 0, "B": 1, "C": 1, "D": 2}
    calls.sort(key=lambda c: (order[c.case], c.x.i0, c.x.j0))
    return calls


def kernel_dependency_edges(spec, r: int = 3, k: int = 0) -> set[tuple[str, str]]:
    """Case-level dependency edges of one iteration (deduplicated).

    For semiring specs (``needs_w`` false) the A → D edge is dropped:
    D's operands are U, V only — the Fig. 7 distinction.
    """
    calls = _iteration_calls(spec, k, r)
    edges: set[tuple[str, str]] = set()
    for a in range(len(calls)):
        for b in range(a + 1, len(calls)):
            f1, f2 = calls[a], calls[b]
            rel = classify_pair(f1, f2)
            if rel == Relation.PARALLEL:
                continue
            # Does f2 actually read f1's write?  (classify_pair also
            # orders anti-dependences; only true dataflow is an arrow.)
            reads = {f2.x, f2.u, f2.v} | ({f2.w} if spec.needs_w else set())
            if any(f1.writes.overlaps(rg) for rg in reads):
                if f1.case != f2.case:
                    edges.add((f1.case, f2.case))
    return edges


def run_fig7(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig7",
        "Data dependencies among kernels (arrows derived from read/write "
        "tile sets; the paper's Fig. 7)",
    )
    fw_edges = kernel_dependency_edges(FloydWarshallGep())
    ge_edges = kernel_dependency_edges(GaussianEliminationGep())
    result.tables.append(
        Table(
            "Kernel dependency edges",
            ["edges"],
            ["FW-APSP", "GE"],
            [
                [", ".join(f"{a}→{b}" for a, b in sorted(fw_edges))],
                [", ".join(f"{a}→{b}" for a, b in sorted(ge_edges))],
            ],
        )
    )
    result.add_claim(
        "both: A feeds B and C; B and C feed D",
        "A→B, A→C, B→D, C→D",
        ", ".join(f"{a}→{b}" for a, b in sorted(fw_edges & ge_edges)),
        {("A", "B"), ("A", "C"), ("B", "D"), ("C", "D")} <= (fw_edges & ge_edges),
    )
    result.add_claim(
        "GE only: the pivot tile additionally feeds every D kernel",
        "A→D in GE, absent in FW",
        f"GE has A→D: {('A', 'D') in ge_edges}; FW has A→D: {('A', 'D') in fw_edges}",
        ("A", "D") in ge_edges and ("A", "D") not in fw_edges,
    )
    result.notes.append(
        "This heavier GE fan-out (the pivot copied to all "
        "2(r-k-1)+(r-k-1)^2 consumers) is the paper's explanation for CB "
        "beating IM on GE while IM wins on FW-APSP."
    )
    return result
