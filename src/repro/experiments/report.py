"""Plain-text rendering of experiment tables and series.

The paper's artifacts are tables and bar/line figures; offline we render
them as aligned text so every benchmark target can print the same rows
the paper reports and EXPERIMENTS.md can quote them verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["Table", "ExperimentResult", "fmt_seconds"]


def fmt_seconds(value: float | None) -> str:
    if value is None:
        return "—"
    if value >= 28800:  # the paper's 8-hour execution cap
        return ">8h"
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.0f}"


@dataclass
class Table:
    """One titled grid with row/column headers."""

    title: str
    col_headers: Sequence[str]
    row_headers: Sequence[str]
    rows: Sequence[Sequence[Any]]
    note: str = ""

    def render(self) -> str:
        widths = [max(len(str(h)), 8) for h in self.col_headers]
        stub = max((len(str(r)) for r in self.row_headers), default=4) + 2
        out = [self.title, "-" * len(self.title)]
        header = " " * stub + "".join(
            f"{str(h):>{w + 2}}" for h, w in zip(self.col_headers, widths)
        )
        out.append(header)
        for rh, row in zip(self.row_headers, self.rows):
            cells = "".join(
                f"{(fmt_seconds(c) if isinstance(c, (int, float)) else str(c)):>{w + 2}}"
                for c, w in zip(row, widths)
            )
            out.append(f"{str(rh):<{stub}}" + cells)
        if self.note:
            out.append(f"note: {self.note}")
        return "\n".join(out)


@dataclass
class ExperimentResult:
    """Everything one experiment produces."""

    experiment: str
    description: str
    tables: list[Table] = field(default_factory=list)
    claims: list[tuple[str, str, str, bool]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_claim(self, claim: str, paper: str, measured: str, holds: bool) -> None:
        """Record one paper-vs-measured shape check."""
        self.claims.append((claim, paper, measured, holds))

    @property
    def all_claims_hold(self) -> bool:
        return all(ok for *_, ok in self.claims)

    def render(self) -> str:
        out = [f"== {self.experiment}: {self.description} ==", ""]
        for t in self.tables:
            out.append(t.render())
            out.append("")
        if self.claims:
            out.append("shape claims (paper vs. this reproduction):")
            for claim, paper, measured, ok in self.claims:
                flag = "OK " if ok else "FAIL"
                out.append(f"  [{flag}] {claim}: paper {paper} | measured {measured}")
            out.append("")
        for n in self.notes:
            out.append(f"note: {n}")
        return "\n".join(out)
