"""Cost-model calibration against the paper's published numbers.

The cluster presets ship rate/penalty constants fitted here: a random
+ coordinate search minimizing mean absolute log-error between the cost
model and every number the paper prints for cluster 1 (all 30 Table I
cells, the 26 populated Table II cells, and the §V-C / footnote Fig. 6
anchors).  Re-run with ``python -m repro.experiments.calibration`` to
reproduce the fit; EXPERIMENTS.md records the resulting residuals.

Calibration only tunes machine constants — per-core update rates in and
out of cache, task contention, thread-overlap efficiency,
oversubscription penalty, shuffle compression, page-cache factor —
never per-experiment fudge factors: one constant set must explain every
anchor simultaneously, which is what makes the fitted model usable for
the sweeps the paper did not print.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

from ..cluster import CostModel, ExecutionPlan, analyze_solve, skylake16
from ..core.gep import FloydWarshallGep, GaussianEliminationGep

__all__ = ["anchor_set", "evaluate", "calibrate", "main"]

N = 32768

#: Table I — GE, CB, 4-way recursive, block 1024 (r = 32); seconds.
TABLE1 = {
    2: (381, 387, 425, 461, 771, 1302),
    4: (264, 262, 288, 324, 534, 944),
    8: (213, 211, 280, 262, 421, 741),
    16: (292, 285, 429, 330, 407, 696),
    32: (581, 601, 752, 656, 668, 829),
}
#: Table II — FW, IM, 16-way recursive, block 1024 (r = 32); seconds.
#: The ec=32 row only lists omp 32 and 16 in the paper.
TABLE2 = {
    2: (339, 347, 451, 696, 1209, 2233),
    4: (310, 310, 334, 508, 864, 1608),
    8: (302, 303, 321, 403, 688, 1274),
    16: (323, 342, 410, 330, 407, 1084),
    32: (360, 446, None, None, None, None),
}
OMP_COLS = (32, 16, 8, 4, 2, 1)


@dataclass(frozen=True)
class Anchor:
    name: str
    spec: str  # "fw" | "ge"
    r: int
    plan: ExecutionPlan
    paper_seconds: float
    weight: float = 1.0


def anchor_set() -> list[Anchor]:
    """Every cluster-1 number the paper prints, as (config, seconds)."""
    anchors: list[Anchor] = []
    for ec, row in TABLE1.items():
        for omp, secs in zip(OMP_COLS, row):
            if secs is None:
                continue
            anchors.append(
                Anchor(
                    f"T1 ec{ec} omp{omp}", "ge", 32,
                    ExecutionPlan("cb", "recursive", 4, 64, omp, executor_cores=ec),
                    secs,
                )
            )
    for ec, row in TABLE2.items():
        for omp, secs in zip(OMP_COLS, row):
            if secs is None:
                continue
            anchors.append(
                Anchor(
                    f"T2 ec{ec} omp{omp}", "fw", 32,
                    ExecutionPlan("im", "recursive", 16, 64, omp, executor_cores=ec),
                    secs,
                )
            )
    # §V-C prose + Fig. 6 footnote anchors (best-config cells get more
    # weight: they are the headline speedup claims).
    fig6 = [
        ("FW best iter (IM b256)", "fw", 128, ExecutionPlan("im", "iterative"), 651, 3.0),
        ("FW best rec (IM 16way b1024)", "fw", 32,
         ExecutionPlan("im", "recursive", 16, 64, 8, executor_cores=8), 302, 3.0),
        ("GE best iter (CB b512)", "ge", 64, ExecutionPlan("cb", "iterative"), 1032, 3.0),
        ("GE best rec (CB 4way b2048)", "ge", 16,
         ExecutionPlan("cb", "recursive", 4, 64, 16, executor_cores=8), 204, 3.0),
        ("FW IM iter b4096", "fw", 8, ExecutionPlan("im", "iterative"), 14530, 1.0),
        ("FW CB iter b4096", "fw", 8, ExecutionPlan("cb", "iterative"), 14480, 1.0),
        ("GE IM iter b4096", "ge", 8, ExecutionPlan("im", "iterative"), 11344, 1.0),
        ("GE CB iter b4096", "ge", 8, ExecutionPlan("cb", "iterative"), 15548, 1.0),
    ]
    for name, spec, r, plan, secs, w in fig6:
        anchors.append(Anchor(name, spec, r, plan, secs, w))
    return anchors


_SPECS = {"fw": FloydWarshallGep(), "ge": GaussianEliminationGep()}
_COUNTS_CACHE: dict[tuple[str, int], object] = {}


def _counts(spec_key: str, r: int):
    key = (spec_key, r)
    if key not in _COUNTS_CACHE:
        _COUNTS_CACHE[key] = analyze_solve(_SPECS[spec_key], N, r)
    return _COUNTS_CACHE[key]


def evaluate(cluster, anchors: list[Anchor]) -> tuple[float, list[tuple[Anchor, float]]]:
    """Mean weighted |log(model/paper)| plus per-anchor model seconds."""
    model = CostModel(cluster)
    rows: list[tuple[Anchor, float]] = []
    err = 0.0
    wsum = 0.0
    for a in anchors:
        est = model.estimate_from_counts(
            _counts(a.spec, a.r), a.plan, _SPECS[a.spec].update_weight
        )
        rows.append((a, est.total))
        err += a.weight * abs(math.log(est.total / a.paper_seconds))
        wsum += a.weight
    return err / wsum, rows


#: (field, low, high, log-scale)
SEARCH_SPACE = [
    ("update_rate_cache", 1.5e8, 4e9, True),
    ("update_rate_mem", 3e7, 4e8, True),
    ("task_contention", 0.005, 0.2, True),
    ("iter_task_contention", 0.0, 0.05, False),
    ("thread_serial_overhead", 0.05, 0.85, False),
    ("oversubscription_penalty", 0.02, 0.5, False),
    ("shuffle_compression", 1.0, 10.0, False),
    ("staging_cache_factor", 1.0, 16.0, False),
    ("recursive_efficiency", 0.80, 0.99, False),
    ("iterative_efficiency", 0.25, 1.0, False),
    ("lineage_walk_s", 0.0, 0.15, False),
    ("job_overhead_s", 0.05, 1.5, False),
    ("hash_imbalance", 1.0, 1.8, False),
]


def calibrate(
    iterations: int = 4000, seed: int = 7, base=None, verbose: bool = True
):
    """Random search then greedy coordinate refinement."""
    rng = random.Random(seed)
    anchors = anchor_set()
    best = base if base is not None else skylake16()
    best_err, _ = evaluate(best, anchors)

    def sample(current, temp: float):
        fields = {}
        for field, lo, hi, logscale in SEARCH_SPACE:
            cur = getattr(current, field)
            if rng.random() < 0.5:
                fields[field] = cur
                continue
            if logscale:
                span = math.log(hi / lo) * temp
                val = cur * math.exp(rng.uniform(-span, span))
            else:
                span = (hi - lo) * temp
                val = cur + rng.uniform(-span, span)
            fields[field] = min(max(val, lo), hi)
        return dataclasses.replace(current, **fields)

    for i in range(iterations):
        temp = 0.5 * (1.0 - i / iterations) + 0.02
        cand = sample(best, temp)
        err, _ = evaluate(cand, anchors)
        if err < best_err:
            best, best_err = cand, err
            if verbose:
                print(f"iter {i}: err={err:.4f}")
    return best, best_err


def main() -> None:  # pragma: no cover - manual tool
    best, err = calibrate()
    print(f"\nfinal mean |log error| = {err:.4f}  (x{math.exp(err):.2f})")
    for field, *_ in SEARCH_SPACE:
        print(f"  {field} = {getattr(best, field):.6g}")
    _, rows = evaluate(best, anchor_set())
    for a, est in rows:
        print(f"  {a.name:32s} model {est:8.1f}  paper {a.paper_seconds:8.1f}")


if __name__ == "__main__":  # pragma: no cover
    main()
