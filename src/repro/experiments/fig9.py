"""Figure 9: weak scaling on 1 / 8 / 64 nodes.

Work per node is held fixed (``N^3 / p``): 4K^3 for FW-APSP and 8K^3
for GE, so N grows with the cube root of the node count:

=========  =====  =====  =====
nodes          1      8     64
FW-APSP N   4096   8192  16384
GE      N   8192  16384  32768
=========  =====  =====  =====

Configurations follow §V-C: FW — IM iterative b=512 vs IM 4-way
recursive b=1024 (OMP 8); GE — CB iterative b=512 vs CB 4-way recursive
b=1024 (OMP 8).  Ideal weak scaling is a flat line; communication makes
every curve rise, the recursive-kernel curves more slowly (the paper's
"recursive CB GE scales better" claim).
"""

from __future__ import annotations

from ..cluster import CostModel, ExecutionPlan, skylake16
from ..core.gep import FloydWarshallGep, GaussianEliminationGep
from .report import ExperimentResult, Table, fmt_seconds

__all__ = ["run_fig9", "weak_scaling_series"]

NODE_COUNTS = (1, 8, 64)


def weak_scaling_series(
    spec, strategy: str, kernel: str, block: int, n_per_node: int, **kernel_kw
) -> list[float]:
    """Seconds at each node count with N = n_per_node * p^(1/3)."""
    out = []
    for p in NODE_COUNTS:
        n = n_per_node * round(p ** (1.0 / 3.0))
        r = max(1, n // block)
        model = CostModel(skylake16(nodes=p))
        plan = ExecutionPlan(strategy, kernel, **kernel_kw)
        out.append(model.estimate(spec, n, r, plan).total)
    return out


def run_fig9(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig9",
        "Weak scaling (fixed work per node) on 1/8/64 skylake nodes; "
        "seconds — flat is ideal",
    )
    series = {
        ("FW", "IM iterative b512"): weak_scaling_series(
            FloydWarshallGep(), "im", "iterative", 512, 4096
        ),
        ("FW", "IM 4-way rec b1024 omp8"): weak_scaling_series(
            FloydWarshallGep(), "im", "recursive", 1024, 4096,
            r_shared=4, omp_threads=8, executor_cores=8,
        ),
        ("GE", "CB iterative b512"): weak_scaling_series(
            GaussianEliminationGep(), "cb", "iterative", 512, 8192
        ),
        ("GE", "CB 4-way rec b1024 omp8"): weak_scaling_series(
            GaussianEliminationGep(), "cb", "recursive", 1024, 8192,
            r_shared=4, omp_threads=8, executor_cores=8,
        ),
    }
    result.tables.append(
        Table(
            "Fig 9 — weak scaling",
            [f"p={p}" for p in NODE_COUNTS],
            [f"{b} / {c}" for (b, c) in series],
            list(series.values()),
        )
    )

    def growth(vals: list[float]) -> float:
        return vals[-1] / vals[0]

    ge_iter = growth(series[("GE", "CB iterative b512")])
    ge_rec = growth(series[("GE", "CB 4-way rec b1024 omp8")])
    result.add_claim(
        "GE: recursive CB scales better than iterative CB (smaller 1→64 growth)",
        "recursive flatter",
        f"iterative x{ge_iter:.2f} vs recursive x{ge_rec:.2f}",
        ge_rec < ge_iter,
    )
    fw_iter = growth(series[("FW", "IM iterative b512")])
    fw_rec = growth(series[("FW", "IM 4-way rec b1024 omp8")])
    result.add_claim(
        "FW: recursive kernels scale at least as well as iterative",
        "recursive <= iterative growth",
        f"iterative x{fw_iter:.2f} vs recursive x{fw_rec:.2f}",
        fw_rec <= fw_iter * 1.1,
    )
    rising = all(vals[-1] > vals[0] for vals in series.values())
    result.add_claim(
        "no configuration scales ideally (communication grows with p)",
        "curves rise",
        "all curves rise" if rising else "some flat/falling",
        rising,
    )
    return result
