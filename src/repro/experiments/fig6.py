"""Figure 6: all Spark implementations x block sizes, both benchmarks.

For FW-APSP and GE at 32K x 32K on cluster 1, sweep block size
{256, 512, 1024, 2048, 4096} (r = {128, 64, 32, 16, 8}) for each of:

* IM / CB with iterative kernels,
* IM / CB with {2, 4, 8, 16}-way recursive kernels.

As in the paper, recursive configurations report the best time over the
OMP_NUM_THREADS / executor-cores tuning grid (§V-C fixes executor-cores
and sweeps OMP; Tables I/II show the joint grid, whose best cells are
what Fig. 6 plots).

Shape criteria (§V-C prose):

* FW: IM beats CB at the best configs; best iterative ~651 s at b=256;
  best recursive ~302 s (16-way, b=1024) — ≈2.1x.
* GE: CB beats IM; best iterative ~1032 s at b=512; best recursive
  ~204 s (4-way, b=2048) — ≈5x.
* Iterative ≈ recursive at b ≤ 512 (blocks L2-resident); recursive
  clearly wins at b ≥ 1024.
* b = 4096 is catastrophic for iterative kernels (footnote: 11–16 ks).
"""

from __future__ import annotations

from ..cluster import CostModel, ExecutionPlan, skylake16
from ..core.gep import FloydWarshallGep, GaussianEliminationGep
from .calibration import N
from .report import ExperimentResult, Table, fmt_seconds

__all__ = ["run_fig6", "fig6_sweep", "BLOCK_SIZES", "RSHARED_VALUES"]

BLOCK_SIZES = (256, 512, 1024, 2048, 4096)
RSHARED_VALUES = (2, 4, 8, 16)
_OMP_GRID = (2, 4, 8, 16, 32)
_EC_GRID = (4, 8, 32)

PAPER_ANCHORS = {
    ("fw", "best-iterative"): 651.0,
    ("fw", "best-recursive"): 302.0,
    ("ge", "best-iterative"): 1032.0,
    ("ge", "best-recursive"): 204.0,
}


def fig6_sweep(spec, n: int = N, cluster=None) -> dict:
    """All Fig. 6 bars for one benchmark: {(strategy, config, block): seconds}."""
    model = CostModel(cluster or skylake16())
    out: dict[tuple[str, str, int], float] = {}
    for block in BLOCK_SIZES:
        r = n // block
        for strategy in ("im", "cb"):
            out[(strategy, "iterative", block)] = model.estimate(
                spec, n, r, ExecutionPlan(strategy, "iterative")
            ).total
            for rs in RSHARED_VALUES:
                best = min(
                    model.estimate(
                        spec, n, r,
                        ExecutionPlan(
                            strategy, "recursive", rs, 64, omp, executor_cores=ec
                        ),
                    ).total
                    for omp in _OMP_GRID
                    for ec in _EC_GRID
                )
                out[(strategy, f"rec{rs}", block)] = best
    return out


def _configs() -> list[str]:
    return ["iterative"] + [f"rec{rs}" for rs in RSHARED_VALUES]


def run_fig6(fast: bool = False) -> ExperimentResult:
    result = ExperimentResult(
        "fig6",
        "All Spark implementations of both benchmarks across block sizes "
        "(n=32K, cluster 1; seconds, recursive cells = best over tuning grid)",
    )
    specs = {"fw": FloydWarshallGep(), "ge": GaussianEliminationGep()}
    sweeps = {}
    for key, spec in specs.items():
        sweep = fig6_sweep(spec)
        sweeps[key] = sweep
        for strategy in ("im", "cb"):
            result.tables.append(
                Table(
                    f"Fig 6 — {key.upper()} / {strategy.upper()}",
                    [f"b={b}" for b in BLOCK_SIZES],
                    _configs(),
                    [
                        [sweep[(strategy, cfg, b)] for b in BLOCK_SIZES]
                        for cfg in _configs()
                    ],
                )
            )

    # ---- shape claims ---------------------------------------------------
    for key, sweep in sweeps.items():
        best_iter = min(
            (v, k) for k, v in sweep.items() if k[1] == "iterative"
        )
        best_rec = min(
            (v, k) for k, v in sweep.items() if k[1] != "iterative"
        )
        speedup = best_iter[0] / best_rec[0]
        paper_speedup = (
            PAPER_ANCHORS[(key, "best-iterative")]
            / PAPER_ANCHORS[(key, "best-recursive")]
        )
        result.add_claim(
            f"{key.upper()}: recursive kernels beat iterative",
            f"x{paper_speedup:.1f}",
            f"x{speedup:.1f} (iter {fmt_seconds(best_iter[0])} @ "
            f"{best_iter[1][0]}/b{best_iter[1][2]}, rec {fmt_seconds(best_rec[0])} @ "
            f"{best_rec[1][0]}/{best_rec[1][1]}/b{best_rec[1][2]})",
            speedup >= 1.5,
        )
        winner = "im" if key == "fw" else "cb"
        loser = "cb" if key == "fw" else "im"
        if key == "fw":
            # Paper: "IM implementations outperformed CB implementations
            # in most of the cases" — checked cell-wise across the sweep.
            cells = [
                (sweep[("im", cfg, b)], sweep[("cb", cfg, b)])
                for cfg in _configs()
                for b in BLOCK_SIZES
            ]
            wins = sum(1 for im_t, cb_t in cells if im_t <= cb_t)
            result.add_claim(
                "FW: IM beats CB in most configurations",
                "most cases",
                f"{wins}/{len(cells)} cells",
                wins >= 0.6 * len(cells),
            )
        else:
            best_winner = min(v for k, v in sweep.items() if k[0] == winner)
            best_loser = min(v for k, v in sweep.items() if k[0] == loser)
            result.add_claim(
                f"{key.upper()}: {winner.upper()} beats {loser.upper()} at the "
                "best configs",
                "true",
                f"{winner} {fmt_seconds(best_winner)} vs {loser} "
                f"{fmt_seconds(best_loser)}",
                best_winner <= best_loser * 1.05,
            )
        # L2 crossover: iterative ~competitive at 512, recursive wins >= 2x at >= 1024
        strat = winner
        at512 = sweep[(strat, "iterative", 512)] / min(
            sweep[(strat, f"rec{rs}", 512)] for rs in RSHARED_VALUES
        )
        at2048 = sweep[(strat, "iterative", 2048)] / min(
            sweep[(strat, f"rec{rs}", 2048)] for rs in RSHARED_VALUES
        )
        result.add_claim(
            f"{key.upper()}: L2 crossover (iter/rec ratio grows past b=512)",
            "~1 at 512, >>1 at 2048",
            f"x{at512:.2f} at 512, x{at2048:.2f} at 2048",
            at2048 > at512 and at2048 >= 1.5,
        )
        # b=4096 iterative blow-up
        iter4096 = min(sweep[("im", "iterative", 4096)], sweep[("cb", "iterative", 4096)])
        result.add_claim(
            f"{key.upper()}: iterative b=4096 is catastrophic",
            ">11,000 s",
            fmt_seconds(iter4096),
            iter4096 > 8000,
        )
    return result
