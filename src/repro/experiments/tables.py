"""Tables I and II: executor-cores x OMP_NUM_THREADS grids (§V-C).

Table I: GE, Collect-Broadcast, 4-way recursive kernels, 32K x 32K with
1K blocks (r = 32).  Table II: FW-APSP, In-Memory, 16-way recursive
kernels, same geometry.  Both sweep ``executor-cores`` in {2..32} and
``OMP_NUM_THREADS`` in {1..32} on cluster 1 and exhibit the same
pattern: threads help until the node saturates; large executor-core
counts degrade (concurrent OpenMP tasks thrash); the best cells sit at
moderate concurrency x moderate threading.
"""

from __future__ import annotations

from ..cluster import CostModel, ExecutionPlan, skylake16
from ..core.gep import FloydWarshallGep, GaussianEliminationGep
from .calibration import N, OMP_COLS, TABLE1, TABLE2
from .report import ExperimentResult, Table

__all__ = ["run_table1", "run_table2"]

EC_ROWS = (2, 4, 8, 16, 32)


def _grid(spec, strategy: str, r_shared: int, r: int, n: int, cluster=None):
    model = CostModel(cluster or skylake16())
    rows = []
    for ec in EC_ROWS:
        row = []
        for omp in OMP_COLS:
            plan = ExecutionPlan(
                strategy, "recursive", r_shared, 64, omp, executor_cores=ec
            )
            row.append(model.estimate(spec, n, r, plan).total)
        rows.append(row)
    return rows


def _check_grid(result: ExperimentResult, rows, paper, label: str) -> None:
    """The shape claims shared by both tables."""
    model_cells = {
        (ec, omp): rows[i][j]
        for i, ec in enumerate(EC_ROWS)
        for j, omp in enumerate(OMP_COLS)
    }
    paper_cells = {
        (ec, omp): v
        for ec, vals in paper.items()
        for omp, v in zip(OMP_COLS, vals)
        if v is not None
    }
    # 1. OMP=1 is the worst column of every row.
    omp1_worst = all(
        model_cells[(ec, 1)] >= max(model_cells[(ec, o)] for o in OMP_COLS if o != 1)
        for ec in EC_ROWS
    )
    result.add_claim(
        f"{label}: OMP_NUM_THREADS=1 is the slowest column of every row",
        "true", str(omp1_worst).lower(), omp1_worst,
    )
    # 2. The best model cell sits at moderate executor-cores (not 32).
    best_model = min(model_cells, key=model_cells.get)
    best_paper = min(paper_cells, key=paper_cells.get)
    result.add_claim(
        f"{label}: best cell at moderate executor-cores",
        f"ec={best_paper[0]}, omp={best_paper[1]}",
        f"ec={best_model[0]}, omp={best_model[1]}",
        best_model[0] <= 8,
    )
    # 3. ec=32 rows are dominated by some smaller-ec row at high threads.
    degraded = all(
        model_cells[(32, o)] > model_cells[(best_model[0], o)] for o in (32, 16, 8)
    )
    result.add_claim(
        f"{label}: executor-cores=32 degrades vs the best row (thread thrash)",
        "true", str(degraded).lower(), degraded,
    )
    # 4. Best-cell time within 2x of the paper's best.
    ratio = model_cells[best_model] / paper_cells[best_paper]
    result.add_claim(
        f"{label}: best-cell time vs paper",
        f"{paper_cells[best_paper]:.0f}s",
        f"{model_cells[best_model]:.0f}s (x{ratio:.2f})",
        0.5 <= ratio <= 2.0,
    )


def run_table1(fast: bool = False) -> ExperimentResult:
    """Reproduce Table I (GE, CB, 4-way recursive, b = 1024)."""
    n = N
    result = ExperimentResult(
        "table1",
        "GE benchmark seconds across executor-cores x OMP_NUM_THREADS "
        "(CB, 4-way recursive kernels, n=32K, block=1K, cluster 1)",
    )
    rows = _grid(GaussianEliminationGep(), "cb", 4, 32, n)
    result.tables.append(
        Table(
            "Table I (model)",
            [f"omp={o}" for o in OMP_COLS],
            [f"ec={e}" for e in EC_ROWS],
            rows,
        )
    )
    result.tables.append(
        Table(
            "Table I (paper)",
            [f"omp={o}" for o in OMP_COLS],
            [f"ec={e}" for e in EC_ROWS],
            [list(TABLE1[e]) for e in EC_ROWS],
        )
    )
    _check_grid(result, rows, TABLE1, "Table I")
    return result


def run_table2(fast: bool = False) -> ExperimentResult:
    """Reproduce Table II (FW-APSP, IM, 16-way recursive, b = 1024)."""
    n = N
    result = ExperimentResult(
        "table2",
        "FW-APSP benchmark seconds across executor-cores x OMP_NUM_THREADS "
        "(IM, 16-way recursive kernels, n=32K, block=1K, cluster 1)",
    )
    rows = _grid(FloydWarshallGep(), "im", 16, 32, n)
    result.tables.append(
        Table(
            "Table II (model)",
            [f"omp={o}" for o in OMP_COLS],
            [f"ec={e}" for e in EC_ROWS],
            rows,
        )
    )
    result.tables.append(
        Table(
            "Table II (paper; blank cells not reported)",
            [f"omp={o}" for o in OMP_COLS],
            [f"ec={e}" for e in EC_ROWS],
            [["—" if v is None else v for v in TABLE2[e]] for e in EC_ROWS],
        )
    )
    _check_grid(result, rows, TABLE2, "Table II")
    return result
