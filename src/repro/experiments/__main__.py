"""CLI entry point: ``python -m repro.experiments``."""

import sys

from .harness import main

sys.exit(main())
